// Ablation of the §2.3 lazy-measurement optimization.
//
// The paper: "this optimization reduces overhead by a factor of at least 1.8
// and as much as 5.9, for the workloads that we tested." This harness runs
// every Table-2 workload with and without the optimization and reports the
// overhead ratio and the measurement-count ratio.
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

int main() {
    bench::print_header("§2.3 ablation — lazy measurement vs measuring every tick");

    util::TextTable t({"Workload", "Q (ms)", "lazy ovh %", "eager ovh %",
                       "ovh factor", "lazy reads", "eager reads", "read factor"});
    double min_factor = 1e9;
    double max_factor = 0.0;
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : {5, 10, 20}) {
            for (const int q : {10, 20, 40}) {
                workload::SimRunConfig cfg;
                cfg.shares = workload::make_shares(model, n);
                cfg.quantum = util::msec(q);
                cfg.measure_cycles = bench::measure_cycles();
                cfg.lazy_measurement = true;
                const auto lazy = workload::run_cpu_bound_experiment(cfg);
                cfg.lazy_measurement = false;
                const auto eager = workload::run_cpu_bound_experiment(cfg);
                const double factor = eager.overhead_fraction / lazy.overhead_fraction;
                min_factor = std::min(min_factor, factor);
                max_factor = std::max(max_factor, factor);
                t.add_row({std::string(workload::to_string(model)) + std::to_string(n),
                           std::to_string(q),
                           util::fmt(100.0 * lazy.overhead_fraction, 3),
                           util::fmt(100.0 * eager.overhead_fraction, 3),
                           util::fmt(factor, 2), std::to_string(lazy.measurements),
                           std::to_string(eager.measurements),
                           util::fmt(static_cast<double>(eager.measurements) /
                                         static_cast<double>(lazy.measurements),
                                     2)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nOverhead reduction factor range: " << util::fmt(min_factor, 2)
              << "x - " << util::fmt(max_factor, 2)
              << "x   (paper: 1.8x - 5.9x)\n";
    return 0;
}
