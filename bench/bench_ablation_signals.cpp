// Fidelity ablation: instant vs hardclock-tick SIGSTOP delivery.
//
// Hypothesis tested (and largely *refuted*): that the divergence between our
// skewed-workload error trend and the paper's Figure 4 (ours shrinks as the
// quantum grows; the paper's grows) is caused by our idealized instant
// SIGSTOP delivery, vs a real kernel acting on the signal only at the next
// hardclock tick (10 ms at hz=100).
//
// The measured result: tick-granular delivery barely moves the numbers. The
// reason is structural — on a uniprocessor the ALPS driver holds the CPU
// while it signals, so its target is never *running* when the SIGSTOP
// arrives and the delivery grid rarely applies. Whatever drives the paper's
// skewed trend (most plausibly FreeBSD's statclock-sampled rusage), it is
// not stop-delivery latency; see EXPERIMENTS.md.
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

int main() {
    bench::print_header(
        "Signal-delivery ablation — instant vs 10 ms hardclock-tick SIGSTOP");

    util::TextTable t({"Workload", "Q (ms)", "instant err %", "tick-delivery err %"});
    for (const ShareModel model : {ShareModel::kSkewed, ShareModel::kLinear}) {
        for (const int n : {5, 10, 20}) {
            for (const int q : {10, 20, 40}) {
                workload::SimRunConfig cfg;
                cfg.shares = workload::make_shares(model, n);
                cfg.quantum = util::msec(q);
                cfg.measure_cycles = bench::measure_cycles();
                const auto ideal = workload::run_cpu_bound_experiment(cfg);
                cfg.stop_latency_grid = util::msec(10);
                const auto ticked = workload::run_cpu_bound_experiment(cfg);
                t.add_row({std::string(workload::to_string(model)) + std::to_string(n),
                           std::to_string(q),
                           util::fmt(100.0 * ideal.mean_rms_error, 2),
                           util::fmt(100.0 * ticked.mean_rms_error, 2)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nDelivery granularity changes little: on one CPU the target "
                 "of an ALPS stop is never running when signalled.\n";
    return 0;
}
