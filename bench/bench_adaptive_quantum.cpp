// Extension bench: the adaptive-quantum controller vs fixed quanta.
//
// The paper leaves the quantum — its accuracy/overhead knob (§2.1) — to the
// user. This harness pins an overhead budget (0.2% of one CPU) and compares:
// fixed 10 ms (accurate, too expensive on big workloads), fixed 40 ms
// (cheap, coarser), and the adaptive controller, across the Table-2
// workloads. Expected shape: adaptive lands within the budget's dead band
// everywhere, with accuracy between the two fixed settings.
#include <iostream>
#include <memory>

#include "../bench/common.h"
#include "alps/sim_adapter.h"
#include "metrics/exact_cycle_log.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

namespace {

struct Outcome {
    double overhead_pct = 0.0;
    double error_pct = 0.0;
    double final_q_ms = 0.0;
};

Outcome run_adaptive(const std::vector<util::Share>& shares, util::Duration run_len) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    core::SchedulerConfig scfg;
    scfg.quantum = util::msec(10);
    core::SimAlps alps(kernel, scfg);
    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.scheduler().set_cycle_observer(log.observer());
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const os::Pid pid =
            kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, shares[i]);
    }
    core::AdaptiveQuantumConfig acfg;
    acfg.target_overhead = 0.002;
    core::SimAdaptiveQuantum adaptive(alps, acfg, util::sec(2));

    // Let the controller settle, then measure.
    engine.run_until(engine.now() + run_len);
    const auto cycles_before = log.cycle_count();
    const util::Duration cpu0 = alps.overhead_cpu();
    const util::TimePoint t0 = kernel.now();
    engine.run_until(engine.now() + run_len);

    Outcome out;
    out.final_q_ms = util::to_ms(adaptive.current_quantum());
    out.overhead_pct = 100.0 * util::to_sec(alps.overhead_cpu() - cpu0) /
                       util::to_sec(kernel.now() - t0);
    out.error_pct = 100.0 * log.mean_rms_relative_error(cycles_before);
    return out;
}

}  // namespace

int main() {
    bench::print_header("Adaptive quantum — overhead budget 0.2% vs fixed quanta");

    const util::Duration run_len =
        bench::full_scale() ? util::sec(300) : util::sec(120);

    util::TextTable t({"Workload", "fixed10 ovh %", "fixed10 err %", "fixed40 ovh %",
                       "fixed40 err %", "adaptive ovh %", "adaptive err %",
                       "adaptive Q (ms)"});
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : {5, 20}) {
            const auto shares = workload::make_shares(model, n);
            workload::SimRunConfig cfg;
            cfg.shares = shares;
            cfg.measure_cycles = bench::measure_cycles();
            cfg.quantum = util::msec(10);
            const auto f10 = workload::run_cpu_bound_experiment(cfg);
            cfg.quantum = util::msec(40);
            const auto f40 = workload::run_cpu_bound_experiment(cfg);
            const Outcome ad = run_adaptive(shares, run_len);
            t.add_row({std::string(workload::to_string(model)) + std::to_string(n),
                       util::fmt(100.0 * f10.overhead_fraction, 3),
                       util::fmt(100.0 * f10.mean_rms_error, 2),
                       util::fmt(100.0 * f40.overhead_fraction, 3),
                       util::fmt(100.0 * f40.mean_rms_error, 2),
                       util::fmt(ad.overhead_pct, 3), util::fmt(ad.error_pct, 2),
                       util::fmt(ad.final_q_ms, 0)});
        }
    }
    t.print(std::cout);
    bench::maybe_write_csv("adaptive_quantum", t);
    std::cout << "\nAdaptive should sit near the 0.2% budget regardless of the "
                 "workload's cost profile.\n";
    return 0;
}
