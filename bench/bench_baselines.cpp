// Extension bench: user-level ALPS vs the in-kernel proportional-share
// schedulers the paper positions itself against (stride, lottery — the
// "replace the kernel scheduler" class of §1/§6).
//
// All three schedule the Table-2 workloads on the same simulated machine;
// accuracy is the mean RMS relative error over cycle-length windows. The
// expected shape: in-kernel stride is near-exact, lottery is noisy, and
// user-level ALPS sits close to stride at a fraction of the deployment cost
// (no kernel changes) while paying a small sampling overhead.
#include <iostream>
#include <memory>
#include <vector>

#include "../bench/common.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sched/lottery_policy.h"
#include "sched/stride_policy.h"
#include "sched/wrr_policy.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

namespace {

/// Runs an in-kernel policy on a CPU-bound workload; returns the mean RMS
/// relative error over consecutive windows of one ALPS-cycle length.
/// `window_divisor` shrinks the observation window below one rotation /
/// cycle, exposing short-horizon burstiness.
template <typename Policy>
double run_in_kernel(const std::vector<util::Share>& shares, util::Duration quantum,
                     int windows, int window_divisor = 1) {
    sim::Engine engine;
    auto policy = std::make_unique<Policy>(quantum);
    Policy* pol = policy.get();
    os::Kernel kernel(engine, std::move(policy));

    std::vector<os::Pid> pids;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const os::Pid pid =
            kernel.spawn("w" + std::to_string(i), 0, std::make_unique<os::CpuBoundBehavior>());
        pol->set_tickets(pid, shares[i]);
        pids.push_back(pid);
    }

    const util::Duration window =
        quantum * util::total_shares(shares) / window_divisor;
    const auto ideal = util::ideal_fractions(shares);
    std::vector<util::Duration> last(pids.size());
    util::RunningStats err;
    // One warmup window.
    engine.run_until(engine.now() + window);
    for (std::size_t i = 0; i < pids.size(); ++i) last[i] = kernel.cpu_time(pids[i]);
    for (int w = 0; w < windows; ++w) {
        engine.run_until(engine.now() + window);
        std::vector<double> actual(pids.size());
        std::vector<double> target(pids.size());
        double total = 0.0;
        for (std::size_t i = 0; i < pids.size(); ++i) {
            const auto cpu = kernel.cpu_time(pids[i]);
            actual[i] = static_cast<double>((cpu - last[i]).count());
            total += actual[i];
            last[i] = cpu;
        }
        for (std::size_t i = 0; i < pids.size(); ++i) target[i] = total * ideal[i];
        err.add(util::rms_relative_error(actual, target));
    }
    return err.mean();
}

}  // namespace

int main() {
    bench::print_header(
        "Baselines — user-level ALPS vs in-kernel stride and lottery");

    const util::Duration q = util::msec(10);
    const int windows = bench::measure_cycles();

    util::TextTable t({"Workload", "ALPS err %", "ALPS ovh %", "Stride err %",
                       "WRR err %", "Lottery err %", "Stride 1/4-wnd %",
                       "WRR 1/4-wnd %"});
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : {5, 10, 20}) {
            const auto shares = workload::make_shares(model, n);

            workload::SimRunConfig cfg;
            cfg.shares = shares;
            cfg.quantum = q;
            cfg.measure_cycles = windows;
            const auto alps_res = workload::run_cpu_bound_experiment(cfg);

            const double stride_err =
                run_in_kernel<sched::StridePolicy>(shares, q, windows);
            const double wrr_err = run_in_kernel<sched::WrrPolicy>(shares, q, windows);
            const double lottery_err =
                run_in_kernel<sched::LotteryPolicy>(shares, q, windows);
            // Quarter-cycle horizon: burstiness shows here.
            const double stride_short =
                run_in_kernel<sched::StridePolicy>(shares, q, 4 * windows, 4);
            const double wrr_short =
                run_in_kernel<sched::WrrPolicy>(shares, q, 4 * windows, 4);

            t.add_row({std::string(workload::to_string(model)) + std::to_string(n),
                       util::fmt(100.0 * alps_res.mean_rms_error, 2),
                       util::fmt(100.0 * alps_res.overhead_fraction, 3),
                       util::fmt(100.0 * stride_err, 2),
                       util::fmt(100.0 * wrr_err, 2),
                       util::fmt(100.0 * lottery_err, 2),
                       util::fmt(100.0 * stride_short, 2),
                       util::fmt(100.0 * wrr_short, 2)});
        }
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: stride near-exact and smooth; WRR exact "
                 "over rotations but bursty within them (error grows with the "
                 "share spread); lottery noisy (statistical); ALPS close to "
                 "stride without kernel support, paying <1% sampling "
                 "overhead.\n";
    return 0;
}
