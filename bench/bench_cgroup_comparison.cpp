// Modern-comparator bench: user-level ALPS vs the Linux kernel's own
// proportional-share facility (cgroup cpu.shares), on real processes.
//
// Twenty years after the paper, the kernel support ALPS was designed to live
// without is standard. This harness pits the two against each other on the
// same workload — two busy loops pinned to one CPU, target split 1:3 — and
// also measures what the stock scheduler does with no control at all.
//
// Expected shape: both enforce ~25/75; cgroups with zero user-level overhead
// (it *is* the scheduler), ALPS with its sub-1% sampling overhead but no
// privileges or kernel configuration needed. Skipped (with a message) when
// cgroups are not writable.
#include <iostream>

#include "../bench/common.h"
#include "posix/cgroup.h"
#include "posix/host.h"
#include "posix/runner.h"
#include "posix/spawn.h"
#include "util/table.h"

using namespace alps;

namespace {

struct Split {
    double small_pct = 0.0;
    double big_pct = 0.0;
    double overhead_pct = 0.0;
};

Split measure(posix::ChildSet& children, pid_t a, pid_t b, util::Duration wall,
              const std::function<double(util::Duration)>& control) {
    (void)children;
    posix::PosixProcessHost host;
    const auto a0 = host.read_pid(a).cpu_time;
    const auto b0 = host.read_pid(b).cpu_time;
    const double overhead = control(wall);
    const double da = util::to_sec(host.read_pid(a).cpu_time - a0);
    const double db = util::to_sec(host.read_pid(b).cpu_time - b0);
    Split s;
    if (da + db > 0) {
        s.small_pct = 100.0 * da / (da + db);
        s.big_pct = 100.0 * db / (da + db);
    }
    s.overhead_pct = overhead;
    return s;
}

void sleep_wall(util::Duration wall) {
    timespec ts{};
    ts.tv_sec = wall.count() / 1'000'000'000;
    ts.tv_nsec = wall.count() % 1'000'000'000;
    ::nanosleep(&ts, nullptr);
}

}  // namespace

int main() {
    bench::print_header(
        "ALPS vs cgroup cpu.shares — real processes, target split 1:3");

    const util::Duration wall = bench::full_scale() ? util::sec(20) : util::sec(5);

    posix::ChildSet children;
    const pid_t a = children.add_busy();
    const pid_t b = children.add_busy();
    posix::pin_to_cpu(a, 0);
    posix::pin_to_cpu(b, 0);

    util::TextTable t({"Mechanism", "1-share %", "3-share %", "controller ovh %",
                       "needs"});

    // 1. No control: the stock kernel splits evenly.
    const Split none = measure(children, a, b, wall, [&](util::Duration w) {
        sleep_wall(w);
        return 0.0;
    });
    t.add_row({"none (stock kernel)", util::fmt(none.small_pct, 1),
               util::fmt(none.big_pct, 1), "0", "-"});

    // 2. cgroup cpu.shares.
    if (posix::CpuCgroup::available()) {
        const Split cg = measure(children, a, b, wall, [&](util::Duration w) {
            posix::CpuCgroup small("alps-cmp-small", 1024);
            posix::CpuCgroup big("alps-cmp-big", 3072);
            small.attach(a);
            big.attach(b);
            sleep_wall(w);
            return 0.0;  // in-kernel: no user-level controller cost
        });
        t.add_row({"cgroup cpu.shares 1024:3072", util::fmt(cg.small_pct, 1),
                   util::fmt(cg.big_pct, 1), "0",
                   "root / delegated cgroup"});
    } else {
        t.add_row({"cgroup cpu.shares", "-", "-", "-", "unavailable here"});
    }

    // 3. ALPS, unprivileged.
    const Split alps_split = measure(children, a, b, wall, [&](util::Duration w) {
        core::SchedulerConfig cfg;
        cfg.quantum = util::msec(10);
        posix::PosixAlpsRunner runner(cfg);
        runner.scheduler().add(a, 1);
        runner.scheduler().add(b, 3);
        const posix::RunTotals totals = runner.run_for(w);
        return 100.0 * totals.overhead_fraction;
    });
    t.add_row({"ALPS 1:3 @10ms", util::fmt(alps_split.small_pct, 1),
               util::fmt(alps_split.big_pct, 1),
               util::fmt(alps_split.overhead_pct, 3), "no privileges"});

    t.print(std::cout);
    bench::maybe_write_csv("cgroup_comparison", t);
    std::cout << "\nTarget: 25.0 / 75.0. Both mechanisms should hit it; the "
                 "difference is deployment (kernel facility + privileges vs "
                 "an unprivileged process paying <1% CPU).\n";
    return 0;
}
