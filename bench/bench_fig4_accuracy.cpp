// Reproduces Table 2 (workload share distributions) and Figure 4 (mean RMS
// relative error vs quantum length for the nine workloads, 200 cycles, mean
// of repeated runs) — now a thin registration over the sweep harness
// (bench/exp_fig4.cpp): repetitions fan out across hardware threads and the
// run also emits BENCH_fig4.json (see EXPERIMENTS.md for the schema).
//
// Paper's shape: error under 5% for most workloads; skewed distributions are
// the worst case ("quantization effects"). Note one documented divergence:
// in the paper skewed error grows with the quantum, in the simulator it
// grows as the quantum *shrinks* (see EXPERIMENTS.md — idealized instant
// signal delivery removes the kernel-tick latency that dominates on real
// FreeBSD at long quanta).
#include "../bench/common.h"
#include "../bench/experiments.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
    using namespace alps;
    bench::register_all_experiments();
    harness::SweepOptions options;
    options.out_dir = ".";
    if (!harness::parse_sweep_args(argc, argv, options)) return 2;
    bench::print_header("Figure 4 — Accuracy: mean RMS relative error vs quantum length");
    return harness::run_and_report("fig4", options);
}
