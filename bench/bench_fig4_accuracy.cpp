// Reproduces Table 2 (workload share distributions) and Figure 4 (mean RMS
// relative error vs quantum length for the nine workloads, 200 cycles, mean
// of repeated runs).
//
// Paper's shape: error under 5% for most workloads; skewed distributions are
// the worst case ("quantization effects"). Note one documented divergence:
// in the paper skewed error grows with the quantum, in the simulator it
// grows as the quantum *shrinks* (see EXPERIMENTS.md — idealized instant
// signal delivery removes the kernel-tick latency that dominates on real
// FreeBSD at long quanta).
#include <iostream>
#include <sstream>

#include "../bench/common.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

namespace {

std::string shares_brief(const std::vector<util::Share>& s) {
    std::ostringstream out;
    out << "{";
    if (s.size() <= 6) {
        for (std::size_t i = 0; i < s.size(); ++i) out << (i ? " " : "") << s[i];
    } else {
        out << s[0] << " " << s[1] << " " << s[2] << " ... " << s[s.size() - 2] << " "
            << s.back();
    }
    out << "}";
    return out.str();
}

}  // namespace

int main() {
    bench::print_header("Figure 4 — Accuracy: mean RMS relative error vs quantum length");

    // --- Table 2: the workload share distributions ---
    std::cout << "\nTable 2. Workload Share Distributions\n";
    util::TextTable t2({"Model", "5 procs", "10 procs", "20 procs"});
    for (const ShareModel m :
         {ShareModel::kLinear, ShareModel::kEqual, ShareModel::kSkewed}) {
        t2.add_row({std::string(workload::to_string(m)),
                    shares_brief(workload::make_shares(m, 5)),
                    shares_brief(workload::make_shares(m, 10)),
                    shares_brief(workload::make_shares(m, 20))});
    }
    t2.print(std::cout);

    // --- Figure 4 ---
    const int quanta_ms[] = {10, 15, 20, 25, 30, 35, 40};
    std::cout << "\nFigure 4. Mean RMS relative error (%) by quantum length\n";
    std::vector<std::string> headers{"Workload"};
    for (int q : quanta_ms) headers.push_back("Q=" + std::to_string(q) + "ms");
    util::TextTable fig(headers);

    for (const ShareModel model : workload::kAllModels) {
        for (const int n : {5, 10, 20}) {
            std::vector<std::string> row{std::string(workload::to_string(model)) +
                                         std::to_string(n)};
            for (const int q : quanta_ms) {
                double err_sum = 0.0;
                for (int rep = 0; rep < bench::repetitions(); ++rep) {
                    workload::SimRunConfig cfg;
                    cfg.shares = workload::make_shares(model, n);
                    cfg.quantum = util::msec(q);
                    cfg.measure_cycles = bench::measure_cycles();
                    cfg.warmup_cycles = 5 + rep;  // de-phase repeated runs
                    err_sum += workload::run_cpu_bound_experiment(cfg).mean_rms_error;
                }
                row.push_back(
                    util::fmt(100.0 * err_sum / bench::repetitions(), 2));
            }
            fig.add_row(std::move(row));
        }
    }
    fig.print(std::cout);
    std::cout << "\nPaper: <5% for most workloads; skewed highest (up to ~27%).\n";
    return 0;
}
