// Reproduces Figure 5: ALPS overhead (% of CPU) for the nine Table-2
// workloads at quantum lengths 10/20/40 ms.
//
// Paper's shape: overhead typically under 0.3% (max ~0.7%); highest for the
// equal distributions (fewer processes go ineligible, so the lazy
// optimization saves less); halves roughly as the quantum doubles.
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

int main() {
    bench::print_header("Figure 5 — Overhead: ALPS CPU time / experiment duration");

    util::TextTable fig({"Workload", "N", "Q=10ms (%)", "Q=20ms (%)", "Q=40ms (%)"});
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : {5, 10, 20}) {
            std::vector<std::string> row{std::string(workload::to_string(model)),
                                         std::to_string(n)};
            for (const int q : {10, 20, 40}) {
                double sum = 0.0;
                for (int rep = 0; rep < bench::repetitions(); ++rep) {
                    workload::SimRunConfig cfg;
                    cfg.shares = workload::make_shares(model, n);
                    cfg.quantum = util::msec(q);
                    cfg.measure_cycles = bench::measure_cycles();
                    cfg.warmup_cycles = 5 + rep;
                    sum += workload::run_cpu_bound_experiment(cfg).overhead_fraction;
                }
                row.push_back(util::fmt(100.0 * sum / bench::repetitions(), 3));
            }
            fig.add_row(std::move(row));
        }
    }
    fig.print(std::cout);
    std::cout << "\nPaper: typically <0.3%, equal-share workloads highest, "
                 "overhead shrinks with longer quanta.\n";
    return 0;
}
