// Reproduces Figure 6: how ALPS reacts to a process performing I/O.
//
// Three processes A, B, C with shares 1:2:3 at a 10 ms quantum; after a
// steady-state period, B starts "I/O": 240 ms of sleep per 80 ms of CPU.
// Expected shape: before onset (and in B's active stretches) the shares are
// 16.7/33.3/50.0; while B is blocked, ALPS redistributes its time 1:3, i.e.
// A gets 25% and C 75%.
#include <iostream>

#include "../bench/common.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/experiments.h"

using namespace alps;

int main() {
    bench::print_header("Figure 6 — I/O: redistribution while the 2-share process blocks");

    workload::IoRunConfig cfg;
    cfg.steady_cycles = bench::full_scale() ? 590 : 40;  // paper: onset near cycle 590
    cfg.observe_cycles = bench::full_scale() ? 80 : 60;
    const workload::IoRunResult r = workload::run_io_experiment(cfg);

    std::cout << "\nI/O onset at cycle " << r.io_onset_cycle << "; share(%) per cycle:\n";
    util::TextTable series({"Cycle", "A (1 share)", "B (2 shares, I/O)", "C (3 shares)"});
    const std::size_t from =
        r.io_onset_cycle > 12 ? static_cast<std::size_t>(r.io_onset_cycle) - 12 : 0;
    for (std::size_t i = from; i < r.fractions.size(); ++i) {
        series.add_row({std::to_string(r.cycle_index[i]),
                        util::fmt(100.0 * r.fractions[i][0], 1),
                        util::fmt(100.0 * r.fractions[i][1], 1),
                        util::fmt(100.0 * r.fractions[i][2], 1)});
    }
    series.print(std::cout);

    // Regime means, as the figure conveys.
    util::RunningStats a_blocked, c_blocked, a_active, b_active, c_active;
    for (std::size_t i = static_cast<std::size_t>(r.io_onset_cycle) + 2;
         i < r.fractions.size(); ++i) {
        const auto& f = r.fractions[i];
        if (f[1] < 0.08) {
            a_blocked.add(f[0]);
            c_blocked.add(f[2]);
        } else if (f[1] > 0.25) {
            a_active.add(f[0]);
            b_active.add(f[1]);
            c_active.add(f[2]);
        }
    }
    std::cout << "\nRegime means after onset:\n";
    util::TextTable t({"Regime", "A (%)", "B (%)", "C (%)", "paper"});
    t.add_row({"B active", util::fmt(100 * a_active.mean(), 1),
               util::fmt(100 * b_active.mean(), 1), util::fmt(100 * c_active.mean(), 1),
               "16.7 / 33.3 / 50.0"});
    t.add_row({"B blocked", util::fmt(100 * a_blocked.mean(), 1), "~0",
               util::fmt(100 * c_blocked.mean(), 1), "25.0 / 0 / 75.0"});
    t.print(std::cout);
    return 0;
}
