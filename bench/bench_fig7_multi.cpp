// Reproduces Figure 7 and Table 3: three concurrent ALPSs.
//
// Group A (shares {7,8,9}) runs from t=0; group B ({4,5,6}) joins at 3 s;
// group C ({1,2,3}) at 6 s; the run ends at 15 s. Each ALPS must apportion
// whatever CPU the kernel grants its group in proportion to the shares —
// regardless of the other groups. Table 3 reports, per phase, each process's
// within-group CPU percentage (from regression slopes of its cumulative
// consumption) and the relative error; the paper's average error is 0.93%.
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "workload/experiments.h"

using namespace alps;

int main() {
    bench::print_header("Figure 7 / Table 3 — Multiple concurrent ALPSs");

    workload::MultiAlpsConfig cfg;  // the paper's exact 15-second scenario
    const workload::MultiAlpsResult r = workload::run_multi_alps_experiment(cfg);

    // Figure 7: cumulative consumption samples (downsampled).
    std::cout << "\nFigure 7 (sampled): cumulative CPU (ms) at wall-clock times\n";
    util::TextTable fig({"Wall (ms)", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"});
    for (const int t_ms : {1000, 2500, 4000, 5500, 7000, 9000, 11000, 13000, 14500}) {
        std::vector<std::string> row{std::to_string(t_ms)};
        // res.procs is in group order A{7,8,9} B{4,5,6} C{1,2,3}; print by
        // share 1..9 like the paper's legend.
        for (int share = 1; share <= 9; ++share) {
            const workload::MultiAlpsResult::ProcResult* found = nullptr;
            for (const auto& pr : r.procs) {
                if (pr.share == share) found = &pr;
            }
            // Latest sample at or before t.
            double cpu_ms = 0.0;
            bool seen = false;
            for (const auto& pt : found->series.points) {
                if (pt.when.since_epoch <= util::msec(t_ms)) {
                    cpu_ms = util::to_ms(pt.cumulative_cpu);
                    seen = true;
                }
            }
            row.push_back(seen ? util::fmt(cpu_ms, 0) : "-");
        }
        fig.add_row(std::move(row));
    }
    fig.print(std::cout);

    // Table 3.
    std::cout << "\nTable 3. Accuracy of Multiple ALPSs (within-group %CPU and "
                 "relative error %)\n";
    util::TextTable t3({"S", "Target %", "Ph1 %cpu", "Ph1 %re", "Ph2 %cpu", "Ph2 %re",
                        "Ph3 %cpu", "Ph3 %re"});
    for (int share = 1; share <= 9; ++share) {
        for (const auto& pr : r.procs) {
            if (pr.share != share) continue;
            std::vector<std::string> row{std::to_string(share),
                                         util::fmt(100.0 *
                                                       static_cast<double>(share) /
                                                       (pr.group == 0   ? 24.0
                                                        : pr.group == 1 ? 15.0
                                                                        : 6.0),
                                                   1)};
            for (int phase = 0; phase < 3; ++phase) {
                const auto& cell = pr.phases[static_cast<std::size_t>(phase)];
                if (cell.has_value()) {
                    row.push_back(util::fmt(100.0 * cell->fraction, 1));
                    row.push_back(util::fmt(100.0 * cell->relative_error, 1));
                } else {
                    row.push_back("-");
                    row.push_back("-");
                }
            }
            t3.add_row(std::move(row));
        }
    }
    t3.print(std::cout);
    std::cout << "\nMean relative error: " << util::fmt(100.0 * r.mean_relative_error, 2)
              << "%   (paper: 0.93%)\n";
    return 0;
}
