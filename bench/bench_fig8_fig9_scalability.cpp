// Reproduces Figures 8 and 9 and the §4.2 threshold analysis — now a thin
// registration over the sweep harness (bench/exp_scalability.cpp): the
// (N, quantum) grid fans out across hardware threads and the run also emits
// BENCH_fig8_fig9.json.
//
// Equal-share workload (5 shares per process), N swept upward, at quantum
// lengths 10/20/40 ms. Figure 8: ALPS overhead grows linearly in N until a
// breakdown threshold; Figure 9: past the threshold the error explodes (loss
// of control). The paper fits U_Q(N) = a N + b to the linear region and
// predicts the threshold from U_Q(N*) = 100/(N*+1): predicted {39, 54, 75},
// observed {40, 60, 90} for Q = {10, 20, 40} ms.
#include "../bench/common.h"
#include "../bench/experiments.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
    using namespace alps;
    bench::register_all_experiments();
    harness::SweepOptions options;
    options.out_dir = ".";
    if (!harness::parse_sweep_args(argc, argv, options)) return 2;
    bench::print_header(
        "Figures 8 & 9 — Scalability: overhead and accuracy vs process count");
    return harness::run_and_report("fig8_fig9", options);
}
