// Reproduces Figures 8 and 9 and the §4.2 threshold analysis.
//
// Equal-share workload (5 shares per process), N swept upward, at quantum
// lengths 10/20/40 ms. Figure 8: ALPS overhead grows linearly in N until a
// breakdown threshold; Figure 9: past the threshold the error explodes (loss
// of control). The paper fits U_Q(N) = a N + b to the linear region and
// predicts the threshold from U_Q(N*) = 100/(N*+1): predicted {39, 54, 75},
// observed {40, 60, 90} for Q = {10, 20, 40} ms.
#include <iostream>
#include <map>
#include <vector>

#include "../bench/common.h"
#include "metrics/threshold.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/experiments.h"

using namespace alps;

namespace {

struct Point {
    int n;
    double overhead_pct;
    double error_pct;
    std::uint64_t missed;
};

Point measure(int n, int quantum_ms) {
    workload::SimRunConfig cfg;
    cfg.shares.assign(static_cast<std::size_t>(n), 5);
    cfg.quantum = util::msec(quantum_ms);
    // Past breakdown the cycles stretch; keep runs bounded.
    cfg.measure_cycles = bench::full_scale() ? 30 : 10;
    cfg.warmup_cycles = 3;
    const auto r = workload::run_cpu_bound_experiment(cfg);
    return {n, 100.0 * r.overhead_fraction, 100.0 * r.mean_rms_error,
            r.boundaries_missed};
}

}  // namespace

int main() {
    bench::print_header(
        "Figures 8 & 9 — Scalability: overhead and accuracy vs process count");

    const std::vector<int> ns = bench::full_scale()
                                    ? std::vector<int>{5,  10, 15, 20, 30, 40, 50,
                                                       60, 70, 80, 90, 100, 110, 120}
                                    : std::vector<int>{5, 10, 20, 30, 40, 60, 80, 100};
    const int quanta[] = {10, 20, 40};

    std::map<int, std::vector<Point>> by_q;
    util::TextTable fig({"N", "ovh@10ms %", "err@10ms %", "ovh@20ms %", "err@20ms %",
                         "ovh@40ms %", "err@40ms %"});
    for (const int n : ns) {
        std::vector<std::string> row{std::to_string(n)};
        for (const int q : quanta) {
            const Point p = measure(n, q);
            by_q[q].push_back(p);
            row.push_back(util::fmt(p.overhead_pct, 3));
            row.push_back(util::fmt(p.error_pct, 1));
        }
        fig.add_row(std::move(row));
    }
    fig.print(std::cout);

    // §4.2: fit the linear (pre-breakdown) region and solve for N*.
    std::cout << "\nSection 4.2 threshold analysis (fit over the region where "
                 "the driver missed no quantum boundaries):\n";
    util::TextTable fits({"Q (ms)", "U_Q(N) fit (%)", "predicted N*", "observed N*",
                          "paper predicted", "paper observed"});
    const char* paper_pred[] = {"39", "54", "75"};
    const char* paper_obs[] = {"40", "60", "90"};
    int qi = 0;
    for (const int q : quanta) {
        std::vector<double> xs, ys;
        for (const Point& p : by_q[q]) {
            if (p.missed == 0) {  // linear region: ALPS still in control
                xs.push_back(p.n);
                ys.push_back(p.overhead_pct);
            }
        }
        std::string fit_str = "n/a";
        std::string pred = "n/a";
        if (xs.size() >= 2) {
            const util::LinearFit fit = util::linear_fit(xs, ys);
            fit_str = util::fmt(fit.slope, 4) + "*N + " + util::fmt(fit.intercept, 4);
            pred = util::fmt(metrics::breakdown_threshold(fit), 0);
        }
        // Observed threshold: first N whose error leaves the controlled band.
        std::string obs = ">" + std::to_string(ns.back());
        for (const Point& p : by_q[q]) {
            if (p.error_pct > 15.0) {
                obs = std::to_string(p.n);
                break;
            }
        }
        fits.add_row({std::to_string(q), fit_str, pred, obs, paper_pred[qi],
                      paper_obs[qi]});
        ++qi;
    }
    fits.print(std::cout);
    std::cout << "\nPaper: overhead linear in N (slope halves as Q doubles), "
                 "breakdown order 10ms < 20ms < 40ms.\n";
    return 0;
}
