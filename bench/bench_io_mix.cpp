// I/O-mix extension: how far does the §2.4 blocked-process heuristic carry?
//
// The paper demonstrates I/O handling with one blocking process out of three
// (Figure 6). Here workloads mix several I/O duty cycles, and the measured
// long-run allocation is compared against the demand-capped proportional-
// share reference (metrics::waterfill) — the allocation an omniscient
// scheduler would produce.
//
// Measured result: ALPS systematically *under-serves* I/O-bound clients
// relative to that ideal. The paper's heuristic charges a full quantum of
// allowance per blocked sample ("the process gave up its right to execute"),
// including samples taken during sleeps the client would happily have
// traded for CPU later; the paper itself notes the wake-up case "will have
// effectively been penalized". The penalty compounds for small shares — a
// 1-share client loses its entire per-cycle entitlement to a single blocked
// sample — and for workloads where everyone blocks (scenario 3). Compute-
// bound clients absorb the difference share-proportionally, so the paper's
// headline demo (one blocker, Figure 6) still looks clean: its blocker's
// demand exactly matched what the penalty left it.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "../bench/common.h"
#include "alps/sim_adapter.h"
#include "metrics/waterfill.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"

using namespace alps;

namespace {

struct Client {
    util::Share share;
    /// Zero: compute-bound. Otherwise: CPU duty cycle as burst/(burst+sleep).
    util::Duration burst{0};
    util::Duration sleep{0};

    [[nodiscard]] double demand_cap() const {
        if (burst == util::Duration::zero()) return 1.0;
        return static_cast<double>(burst.count()) /
               static_cast<double>((burst + sleep).count());
    }
};

}  // namespace

int main() {
    bench::print_header(
        "I/O mix — measured allocation vs demand-capped proportional share");

    const util::Duration wall = bench::full_scale() ? util::sec(240) : util::sec(80);

    const std::vector<std::vector<Client>> scenarios{
        // The paper's Figure 6 while B blocks (duty 80/320 = 25%... B active
        // case is covered by bench_fig6_io; here B's duty is its cap).
        {{1, {}, {}}, {2, util::msec(80), util::msec(240)}, {3, {}, {}}},
        // Half the clients I/O-bound with distinct duties.
        {{1, {}, {}},
         {2, util::msec(10), util::msec(90)},
         {3, {}, {}},
         {4, util::msec(30), util::msec(70)},
         {5, {}, {}},
         {6, util::msec(5), util::msec(5)}},
        // Every client I/O-bound: the machine should go partly idle and
        // everyone should get exactly their demand.
        {{1, util::msec(10), util::msec(40)},
         {2, util::msec(20), util::msec(80)},
         {3, util::msec(5), util::msec(45)}},
    };

    int scenario_no = 0;
    for (const auto& clients : scenarios) {
        sim::Engine engine;
        os::Kernel kernel(engine);
        core::SchedulerConfig cfg;
        cfg.quantum = util::msec(10);
        core::SimAlps alps(kernel, cfg);

        std::vector<os::Pid> pids;
        std::vector<util::Share> shares;
        std::vector<double> caps;
        for (const Client& c : clients) {
            std::unique_ptr<os::Behavior> b;
            if (c.burst == util::Duration::zero()) {
                b = std::make_unique<os::CpuBoundBehavior>();
            } else {
                b = std::make_unique<os::PhasedIoBehavior>(c.burst, c.sleep);
            }
            const os::Pid pid = kernel.spawn("c", 0, std::move(b));
            alps.manage(pid, c.share);
            pids.push_back(pid);
            shares.push_back(c.share);
            caps.push_back(c.demand_cap());
        }

        // Settle one quarter, measure the rest.
        engine.run_until(engine.now() + wall / 4);
        std::vector<util::Duration> base;
        for (const os::Pid p : pids) base.push_back(kernel.cpu_time(p));
        const util::TimePoint t0 = kernel.now();
        engine.run_until(engine.now() + wall);
        const double window = util::to_sec(kernel.now() - t0);

        const auto expected = metrics::waterfill(shares, caps);
        std::cout << "\nScenario " << ++scenario_no << ":\n";
        util::TextTable t({"Share", "Duty cap %", "Waterfill %", "Measured %",
                           "abs diff"});
        double worst = 0.0;
        for (std::size_t i = 0; i < pids.size(); ++i) {
            const double measured =
                util::to_sec(kernel.cpu_time(pids[i]) - base[i]) / window;
            worst = std::max(worst, std::abs(measured - expected[i]));
            t.add_row({std::to_string(shares[i]), util::fmt(100 * caps[i], 1),
                       util::fmt(100 * expected[i], 2), util::fmt(100 * measured, 2),
                       util::fmt(100 * std::abs(measured - expected[i]), 2)});
        }
        t.print(std::cout);
        std::cout << "worst absolute deviation: " << util::fmt(100 * worst, 2)
                  << " percentage points\n";
    }
    std::cout << "\n'Waterfill' is the omniscient demand-capped ideal. The "
                 "gaps on I/O-bound rows are the cost of the §2.4 one-"
                 "quantum-per-blocked-sample penalty: cheap, stateless, and "
                 "biased against blockers — especially small-share ones.\n";
    return 0;
}
