// Kernel-sensitivity study (beyond the paper).
//
// ALPS's central design bet (§2.1) is that it can "defer fine-grained
// time-slicing to the kernel": it restricts the eligible set and lets the
// native policy multiplex within it. If that is true, accuracy should be
// robust to the kernel's own round-robin slice — the knob that controls how
// finely the kernel interleaves equal-priority processes. This harness
// sweeps the 4.4BSD policy's slice from 20 ms to 800 ms (the paper's host
// used 100 ms) and reports ALPS accuracy and overhead for three workloads.
//
// Expected shape: accuracy nearly flat across a 40x slice range — the
// eligibility mechanism, not the kernel's interleaving, carries fairness.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "../bench/common.h"
#include "alps/sim_adapter.h"
#include "metrics/exact_cycle_log.h"
#include "os/behaviors.h"
#include "os/bsd_policy.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"
#include "workload/distributions.h"

using namespace alps;
using workload::ShareModel;

namespace {

struct Outcome {
    double error_pct = 0.0;
    double overhead_pct = 0.0;
};

Outcome run(const std::vector<util::Share>& shares, util::Duration rr_slice,
            int cycles) {
    sim::Engine engine;
    os::BsdPolicyConfig pcfg;
    pcfg.round_robin = rr_slice;
    os::Kernel kernel(engine, std::make_unique<os::BsdPolicy>(pcfg));

    core::SchedulerConfig scfg;
    scfg.quantum = util::msec(10);
    core::SimAlps alps(kernel, scfg);
    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.scheduler().set_cycle_observer(log.observer());
    for (const auto s : shares) {
        const os::Pid pid =
            kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, s);
    }
    const util::Duration cycle = scfg.quantum * util::total_shares(shares);
    const auto target = static_cast<std::size_t>(cycles + 5);
    while (log.cycle_count() < target) {
        engine.run_until(engine.now() + cycle);
    }
    Outcome out;
    out.error_pct = 100.0 * log.mean_rms_relative_error(5);
    out.overhead_pct = 100.0 * util::to_sec(alps.overhead_cpu()) /
                       util::to_sec(kernel.now().since_epoch);
    return out;
}

}  // namespace

int main() {
    bench::print_header(
        "Kernel sensitivity — ALPS accuracy vs the kernel's round-robin slice");

    const int cycles = bench::measure_cycles();
    const int slices_ms[] = {20, 50, 100, 200, 400, 800};

    std::vector<std::string> headers{"Workload"};
    for (const int s : slices_ms) headers.push_back("RR=" + std::to_string(s) + "ms");
    util::TextTable t(headers);
    for (const ShareModel model :
         {ShareModel::kLinear, ShareModel::kEqual, ShareModel::kSkewed}) {
        std::vector<std::string> row{std::string(workload::to_string(model)) + "10"};
        for (const int s : slices_ms) {
            const Outcome o =
                run(workload::make_shares(model, 10), util::msec(s), cycles);
            row.push_back(util::fmt(o.error_pct, 2));
        }
        t.add_row(std::move(row));
    }
    t.print(std::cout);
    bench::maybe_write_csv("kernel_sensitivity", t);
    std::cout << "\nCells are mean RMS relative error (%) at a 10 ms ALPS "
                 "quantum. The rows are exactly flat: with ALPS present, its "
                 "own timer wakeups preempt the running process every quantum "
                 "(the woken driver holds kernel priority), and the preempted "
                 "process re-enters its run queue at the tail — so processes "
                 "rotate at ALPS-quantum granularity no matter how long the "
                 "kernel's slice is. Fairness comes from eligibility control; "
                 "the kernel's interleaving policy does not matter at all.\n";
    return 0;
}
