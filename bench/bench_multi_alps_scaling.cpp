// Multi-application scaling study (beyond the paper's three ALPSs in §4.1).
//
// M independent applications run simultaneously, each with its own ALPS over
// 3 compute-bound processes (shares 1:2:3, 10 ms quantum). Questions: does
// per-application accuracy survive as M grows, and what is the aggregate
// cost of M uncoordinated user-level schedulers?
//
// Expected shape: within-app proportions stay ~1:2:3 for every app until
// the machine is so oversubscribed that each driver's fair share of the CPU
// cannot cover its per-quantum work — the §4.2 threshold generalized to
// M·(3+1) processes. Aggregate overhead grows linearly with M.
#include <iostream>
#include <memory>
#include <vector>

#include "../bench/common.h"
#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "util/table.h"

using namespace alps;

namespace {

struct Outcome {
    double worst_app_err_pct = 0.0;  ///< max over apps of within-app RMS error
    double mean_app_err_pct = 0.0;
    double total_overhead_pct = 0.0;  ///< all drivers' CPU / wall
    std::uint64_t missed = 0;         ///< boundaries missed, all drivers
};

Outcome run(int apps, util::Duration wall) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    core::SchedulerConfig scfg;
    scfg.quantum = util::msec(10);

    std::vector<std::unique_ptr<core::SimAlps>> alpses;
    std::vector<std::vector<os::Pid>> pids(static_cast<std::size_t>(apps));
    for (int a = 0; a < apps; ++a) {
        alpses.push_back(std::make_unique<core::SimAlps>(
            kernel, scfg, core::CostModel{}, "alps-" + std::to_string(a), a));
        for (int i = 0; i < 3; ++i) {
            const os::Pid pid = kernel.spawn(
                "a" + std::to_string(a) + "w" + std::to_string(i), a,
                std::make_unique<os::CpuBoundBehavior>());
            alpses.back()->manage(pid, i + 1);
            pids[static_cast<std::size_t>(a)].push_back(pid);
        }
    }

    // Settle, snapshot, measure.
    engine.run_until(engine.now() + wall / 4);
    std::vector<std::vector<util::Duration>> base(pids.size());
    for (std::size_t a = 0; a < pids.size(); ++a) {
        for (const os::Pid p : pids[a]) base[a].push_back(kernel.cpu_time(p));
    }
    const util::TimePoint t0 = kernel.now();
    std::vector<util::Duration> drv0;
    for (const auto& alps : alpses) drv0.push_back(alps->overhead_cpu());
    engine.run_until(engine.now() + wall);

    Outcome out;
    util::RunningStats errs;
    for (std::size_t a = 0; a < pids.size(); ++a) {
        std::vector<double> actual(3);
        std::vector<double> ideal(3);
        double total = 0.0;
        for (std::size_t i = 0; i < 3; ++i) {
            actual[i] =
                util::to_sec(kernel.cpu_time(pids[a][i]) - base[a][i]);
            total += actual[i];
        }
        for (std::size_t i = 0; i < 3; ++i) {
            ideal[i] = total * static_cast<double>(i + 1) / 6.0;
        }
        errs.add(100.0 * util::rms_relative_error(actual, ideal));
    }
    out.worst_app_err_pct = errs.max();
    out.mean_app_err_pct = errs.mean();
    double driver_cpu = 0.0;
    for (std::size_t a = 0; a < alpses.size(); ++a) {
        driver_cpu += util::to_sec(alpses[a]->overhead_cpu() - drv0[a]);
        out.missed += alpses[a]->driver().boundaries_missed();
    }
    out.total_overhead_pct =
        100.0 * driver_cpu / util::to_sec(kernel.now() - t0);
    return out;
}

}  // namespace

int main() {
    bench::print_header(
        "Multiple applications — M concurrent ALPSs, each over 3 processes 1:2:3");

    const util::Duration wall = bench::full_scale() ? util::sec(120) : util::sec(40);
    util::TextTable t({"ALPSs", "procs total", "mean app err %", "worst app err %",
                       "total drivers ovh %", "missed boundaries"});
    for (const int m : {1, 2, 3, 5, 8, 12, 16, 24}) {
        const Outcome o = run(m, wall);
        t.add_row({std::to_string(m), std::to_string(4 * m),
                   util::fmt(o.mean_app_err_pct, 2), util::fmt(o.worst_app_err_pct, 2),
                   util::fmt(o.total_overhead_pct, 3), std::to_string(o.missed)});
    }
    t.print(std::cout);
    bench::maybe_write_csv("multi_alps_scaling", t);
    std::cout << "\nPaper §4.1 shows M=3 works (each app accurate within "
                 "whatever the kernel grants it); this sweep finds where "
                 "uncoordinated user-level schedulers stop coexisting.\n";
    return 0;
}
