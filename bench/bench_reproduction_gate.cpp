// The reproduction gate: one binary that re-runs the paper's key experiments
// and checks every shape criterion from DESIGN.md programmatically. Exit
// code 0 = the reproduction holds.
//
// This is the "is the port/refactor still faithful?" command — a coarser,
// self-contained cousin of the integration test suite, with the paper's
// numbers printed next to ours.
#include <cmath>
#include <iostream>
#include <vector>

#include "../bench/common.h"
#include "metrics/threshold.h"
#include "util/stats.h"
#include "util/table.h"
#include "web/experiment.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

using namespace alps;
using workload::ShareModel;

namespace {

struct Gate {
    util::TextTable table{{"Criterion", "Paper", "Measured", "Verdict"}};
    int failures = 0;

    void check(const std::string& name, const std::string& paper,
               const std::string& measured, bool ok) {
        table.add_row({name, paper, measured, ok ? "PASS" : "FAIL"});
        if (!ok) ++failures;
    }
};

}  // namespace

int main() {
    bench::print_header("Reproduction gate — every shape criterion in one run");
    Gate gate;

    // --- Accuracy (Fig 4) ---
    {
        double worst_common = 0.0;
        for (const ShareModel model : {ShareModel::kLinear, ShareModel::kEqual}) {
            for (const int n : {5, 10, 20}) {
                workload::SimRunConfig cfg;
                cfg.shares = workload::make_shares(model, n);
                cfg.quantum = util::msec(20);
                cfg.measure_cycles = bench::measure_cycles();
                worst_common = std::max(
                    worst_common,
                    workload::run_cpu_bound_experiment(cfg).mean_rms_error);
            }
        }
        gate.check("error for linear/equal workloads (Fig 4)", "<5%",
                   util::fmt(100 * worst_common, 2) + "% worst",
                   worst_common < 0.05);

        workload::SimRunConfig skew;
        skew.shares = workload::make_shares(ShareModel::kSkewed, 20);
        skew.quantum = util::msec(10);
        skew.measure_cycles = bench::measure_cycles();
        const double skew_err =
            workload::run_cpu_bound_experiment(skew).mean_rms_error;
        gate.check("skewed worst case but bounded (Fig 4)", "<=27%",
                   util::fmt(100 * skew_err, 2) + "%",
                   skew_err > worst_common && skew_err < 0.27);
    }

    // --- Overhead (Fig 5) ---
    {
        double worst = 0.0;
        double equal10_q10 = 0.0;
        double equal10_q40 = 0.0;
        for (const ShareModel model : workload::kAllModels) {
            for (const int q : {10, 40}) {
                workload::SimRunConfig cfg;
                cfg.shares = workload::make_shares(model, 10);
                cfg.quantum = util::msec(q);
                cfg.measure_cycles = bench::measure_cycles();
                const double ovh =
                    workload::run_cpu_bound_experiment(cfg).overhead_fraction;
                worst = std::max(worst, ovh);
                if (model == ShareModel::kEqual && q == 10) equal10_q10 = ovh;
                if (model == ShareModel::kEqual && q == 40) equal10_q40 = ovh;
            }
        }
        gate.check("overhead under 1% (Fig 5 / §7)", "<1%",
                   util::fmt(100 * worst, 3) + "% worst", worst < 0.01);
        gate.check("overhead shrinks with quantum (Fig 5)", "monotone",
                   util::fmt(100 * equal10_q10, 3) + "% -> " +
                       util::fmt(100 * equal10_q40, 3) + "%",
                   equal10_q10 > equal10_q40);
    }

    // --- Lazy-measurement ablation (§2.3) ---
    {
        workload::SimRunConfig cfg;
        cfg.shares = workload::make_shares(ShareModel::kEqual, 10);
        cfg.quantum = util::msec(10);
        cfg.measure_cycles = bench::measure_cycles();
        const double lazy = workload::run_cpu_bound_experiment(cfg).overhead_fraction;
        cfg.lazy_measurement = false;
        const double eager = workload::run_cpu_bound_experiment(cfg).overhead_fraction;
        gate.check("lazy measurement saves 1.8x-5.9x (§2.3)", "1.8x-5.9x",
                   util::fmt(eager / lazy, 2) + "x (Equal10)",
                   eager / lazy > 1.8);
    }

    // --- I/O redistribution (Fig 6) ---
    {
        workload::IoRunConfig cfg;
        cfg.steady_cycles = 25;
        cfg.observe_cycles = 50;
        const auto r = workload::run_io_experiment(cfg);
        util::RunningStats a_blocked, c_blocked;
        for (std::size_t i = static_cast<std::size_t>(r.io_onset_cycle) + 2;
             i < r.fractions.size(); ++i) {
            if (r.fractions[i][1] < 0.08) {
                a_blocked.add(r.fractions[i][0]);
                c_blocked.add(r.fractions[i][2]);
            }
        }
        const bool ok = a_blocked.count() > 5 &&
                        std::abs(a_blocked.mean() - 0.25) < 0.04 &&
                        std::abs(c_blocked.mean() - 0.75) < 0.04;
        gate.check("blocked share redistributes 1:3 (Fig 6)", "25% / 75%",
                   util::fmt(100 * a_blocked.mean(), 1) + "% / " +
                       util::fmt(100 * c_blocked.mean(), 1) + "%",
                   ok);
    }

    // --- Multiple ALPSs (Table 3) ---
    {
        const auto r = workload::run_multi_alps_experiment({});
        gate.check("multi-ALPS mean relative error (Table 3)", "0.93%",
                   util::fmt(100 * r.mean_relative_error, 2) + "%",
                   r.mean_relative_error < 0.03);
    }

    // --- Scalability thresholds (Figs 8-9 / §4.2) ---
    {
        std::vector<double> xs, ys;
        std::uint64_t missed_at_20 = 1;
        double err_at_100 = 0.0;
        for (const int n : {5, 10, 20, 30}) {
            workload::SimRunConfig cfg;
            cfg.shares.assign(static_cast<std::size_t>(n), 5);
            cfg.quantum = util::msec(10);
            cfg.measure_cycles = 10;
            const auto res = workload::run_cpu_bound_experiment(cfg);
            xs.push_back(n);
            ys.push_back(100.0 * res.overhead_fraction);
            if (n == 20) missed_at_20 = res.boundaries_missed;
        }
        {
            workload::SimRunConfig cfg;
            cfg.shares.assign(100, 5);
            cfg.quantum = util::msec(10);
            cfg.measure_cycles = 6;
            err_at_100 = workload::run_cpu_bound_experiment(cfg).mean_rms_error;
        }
        const util::LinearFit fit = util::linear_fit(xs, ys);
        const double n_star = metrics::breakdown_threshold(fit);
        gate.check("predicted breakdown N* at 10 ms (§4.2)", "39",
                   util::fmt(n_star, 0), n_star > 30 && n_star < 48);
        gate.check("in control below threshold (Fig 9)", "no missed boundaries",
                   std::to_string(missed_at_20) + " missed at N=20",
                   missed_at_20 == 0);
        gate.check("loss of control past threshold (Fig 9)", "error explodes",
                   util::fmt(100 * err_at_100, 0) + "% at N=100",
                   err_at_100 > 0.3);
    }

    // --- Shared web server (§5) ---
    {
        web::WebExperimentConfig cfg;
        cfg.warmup = util::sec(8);
        cfg.measure = util::sec(30);
        cfg.use_alps = true;
        const auto on = web::run_web_experiment(cfg);
        const double total =
            on.throughput_rps[0] + on.throughput_rps[1] + on.throughput_rps[2];
        const bool ok = std::abs(on.throughput_rps[0] / total - 1.0 / 6.0) < 0.03 &&
                        std::abs(on.throughput_rps[2] / total - 3.0 / 6.0) < 0.03;
        gate.check("web throughput divides 1:2:3 (§5)", "18 / 35 / 53",
                   util::fmt(on.throughput_rps[0], 0) + " / " +
                       util::fmt(on.throughput_rps[1], 0) + " / " +
                       util::fmt(on.throughput_rps[2], 0),
                   ok);
    }

    gate.table.print(std::cout);
    std::cout << "\n"
              << (gate.failures == 0 ? "REPRODUCTION HOLDS"
                                     : "REPRODUCTION BROKEN")
              << " (" << gate.failures << " failing criteria)\n";
    return gate.failures == 0 ? 0 : 1;
}
