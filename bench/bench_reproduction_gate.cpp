// The reproduction gate: re-runs the paper's key experiments and checks every
// shape criterion from DESIGN.md programmatically. Exit code 0 = the
// reproduction holds.
//
// This is the "is the port/refactor still faithful?" command — a coarser,
// self-contained cousin of the integration test suite, with the paper's
// numbers printed next to ours. It is a thin registration over the sweep
// harness (bench/exp_gate.cpp): the underlying measurements fan out across
// hardware threads and the run also emits BENCH_reproduction_gate.json with
// every criterion's verdict, making the gate a parallel, machine-checkable
// regression gate.
#include "../bench/common.h"
#include "../bench/experiments.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
    using namespace alps;
    bench::register_all_experiments();
    harness::SweepOptions options;
    options.out_dir = ".";
    if (!harness::parse_sweep_args(argc, argv, options)) return 2;
    bench::print_header("Reproduction gate — every shape criterion in one run");
    return harness::run_and_report("reproduction_gate", options);
}
