// Times the simulation substrate itself (engine, run queues, an end-to-end
// fig8_fig9-style run) — a thin registration over the sweep harness
// (bench/exp_sim_perf.cpp), emitting BENCH_sim_perf.json. Build in Release:
// Debug timings are not comparable to the checked-in baseline.
//
// These are host wall-clock timings, so this is the one BENCH_*.json that is
// not bit-identical across runs; the repo-root copy is the perf-trajectory
// baseline scripts/check.sh regresses against.
#include "../bench/common.h"
#include "../bench/experiments.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
    using namespace alps;
    bench::register_all_experiments();
    harness::SweepOptions options;
    options.out_dir = ".";
    if (!harness::parse_sweep_args(argc, argv, options)) return 2;
    bench::print_header("Simulation substrate — wall-clock throughput");
    return harness::run_and_report("sim_perf", options);
}
