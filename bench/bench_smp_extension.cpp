// SMP extension study (beyond the paper, which evaluates a uniprocessor).
//
// ALPS's contract is proportional division of *consumed* CPU time. On a
// multiprocessor with a single-threaded workload that contract interacts
// with feasibility: a process with weight fraction w on m CPUs can use at
// most 1/m of the machine's capacity. This harness measures, per CPU count
// and share vector, the achieved proportions and the machine utilization.
//
// Expected shape: proportions exact everywhere; utilization 100% when every
// process stays eligible (equal shares), dropping as eligibility gating
// leaves CPUs idle — to ~(S / (m * s_max-normalized)) when a weight is
// infeasible. In-kernel surplus-fair schedulers (Chandra et al., cited in
// §1) redistribute that surplus instead; a user-level ALPS cannot, because
// throttling is its only lever.
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "../bench/common.h"
#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"

using namespace alps;

namespace {

struct Outcome {
    std::vector<double> fractions;
    double utilization = 0.0;
    double rms_error = 0.0;  // vs nominal share fractions
};

Outcome run(int ncpus, const std::vector<util::Share>& shares, util::Duration wall) {
    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.ncpus = ncpus;
    os::Kernel kernel(engine, nullptr, kcfg);
    core::SchedulerConfig scfg;
    scfg.quantum = util::msec(10);
    core::SimAlps alps(kernel, scfg);
    std::vector<os::Pid> pids;
    for (const auto s : shares) {
        const os::Pid pid =
            kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, s);
        pids.push_back(pid);
    }
    engine.run_until(engine.now() + wall);

    Outcome out;
    double total = 0.0;
    for (const os::Pid p : pids) {
        out.fractions.push_back(util::to_sec(kernel.cpu_time(p)));
        total += out.fractions.back();
    }
    for (auto& f : out.fractions) f /= total;
    out.utilization = total / (static_cast<double>(ncpus) * util::to_sec(wall));

    const auto ideal = util::ideal_fractions(shares);
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const double rel = (out.fractions[i] - ideal[i]) / ideal[i];
        sum_sq += rel * rel;
    }
    out.rms_error = std::sqrt(sum_sq / static_cast<double>(shares.size()));
    return out;
}

std::string shares_str(const std::vector<util::Share>& s) {
    std::ostringstream out;
    for (std::size_t i = 0; i < s.size(); ++i) out << (i ? ":" : "") << s[i];
    return out.str();
}

}  // namespace

int main() {
    bench::print_header("SMP extension — proportions vs utilization on m CPUs");

    const util::Duration wall = bench::full_scale() ? util::sec(120) : util::sec(30);
    const std::vector<std::vector<util::Share>> workloads{
        {1, 2, 3}, {1, 1, 8}, {5, 5, 5, 5}, {1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 16}};

    util::TextTable t({"Shares", "CPUs", "RMS err %", "Utilization %", "max feasible %"});
    for (const auto& shares : workloads) {
        for (const int m : {1, 2, 4}) {
            const Outcome o = run(m, shares, wall);
            // Strict ratios with each process capped at one CPU: scale until
            // the largest weight saturates its CPU.
            util::Share total = 0;
            util::Share smax = 0;
            for (const auto s : shares) {
                total += s;
                smax = std::max(smax, s);
            }
            const double cap = std::min(
                1.0, static_cast<double>(total) /
                         (static_cast<double>(smax) * static_cast<double>(m)));
            t.add_row({shares_str(shares), std::to_string(m),
                       util::fmt(100.0 * o.rms_error, 2),
                       util::fmt(100.0 * o.utilization, 1),
                       util::fmt(100.0 * std::min(
                                             cap, static_cast<double>(shares.size()) /
                                                      static_cast<double>(m)),
                                 1)});
        }
    }
    t.print(std::cout);
    bench::maybe_write_csv("smp_extension", t);
    std::cout << "\n'max feasible %' is the best any scheduler could do while "
                 "holding the exact ratios with single-threaded processes.\n"
                 "ALPS holds the ratios (err ~0) but utilization falls short of "
                 "even that bound: eligibility gating idles CPUs mid-cycle.\n";
    return 0;
}
