// Reproduces Table 1: the cost of ALPS's primary operations, measured on the
// real host OS (google-benchmark).
//
//   paper (FreeBSD 4.8, 2.2 GHz P4):   receive a timer event   9.02 us
//                                      measure CPU of n procs  1.1 + 17.4 n us
//                                      signal a process        0.97 us
//
// On a modern Linux kernel the absolute numbers are smaller; the structure
// (measurement cost linear in n and dominant; timer and signal costs flat)
// is the reproduction target — it is what motivates the §2.3 optimization.
#include <benchmark/benchmark.h>
#include <signal.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "posix/host.h"
#include "posix/spawn.h"

namespace {

// Children for the measurement/signal benchmarks: alive but nearly idle
// (1 ms of CPU per second) so they do not perturb the timings.
alps::posix::ChildSet& children() {
    static alps::posix::ChildSet set;
    return set;
}

pid_t child_at(std::size_t i) {
    while (children().pids().size() <= i) {
        (void)children().add_phased(alps::util::msec(1), alps::util::sec(1));
    }
    return children().pids()[i];
}

void BM_ReceiveTimerEvent(benchmark::State& state) {
    const int fd = ::timerfd_create(CLOCK_MONOTONIC, 0);
    if (fd < 0) {
        state.SkipWithError("timerfd_create failed");
        return;
    }
    for (auto _ : state) {
        itimerspec its{};
        its.it_value.tv_nsec = 1;  // expires immediately
        ::timerfd_settime(fd, 0, &its, nullptr);
        std::uint64_t expirations = 0;
        // Blocking read returns once the timer fired.
        benchmark::DoNotOptimize(::read(fd, &expirations, sizeof expirations));
    }
    ::close(fd);
}
BENCHMARK(BM_ReceiveTimerEvent);

void BM_MeasureCpuTimeOfNProcesses(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    alps::posix::PosixProcessHost host;
    std::vector<pid_t> pids;
    for (std::size_t i = 0; i < n; ++i) pids.push_back(child_at(i));
    for (auto _ : state) {
        for (const pid_t pid : pids) {
            benchmark::DoNotOptimize(host.read_pid(pid));
        }
    }
    state.counters["us_per_proc"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * static_cast<double>(n),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_MeasureCpuTimeOfNProcesses)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_SignalAProcess(benchmark::State& state) {
    const pid_t pid = child_at(0);
    for (auto _ : state) {
        // SIGCONT to a running process: delivered and discarded — the same
        // kernel path ALPS pays for suspend/resume without perturbing the
        // child.
        benchmark::DoNotOptimize(::kill(pid, SIGCONT));
    }
}
BENCHMARK(BM_SignalAProcess);

void BM_SuspendResumePair(benchmark::State& state) {
    const pid_t pid = child_at(1);
    for (auto _ : state) {
        ::kill(pid, SIGSTOP);
        ::kill(pid, SIGCONT);
    }
    ::kill(pid, SIGCONT);
}
BENCHMARK(BM_SuspendResumePair);

}  // namespace

BENCHMARK_MAIN();
