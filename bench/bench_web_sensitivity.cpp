// Section-5 sensitivity study (beyond the paper).
//
// The paper runs the web experiment at one operating point: a 100 ms quantum
// and a 1 s membership refresh. Why 100 ms — ten times the quantum of the
// synthetic experiments? This harness sweeps both knobs.
//
// Expected shape: throughput ratios stay ~1:2:3 across quanta (the group's
// *aggregate* consumption is what ALPS meters), while overhead scales with
// tick rate times group size — at a 10 ms quantum ALPS samples ~150 worker
// processes' /proc entries per second-of-quanta, which is exactly why the
// paper runs this workload at 100 ms. The refresh period trades discovery
// latency for scan cost; within seconds it barely matters because worker
// pools churn slowly.
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "web/experiment.h"

using namespace alps;

namespace {

struct Row {
    double r1, r2, r3, total, ovh;
};

Row run(util::Duration quantum, util::Duration refresh, util::Duration measure) {
    web::WebExperimentConfig cfg;
    cfg.use_alps = true;
    cfg.quantum = quantum;
    cfg.refresh_period = refresh;
    cfg.warmup = util::sec(8);
    cfg.measure = measure;
    const auto r = web::run_web_experiment(cfg);
    const double total = r.throughput_rps[0] + r.throughput_rps[1] + r.throughput_rps[2];
    return {r.throughput_rps[0], r.throughput_rps[1], r.throughput_rps[2], total,
            100.0 * r.alps_overhead_fraction};
}

}  // namespace

int main() {
    bench::print_header("Section 5 sensitivity — quantum and refresh period");

    const util::Duration measure = bench::full_scale() ? util::sec(90) : util::sec(30);

    std::cout << "\nQuantum sweep (refresh fixed at 1 s):\n";
    util::TextTable tq({"Quantum (ms)", "site1", "site2", "site3", "total req/s",
                        "ALPS ovh %"});
    for (const int q : {10, 25, 50, 100, 200, 400}) {
        const Row r = run(util::msec(q), util::sec(1), measure);
        tq.add_row({std::to_string(q), util::fmt(r.r1, 1), util::fmt(r.r2, 1),
                    util::fmt(r.r3, 1), util::fmt(r.total, 1), util::fmt(r.ovh, 3)});
    }
    tq.print(std::cout);
    bench::maybe_write_csv("web_sensitivity_quantum", tq);

    std::cout << "\nRefresh-period sweep (quantum fixed at 100 ms):\n";
    util::TextTable tr({"Refresh (ms)", "site1", "site2", "site3", "total req/s",
                        "ALPS ovh %"});
    for (const int ms : {250, 500, 1000, 2000, 5000}) {
        const Row r = run(util::msec(100), util::msec(ms), measure);
        tr.add_row({std::to_string(ms), util::fmt(r.r1, 1), util::fmt(r.r2, 1),
                    util::fmt(r.r3, 1), util::fmt(r.total, 1), util::fmt(r.ovh, 3)});
    }
    tr.print(std::cout);
    bench::maybe_write_csv("web_sensitivity_refresh", tr);

    std::cout << "\nPaper's operating point: Q=100 ms, refresh=1 s, throughput "
                 "{18, 35, 53}. Ratios should hold everywhere; overhead "
                 "grows toward short quanta (3 sites x ~51 procs sampled).\n";
    return 0;
}
