// Reproduces the Section-5 shared-web-server experiment.
//
// Three bulletin-board sites (Apache-prefork-style, <=50 workers each) on one
// host, each driven by 325 closed-loop clients. First the kernel scheduler
// alone (paper: {29, 30, 40} req/s — roughly even), then ALPS with group
// principals (one per user account), shares {1, 2, 3}, 100 ms quantum, and
// once-per-second membership refresh (paper: {18, 35, 53} req/s).
#include <iostream>

#include "../bench/common.h"
#include "util/table.h"
#include "web/experiment.h"

using namespace alps;

int main() {
    bench::print_header("Section 5 — An ALPS-based shared Web server");

    web::WebExperimentConfig cfg;
    cfg.warmup = util::sec(8);
    cfg.measure = bench::full_scale() ? util::sec(120) : util::sec(40);

    cfg.use_alps = false;
    const auto off = web::run_web_experiment(cfg);
    cfg.use_alps = true;
    const auto on = web::run_web_experiment(cfg);

    util::TextTable t({"Configuration", "site1 (1 share)", "site2 (2 shares)",
                       "site3 (3 shares)", "total", "CPU util", "ALPS ovh %"});
    auto row = [&](const char* name, const web::WebExperimentResult& r) {
        const double total =
            r.throughput_rps[0] + r.throughput_rps[1] + r.throughput_rps[2];
        t.add_row({name, util::fmt(r.throughput_rps[0], 1),
                   util::fmt(r.throughput_rps[1], 1), util::fmt(r.throughput_rps[2], 1),
                   util::fmt(total, 1), util::fmt(r.cpu_utilization, 2),
                   util::fmt(100.0 * r.alps_overhead_fraction, 3)});
    };
    row("kernel only", off);
    row("ALPS 1:2:3 @100ms", on);
    t.print(std::cout);

    std::cout << "\nThroughput in requests/s. Paper: kernel only {29, 30, 40}; "
                 "ALPS {18, 35, 53} (ratios ~1:2:3).\n";
    std::cout << "Mean response times with ALPS (s): " << util::fmt(on.mean_response_s[0], 1)
              << " / " << util::fmt(on.mean_response_s[1], 1) << " / "
              << util::fmt(on.mean_response_s[2], 1)
              << " — isolation shifts queueing delay onto the low-share site.\n";
    return 0;
}
