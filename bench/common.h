// Shared helpers for the benchmark harnesses.
//
// Each binary regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index). By default the harnesses run at a reduced but
// representative scale so the whole suite finishes in a couple of minutes;
// set ALPS_BENCH_FULL=1 for the paper's full parameters (200 cycles × 3
// repetitions, N up to 120, etc.).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "util/table.h"

namespace alps::bench {

/// True when ALPS_BENCH_FULL=1: run at the paper's full scale.
inline bool full_scale() {
    const char* v = std::getenv("ALPS_BENCH_FULL");
    return v != nullptr && std::string(v) == "1";
}

/// Cycles to measure per accuracy run (paper: 200).
inline int measure_cycles() { return full_scale() ? 200 : 60; }

/// Repetitions per data point (paper: mean of 3 tests).
inline int repetitions() { return full_scale() ? 3 : 1; }

/// If ALPS_BENCH_CSV names a directory, also writes the table there as
/// `<name>.csv` (for replotting). The directory is created if missing; a
/// failed open is warned about once per process (a bench emits several
/// tables — repeating the same warning per table is pure noise) and then
/// skipped silently.
inline void maybe_write_csv(const std::string& name, const util::TextTable& table) {
    const char* dir = std::getenv("ALPS_BENCH_CSV");
    if (dir == nullptr || *dir == '\0') return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; open() decides
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::cerr << "warning: cannot write " << path
                      << " (further CSV warnings suppressed)\n";
        }
        return;
    }
    out << table.render_csv();
    std::cout << "(csv written to " << path << ")\n";
}

inline void print_header(const std::string& title) {
    std::cout << "==============================================================\n"
              << title << "\n"
              << (full_scale() ? "(full paper scale: ALPS_BENCH_FULL=1)"
                               : "(reduced scale; set ALPS_BENCH_FULL=1 for paper scale)")
              << "\n"
              << "==============================================================\n";
}

}  // namespace alps::bench
