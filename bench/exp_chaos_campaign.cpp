// Chaos campaign: fault injection aimed at the harness itself.
//
// Where fault_campaign injects faults into the *scheduler's control channel*,
// this experiment injects faults into the *sweep's own runs* — tasks that
// abort(), wedge forever, or throw — to exercise the RunSupervisor end to
// end: crash classification, watchdog kills, retry-then-quarantine, and the
// guarantee that one dying task never poisons its siblings.
//
// The faulty behaviours key off the ALPS_HARNESS_ATTEMPT / _ISOLATED
// environment contract, which the supervisor sets only inside forked worker
// processes. Run without --isolate, every task is a clean deterministic
// computation — which is exactly what the kill-9/resume CI leg wants when it
// byte-compares an interrupted-and-resumed sweep against a clean baseline
// (only bad_input still fails, identically on both paths).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "telemetry/events.h"
#include "telemetry/recorder.h"
#include "util/rng.h"
#include "util/table.h"

namespace alps::bench {
namespace {

/// The supervisor's attempt counter (0-based), or -1 when this process is
/// not a supervised worker — the signal faulty modes use to stay harmless
/// in unsupervised sweeps.
int attempt_from_env() {
    const char* attempt = std::getenv("ALPS_HARNESS_ATTEMPT");
    if (attempt == nullptr || std::getenv("ALPS_HARNESS_ISOLATED") == nullptr) {
        return -1;
    }
    return std::atoi(attempt);
}

/// Deterministic busy-work: enough CPU per task (~0.1-0.3 s) that a parallel
/// sweep is killable mid-flight by the CI chaos leg, plus telemetry traffic
/// so a crashed worker's flight-recorder dump has content. Returns a
/// checksum that is a pure function of the seed.
double busy_work(std::uint64_t seed, bool full_scale) {
    util::Rng rng(seed);
    const int rounds = full_scale ? 400 : 100;
    std::uint64_t acc = 0;
    for (int round = 0; round < rounds; ++round) {
        for (int i = 0; i < 1'000'000; ++i) acc += rng.next_u64() >> 32;
        if (telemetry::active()) {
            telemetry::set_now_ns(static_cast<std::uint64_t>(round) * 1000);
            telemetry::counter(telemetry::kNameCycle, 0, acc & 0xffff);
        }
    }
    return static_cast<double>(acc % 1'000'003);
}

struct Mode {
    const char* name;
    int reps;
};

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    const bool supervised = options.isolate;
    const bool watchdog = options.isolate && options.run_timeout_s > 0.0;
    std::vector<Mode> modes = {{"clean", 6},
                               {"flaky_crash", 2},
                               {"crash_loop", 2},
                               {"bad_input", 2}};
    // A stall is only recoverable when a watchdog exists to kill it; an
    // unsupervised or deadline-less sweep would hang forever, so the grid
    // includes it only when the kill path is armed.
    if (watchdog) modes.push_back({"flaky_stall", 2});

    std::vector<harness::Task> tasks;
    for (const Mode& mode : modes) {
        const std::string name = mode.name;
        for (int rep = 0; rep < mode.reps; ++rep) {
            harness::Task task;
            task.point = name;
            task.rep = rep;
            task.params = {{"mode", name}, {"supervised", supervised ? "1" : "0"}};
            task.fn = [name](const harness::TaskContext& ctx) {
                const int attempt = attempt_from_env();
                if (name == "flaky_crash" && attempt == 0) {
                    // Work first, then die: the flight-recorder dump should
                    // hold the telemetry trail leading up to the crash.
                    busy_work(ctx.seed, false);
                    std::abort();  // transient: the retry succeeds
                }
                if (name == "crash_loop" && attempt >= 0) {
                    busy_work(ctx.seed, false);
                    std::abort();  // every attempt dies -> quarantine
                }
                if (name == "flaky_stall" && attempt == 0) {
                    // Wedge until the watchdog's SIGKILL; chunked so the
                    // process stays interruptible for debuggers.
                    for (int i = 0; i < 36'000; ++i) {
                        std::this_thread::sleep_for(std::chrono::milliseconds(100));
                    }
                }
                if (name == "bad_input") {
                    // Deterministic failure: retrying a pure function cannot
                    // help, so the supervisor must quarantine on attempt 1.
                    throw std::invalid_argument("chaos: deterministic bad input");
                }
                return harness::Result{}
                    .metric("work_checksum", busy_work(ctx.seed, ctx.full_scale))
                    .metric("attempt_seen", static_cast<double>(attempt));
            };
            tasks.push_back(std::move(task));
        }
    }
    return tasks;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nChaos campaign: harness behaviour under run-level fault injection\n";
    util::TextTable t({"Mode", "Tasks", "Completed", "Quarantined", "Max attempts"});
    std::vector<std::string> seen;
    for (const harness::TaskOutcome& task : report.tasks) {
        bool found = false;
        for (const std::string& s : seen) found = found || s == task.point;
        if (found) continue;
        seen.push_back(task.point);
        int total = 0;
        int completed = 0;
        int quarantined = 0;
        int max_attempts = 0;
        for (const harness::TaskOutcome& u : report.tasks) {
            if (u.point != task.point) continue;
            ++total;
            if (u.ok) ++completed; else ++quarantined;
            max_attempts = std::max(max_attempts, u.attempts);
        }
        t.add_row({task.point, std::to_string(total), std::to_string(completed),
                   std::to_string(quarantined), std::to_string(max_attempts)});
    }
    t.print(out);
    out << "\nFaulty modes misbehave only under --isolate (the supervisor's\n"
           "worker-process environment contract); quarantined tasks are the\n"
           "expected output here, not a sweep failure.\n";
}

int evaluate(harness::SweepReport& report, std::ostream& out) {
    int failed = 0;
    const std::size_t first_check = report.gate_checks.size();
    const auto check = [&](const std::string& criterion, const std::string& want,
                           const std::string& got, bool ok) {
        report.gate_checks.push_back({criterion, want, got, ok});
        if (!ok) ++failed;
    };

    bool supervised = false;
    for (const harness::TaskOutcome& t : report.tasks) {
        for (const auto& [k, v] : t.params) {
            if (k == "supervised" && v == "1") supervised = true;
        }
    }

    const auto count_if = [&](const std::string& point, auto pred) {
        int n = 0;
        for (const harness::TaskOutcome& t : report.tasks) {
            if (t.point == point && pred(t)) ++n;
        }
        return n;
    };
    const auto total = [&](const std::string& point) {
        return count_if(point, [](const harness::TaskOutcome&) { return true; });
    };

    // Always true, supervised or not: clean tasks complete, deterministic
    // failures quarantine on the first attempt without retries.
    const int clean_total = total("clean");
    const int clean_ok =
        count_if("clean", [](const harness::TaskOutcome& t) { return t.ok; });
    check("clean tasks complete", std::to_string(clean_total),
          std::to_string(clean_ok), clean_ok == clean_total);
    const int bad_total = total("bad_input");
    const int bad_quarantined = count_if("bad_input", [](const harness::TaskOutcome& t) {
        return !t.ok && t.disposition == "failed" && t.attempts == 1;
    });
    check("deterministic failures quarantined without retry",
          std::to_string(bad_total), std::to_string(bad_quarantined),
          bad_quarantined == bad_total);

    if (supervised) {
        const int flaky_total = total("flaky_crash");
        const int flaky_recovered =
            count_if("flaky_crash", [](const harness::TaskOutcome& t) {
                return t.ok && t.attempts == 2 && t.disposition == "ok";
            });
        check("transient crashes recovered on retry 2", std::to_string(flaky_total),
              std::to_string(flaky_recovered), flaky_recovered == flaky_total);

        const int loop_total = total("crash_loop");
        const int loop_quarantined =
            count_if("crash_loop", [](const harness::TaskOutcome& t) {
                return !t.ok && t.disposition == "crashed" && t.attempts > 1;
            });
        check("persistent crashes quarantined after retries",
              std::to_string(loop_total), std::to_string(loop_quarantined),
              loop_quarantined == loop_total);

        const int stall_total = total("flaky_stall");
        const int stall_recovered =
            count_if("flaky_stall", [](const harness::TaskOutcome& t) {
                return t.ok && t.attempts == 2;
            });
        if (stall_total > 0) {
            check("watchdog-killed stalls recovered on retry",
                  std::to_string(stall_total), std::to_string(stall_recovered),
                  stall_recovered == stall_total);
        }
    }

    util::TextTable t({"Criterion", "Expected", "Measured", "Verdict"});
    for (std::size_t i = first_check; i < report.gate_checks.size(); ++i) {
        const auto& c = report.gate_checks[i];
        t.add_row({c.criterion, c.paper, c.measured, c.passed ? "PASS" : "FAIL"});
    }
    t.print(out);
    out << (failed == 0
                ? "\nSUPERVISION POLICY HOLDS (0 failing criteria)\n"
                : "\nSUPERVISION POLICY VIOLATED (" + std::to_string(failed) +
                      " failing criteria)\n");
    return failed;
}

}  // namespace

void register_chaos_campaign_experiment() {
    harness::Experiment e;
    e.name = "chaos_campaign";
    e.description =
        "Robustness: the sweep harness itself under crashing/stalling tasks";
    e.make_tasks = make_tasks;
    e.present = present;
    e.evaluate = evaluate;
    // Quarantined tasks are this experiment's subject matter, not a failure:
    // only the evaluate() criteria decide the exit code.
    e.tolerate_task_errors = true;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
