// Fault campaign as a harness experiment: sweep the control-channel fault
// rate (every FaultPlan mode at the same probability) × repetitions and
// measure how the fairness error degrades and whether liveness holds — no
// crash, no abort, no process left wedged in SIGSTOP once faults stop.
#include <ostream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "util/table.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

/// Fault probability per backend call, in basis points (so point names and
/// params stay integral): 0, 1%, 2%, 5%, 10%.
constexpr int kFaultBps[] = {0, 100, 200, 500, 1000};
constexpr int kProcs = 8;
constexpr int kQuantumMs = 20;

int fault_cycles(bool full) { return full ? 150 : 60; }
int repetitions(bool full) { return full ? 5 : 3; }

std::string point_name(int bps) { return "fault" + std::to_string(bps) + "bps"; }

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const int bps : kFaultBps) {
        for (int rep = 0; rep < repetitions(options.full_scale); ++rep) {
            harness::Task task;
            task.point = point_name(bps);
            task.rep = rep;
            task.params = {{"fault_bps", std::to_string(bps)},
                           {"n", std::to_string(kProcs)},
                           {"quantum_ms", std::to_string(kQuantumMs)}};
            task.fn = [bps, rep](const harness::TaskContext& ctx) {
                workload::FaultRunConfig cfg;
                // Two procs at each of shares {2,4,6,8}: real differentiation
                // (1:4) without share-1 entities, whose single-quantum-per-
                // cycle granularity dominates the clean-channel error.
                for (int i = 0; i < kProcs; ++i) {
                    cfg.shares.push_back(static_cast<util::Share>(2 * (i / 2 + 1)));
                }
                cfg.quantum = util::msec(kQuantumMs);
                cfg.faults =
                    core::FaultPlan::uniform(static_cast<double>(bps) / 10000.0,
                                             /*seed=*/ctx.seed);
                cfg.warmup_cycles = 5 + rep;  // de-phase repeated runs
                cfg.fault_cycles = fault_cycles(ctx.full_scale);
                const auto r = workload::run_fault_experiment(cfg);
                return harness::Result{}
                    .metric("rms_error_pct", 100.0 * r.mean_rms_error)
                    .metric("stopped_at_drain", r.stopped_at_drain)
                    .metric("stopped_after_release", r.stopped_after_release)
                    .metric("invariant_gap_quanta", r.invariant_gap_quanta)
                    .metric("survivors", static_cast<double>(r.survivors))
                    .metric("injected_total", static_cast<double>(r.injected.total()))
                    .metric("read_failures", static_cast<double>(r.health.read_failures))
                    .metric("control_failures",
                            static_cast<double>(r.health.control_failures))
                    .metric("reissues", static_cast<double>(r.health.reissues))
                    .metric("rebaselines", static_cast<double>(r.health.rebaselines))
                    .metric("quarantines", static_cast<double>(r.health.quarantines))
                    .metric("drops", static_cast<double>(r.health.drops))
                    .metric("timed_out", r.timed_out ? 1.0 : 0.0);
            };
            tasks.push_back(std::move(task));
        }
    }
    return tasks;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nFault campaign: fairness and liveness vs control-channel fault rate\n";
    out << "(" << kProcs << " procs, shares 2x{2,4,6,8}, Q=" << kQuantumMs
        << "ms; every fault mode at the given rate)\n";
    util::TextTable t({"Fault rate", "RMS err %", "Injected", "Reissues", "Quarantines",
                       "Drops", "Wedged@drain", "Invariant gap (quanta)"});
    for (const int bps : kFaultBps) {
        const std::string p = point_name(bps);
        t.add_row({util::fmt(static_cast<double>(bps) / 100.0, 2) + "%",
                   util::fmt(report.metric_mean(p, "rms_error_pct"), 2),
                   util::fmt(report.metric_mean(p, "injected_total"), 0),
                   util::fmt(report.metric_mean(p, "reissues"), 0),
                   util::fmt(report.metric_mean(p, "quarantines"), 1),
                   util::fmt(report.metric_mean(p, "drops"), 1),
                   util::fmt(report.metric_mean(p, "stopped_at_drain"), 0),
                   util::fmt(report.metric_mean(p, "invariant_gap_quanta"), 4)});
    }
    t.print(out);
    out << "\nExpectation: error grows smoothly with fault rate; the wedged and\n"
           "invariant-gap columns stay at zero (self-healing + accounting hold).\n";
}

int evaluate(harness::SweepReport& report, std::ostream& out) {
    int failed = 0;
    const std::size_t first_check = report.gate_checks.size();
    const auto check = [&](const std::string& criterion, const std::string& want,
                           const std::string& got, bool ok) {
        report.gate_checks.push_back({criterion, want, got, ok});
        if (!ok) ++failed;
    };

    // Liveness: at every fault rate, nothing is left wedged after the drain
    // or after teardown, and the invariant survived.
    double worst_wedged = 0.0;
    double worst_gap = 0.0;
    double timeouts = 0.0;
    for (const int bps : kFaultBps) {
        const std::string p = point_name(bps);
        worst_wedged = std::max({worst_wedged, report.metric_mean(p, "stopped_at_drain"),
                                 report.metric_mean(p, "stopped_after_release")});
        worst_gap = std::max(worst_gap, report.metric_mean(p, "invariant_gap_quanta"));
        timeouts += report.metric_mean(p, "timed_out");
    }
    check("no process left SIGSTOPped once faults stop", "0", util::fmt(worst_wedged, 0),
          worst_wedged == 0.0);
    check("Σa·Q == t_c survives quarantines/drops", "< 1e-6 quanta",
          util::fmt(worst_gap, 9), worst_gap < 1e-6);
    check("no run wedged (timed out)", "0", util::fmt(timeouts, 0), timeouts == 0.0);

    // Graceful degradation: clean channel stays accurate; 5% faults degrade
    // the error but keep it bounded (no crash is implicit — tasks that abort
    // would fail the sweep). The per-cycle RMS metric is harsh: every
    // injected fault perturbs some entity's cycle by about one quantum, a
    // large relative slice of a single cycle's share, so "bounded" here
    // means an order of magnitude above clean, not a few percent.
    const double err0 = report.metric_mean(point_name(0), "rms_error_pct");
    const double err5 = report.metric_mean(point_name(500), "rms_error_pct");
    check("fault-free error matches healthy scheduler", "< 5%", util::fmt(err0, 2) + "%",
          err0 < 5.0);
    check("error at 5% fault rate bounded", "< 75%", util::fmt(err5, 2) + "%",
          err5 < 75.0);
    const double injected5 = report.metric_mean(point_name(500), "injected_total");
    check("campaign actually injected faults at 5%", "> 100",
          util::fmt(injected5, 0), injected5 > 100.0);

    util::TextTable t({"Criterion", "Expected", "Measured", "Verdict"});
    for (std::size_t i = first_check; i < report.gate_checks.size(); ++i) {
        const auto& c = report.gate_checks[i];
        t.add_row({c.criterion, c.paper, c.measured, c.passed ? "PASS" : "FAIL"});
    }
    t.print(out);
    out << (failed == 0 ? "\nDEGRADATION POLICY HOLDS (0 failing criteria)\n"
                        : "\nDEGRADATION POLICY VIOLATED (" + std::to_string(failed) +
                              " failing criteria)\n");
    return failed;
}

}  // namespace

void register_fault_campaign_experiment() {
    harness::Experiment e;
    e.name = "fault_campaign";
    e.description =
        "Robustness: fairness error and liveness vs injected fault rate";
    e.make_tasks = make_tasks;
    e.present = present;
    e.evaluate = evaluate;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
