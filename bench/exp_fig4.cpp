// Figure 4 / Table 2 as a harness experiment: nine workloads × seven quantum
// lengths, `repetitions` runs per point (de-phased by warmup offset exactly
// as the standalone binary always did), mean RMS relative error per point.
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

using workload::ShareModel;

constexpr int kQuantaMs[] = {10, 15, 20, 25, 30, 35, 40};
constexpr int kProcCounts[] = {5, 10, 20};

int measure_cycles(bool full) { return full ? 200 : 60; }
int repetitions(bool full) { return full ? 3 : 1; }

std::string point_name(ShareModel model, int n, int quantum_ms) {
    return std::string(workload::to_string(model)) + std::to_string(n) + "/q" +
           std::to_string(quantum_ms);
}

std::string shares_brief(const std::vector<util::Share>& s) {
    std::ostringstream out;
    out << "{";
    if (s.size() <= 6) {
        for (std::size_t i = 0; i < s.size(); ++i) out << (i ? " " : "") << s[i];
    } else {
        out << s[0] << " " << s[1] << " " << s[2] << " ... " << s[s.size() - 2] << " "
            << s.back();
    }
    out << "}";
    return out.str();
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    // --kernel-policy swaps the kernel under the whole figure ("" = bsd, the
    // paper's kernel); the full per-policy comparison lives in policy_zoo.
    const std::string policy =
        options.kernel_policy.empty() ? "bsd" : options.kernel_policy;
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : kProcCounts) {
            for (const int q : kQuantaMs) {
                for (int rep = 0; rep < repetitions(options.full_scale); ++rep) {
                    harness::Task task;
                    task.point = point_name(model, n, q);
                    task.rep = rep;
                    task.params = {{"model", std::string(workload::to_string(model))},
                                   {"n", std::to_string(n)},
                                   {"quantum_ms", std::to_string(q)}};
                    task.fn = [model, n, q, rep,
                               policy](const harness::TaskContext& ctx) {
                        workload::SimRunConfig cfg;
                        cfg.shares = workload::make_shares(model, n);
                        cfg.quantum = util::msec(q);
                        cfg.measure_cycles = measure_cycles(ctx.full_scale);
                        cfg.warmup_cycles = 5 + rep;  // de-phase repeated runs
                        cfg.metrics = ctx.metrics;
                        cfg.kernel_policy = policy;
                        cfg.policy_seed = ctx.seed;
                        const auto r = workload::run_cpu_bound_experiment(cfg);
                        return harness::Result{}
                            .metric("rms_error_pct", 100.0 * r.mean_rms_error)
                            .metric("overhead_pct", 100.0 * r.overhead_fraction);
                    };
                    tasks.push_back(std::move(task));
                }
            }
        }
    }
    return tasks;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nTable 2. Workload Share Distributions\n";
    util::TextTable t2({"Model", "5 procs", "10 procs", "20 procs"});
    for (const ShareModel m :
         {ShareModel::kLinear, ShareModel::kEqual, ShareModel::kSkewed}) {
        t2.add_row({std::string(workload::to_string(m)),
                    shares_brief(workload::make_shares(m, 5)),
                    shares_brief(workload::make_shares(m, 10)),
                    shares_brief(workload::make_shares(m, 20))});
    }
    t2.print(out);

    out << "\nFigure 4. Mean RMS relative error (%) by quantum length\n";
    std::vector<std::string> headers{"Workload"};
    for (const int q : kQuantaMs) headers.push_back("Q=" + std::to_string(q) + "ms");
    util::TextTable fig(headers);
    for (const ShareModel model : workload::kAllModels) {
        for (const int n : kProcCounts) {
            std::vector<std::string> row{std::string(workload::to_string(model)) +
                                         std::to_string(n)};
            for (const int q : kQuantaMs) {
                row.push_back(util::fmt(
                    report.metric_mean(point_name(model, n, q), "rms_error_pct"), 2));
            }
            fig.add_row(std::move(row));
        }
    }
    fig.print(out);
    out << "\nPaper: <5% for most workloads; skewed highest (up to ~27%).\n";
}

}  // namespace

void register_fig4_experiment() {
    harness::Experiment e;
    e.name = "fig4";
    e.description =
        "Accuracy: mean RMS relative error vs quantum length (Table 2 + Figure 4)";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
