// The reproduction gate as a harness experiment: each underlying measurement
// (accuracy cell, overhead cell, ablation arm, I/O run, multi-ALPS run,
// scalability point, web run) is one parallel task; the DESIGN.md shape
// criteria — several of which combine multiple points — are evaluated over
// the aggregated report and recorded as gate checks in the JSON.
#include <cmath>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "metrics/threshold.h"
#include "util/stats.h"
#include "util/table.h"
#include "web/experiment.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

using workload::ShareModel;

int measure_cycles(bool full) { return full ? 200 : 60; }

std::string acc_point(ShareModel model, int n) {
    return "acc/" + std::string(workload::to_string(model)) + std::to_string(n);
}

std::string ovh_point(ShareModel model, int q) {
    return "ovh/" + std::string(workload::to_string(model)) + "10_q" +
           std::to_string(q);
}

harness::Task sim_task(std::string point,
                       std::vector<std::pair<std::string, std::string>> params,
                       std::function<workload::SimRunConfig(bool full)> make_cfg) {
    harness::Task task;
    task.point = std::move(point);
    task.params = std::move(params);
    task.fn = [make_cfg = std::move(make_cfg)](const harness::TaskContext& ctx) {
        const auto r = workload::run_cpu_bound_experiment(make_cfg(ctx.full_scale));
        return harness::Result{}
            .metric("rms_error", r.mean_rms_error)
            .metric("overhead", r.overhead_fraction)
            .metric("boundaries_missed", static_cast<double>(r.boundaries_missed));
    };
    return task;
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions&) {
    std::vector<harness::Task> tasks;

    // Accuracy cells (Fig 4): the six common workloads at Q=20ms, plus the
    // skewed worst case at Q=10ms.
    for (const ShareModel model : {ShareModel::kLinear, ShareModel::kEqual}) {
        for (const int n : {5, 10, 20}) {
            tasks.push_back(sim_task(
                acc_point(model, n),
                {{"model", std::string(workload::to_string(model))},
                 {"n", std::to_string(n)},
                 {"quantum_ms", "20"}},
                [model, n](bool full) {
                    workload::SimRunConfig cfg;
                    cfg.shares = workload::make_shares(model, n);
                    cfg.quantum = util::msec(20);
                    cfg.measure_cycles = measure_cycles(full);
                    return cfg;
                }));
        }
    }
    tasks.push_back(sim_task("acc/skewed20_q10",
                             {{"model", "skewed"}, {"n", "20"}, {"quantum_ms", "10"}},
                             [](bool full) {
                                 workload::SimRunConfig cfg;
                                 cfg.shares = workload::make_shares(ShareModel::kSkewed, 20);
                                 cfg.quantum = util::msec(10);
                                 cfg.measure_cycles = measure_cycles(full);
                                 return cfg;
                             }));

    // Overhead cells (Fig 5): all models, n=10, Q in {10, 40}.
    for (const ShareModel model : workload::kAllModels) {
        for (const int q : {10, 40}) {
            tasks.push_back(sim_task(
                ovh_point(model, q),
                {{"model", std::string(workload::to_string(model))},
                 {"n", "10"},
                 {"quantum_ms", std::to_string(q)}},
                [model, q](bool full) {
                    workload::SimRunConfig cfg;
                    cfg.shares = workload::make_shares(model, 10);
                    cfg.quantum = util::msec(q);
                    cfg.measure_cycles = measure_cycles(full);
                    return cfg;
                }));
        }
    }

    // Lazy-measurement ablation (§2.3).
    for (const bool lazy : {true, false}) {
        tasks.push_back(sim_task(std::string("ablation/") + (lazy ? "lazy" : "eager"),
                                 {{"lazy_measurement", lazy ? "1" : "0"}},
                                 [lazy](bool full) {
                                     workload::SimRunConfig cfg;
                                     cfg.shares = workload::make_shares(ShareModel::kEqual, 10);
                                     cfg.quantum = util::msec(10);
                                     cfg.measure_cycles = measure_cycles(full);
                                     cfg.lazy_measurement = lazy;
                                     return cfg;
                                 }));
    }

    // I/O redistribution (Fig 6): blocked-phase share split computed in-task.
    {
        harness::Task task;
        task.point = "io/redistribution";
        task.params = {{"shares", "1:2:3"}};
        task.fn = [](const harness::TaskContext&) {
            workload::IoRunConfig cfg;
            cfg.steady_cycles = 25;
            cfg.observe_cycles = 50;
            const auto r = workload::run_io_experiment(cfg);
            util::RunningStats a_blocked, c_blocked;
            for (std::size_t i = static_cast<std::size_t>(r.io_onset_cycle) + 2;
                 i < r.fractions.size(); ++i) {
                if (r.fractions[i][1] < 0.08) {
                    a_blocked.add(r.fractions[i][0]);
                    c_blocked.add(r.fractions[i][2]);
                }
            }
            return harness::Result{}
                .metric("a_blocked_mean", a_blocked.mean())
                .metric("c_blocked_mean", c_blocked.mean())
                .metric("blocked_cycles", static_cast<double>(a_blocked.count()));
        };
        tasks.push_back(std::move(task));
    }

    // Multiple ALPSs (Table 3).
    {
        harness::Task task;
        task.point = "multi/table3";
        task.fn = [](const harness::TaskContext&) {
            const auto r = workload::run_multi_alps_experiment({});
            return harness::Result{}.metric("mean_relative_error",
                                            r.mean_relative_error);
        };
        tasks.push_back(std::move(task));
    }

    // Scalability (Figs 8-9 / §4.2): the fit points plus the far side.
    for (const int n : {5, 10, 20, 30}) {
        tasks.push_back(sim_task("scal/n" + std::to_string(n),
                                 {{"n", std::to_string(n)}, {"quantum_ms", "10"}},
                                 [n](bool) {
                                     workload::SimRunConfig cfg;
                                     cfg.shares.assign(static_cast<std::size_t>(n), 5);
                                     cfg.quantum = util::msec(10);
                                     cfg.measure_cycles = 10;
                                     return cfg;
                                 }));
    }
    tasks.push_back(sim_task("scal/n100", {{"n", "100"}, {"quantum_ms", "10"}},
                             [](bool) {
                                 workload::SimRunConfig cfg;
                                 cfg.shares.assign(100, 5);
                                 cfg.quantum = util::msec(10);
                                 cfg.measure_cycles = 6;
                                 return cfg;
                             }));

    // Shared web server (§5).
    {
        harness::Task task;
        task.point = "web/shared";
        task.params = {{"shares", "1:2:3"}, {"quantum_ms", "100"}};
        task.fn = [](const harness::TaskContext&) {
            web::WebExperimentConfig cfg;
            cfg.warmup = util::sec(8);
            cfg.measure = util::sec(30);
            cfg.use_alps = true;
            const auto r = web::run_web_experiment(cfg);
            return harness::Result{}
                .metric("rps_site0", r.throughput_rps[0])
                .metric("rps_site1", r.throughput_rps[1])
                .metric("rps_site2", r.throughput_rps[2]);
        };
        tasks.push_back(std::move(task));
    }

    return tasks;
}

int evaluate(harness::SweepReport& report, std::ostream& out) {
    util::TextTable table({"Criterion", "Paper", "Measured", "Verdict"});
    int failures = 0;
    const auto check = [&](const std::string& name, const std::string& paper,
                           const std::string& measured, bool ok) {
        table.add_row({name, paper, measured, ok ? "PASS" : "FAIL"});
        report.gate_checks.push_back({name, paper, measured, ok});
        if (!ok) ++failures;
    };

    // --- Accuracy (Fig 4) ---
    double worst_common = 0.0;
    for (const ShareModel model : {ShareModel::kLinear, ShareModel::kEqual}) {
        for (const int n : {5, 10, 20}) {
            worst_common =
                std::max(worst_common, report.metric_mean(acc_point(model, n), "rms_error"));
        }
    }
    check("error for linear/equal workloads (Fig 4)", "<5%",
          util::fmt(100 * worst_common, 2) + "% worst", worst_common < 0.05);

    const double skew_err = report.metric_mean("acc/skewed20_q10", "rms_error");
    check("skewed worst case but bounded (Fig 4)", "<=27%",
          util::fmt(100 * skew_err, 2) + "%",
          skew_err > worst_common && skew_err < 0.27);

    // --- Overhead (Fig 5) ---
    double worst_ovh = 0.0;
    for (const ShareModel model : workload::kAllModels) {
        for (const int q : {10, 40}) {
            worst_ovh = std::max(worst_ovh, report.metric_mean(ovh_point(model, q), "overhead"));
        }
    }
    const double equal10_q10 = report.metric_mean(ovh_point(ShareModel::kEqual, 10), "overhead");
    const double equal10_q40 = report.metric_mean(ovh_point(ShareModel::kEqual, 40), "overhead");
    check("overhead under 1% (Fig 5 / §7)", "<1%",
          util::fmt(100 * worst_ovh, 3) + "% worst", worst_ovh < 0.01);
    check("overhead shrinks with quantum (Fig 5)", "monotone",
          util::fmt(100 * equal10_q10, 3) + "% -> " + util::fmt(100 * equal10_q40, 3) +
              "%",
          equal10_q10 > equal10_q40);

    // --- Lazy-measurement ablation (§2.3) ---
    const double lazy = report.metric_mean("ablation/lazy", "overhead");
    const double eager = report.metric_mean("ablation/eager", "overhead");
    check("lazy measurement saves 1.8x-5.9x (§2.3)", "1.8x-5.9x",
          util::fmt(eager / lazy, 2) + "x (Equal10)", eager / lazy > 1.8);

    // --- I/O redistribution (Fig 6) ---
    {
        const double a_mean = report.metric_mean("io/redistribution", "a_blocked_mean");
        const double c_mean = report.metric_mean("io/redistribution", "c_blocked_mean");
        const double cycles = report.metric_mean("io/redistribution", "blocked_cycles");
        const bool ok = cycles > 5 && std::abs(a_mean - 0.25) < 0.04 &&
                        std::abs(c_mean - 0.75) < 0.04;
        check("blocked share redistributes 1:3 (Fig 6)", "25% / 75%",
              util::fmt(100 * a_mean, 1) + "% / " + util::fmt(100 * c_mean, 1) + "%",
              ok);
    }

    // --- Multiple ALPSs (Table 3) ---
    const double multi_err = report.metric_mean("multi/table3", "mean_relative_error");
    check("multi-ALPS mean relative error (Table 3)", "0.93%",
          util::fmt(100 * multi_err, 2) + "%", multi_err < 0.03);

    // --- Scalability thresholds (Figs 8-9 / §4.2) ---
    {
        std::vector<double> xs, ys;
        for (const int n : {5, 10, 20, 30}) {
            const std::string point = "scal/n" + std::to_string(n);
            xs.push_back(n);
            ys.push_back(100.0 * report.metric_mean(point, "overhead"));
        }
        const double missed_at_20 = report.metric_mean("scal/n20", "boundaries_missed", 1);
        const double err_at_100 = report.metric_mean("scal/n100", "rms_error");
        const util::LinearFit fit = util::linear_fit(xs, ys);
        const double n_star = metrics::breakdown_threshold(fit);
        check("predicted breakdown N* at 10 ms (§4.2)", "39", util::fmt(n_star, 0),
              n_star > 30 && n_star < 48);
        check("in control below threshold (Fig 9)", "no missed boundaries",
              util::fmt(missed_at_20, 0) + " missed at N=20", missed_at_20 == 0);
        check("loss of control past threshold (Fig 9)", "error explodes",
              util::fmt(100 * err_at_100, 0) + "% at N=100", err_at_100 > 0.3);
    }

    // --- Shared web server (§5) ---
    {
        const double r0 = report.metric_mean("web/shared", "rps_site0");
        const double r1 = report.metric_mean("web/shared", "rps_site1");
        const double r2 = report.metric_mean("web/shared", "rps_site2");
        const double total = r0 + r1 + r2;
        const bool ok = std::abs(r0 / total - 1.0 / 6.0) < 0.03 &&
                        std::abs(r2 / total - 3.0 / 6.0) < 0.03;
        check("web throughput divides 1:2:3 (§5)", "18 / 35 / 53",
              util::fmt(r0, 0) + " / " + util::fmt(r1, 0) + " / " + util::fmt(r2, 0),
              ok);
    }

    table.print(out);
    out << "\n" << (failures == 0 ? "REPRODUCTION HOLDS" : "REPRODUCTION BROKEN")
        << " (" << failures << " failing criteria)\n";
    return failures;
}

}  // namespace

void register_reproduction_gate_experiment() {
    harness::Experiment e;
    e.name = "reproduction_gate";
    e.description = "Every shape criterion from DESIGN.md in one parallel run";
    e.make_tasks = make_tasks;
    e.evaluate = evaluate;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
