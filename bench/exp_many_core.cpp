// Many-core sweep ("many_core"): the Figure 3/4 share-accuracy measurement on
// a simulated 16/64/256-core machine with per-CPU run queues, comparing the
// two ways to deploy ALPS at that scale:
//
//   * global  — one ALPS over every worker on the machine. Its cycle length
//     grows with the total shares (ncpus · per-core shares), so accuracy is
//     only guaranteed over an ever-longer horizon and a single driver
//     process serializes all measurement work.
//   * percore — one ALPS per core, driver and workers pinned to that core's
//     scheduling domain. Cycles stay short and the controllers parallelize,
//     at the price of per-domain ticket economies and steal/rebalance
//     traffic blurring the pinning.
//
// Each row reports mean and worst per-instance RMS share error (the per-CPU
// fairness breakdown), controller overhead as a fraction of total machine
// capacity, missed quantum boundaries (the breakdown symptom), and the
// kernel's migration/steal counters.
#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "util/table.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

constexpr int kNcpusGrid[] = {16, 64, 256};
constexpr int kQuantumMs = 10;
constexpr int kProcsPerCpu = 2;

const char* mode_name(bool per_core) { return per_core ? "percore" : "global"; }

std::string point_name(int ncpus, bool per_core) {
    return "ncpus" + std::to_string(ncpus) + "/" + mode_name(per_core);
}

/// Cycle counts per instance. The global instance's cycle is ncpus times
/// longer in wall time, so its count shrinks with the core count to keep
/// the simulated span (and the sweep's wall time) bounded; the accuracy
/// metric is per-cycle, so fewer cycles only widen its confidence, not its
/// meaning.
int measure_cycles(bool full, int ncpus, bool per_core) {
    if (per_core) return full ? 60 : 20;
    const int base = full ? 48 : 16;
    return std::max(4, base * 16 / ncpus);
}

harness::Result run_point(const harness::TaskContext& ctx, int ncpus, bool per_core) {
    workload::ManyCoreConfig cfg;
    cfg.ncpus = ncpus;
    cfg.procs_per_cpu = kProcsPerCpu;
    cfg.per_core_alps = per_core;
    cfg.quantum = util::msec(kQuantumMs);
    cfg.measure_cycles = measure_cycles(ctx.full_scale, ncpus, per_core);
    cfg.warmup_cycles = 3;
    cfg.metrics = ctx.metrics;
    cfg.policy_seed = ctx.seed;
    const auto r = workload::run_many_core_experiment(cfg);
    return harness::Result{}
        .metric("rms_error_pct", 100.0 * r.mean_rms_error)
        .metric("worst_rms_error_pct", 100.0 * r.worst_rms_error)
        .metric("rms_spread_pct", 100.0 * r.per_cpu.rms_error_spread)
        .metric("overhead_pct", 100.0 * r.overhead_fraction)
        .metric("boundaries_missed", static_cast<double>(r.boundaries_missed))
        .metric("migrations", static_cast<double>(r.migrations))
        .metric("steals", static_cast<double>(r.steals))
        .metric("cycles", static_cast<double>(r.cycles_completed))
        .metric("timed_out", r.timed_out ? 1.0 : 0.0);
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const int ncpus : kNcpusGrid) {
        // --ncpus narrows the sweep to one machine size (the TSan smoke leg
        // runs just the 64-core column).
        if (options.ncpus != 0 && ncpus != options.ncpus) continue;
        for (const bool per_core : {false, true}) {
            harness::Task task;
            task.point = point_name(ncpus, per_core);
            task.rep = 0;
            task.params = {{"ncpus", std::to_string(ncpus)},
                           {"mode", mode_name(per_core)},
                           {"procs_per_cpu", std::to_string(kProcsPerCpu)},
                           {"quantum_ms", std::to_string(kQuantumMs)}};
            task.fn = [ncpus, per_core](const harness::TaskContext& ctx) {
                return run_point(ctx, ncpus, per_core);
            };
            tasks.push_back(std::move(task));
        }
    }
    return tasks;
}

void print_metric_table(const harness::SweepReport& report, std::ostream& out,
                        const std::string& metric, int decimals) {
    util::TextTable t({"ncpus", "global", "percore"});
    for (const int ncpus : kNcpusGrid) {
        std::vector<std::string> row{std::to_string(ncpus)};
        bool any = false;
        for (const bool per_core : {false, true}) {
            const std::string point = point_name(ncpus, per_core);
            if (report.find_point(point) == nullptr) {
                row.push_back("-");
                continue;
            }
            any = true;
            row.push_back(util::fmt(report.metric_mean(point, metric), decimals));
        }
        if (any) t.add_row(std::move(row));
    }
    t.print(out);
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nMany-core deployment: one global ALPS vs one ALPS per core "
           "(Q=" << kQuantumMs << "ms, " << kProcsPerCpu
        << " workers/core, shares 1-2-3, per-CPU kernel run queues).\n";
    out << "\nMean per-instance RMS share error (%)\n";
    print_metric_table(report, out, "rms_error_pct", 2);
    out << "\nWorst instance RMS share error (%)\n";
    print_metric_table(report, out, "worst_rms_error_pct", 2);
    out << "\nController overhead (% of total machine capacity)\n";
    print_metric_table(report, out, "overhead_pct", 3);
    out << "\nMissed quantum boundaries (breakdown symptom; summed)\n";
    print_metric_table(report, out, "boundaries_missed", 0);
    out << "\nKernel cross-domain migrations (steals included)\n";
    print_metric_table(report, out, "migrations", 0);
}

}  // namespace

void register_many_core_experiment() {
    harness::Experiment e;
    e.name = "many_core";
    e.description =
        "16/64/256-core sweep: one-global vs one-per-core ALPS on per-CPU "
        "run queues";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
