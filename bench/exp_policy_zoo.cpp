// Policy zoo: the Figure 3/4 share-accuracy measurement re-run with ALPS on
// each kernel scheduling policy (bsd, lottery, stride, cfs), plus one A/B
// point where the application-level controller itself is Waldspurger's stride
// algorithm (core::StrideEngine) instead of the ALPS allowance loop.
//
// The question each row answers: how much of the achieved share accuracy is
// ALPS, and how much is the kernel underneath it? The paper only had BSD; the
// zoo holds the workload, quantum, costs, and measurement constant and swaps
// the kernel policy (and, for the A/B row, the user-level mechanism).
#include <algorithm>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "os/policies/factory.h"
#include "util/table.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

using workload::ShareModel;

/// The A/B row: ALPS machinery replaced by an application-level stride
/// engine, still on the stock BSD kernel. Not a kernel policy name.
constexpr std::string_view kStrideEngineRow = "stride-engine";
/// The same A/B with lazy measurement off — isolates how much of the
/// stride engine's overhead row is the §2.3-style skip optimization.
constexpr std::string_view kStrideEngineEagerRow = "stride-engine-eager";
/// Suffix for the per-CPU rows: the same policy underneath a 4-core
/// machine with per-CPU run queues and one ALPS per core.
constexpr std::string_view kPerCpuSuffix = "-percpu4";
constexpr int kPerCpuCores = 4;

constexpr int kQuantumMs = 10;
constexpr ShareModel kModels[] = {ShareModel::kLinear, ShareModel::kSkewed};
constexpr int kProcCounts[] = {5, 10};

int measure_cycles(bool full) { return full ? 200 : 60; }
int repetitions(bool full) { return full ? 3 : 1; }

std::string workload_name(ShareModel model, int n) {
    return std::string(workload::to_string(model)) + std::to_string(n);
}

std::string point_name(std::string_view policy, ShareModel model, int n) {
    return std::string(policy) + "/" + workload_name(model, n);
}

/// Row labels: the four kernel policies (uniprocessor, then the same policy
/// on the 4-core per-CPU-queue machine), then the stride-engine A/Bs.
std::vector<std::string> all_rows() {
    std::vector<std::string> rows;
    for (const auto& info : os::policies::known_policies()) {
        rows.emplace_back(info.name);
    }
    for (const auto& info : os::policies::known_policies()) {
        rows.emplace_back(std::string(info.name) + std::string(kPerCpuSuffix));
    }
    rows.emplace_back(kStrideEngineRow);
    rows.emplace_back(kStrideEngineEagerRow);
    return rows;
}

/// "<policy>-percpu4" -> "<policy>"; empty when not a per-CPU row.
std::string percpu_base(std::string_view row) {
    if (row.size() > kPerCpuSuffix.size() &&
        row.substr(row.size() - kPerCpuSuffix.size()) == kPerCpuSuffix) {
        return std::string(row.substr(0, row.size() - kPerCpuSuffix.size()));
    }
    return {};
}

harness::Result run_point(const harness::TaskContext& ctx, std::string_view policy,
                          ShareModel model, int n, int rep) {
    // The per-CPU rows go through the many-core machinery: same policy,
    // same share model per instance, but 4 cores with per-CPU run queues
    // and one ALPS per core.
    if (const std::string base = percpu_base(policy); !base.empty()) {
        workload::ManyCoreConfig mcfg;
        mcfg.ncpus = kPerCpuCores;
        mcfg.per_core_alps = true;
        mcfg.shares_per_instance = workload::make_shares(model, n);
        mcfg.quantum = util::msec(kQuantumMs);
        mcfg.measure_cycles = measure_cycles(ctx.full_scale);
        mcfg.warmup_cycles = 3 + rep;
        mcfg.metrics = ctx.metrics;
        mcfg.kernel_policy = base;
        mcfg.policy_seed = ctx.seed;
        const auto r = workload::run_many_core_experiment(mcfg);
        double ratio_sum = 0.0, complaint = 0.0;
        std::size_t with_cycles = 0;
        for (const auto& inst : r.per_cpu.per_cpu) {
            if (inst.cycles == 0) continue;
            ratio_sum += inst.time_ratio;
            complaint = std::max(complaint, inst.max_complaint);
            ++with_cycles;
        }
        return harness::Result{}
            .metric("rms_error_pct", 100.0 * r.mean_rms_error)
            .metric("time_ratio",
                    with_cycles > 0 ? ratio_sum / static_cast<double>(with_cycles)
                                    : 0.0)
            .metric("max_complaint_pct", 100.0 * complaint)
            .metric("overhead_pct", 100.0 * r.overhead_fraction)
            .metric("worst_rms_error_pct", 100.0 * r.worst_rms_error)
            .metric("migrations", static_cast<double>(r.migrations));
    }

    workload::SimRunConfig cfg;
    cfg.shares = workload::make_shares(model, n);
    cfg.quantum = util::msec(kQuantumMs);
    cfg.measure_cycles = measure_cycles(ctx.full_scale);
    cfg.warmup_cycles = 5 + rep;  // de-phase repeated runs
    cfg.metrics = ctx.metrics;
    // The lottery's draw stream derives from the task seed, which the harness
    // derives from (sweep seed, task index) — bit-identical for any --jobs.
    cfg.policy_seed = ctx.seed;
    const bool engine =
        policy == kStrideEngineRow || policy == kStrideEngineEagerRow;
    cfg.lazy_measurement = policy != kStrideEngineEagerRow;
    cfg.kernel_policy = engine ? "bsd" : std::string(policy);
    const auto r = engine ? workload::run_stride_engine_experiment(cfg)
                          : workload::run_cpu_bound_experiment(cfg);
    return harness::Result{}
        .metric("rms_error_pct", 100.0 * r.mean_rms_error)
        .metric("time_ratio", r.fairness.time_ratio)
        .metric("max_complaint_pct", 100.0 * r.fairness.max_complaint)
        .metric("overhead_pct", 100.0 * r.overhead_fraction)
        .metric("measurements", static_cast<double>(r.measurements));
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const std::string& policy : all_rows()) {
        // --kernel-policy narrows the zoo to one row (including the
        // stride-engine A/B, addressable by that name).
        if (!options.kernel_policy.empty() && policy != options.kernel_policy) {
            continue;
        }
        for (const ShareModel model : kModels) {
            for (const int n : kProcCounts) {
                for (int rep = 0; rep < repetitions(options.full_scale); ++rep) {
                    harness::Task task;
                    task.point = point_name(policy, model, n);
                    task.rep = rep;
                    task.params = {
                        {"policy", policy},
                        {"model", std::string(workload::to_string(model))},
                        {"n", std::to_string(n)},
                        {"quantum_ms", std::to_string(kQuantumMs)}};
                    task.fn = [policy, model, n, rep](const harness::TaskContext& ctx) {
                        return run_point(ctx, policy, model, n, rep);
                    };
                    tasks.push_back(std::move(task));
                }
            }
        }
    }
    return tasks;
}

void print_metric_table(const harness::SweepReport& report, std::ostream& out,
                        const std::string& metric, int decimals) {
    std::vector<std::string> headers{"Policy"};
    for (const ShareModel model : kModels) {
        for (const int n : kProcCounts) headers.push_back(workload_name(model, n));
    }
    util::TextTable t(headers);
    for (const std::string& policy : all_rows()) {
        std::vector<std::string> row{policy};
        bool any = false;
        for (const ShareModel model : kModels) {
            for (const int n : kProcCounts) {
                const std::string point = point_name(policy, model, n);
                if (report.find_point(point) == nullptr) {
                    row.push_back("-");
                    continue;
                }
                any = true;
                row.push_back(util::fmt(report.metric_mean(point, metric), decimals));
            }
        }
        if (any) t.add_row(std::move(row));
    }
    t.print(out);
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nPolicy zoo: ALPS share accuracy per kernel policy (Q=" << kQuantumMs
        << "ms). '<policy>-percpu4' runs the same policy on a 4-core\n"
           "machine with per-CPU run queues and one ALPS per core.\n"
           "'stride-engine' is the A/B: stride pass/stride as the\n"
           "application-level controller, BSD kernel underneath\n"
           "('-eager' = its lazy measurement switched off).\n";
    out << "\nMean RMS relative share error (%)\n";
    print_metric_table(report, out, "rms_error_pct", 2);
    out << "\nChapter-9 time-ratio fairness (1.0 = exact proportional share)\n";
    print_metric_table(report, out, "time_ratio", 4);
    out << "\nMax justified complaint (% of a cycle's ideal allocation)\n";
    print_metric_table(report, out, "max_complaint_pct", 2);
    out << "\nController overhead (% of wall time)\n";
    print_metric_table(report, out, "overhead_pct", 3);
}

}  // namespace

void register_policy_zoo_experiment() {
    harness::Experiment e;
    e.name = "policy_zoo";
    e.description =
        "ALPS share accuracy on each kernel policy (bsd|lottery|stride|cfs), "
        "uni- and per-CPU 4-core, + stride-engine A/B (lazy and eager)";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
