// Figures 8 & 9 + the §4.2 threshold analysis as a harness experiment: the
// (N, quantum) grid fans out in parallel; the fits over the in-control region
// are recomputed from the aggregated points at presentation time.
#include <ostream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "metrics/threshold.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

constexpr int kQuanta[] = {10, 20, 40};

std::vector<int> proc_counts(bool full) {
    return full ? std::vector<int>{5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100,
                                   110, 120}
                : std::vector<int>{5, 10, 20, 30, 40, 60, 80, 100};
}

std::string point_name(int n, int q) {
    return "n" + std::to_string(n) + "/q" + std::to_string(q);
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const int n : proc_counts(options.full_scale)) {
        for (const int q : kQuanta) {
            harness::Task task;
            task.point = point_name(n, q);
            task.params = {{"n", std::to_string(n)},
                           {"quantum_ms", std::to_string(q)}};
            task.fn = [n, q](const harness::TaskContext& ctx) {
                workload::SimRunConfig cfg;
                cfg.shares.assign(static_cast<std::size_t>(n), 5);
                cfg.quantum = util::msec(q);
                // Past breakdown the cycles stretch; keep runs bounded.
                cfg.measure_cycles = ctx.full_scale ? 30 : 10;
                cfg.warmup_cycles = 3;
                const auto r = workload::run_cpu_bound_experiment(cfg);
                return harness::Result{}
                    .metric("overhead_pct", 100.0 * r.overhead_fraction)
                    .metric("error_pct", 100.0 * r.mean_rms_error)
                    .metric("boundaries_missed",
                            static_cast<double>(r.boundaries_missed));
            };
            tasks.push_back(std::move(task));
        }
    }
    return tasks;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    const std::vector<int> ns = proc_counts(report.full_scale);

    util::TextTable fig({"N", "ovh@10ms %", "err@10ms %", "ovh@20ms %", "err@20ms %",
                         "ovh@40ms %", "err@40ms %"});
    for (const int n : ns) {
        std::vector<std::string> row{std::to_string(n)};
        for (const int q : kQuanta) {
            row.push_back(util::fmt(report.metric_mean(point_name(n, q), "overhead_pct"), 3));
            row.push_back(util::fmt(report.metric_mean(point_name(n, q), "error_pct"), 1));
        }
        fig.add_row(std::move(row));
    }
    fig.print(out);

    out << "\nSection 4.2 threshold analysis (fit over the region where "
           "the driver missed no quantum boundaries):\n";
    util::TextTable fits({"Q (ms)", "U_Q(N) fit (%)", "predicted N*", "observed N*",
                          "paper predicted", "paper observed"});
    const char* paper_pred[] = {"39", "54", "75"};
    const char* paper_obs[] = {"40", "60", "90"};
    int qi = 0;
    for (const int q : kQuanta) {
        std::vector<double> xs, ys;
        for (const int n : ns) {
            if (report.metric_mean(point_name(n, q), "boundaries_missed") == 0.0) {
                xs.push_back(n);
                ys.push_back(report.metric_mean(point_name(n, q), "overhead_pct"));
            }
        }
        std::string fit_str = "n/a";
        std::string pred = "n/a";
        if (xs.size() >= 2) {
            const util::LinearFit fit = util::linear_fit(xs, ys);
            fit_str = util::fmt(fit.slope, 4) + "*N + " + util::fmt(fit.intercept, 4);
            pred = util::fmt(metrics::breakdown_threshold(fit), 0);
        }
        // Observed threshold: first N whose error leaves the controlled band.
        std::string obs = ">" + std::to_string(ns.back());
        for (const int n : ns) {
            if (report.metric_mean(point_name(n, q), "error_pct") > 15.0) {
                obs = std::to_string(n);
                break;
            }
        }
        fits.add_row({std::to_string(q), fit_str, pred, obs, paper_pred[qi],
                      paper_obs[qi]});
        ++qi;
    }
    fits.print(out);
    out << "\nPaper: overhead linear in N (slope halves as Q doubles), "
           "breakdown order 10ms < 20ms < 40ms.\n";
}

}  // namespace

void register_scalability_experiment() {
    harness::Experiment e;
    e.name = "fig8_fig9";
    e.description =
        "Scalability: overhead and accuracy vs process count (Figures 8-9, §4.2)";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
