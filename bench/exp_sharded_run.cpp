// Sharded-engine determinism gate ("sharded_run"): the 8-group ALPS machine
// from workload::run_sharded_experiment at shard counts 1, 2, and 8, serial
// and threaded, across all four kernel policies.
//
// This is the sweep-scale version of tests/test_workload_sharded.cpp: every
// variant of one policy must produce the same consumed_checksum — per-process
// CPU down to the nanosecond, every cycle record — or evaluate() fails the
// sweep. Because the checksum is a simulated result (not a host timing), the
// BENCH_sharded_run.json payload is bit-identical across runs and --jobs,
// like every non-sim_perf report.
//
// Point naming: "<policy>/s<shards>" for serial, "<policy>/s<shards>t" for
// threaded. --shards narrows to one shard count (both modes); --kernel-policy
// narrows to one policy.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "os/policies/factory.h"
#include "util/table.h"
#include "workload/sharded.h"

namespace alps::bench {
namespace {

using sim::ShardedEngine;

constexpr unsigned kGroups = 8;
constexpr unsigned kShardCounts[] = {1, 2, 8};

struct Variant {
    unsigned shards = 1;
    bool threaded = false;
};

std::string point_name(std::string_view policy, const Variant& v) {
    return std::string(policy) + "/s" + std::to_string(v.shards) +
           (v.threaded ? "t" : "");
}

std::vector<Variant> all_variants() {
    std::vector<Variant> vs;
    for (const unsigned s : kShardCounts) {
        vs.push_back({s, false});
        if (s > 1) vs.push_back({s, true});
    }
    return vs;
}

harness::Result run_point(const harness::TaskContext& ctx, std::string_view policy,
                          const Variant& v, std::uint64_t policy_seed,
                          bool full) {
    workload::ShardedRunConfig cfg;
    cfg.groups = kGroups;
    cfg.shards = v.shards;
    cfg.mode = v.threaded ? ShardedEngine::RunMode::kThreaded
                          : ShardedEngine::RunMode::kSerial;
    cfg.measure_cycles = full ? 40 : 12;
    cfg.kernel_policy = std::string(policy);
    // NOT ctx.seed: the whole point is comparing this run against its
    // sibling shard counts, so the seed must be a function of the policy
    // row only (ctx.seed differs per task).
    cfg.policy_seed = policy_seed;
    cfg.metrics = ctx.metrics;
    const auto r = workload::run_sharded_experiment(cfg);
    // Metrics are doubles; a 64-bit digest cast to double would drop its low
    // bits and weaken the equality gate. Both 32-bit halves are exact.
    return harness::Result{}
        .metric("checksum_hi", static_cast<double>(r.consumed_checksum >> 32))
        .metric("checksum_lo",
                static_cast<double>(r.consumed_checksum & 0xffffffffULL))
        .metric("rms_error_pct", 100.0 * r.mean_rms_error)
        .metric("worst_rms_error_pct", 100.0 * r.worst_rms_error)
        .metric("overhead_pct", 100.0 * r.overhead_fraction)
        .metric("cycles", static_cast<double>(r.cycles_completed))
        .metric("epochs", static_cast<double>(r.epochs))
        .metric("cross_shard_messages",
                static_cast<double>(r.cross_shard_messages))
        .metric("nomad_hops", static_cast<double>(r.migrations_completed))
        .metric("events_fired", static_cast<double>(r.events_fired))
        .metric("timed_out", r.timed_out ? 1.0 : 0.0);
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const auto& info : os::policies::known_policies()) {
        const std::string policy(info.name);
        if (!options.kernel_policy.empty() && policy != options.kernel_policy) {
            continue;
        }
        // Seed per policy row, derived from the sweep seed so --seed still
        // varies the whole experiment coherently.
        const std::uint64_t policy_seed =
            options.seed * 0x9e3779b97f4a7c15ULL + std::hash<std::string>{}(policy);
        for (const Variant& v : all_variants()) {
            if (options.shards > 0 &&
                v.shards != static_cast<unsigned>(options.shards)) {
                continue;
            }
            harness::Task task;
            task.point = point_name(policy, v);
            task.rep = 0;
            task.params = {{"policy", policy},
                           {"shards", std::to_string(v.shards)},
                           {"mode", v.threaded ? "threaded" : "serial"},
                           {"groups", std::to_string(kGroups)}};
            const bool full = options.full_scale;
            task.fn = [policy, v, policy_seed, full](const harness::TaskContext& ctx) {
                return run_point(ctx, policy, v, policy_seed, full);
            };
            tasks.push_back(std::move(task));
        }
    }
    return tasks;
}

std::string checksum_text(const harness::SweepReport& report,
                          const std::string& point) {
    const auto hi = static_cast<std::uint64_t>(report.metric_mean(point, "checksum_hi"));
    const auto lo = static_cast<std::uint64_t>(report.metric_mean(point, "checksum_lo"));
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>((hi << 32) | lo));
    return buf;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nSharded engine determinism: " << kGroups
        << " kernel groups + per-group ALPS, identical machine at every "
           "shard count.\n'checksum' digests per-process CPU and every "
           "cycle record; rows of one policy must match exactly.\n\n";
    util::TextTable t({"Point", "Checksum", "RMS err %", "Overhead %", "Hops",
                       "Msgs", "Epochs"});
    for (const auto& info : os::policies::known_policies()) {
        for (const Variant& v : all_variants()) {
            const std::string point = point_name(info.name, v);
            if (report.find_point(point) == nullptr) continue;
            t.add_row({point, checksum_text(report, point),
                       util::fmt(report.metric_mean(point, "rms_error_pct"), 2),
                       util::fmt(report.metric_mean(point, "overhead_pct"), 3),
                       util::fmt(report.metric_mean(point, "nomad_hops"), 0),
                       util::fmt(report.metric_mean(point, "cross_shard_messages"), 0),
                       util::fmt(report.metric_mean(point, "epochs"), 0)});
        }
    }
    t.print(out);
}

/// The gate: within each policy row, every shard count and mode must agree
/// on the checksum (and must not have timed out). Returns the number of
/// violated rows, i.e. 0 = pass, shell-style.
int evaluate(harness::SweepReport& report, std::ostream& out) {
    util::TextTable table({"Criterion", "Expected", "Measured", "Verdict"});
    int failures = 0;
    const auto check = [&](const std::string& name, const std::string& expected,
                           const std::string& measured, bool ok) {
        table.add_row({name, expected, measured, ok ? "PASS" : "FAIL"});
        report.gate_checks.push_back({name, expected, measured, ok});
        if (!ok) ++failures;
    };
    for (const auto& info : os::policies::known_policies()) {
        std::map<std::string, std::string> sums;
        bool timed_out = false;
        for (const Variant& v : all_variants()) {
            const std::string point = point_name(info.name, v);
            if (report.find_point(point) == nullptr) continue;
            sums[point] = checksum_text(report, point);
            timed_out |= report.metric_mean(point, "timed_out") != 0.0;
        }
        if (sums.size() < 2) continue;  // narrowed run: nothing to compare
        const std::string& first = sums.begin()->second;
        const bool identical =
            std::all_of(sums.begin(), sums.end(),
                        [&](const auto& kv) { return kv.second == first; });
        std::string measured;
        if (identical) {
            measured = first;
        } else {
            for (const auto& [point, sum] : sums) {
                if (!measured.empty()) measured += ", ";
                measured += point + "=" + sum;
            }
        }
        if (timed_out) measured += " (timed out)";
        check(std::string(info.name) + " bit-identical across " +
                  std::to_string(sums.size()) + " shard/mode variants",
              "one checksum", measured, identical && !timed_out);
    }
    table.print(out);
    return failures;
}

}  // namespace

void register_sharded_run_experiment() {
    harness::Experiment e;
    e.name = "sharded_run";
    e.description =
        "Sharded-engine determinism gate: 8-group ALPS machine bit-identical "
        "at 1/2/8 shards, serial and threaded, on every kernel policy";
    e.make_tasks = make_tasks;
    e.present = present;
    e.evaluate = evaluate;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
