// Simulation-substrate performance ("sim_perf"): wall-clock throughput of the
// three layers the O(1) rework touched — the event engine (schedule/cancel/
// fire churn), the BsdPolicy run queues (enqueue/pop cycling), and an
// end-to-end fig8_fig9-style run at N=40 and N=120.
//
// Unlike every other experiment, these metrics are *timings of the host
// machine*, so the BENCH_sim_perf.json report is NOT bit-identical across
// runs or --jobs values (the simulated results the timings are derived from
// still are). scripts/check.sh runs this experiment single-job in Release
// and compares engine_events_per_sec against the checked-in baseline to
// catch substrate performance regressions.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "os/behaviors.h"
#include "os/bsd_policy.h"
#include "os/kernel.h"
#include "os/proc.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "traffic/arrival.h"
#include "traffic/latency.h"
#include "traffic/table.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/experiments.h"

namespace alps::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Engine churn: keep a window of pending timers; each iteration cancels the
// window's oldest handle (often already fired — the benign-miss path), arms a
// replacement, and fires the earliest event. This is the kernel's usage
// pattern (re-armed decision timers) with a heavy cancel mix.
harness::Result engine_task(bool full) {
    sim::Engine eng;
    constexpr std::size_t kWindow = 512;
    const std::int64_t iters = full ? 4'000'000 : 800'000;
    std::uint64_t fired = 0;
    std::vector<sim::EventId> ids(kWindow, 0);
    for (std::size_t k = 0; k < kWindow; ++k) {
        ids[k] = eng.schedule_after(util::usec(100 + 13 * static_cast<std::int64_t>(k)),
                                    [&fired] { ++fired; });
    }
    const auto t0 = Clock::now();
    std::uint64_t cancelled = 0;
    for (std::int64_t i = 0; i < iters; ++i) {
        const std::size_t slot = static_cast<std::size_t>(i) % kWindow;
        if (eng.cancel(ids[slot])) ++cancelled;
        ids[slot] = eng.schedule_after(util::usec(100 + (i * 7919) % 1009),
                                       [&fired] { ++fired; });
        eng.step();
    }
    const double wall = seconds_since(t0);
    // Each iteration is one schedule + one cancel attempt + one fire.
    const double ops = 3.0 * static_cast<double>(iters);
    return harness::Result{}
        .metric("engine_events_per_sec", static_cast<double>(fired) / wall)
        .metric("engine_ops_per_sec", ops / wall)
        .metric("engine_cancel_hits", static_cast<double>(cancelled))
        .metric("engine_final_pending", static_cast<double>(eng.live_events()));
}

// Pure timer-op throughput on the two mixes the timing wheel optimizes for:
//   cancel-heavy  — schedule-then-cancel pairs over a warm pending set, the
//                   kernel's re-armed-decision-timer pattern distilled (no
//                   fires, so it isolates O(1) schedule+cancel);
//   expire        — schedule a batch, run it dry (schedule+fire incl. any
//                   cascade work as the clock sweeps the wheel);
//   far-future    — events beyond the wheel horizon (spill list), half
//                   cancelled, the rest expired (spill insert/unlink and the
//                   promotion path).
harness::Result timer_ops_task(bool full) {
    using util::usec;
    const std::int64_t iters = full ? 3'000'000 : 600'000;
    harness::Result res;

    {
        sim::Engine eng;
        // A warm pending set so schedule/cancel run against a populated wheel.
        for (std::int64_t k = 0; k < 256; ++k) {
            eng.schedule_after(util::sec(1) + usec(k), [] {});
        }
        const auto t0 = Clock::now();
        sim::EventId id = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
            if (id != 0) eng.cancel(id);
            id = eng.schedule_after(usec(100 + i % 997), [] {});
        }
        const double wall = seconds_since(t0);
        res.metric("timer_cancel_heavy_ops_per_sec",
                   2.0 * static_cast<double>(iters) / wall);
    }

    {
        sim::Engine eng;
        const std::int64_t batch = iters / 4;
        const auto t0 = Clock::now();
        std::uint64_t fired = 0;
        for (std::int64_t i = 0; i < batch; ++i) {
            // Deterministic spread across ~1 s: exercises every wheel level
            // reachable without the spill list.
            eng.schedule_after(usec((i * 7919) % 1'000'000), [&fired] { ++fired; });
        }
        eng.run();
        const double wall = seconds_since(t0);
        res.metric("timer_expire_ops_per_sec",
                   2.0 * static_cast<double>(batch) / wall);
    }

    {
        sim::Engine eng;
        const std::int64_t batch = iters / 16;
        std::vector<sim::EventId> ids;
        ids.reserve(static_cast<std::size_t>(batch));
        const auto t0 = Clock::now();
        for (std::int64_t i = 0; i < batch; ++i) {
            // ~21 h + i µs: beyond the ~19.5 h wheel horizon, mostly-ascending
            // times (the realistic far-future arrival order).
            ids.push_back(eng.schedule_after(util::sec(75'000) + usec(i), [] {}));
        }
        for (std::size_t i = 0; i < ids.size(); i += 2) eng.cancel(ids[i]);
        eng.run();
        const double wall = seconds_since(t0);
        // schedule + cancel-half + fire-half = 2 ops per event.
        res.metric("timer_far_future_ops_per_sec",
                   2.0 * static_cast<double>(batch) / wall);
    }
    return res;
}

// Run-queue cycling: enqueue a priority-spread population, pop it dry, repeat.
// Exercises whichqs find-first-set and the intrusive unlink on every op.
harness::Result policy_task(bool full) {
    os::BsdPolicy policy;
    constexpr int kProcs = 128;
    const int rounds = full ? 40'000 : 8'000;
    std::vector<os::Proc> procs(kProcs);
    for (int i = 0; i < kProcs; ++i) {
        procs[static_cast<std::size_t>(i)].pid = i + 1;
        policy.add(procs[static_cast<std::size_t>(i)]);
        // Spread across the queue range via estcpu (usrpri = PUSER + estcpu/4).
        procs[static_cast<std::size_t>(i)].estcpu = static_cast<double>((i * 9) % 300);
        policy.charge(procs[static_cast<std::size_t>(i)], util::Duration::zero());
    }
    const auto t0 = Clock::now();
    std::uint64_t pops = 0;
    for (int r = 0; r < rounds; ++r) {
        for (os::Proc& p : procs) policy.enqueue(p);
        while (policy.pop() != nullptr) ++pops;
    }
    const double wall = seconds_since(t0);
    const double ops = 2.0 * static_cast<double>(pops);  // one enqueue per pop
    return harness::Result{}
        .metric("policy_ops_per_sec", ops / wall)
        .metric("policy_pops", static_cast<double>(pops));
}

// Sampling-scan throughput: the ALPS per-quantum measurement hot path over a
// populated kernel with every process state represented (running, queued,
// sleeping, stopped). Times (a) the per-pid sample() loop the driver's
// guarded_read path issues and (b) the batched measure() entry that reads the
// whole pid set in one pass over the SoA-packed accounting arrays.
harness::Result kernel_scan_task(bool full) {
    sim::Engine eng;
    os::Kernel kernel(eng, nullptr, os::KernelConfig{.ncpus = 4});
    constexpr int kProcs = 4096;
    std::vector<os::Pid> pids;
    pids.reserve(kProcs);
    for (int i = 0; i < kProcs; ++i) {
        std::unique_ptr<os::Behavior> b;
        if (i % 8 == 3) {
            b = std::make_unique<os::PhasedIoBehavior>(util::msec(1), util::msec(9));
        } else {
            b = std::make_unique<os::CpuBoundBehavior>();
        }
        pids.push_back(kernel.spawn("p" + std::to_string(i),
                                    /*uid=*/100 + i % 7, std::move(b), i % 5));
    }
    for (int i = 0; i < kProcs; i += 16) {
        kernel.send_signal(pids[static_cast<std::size_t>(i)], os::Signal::kStop);
    }
    eng.run_until(eng.now() + util::msec(50));

    const std::int64_t rounds = full ? 2'000 : 400;
    harness::Result res;
    std::uint64_t checksum = 0;
    {
        const auto t0 = Clock::now();
        for (std::int64_t r = 0; r < rounds; ++r) {
            for (const os::Pid pid : pids) {
                const auto s = kernel.sample(pid);
                checksum += static_cast<std::uint64_t>(s.cpu_time.count()) +
                            (s.blocked ? 1u : 0u) + (s.stopped ? 2u : 0u) +
                            (s.alive ? 4u : 0u);
            }
        }
        const double wall = seconds_since(t0);
        res.metric("kernel_scan_samples_per_sec",
                   static_cast<double>(rounds) * kProcs / wall);
    }
    {
        // The batched entry the ALPS tick now uses: one measure() call per
        // round reads every pid in a single pass over the SoA arrays.
        std::vector<os::Kernel::SampleView> views(pids.size());
        const auto t0 = Clock::now();
        for (std::int64_t r = 0; r < rounds; ++r) {
            kernel.measure(pids, views.data());
            for (const auto& s : views) {
                checksum += static_cast<std::uint64_t>(s.cpu_time.count()) +
                            (s.blocked ? 1u : 0u) + (s.stopped ? 2u : 0u) +
                            (s.alive ? 4u : 0u);
            }
        }
        const double wall = seconds_since(t0);
        res.metric("kernel_scan_batch_samples_per_sec",
                   static_cast<double>(rounds) * kProcs / wall);
    }
    // Feed the checksum back so the scan loops cannot be dead-code-eliminated
    // (modulo keeps the metric exactly representable as a double).
    res.metric("kernel_scan_checksum", static_cast<double>(checksum % 1'000'003));
    return res;
}

// Traffic-subsystem hot path: thinning-sampled arrival draws through a full
// envelope (diurnal x MMPP x flash spike — every branch of rate_at) and the
// request-table churn the web_scale sweep rides on (create, timestamp,
// release through the freelist, record into the per-site reservoir). A
// thousand-site machine draws and churns these millions of times per run,
// so both paths are gated in check.sh like the kernel scan.
harness::Result web_arrivals_task(bool full) {
    using util::usec;
    harness::Result res;
    const std::int64_t draws = full ? 2'000'000 : 400'000;
    {
        traffic::ArrivalConfig cfg;
        cfg.base_rps = 50.0;
        cfg.diurnal.amplitude = 0.4;
        cfg.diurnal.period = util::sec(60);
        cfg.burst.multiplier = 4.0;
        cfg.burst.mean_normal = util::sec(5);
        cfg.burst.mean_burst = util::sec(1);
        traffic::FlashCrowd spike;
        spike.start = util::TimePoint{} + util::sec(30);
        spike.ramp = util::sec(2);
        spike.hold = util::sec(20);
        spike.decay = util::sec(5);
        spike.multiplier = 8.0;
        cfg.spikes.push_back(spike);
        traffic::ArrivalProcess proc(cfg, util::Rng(0xbeef));
        util::TimePoint t{};
        const auto t0 = Clock::now();
        for (std::int64_t i = 0; i < draws; ++i) t = proc.next(t);
        const double wall = seconds_since(t0);
        res.metric("web_arrival_draws_per_sec", static_cast<double>(draws) / wall);
        // Fold the final arrival time in so the loop cannot be elided.
        res.metric("web_arrival_final_ms", util::to_ms(t.since_epoch));
    }
    {
        constexpr std::size_t kSites = 256;
        constexpr std::int64_t kDepth = 64;  ///< live rows churned against
        traffic::RequestTable table;
        table.reserve(kSites);
        traffic::LatencyRecorder recorder(kSites);
        std::vector<traffic::ReqId> live;
        live.reserve(kDepth);
        const std::int64_t churn = full ? 2'000'000 : 400'000;
        util::TimePoint t{};
        const auto t0 = Clock::now();
        for (std::int64_t i = 0; i < churn; ++i) {
            t += usec(37);
            if (live.size() == kDepth) {
                // Retire the oldest: timestamp, record, release (the full
                // completion pipeline a web worker drives per request).
                const traffic::ReqId id = live.front();
                live.erase(live.begin());
                table.set_dispatch(id, t);
                table.add_db_wait(id, usec(250));
                recorder.record(table.site(id) % kSites, t - table.arrival(id),
                                table.dispatch(id) - table.arrival(id),
                                table.db_wait(id));
                table.release(id);
            }
            live.push_back(table.create(static_cast<std::uint32_t>(i) % kSites,
                                        static_cast<std::uint16_t>(i % 3), t));
        }
        const double wall = seconds_since(t0);
        // One create + one retire pipeline per iteration at steady state.
        res.metric("web_table_ops_per_sec", 2.0 * static_cast<double>(churn) / wall);
        res.metric("web_table_rows", static_cast<double>(table.rows()));
    }
    return res;
}

// Sharded-engine churn: per shard, a bank of self-rearming hot timers (the
// kernel's decision-timer pattern on the devirtualized dispatch path) plus a
// trickle of cross-shard posts at every epoch boundary, run in lockstep at
// 1/2/8 shards in both modes. scripts/check.sh gates the serial-multiplexed
// aggregate at 8 shards (sharded_mux_events_per_sec): it exercises the full
// lockstep protocol — barrier degeneration, channel drain, boundary
// bookkeeping — yet is single-threaded, so it is stable on any host core
// count. The threaded rows show real-parallel scaling where cores exist.
struct ShardChurn {
    sim::Engine* eng = nullptr;
    sim::Engine::HotKind kind = 0;
};

void shard_churn_fire(void* ctx, std::uint64_t arg) {
    auto* c = static_cast<ShardChurn*>(ctx);
    // Deterministic pseudo-period, 1-8 µs: dense enough that hot dispatch
    // dominates, sparse enough that same-tick FIFO ordering stays cheap.
    c->eng->schedule_after(util::usec(1 + static_cast<std::int64_t>((arg * 7919) % 8)),
                           c->kind, arg + 1);
}

harness::Result sharded_engine_task(bool full, int only_shards) {
    constexpr unsigned kTimers = 64;       ///< self-rearming timers per shard
    constexpr unsigned kPostsPerEpoch = 2; ///< cross-shard trickle per boundary
    // ~142k events per shard-epoch (64 timers at a 4.5 µs mean period over a
    // 10 ms epoch); pick the epoch count to hit a fixed event budget.
    const std::int64_t target_events = full ? 8'000'000 : 2'000'000;

    harness::Result res;
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        if (only_shards > 0 && shards != static_cast<unsigned>(only_shards)) {
            continue;
        }
        for (const bool threaded : {false, true}) {
            if (threaded && shards == 1) continue;
            sim::ShardedEngine::Config cfg;
            cfg.shards = shards;
            cfg.epoch = util::msec(10);
            sim::ShardedEngine sharded(cfg);
            std::vector<ShardChurn> churn(shards);
            for (unsigned s = 0; s < shards; ++s) {
                sim::Engine& eng = sharded.engine(s);
                churn[s] = {&eng, 0};
                churn[s].kind = eng.register_hot(shard_churn_fire, &churn[s]);
                for (unsigned t = 0; t < kTimers; ++t) {
                    eng.schedule_after(util::usec(1 + t % 8), churn[s].kind,
                                       s * kTimers + t);
                }
                if (shards > 1) {
                    // Keep the channel path in the timed loop: each boundary,
                    // post a few hot events to the next shard.
                    sharded.set_publish_hook(
                        s, [&sharded, &churn, s, shards](unsigned, sim::TimePoint) {
                            const unsigned to = (s + 1) % shards;
                            for (unsigned k = 0; k < kPostsPerEpoch; ++k) {
                                sharded.post(s, to,
                                             {sharded.produce_boundary(s),
                                              churn[to].kind, 1'000'000 + k, {}});
                            }
                        });
                }
            }
            const std::int64_t per_epoch = 142'000 * static_cast<std::int64_t>(shards);
            const auto epochs =
                std::max<std::int64_t>(3, target_events / per_epoch);
            const auto mode = threaded ? sim::ShardedEngine::RunMode::kThreaded
                                       : sim::ShardedEngine::RunMode::kSerial;
            const auto t0 = Clock::now();
            sharded.run_lockstep(sim::TimePoint{} + cfg.epoch * epochs, mode);
            const double wall = seconds_since(t0);
            const double rate =
                static_cast<double>(sharded.total_events_fired()) / wall;
            const std::string tag =
                "s" + std::to_string(shards) + (threaded ? "_threaded" : "");
            res.metric("sharded_" + tag + "_events_per_sec", rate);
            if (shards == 8 && !threaded) {
                res.metric("sharded_mux_events_per_sec", rate);
                res.metric("sharded_mux_messages",
                           static_cast<double>(sharded.stats().messages));
            }
        }
    }
    return res;
}

// End-to-end: a fig8_fig9-style run (equal shares, Q=10ms) timed on the host.
harness::Result e2e_task(int n, bool full) {
    workload::SimRunConfig cfg;
    cfg.shares.assign(static_cast<std::size_t>(n), 5);
    cfg.quantum = util::msec(10);
    cfg.measure_cycles = full ? 30 : 10;
    cfg.warmup_cycles = 3;
    const auto t0 = Clock::now();
    const auto r = workload::run_cpu_bound_experiment(cfg);
    const double wall = seconds_since(t0);
    return harness::Result{}
        .metric("wall_ms", 1e3 * wall)
        .metric("sim_ms_per_wall_s", util::to_ms(r.wall) / wall)
        .metric("cycles", static_cast<double>(r.cycles_completed));
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    const int reps = options.full_scale ? 5 : 3;
    std::vector<harness::Task> tasks;
    auto push = [&](std::string point, auto fn) {
        for (int rep = 0; rep < reps; ++rep) {
            harness::Task task;
            task.point = point;
            task.rep = rep;
            task.params = {{"layer", point}};
            task.fn = [fn](const harness::TaskContext& ctx) {
                return fn(ctx.full_scale);
            };
            tasks.push_back(std::move(task));
        }
    };
    push("engine", [](bool full) { return engine_task(full); });
    push("timer_ops", [](bool full) { return timer_ops_task(full); });
    push("policy", [](bool full) { return policy_task(full); });
    push("kernel_scan", [](bool full) { return kernel_scan_task(full); });
    push("web_arrivals", [](bool full) { return web_arrivals_task(full); });
    push("sharded_engine", [shards = options.shards](bool full) {
        return sharded_engine_task(full, shards);
    });
    push("e2e_n40", [](bool full) { return e2e_task(40, full); });
    push("e2e_n120", [](bool full) { return e2e_task(120, full); });
    return tasks;
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nSimulation-substrate throughput (host wall-clock; higher is "
           "better, except wall_ms)\n";
    util::TextTable t({"Layer", "Metric", "Mean"});
    t.add_row({"engine", "events/sec",
               util::fmt(report.metric_mean("engine", "engine_events_per_sec"), 0)});
    t.add_row({"engine", "ops/sec (sched+cancel+fire)",
               util::fmt(report.metric_mean("engine", "engine_ops_per_sec"), 0)});
    t.add_row({"timer_ops", "cancel-heavy ops/sec",
               util::fmt(report.metric_mean("timer_ops", "timer_cancel_heavy_ops_per_sec"), 0)});
    t.add_row({"timer_ops", "expire ops/sec",
               util::fmt(report.metric_mean("timer_ops", "timer_expire_ops_per_sec"), 0)});
    t.add_row({"timer_ops", "far-future ops/sec",
               util::fmt(report.metric_mean("timer_ops", "timer_far_future_ops_per_sec"), 0)});
    t.add_row({"policy", "runq ops/sec",
               util::fmt(report.metric_mean("policy", "policy_ops_per_sec"), 0)});
    t.add_row({"kernel_scan", "samples/sec (per-pid)",
               util::fmt(report.metric_mean("kernel_scan", "kernel_scan_samples_per_sec"), 0)});
    t.add_row({"kernel_scan", "samples/sec (batched measure)",
               util::fmt(report.metric_mean("kernel_scan", "kernel_scan_batch_samples_per_sec"), 0)});
    t.add_row({"web_arrivals", "arrival draws/sec",
               util::fmt(report.metric_mean("web_arrivals", "web_arrival_draws_per_sec"), 0)});
    t.add_row({"web_arrivals", "request-table ops/sec",
               util::fmt(report.metric_mean("web_arrivals", "web_table_ops_per_sec"), 0)});
    for (const char* tag : {"s1", "s2", "s2_threaded", "s4", "s4_threaded",
                            "s8", "s8_threaded"}) {
        const std::string metric = std::string("sharded_") + tag + "_events_per_sec";
        const double v = report.metric_mean("sharded_engine", metric);
        if (v == 0.0) continue;  // narrowed by --shards
        t.add_row({"sharded_engine", std::string(tag) + " events/sec",
                   util::fmt(v, 0)});
    }
    t.add_row({"e2e_n40", "wall ms/run",
               util::fmt(report.metric_mean("e2e_n40", "wall_ms"), 2)});
    t.add_row({"e2e_n120", "wall ms/run",
               util::fmt(report.metric_mean("e2e_n120", "wall_ms"), 2)});
    t.print(out);
    out << "\nTimings are host-dependent: this JSON is the one exception to "
           "the sweep's bit-identity guarantee.\n";
}

}  // namespace

void register_sim_perf_experiment() {
    harness::Experiment e;
    e.name = "sim_perf";
    e.description =
        "Substrate throughput: engine events/sec, run-queue ops/sec, e2e wall-clock";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
