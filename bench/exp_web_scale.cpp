// Production-scale hosting sweep ("web_scale"): ~100-1000 open-loop web
// sites on one machine, a deterministic flash crowd pushing it past
// saturation, and the capacity-planning question: how well does each
// deployment defend the latency percentiles of the one site ("site A") that
// bought a protected share?
//
// The grid crosses deployment x quantum because the two are inseparable: a
// cycle's wall length (total shares x quantum / cpus) is the same whether
// one global ALPS spans the machine or one ALPS runs per core — what the
// per-core split buys is the *affordable quantum*. A global driver ticking
// a thousand principals costs ~17 ms per tick (Table 1), so it cannot run
// q=10 ms without missing boundaries wholesale (§4.2); a per-core driver
// ticking ~60 can. The share-1 control re-runs the winning deployment with
// site A's purchase revoked, proving the protection comes from the share
// and not from placement.
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "util/table.h"
#include "web/cluster.h"

namespace alps::bench {
namespace {

/// One machine size in the sweep. The cell fits smoke runs; the flagship is
/// the acceptance scale (>= 1000 sites, >= 100k requests over the run) and
/// only enters the grid under --full.
struct Machine {
    const char* key;  ///< point-name prefix
    int sites;
    int ncpus;
    double base_rps;
    bool full_only;
};

constexpr Machine kMachines[] = {
    {"s96x8", 96, 8, 10.0, false},
    {"s1000x16", 1000, 16, 2.0, true},
};

/// Deployment x quantum x share arms. q100 at per-core is dominated by
/// percore_q10 everywhere (same cycle math, coarser control) and is left
/// out to keep the grid tight; the global pair brackets the affordable-
/// quantum argument.
struct Arm {
    const char* key;
    web::Deploy deploy;
    int quantum_ms;
    bool revoke_share;  ///< share-1 control: site A buys nothing
};

constexpr Arm kArms[] = {
    {"kernel", web::Deploy::kKernelOnly, 100, false},
    {"global_q100", web::Deploy::kGlobalAlps, 100, false},
    {"global_q10", web::Deploy::kGlobalAlps, 10, false},
    {"percore_q10", web::Deploy::kPerCoreAlps, 10, false},
    {"percore_q10_s1", web::Deploy::kPerCoreAlps, 10, true},
};

/// Flash-crowd arrival multipliers: x8 is the headline overload (~120% of
/// machine capacity at the spike's peak), x2 the mild contrast that stays
/// under saturation. The control arm only runs at the headline intensity.
constexpr double kFlashGrid[] = {2.0, 8.0};

std::string point_name(const Machine& m, double flash, const Arm& a) {
    return std::string(m.key) + "/f" + std::to_string(static_cast<int>(flash)) +
           "/" + a.key;
}

web::WebScaleConfig make_config(const Machine& m, double flash, const Arm& a,
                                bool full) {
    web::WebScaleConfig cfg;
    cfg.sites = m.sites;
    cfg.ncpus = m.ncpus;
    cfg.base_rps = m.base_rps;
    cfg.deploy = a.deploy;
    cfg.quantum = util::msec(a.quantum_ms);
    if (a.revoke_share) cfg.protected_share = 1;
    cfg.flash_multiplier = flash;
    if (full) {
        cfg.warmup = util::sec(5);
        cfg.measure = util::sec(45);
        cfg.flash_start = util::sec(15);
    } else {
        // Smoke: same shape, a third of the span, spike still inside it.
        cfg.warmup = util::sec(2);
        cfg.measure = util::sec(16);
        cfg.flash_start = util::sec(5);
        cfg.flash_ramp = util::sec(1);
        cfg.flash_hold = util::sec(6);
        cfg.flash_decay = util::sec(2);
    }
    return cfg;
}

harness::Result run_point(const harness::TaskContext& ctx, const Machine& m,
                          double flash, const Arm& a) {
    web::WebScaleConfig cfg = make_config(m, flash, a, ctx.full_scale);
    cfg.seed = ctx.seed;
    cfg.metrics = ctx.metrics;
    const web::WebScaleResult r = web::run_web_scale_experiment(cfg);
    return harness::Result{}
        .metric("protected_p50_ms", r.protected_p50_ms)
        .metric("protected_p95_ms", r.protected_p95_ms)
        .metric("protected_p99_ms", r.protected_p99_ms)
        .metric("flash_p99_ms", r.flash_p99_ms)
        .metric("steady_p99_ms", r.steady_p99_ms)
        .metric("protected_rps", r.protected_rps)
        .metric("total_rps", r.total_rps)
        .metric("util_pct", 100.0 * r.cpu_utilization)
        .metric("overhead_pct", 100.0 * r.overhead_fraction)
        .metric("boundaries_missed", static_cast<double>(r.boundaries_missed))
        .metric("arrivals", static_cast<double>(r.arrivals))
        .metric("drops", static_cast<double>(r.drops))
        .metric("timeouts", static_cast<double>(r.timeouts))
        .metric("peak_in_flight", static_cast<double>(r.peak_in_flight))
        .metric("flash_sites", static_cast<double>(r.flash_sites));
}

std::vector<harness::Task> make_tasks(const harness::SweepOptions& options) {
    std::vector<harness::Task> tasks;
    for (const Machine& m : kMachines) {
        if (m.full_only && !options.full_scale) continue;
        // --ncpus / --sites narrow the sweep to one machine (the smoke leg
        // runs just the cell).
        if (options.ncpus != 0 && m.ncpus != options.ncpus) continue;
        if (options.sites != 0 && m.sites != options.sites) continue;
        for (const double flash : kFlashGrid) {
            if (options.flash_crowd >= 0.0 && flash != options.flash_crowd) continue;
            // The flagship already answers the headline question; the mild
            // contrast only adds signal at cell scale.
            if (m.full_only && flash != 8.0) continue;
            for (const Arm& a : kArms) {
                if (a.revoke_share && flash != 8.0) continue;
                harness::Task task;
                task.point = point_name(m, flash, a);
                task.rep = 0;
                task.params = {
                    {"sites", std::to_string(m.sites)},
                    {"ncpus", std::to_string(m.ncpus)},
                    {"deploy", web::deploy_name(a.deploy)},
                    {"quantum_ms", std::to_string(a.quantum_ms)},
                    {"flash_multiplier", std::to_string(static_cast<int>(flash))},
                    {"protected_share", a.revoke_share ? "1" : "8"},
                };
                task.fn = [&m, flash, &a](const harness::TaskContext& ctx) {
                    return run_point(ctx, m, flash, a);
                };
                tasks.push_back(std::move(task));
            }
        }
    }
    return tasks;
}

void print_machine_table(const harness::SweepReport& report, std::ostream& out,
                         const Machine& m, double flash) {
    util::TextTable t({"arm", "pA p50", "pA p95", "pA p99", "steady p99",
                       "flash p99", "A rps", "total rps", "ovh %", "missed"});
    bool any = false;
    for (const Arm& a : kArms) {
        const std::string point = point_name(m, flash, a);
        if (report.find_point(point) == nullptr) continue;
        any = true;
        const auto mean = [&](const char* metric) {
            return report.metric_mean(point, metric);
        };
        t.add_row({a.key, util::fmt(mean("protected_p50_ms"), 0),
                   util::fmt(mean("protected_p95_ms"), 0),
                   util::fmt(mean("protected_p99_ms"), 0),
                   util::fmt(mean("steady_p99_ms"), 0),
                   util::fmt(mean("flash_p99_ms"), 0),
                   util::fmt(mean("protected_rps"), 1),
                   util::fmt(mean("total_rps"), 0),
                   util::fmt(mean("overhead_pct"), 2),
                   util::fmt(mean("boundaries_missed"), 0)});
    }
    if (!any) return;
    out << "\n" << m.sites << " sites / " << m.ncpus << " cpus, flash x"
        << static_cast<int>(flash) << " (latencies in ms)\n";
    t.print(out);
}

void present(const harness::SweepReport& report, std::ostream& out) {
    out << "\nweb_scale: open-loop hosting under a flash crowd — site A buys "
           "a protected share (8 vs 1, ~33% headroom over its traffic);\n"
           "which deployment defends its p99?\n";
    for (const Machine& m : kMachines) {
        for (const double flash : kFlashGrid) {
            print_machine_table(report, out, m, flash);
        }
    }
    out << "\nReading: 'kernel' leaves site A to the native policy; the "
           "global/percore arms differ only in who runs the Figure-3 cycle.\n"
           "A cycle's wall length is deployment-independent, so the per-core "
           "win is the affordable quantum: at 1000 sites a global driver's\n"
           "tick (~17 ms) exceeds q=10 ms and it misses boundaries wholesale, "
           "while each per-core driver ticks ~60 principals comfortably.\n"
           "percore_q10_s1 revokes site A's purchase: protection follows the "
           "share, not the placement.\n";
}

}  // namespace

void register_web_scale_experiment() {
    harness::Experiment e;
    e.name = "web_scale";
    e.description =
        "96-1000 open-loop sites under a flash crowd: share-protected p99 "
        "across kernel/global/per-core deployments";
    e.make_tasks = make_tasks;
    e.present = present;
    harness::ExperimentRegistry::instance().add(std::move(e));
}

}  // namespace alps::bench
