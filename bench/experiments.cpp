#include "../bench/experiments.h"

namespace alps::bench {

void register_all_experiments() {
    static const bool once = [] {
        register_fig4_experiment();
        register_scalability_experiment();
        register_reproduction_gate_experiment();
        register_fault_campaign_experiment();
        register_chaos_campaign_experiment();
        register_sim_perf_experiment();
        register_policy_zoo_experiment();
        register_many_core_experiment();
        register_web_scale_experiment();
        register_sharded_run_experiment();
        return true;
    }();
    (void)once;
}

}  // namespace alps::bench
