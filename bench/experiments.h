// Sweep-harness registrations of the paper experiments (see src/harness/).
//
// Each register_* declares one experiment — its parameter grid, its
// paper-style text presentation, and (for the gate) its pass/fail criteria —
// in the harness ExperimentRegistry. Registration is explicit rather than via
// static initializers so that linking the static library cannot silently drop
// an experiment. The standalone bench binaries and tools/alps-sweep both call
// register_all_experiments() (idempotent) and then run by name.
#pragma once

namespace alps::bench {

/// Figure 4: accuracy vs quantum length across the nine workloads ("fig4").
void register_fig4_experiment();

/// Figures 8 & 9 + §4.2 threshold analysis ("fig8_fig9").
void register_scalability_experiment();

/// Every shape criterion from DESIGN.md in one run ("reproduction_gate").
void register_reproduction_gate_experiment();

/// Robustness under injected control-channel faults ("fault_campaign").
void register_fault_campaign_experiment();

/// Robustness of the sweep harness itself: tasks that crash, stall, or throw,
/// exercising RunSupervisor retry/quarantine ("chaos_campaign").
void register_chaos_campaign_experiment();

/// Wall-clock throughput of the simulation substrate itself ("sim_perf").
/// The one experiment whose JSON is host-timing-dependent (not bit-identical).
void register_sim_perf_experiment();

/// ALPS share accuracy on each kernel policy, plus the stride-engine A/B
/// ("policy_zoo").
void register_policy_zoo_experiment();

/// One-global vs one-per-core ALPS on a 16/64/256-core machine with per-CPU
/// run queues ("many_core"). Honors --ncpus to run a single machine size.
void register_many_core_experiment();

/// Open-loop hosting under a flash crowd: share-protected latency
/// percentiles across kernel/global/per-core deployments ("web_scale").
/// Honors --ncpus, --sites, and --flash-crowd to narrow the grid.
void register_web_scale_experiment();

/// Sharded-engine determinism gate: the 8-group machine bit-identical at
/// 1/2/8 shards, serial and threaded, per kernel policy ("sharded_run").
/// Honors --shards and --kernel-policy to narrow the grid.
void register_sharded_run_experiment();

/// Registers everything above exactly once (safe to call repeatedly).
void register_all_experiments();

}  // namespace alps::bench
