file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_signals.dir/bench_ablation_signals.cpp.o"
  "CMakeFiles/bench_ablation_signals.dir/bench_ablation_signals.cpp.o.d"
  "bench_ablation_signals"
  "bench_ablation_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
