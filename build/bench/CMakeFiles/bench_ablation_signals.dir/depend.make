# Empty dependencies file for bench_ablation_signals.
# This may be replaced when dependencies are built.
