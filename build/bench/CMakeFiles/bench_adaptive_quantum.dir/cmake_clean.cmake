file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_quantum.dir/bench_adaptive_quantum.cpp.o"
  "CMakeFiles/bench_adaptive_quantum.dir/bench_adaptive_quantum.cpp.o.d"
  "bench_adaptive_quantum"
  "bench_adaptive_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
