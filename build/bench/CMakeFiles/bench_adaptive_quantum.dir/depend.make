# Empty dependencies file for bench_adaptive_quantum.
# This may be replaced when dependencies are built.
