file(REMOVE_RECURSE
  "CMakeFiles/bench_cgroup_comparison.dir/bench_cgroup_comparison.cpp.o"
  "CMakeFiles/bench_cgroup_comparison.dir/bench_cgroup_comparison.cpp.o.d"
  "bench_cgroup_comparison"
  "bench_cgroup_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cgroup_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
