# Empty compiler generated dependencies file for bench_cgroup_comparison.
# This may be replaced when dependencies are built.
