
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_io.cpp" "bench/CMakeFiles/bench_fig6_io.dir/bench_fig6_io.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_io.dir/bench_fig6_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/alps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/alps/CMakeFiles/alps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/alps_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/alps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/alps_web.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/alps_posix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
