file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_multi.dir/bench_fig7_multi.cpp.o"
  "CMakeFiles/bench_fig7_multi.dir/bench_fig7_multi.cpp.o.d"
  "bench_fig7_multi"
  "bench_fig7_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
