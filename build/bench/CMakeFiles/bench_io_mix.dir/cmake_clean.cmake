file(REMOVE_RECURSE
  "CMakeFiles/bench_io_mix.dir/bench_io_mix.cpp.o"
  "CMakeFiles/bench_io_mix.dir/bench_io_mix.cpp.o.d"
  "bench_io_mix"
  "bench_io_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
