# Empty compiler generated dependencies file for bench_io_mix.
# This may be replaced when dependencies are built.
