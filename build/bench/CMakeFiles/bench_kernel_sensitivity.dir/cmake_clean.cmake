file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_sensitivity.dir/bench_kernel_sensitivity.cpp.o"
  "CMakeFiles/bench_kernel_sensitivity.dir/bench_kernel_sensitivity.cpp.o.d"
  "bench_kernel_sensitivity"
  "bench_kernel_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
