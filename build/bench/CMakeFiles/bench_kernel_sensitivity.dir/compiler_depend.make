# Empty compiler generated dependencies file for bench_kernel_sensitivity.
# This may be replaced when dependencies are built.
