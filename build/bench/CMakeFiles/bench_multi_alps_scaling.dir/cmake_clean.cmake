file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_alps_scaling.dir/bench_multi_alps_scaling.cpp.o"
  "CMakeFiles/bench_multi_alps_scaling.dir/bench_multi_alps_scaling.cpp.o.d"
  "bench_multi_alps_scaling"
  "bench_multi_alps_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_alps_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
