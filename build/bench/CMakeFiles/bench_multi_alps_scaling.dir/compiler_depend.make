# Empty compiler generated dependencies file for bench_multi_alps_scaling.
# This may be replaced when dependencies are built.
