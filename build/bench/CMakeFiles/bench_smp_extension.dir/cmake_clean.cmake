file(REMOVE_RECURSE
  "CMakeFiles/bench_smp_extension.dir/bench_smp_extension.cpp.o"
  "CMakeFiles/bench_smp_extension.dir/bench_smp_extension.cpp.o.d"
  "bench_smp_extension"
  "bench_smp_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
