# Empty dependencies file for bench_smp_extension.
# This may be replaced when dependencies are built.
