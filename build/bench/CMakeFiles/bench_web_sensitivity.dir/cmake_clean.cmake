file(REMOVE_RECURSE
  "CMakeFiles/bench_web_sensitivity.dir/bench_web_sensitivity.cpp.o"
  "CMakeFiles/bench_web_sensitivity.dir/bench_web_sensitivity.cpp.o.d"
  "bench_web_sensitivity"
  "bench_web_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_web_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
