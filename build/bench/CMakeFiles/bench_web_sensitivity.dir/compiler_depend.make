# Empty compiler generated dependencies file for bench_web_sensitivity.
# This may be replaced when dependencies are built.
