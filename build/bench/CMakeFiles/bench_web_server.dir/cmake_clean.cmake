file(REMOVE_RECURSE
  "CMakeFiles/bench_web_server.dir/bench_web_server.cpp.o"
  "CMakeFiles/bench_web_server.dir/bench_web_server.cpp.o.d"
  "bench_web_server"
  "bench_web_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_web_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
