# Empty compiler generated dependencies file for bench_web_server.
# This may be replaced when dependencies are built.
