file(REMOVE_RECURSE
  "CMakeFiles/middleware_envs.dir/middleware_envs.cpp.o"
  "CMakeFiles/middleware_envs.dir/middleware_envs.cpp.o.d"
  "middleware_envs"
  "middleware_envs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_envs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
