# Empty compiler generated dependencies file for middleware_envs.
# This may be replaced when dependencies are built.
