file(REMOVE_RECURSE
  "CMakeFiles/multi_alps.dir/multi_alps.cpp.o"
  "CMakeFiles/multi_alps.dir/multi_alps.cpp.o.d"
  "multi_alps"
  "multi_alps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_alps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
