# Empty compiler generated dependencies file for multi_alps.
# This may be replaced when dependencies are built.
