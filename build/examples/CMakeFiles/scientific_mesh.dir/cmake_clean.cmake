file(REMOVE_RECURSE
  "CMakeFiles/scientific_mesh.dir/scientific_mesh.cpp.o"
  "CMakeFiles/scientific_mesh.dir/scientific_mesh.cpp.o.d"
  "scientific_mesh"
  "scientific_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scientific_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
