# Empty compiler generated dependencies file for scientific_mesh.
# This may be replaced when dependencies are built.
