file(REMOVE_RECURSE
  "CMakeFiles/webserver_shares.dir/webserver_shares.cpp.o"
  "CMakeFiles/webserver_shares.dir/webserver_shares.cpp.o.d"
  "webserver_shares"
  "webserver_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
