# Empty dependencies file for webserver_shares.
# This may be replaced when dependencies are built.
