#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "alps::alps_util" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_util.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_util )
list(APPEND _cmake_import_check_files_for_alps::alps_util "${_IMPORT_PREFIX}/lib/libalps_util.a" )

# Import target "alps::alps_sim" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_sim.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_sim )
list(APPEND _cmake_import_check_files_for_alps::alps_sim "${_IMPORT_PREFIX}/lib/libalps_sim.a" )

# Import target "alps::alps_os" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_os APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_os PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_os.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_os )
list(APPEND _cmake_import_check_files_for_alps::alps_os "${_IMPORT_PREFIX}/lib/libalps_os.a" )

# Import target "alps::alps_sched" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_sched APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_sched PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_sched.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_sched )
list(APPEND _cmake_import_check_files_for_alps::alps_sched "${_IMPORT_PREFIX}/lib/libalps_sched.a" )

# Import target "alps::alps_core" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_core.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_core )
list(APPEND _cmake_import_check_files_for_alps::alps_core "${_IMPORT_PREFIX}/lib/libalps_core.a" )

# Import target "alps::alps_workload" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_workload.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_workload )
list(APPEND _cmake_import_check_files_for_alps::alps_workload "${_IMPORT_PREFIX}/lib/libalps_workload.a" )

# Import target "alps::alps_metrics" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_metrics APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_metrics PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_metrics.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_metrics )
list(APPEND _cmake_import_check_files_for_alps::alps_metrics "${_IMPORT_PREFIX}/lib/libalps_metrics.a" )

# Import target "alps::alps_web" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_web APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_web PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_web.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_web )
list(APPEND _cmake_import_check_files_for_alps::alps_web "${_IMPORT_PREFIX}/lib/libalps_web.a" )

# Import target "alps::alps_posix" for configuration "RelWithDebInfo"
set_property(TARGET alps::alps_posix APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(alps::alps_posix PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libalps_posix.a"
  )

list(APPEND _cmake_import_check_targets alps::alps_posix )
list(APPEND _cmake_import_check_files_for_alps::alps_posix "${_IMPORT_PREFIX}/lib/libalps_posix.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
