
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alps/adaptive.cpp" "src/alps/CMakeFiles/alps_core.dir/adaptive.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/alps/cost_model.cpp" "src/alps/CMakeFiles/alps_core.dir/cost_model.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/alps/group_control.cpp" "src/alps/CMakeFiles/alps_core.dir/group_control.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/group_control.cpp.o.d"
  "/root/repo/src/alps/scheduler.cpp" "src/alps/CMakeFiles/alps_core.dir/scheduler.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/alps/sim_adapter.cpp" "src/alps/CMakeFiles/alps_core.dir/sim_adapter.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/sim_adapter.cpp.o.d"
  "/root/repo/src/alps/snapshot.cpp" "src/alps/CMakeFiles/alps_core.dir/snapshot.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/snapshot.cpp.o.d"
  "/root/repo/src/alps/trace.cpp" "src/alps/CMakeFiles/alps_core.dir/trace.cpp.o" "gcc" "src/alps/CMakeFiles/alps_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
