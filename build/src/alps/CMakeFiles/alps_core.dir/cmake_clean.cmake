file(REMOVE_RECURSE
  "CMakeFiles/alps_core.dir/adaptive.cpp.o"
  "CMakeFiles/alps_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/alps_core.dir/cost_model.cpp.o"
  "CMakeFiles/alps_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/alps_core.dir/group_control.cpp.o"
  "CMakeFiles/alps_core.dir/group_control.cpp.o.d"
  "CMakeFiles/alps_core.dir/scheduler.cpp.o"
  "CMakeFiles/alps_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/alps_core.dir/sim_adapter.cpp.o"
  "CMakeFiles/alps_core.dir/sim_adapter.cpp.o.d"
  "CMakeFiles/alps_core.dir/snapshot.cpp.o"
  "CMakeFiles/alps_core.dir/snapshot.cpp.o.d"
  "CMakeFiles/alps_core.dir/trace.cpp.o"
  "CMakeFiles/alps_core.dir/trace.cpp.o.d"
  "libalps_core.a"
  "libalps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
