file(REMOVE_RECURSE
  "libalps_core.a"
)
