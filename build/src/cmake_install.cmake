# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/os/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sched/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/alps/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workload/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/metrics/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/web/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/posix/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/libalps_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libalps_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/os/libalps_os.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sched/libalps_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/alps/libalps_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libalps_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/metrics/libalps_metrics.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/web/libalps_web.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/posix/libalps_posix.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/alps" TYPE DIRECTORY FILES
    "/root/repo/src/util"
    "/root/repo/src/sim"
    "/root/repo/src/os"
    "/root/repo/src/sched"
    "/root/repo/src/alps"
    "/root/repo/src/workload"
    "/root/repo/src/metrics"
    "/root/repo/src/web"
    "/root/repo/src/posix"
    FILES_MATCHING REGEX "/[^/]*\\.h$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/alps/alpsTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/alps/alpsTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/655f474814e71094b5ab6b104e20a8c5/alpsTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/alps/alpsTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/alps/alpsTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/alps" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/655f474814e71094b5ab6b104e20a8c5/alpsTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/alps" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/655f474814e71094b5ab6b104e20a8c5/alpsTargets-relwithdebinfo.cmake")
  endif()
endif()

