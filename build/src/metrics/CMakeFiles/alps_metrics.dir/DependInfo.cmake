
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cycle_log.cpp" "src/metrics/CMakeFiles/alps_metrics.dir/cycle_log.cpp.o" "gcc" "src/metrics/CMakeFiles/alps_metrics.dir/cycle_log.cpp.o.d"
  "/root/repo/src/metrics/exact_cycle_log.cpp" "src/metrics/CMakeFiles/alps_metrics.dir/exact_cycle_log.cpp.o" "gcc" "src/metrics/CMakeFiles/alps_metrics.dir/exact_cycle_log.cpp.o.d"
  "/root/repo/src/metrics/slope_analysis.cpp" "src/metrics/CMakeFiles/alps_metrics.dir/slope_analysis.cpp.o" "gcc" "src/metrics/CMakeFiles/alps_metrics.dir/slope_analysis.cpp.o.d"
  "/root/repo/src/metrics/threshold.cpp" "src/metrics/CMakeFiles/alps_metrics.dir/threshold.cpp.o" "gcc" "src/metrics/CMakeFiles/alps_metrics.dir/threshold.cpp.o.d"
  "/root/repo/src/metrics/waterfill.cpp" "src/metrics/CMakeFiles/alps_metrics.dir/waterfill.cpp.o" "gcc" "src/metrics/CMakeFiles/alps_metrics.dir/waterfill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alps/CMakeFiles/alps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
