file(REMOVE_RECURSE
  "CMakeFiles/alps_metrics.dir/cycle_log.cpp.o"
  "CMakeFiles/alps_metrics.dir/cycle_log.cpp.o.d"
  "CMakeFiles/alps_metrics.dir/exact_cycle_log.cpp.o"
  "CMakeFiles/alps_metrics.dir/exact_cycle_log.cpp.o.d"
  "CMakeFiles/alps_metrics.dir/slope_analysis.cpp.o"
  "CMakeFiles/alps_metrics.dir/slope_analysis.cpp.o.d"
  "CMakeFiles/alps_metrics.dir/threshold.cpp.o"
  "CMakeFiles/alps_metrics.dir/threshold.cpp.o.d"
  "CMakeFiles/alps_metrics.dir/waterfill.cpp.o"
  "CMakeFiles/alps_metrics.dir/waterfill.cpp.o.d"
  "libalps_metrics.a"
  "libalps_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
