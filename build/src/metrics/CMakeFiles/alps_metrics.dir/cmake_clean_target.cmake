file(REMOVE_RECURSE
  "libalps_metrics.a"
)
