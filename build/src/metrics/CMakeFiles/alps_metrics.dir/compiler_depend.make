# Empty compiler generated dependencies file for alps_metrics.
# This may be replaced when dependencies are built.
