
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/behaviors.cpp" "src/os/CMakeFiles/alps_os.dir/behaviors.cpp.o" "gcc" "src/os/CMakeFiles/alps_os.dir/behaviors.cpp.o.d"
  "/root/repo/src/os/bsd_policy.cpp" "src/os/CMakeFiles/alps_os.dir/bsd_policy.cpp.o" "gcc" "src/os/CMakeFiles/alps_os.dir/bsd_policy.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/alps_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/alps_os.dir/kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
