file(REMOVE_RECURSE
  "CMakeFiles/alps_os.dir/behaviors.cpp.o"
  "CMakeFiles/alps_os.dir/behaviors.cpp.o.d"
  "CMakeFiles/alps_os.dir/bsd_policy.cpp.o"
  "CMakeFiles/alps_os.dir/bsd_policy.cpp.o.d"
  "CMakeFiles/alps_os.dir/kernel.cpp.o"
  "CMakeFiles/alps_os.dir/kernel.cpp.o.d"
  "libalps_os.a"
  "libalps_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
