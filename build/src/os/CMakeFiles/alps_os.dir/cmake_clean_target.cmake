file(REMOVE_RECURSE
  "libalps_os.a"
)
