# Empty dependencies file for alps_os.
# This may be replaced when dependencies are built.
