
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posix/cgroup.cpp" "src/posix/CMakeFiles/alps_posix.dir/cgroup.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/cgroup.cpp.o.d"
  "/root/repo/src/posix/cli.cpp" "src/posix/CMakeFiles/alps_posix.dir/cli.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/cli.cpp.o.d"
  "/root/repo/src/posix/host.cpp" "src/posix/CMakeFiles/alps_posix.dir/host.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/host.cpp.o.d"
  "/root/repo/src/posix/proc_stat.cpp" "src/posix/CMakeFiles/alps_posix.dir/proc_stat.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/proc_stat.cpp.o.d"
  "/root/repo/src/posix/runner.cpp" "src/posix/CMakeFiles/alps_posix.dir/runner.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/runner.cpp.o.d"
  "/root/repo/src/posix/spawn.cpp" "src/posix/CMakeFiles/alps_posix.dir/spawn.cpp.o" "gcc" "src/posix/CMakeFiles/alps_posix.dir/spawn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alps/CMakeFiles/alps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
