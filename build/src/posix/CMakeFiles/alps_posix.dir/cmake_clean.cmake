file(REMOVE_RECURSE
  "CMakeFiles/alps_posix.dir/cgroup.cpp.o"
  "CMakeFiles/alps_posix.dir/cgroup.cpp.o.d"
  "CMakeFiles/alps_posix.dir/cli.cpp.o"
  "CMakeFiles/alps_posix.dir/cli.cpp.o.d"
  "CMakeFiles/alps_posix.dir/host.cpp.o"
  "CMakeFiles/alps_posix.dir/host.cpp.o.d"
  "CMakeFiles/alps_posix.dir/proc_stat.cpp.o"
  "CMakeFiles/alps_posix.dir/proc_stat.cpp.o.d"
  "CMakeFiles/alps_posix.dir/runner.cpp.o"
  "CMakeFiles/alps_posix.dir/runner.cpp.o.d"
  "CMakeFiles/alps_posix.dir/spawn.cpp.o"
  "CMakeFiles/alps_posix.dir/spawn.cpp.o.d"
  "libalps_posix.a"
  "libalps_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
