file(REMOVE_RECURSE
  "libalps_posix.a"
)
