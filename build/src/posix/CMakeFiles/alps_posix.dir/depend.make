# Empty dependencies file for alps_posix.
# This may be replaced when dependencies are built.
