
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/lottery_policy.cpp" "src/sched/CMakeFiles/alps_sched.dir/lottery_policy.cpp.o" "gcc" "src/sched/CMakeFiles/alps_sched.dir/lottery_policy.cpp.o.d"
  "/root/repo/src/sched/stride_policy.cpp" "src/sched/CMakeFiles/alps_sched.dir/stride_policy.cpp.o" "gcc" "src/sched/CMakeFiles/alps_sched.dir/stride_policy.cpp.o.d"
  "/root/repo/src/sched/wrr_policy.cpp" "src/sched/CMakeFiles/alps_sched.dir/wrr_policy.cpp.o" "gcc" "src/sched/CMakeFiles/alps_sched.dir/wrr_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
