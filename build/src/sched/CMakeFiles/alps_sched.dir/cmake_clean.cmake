file(REMOVE_RECURSE
  "CMakeFiles/alps_sched.dir/lottery_policy.cpp.o"
  "CMakeFiles/alps_sched.dir/lottery_policy.cpp.o.d"
  "CMakeFiles/alps_sched.dir/stride_policy.cpp.o"
  "CMakeFiles/alps_sched.dir/stride_policy.cpp.o.d"
  "CMakeFiles/alps_sched.dir/wrr_policy.cpp.o"
  "CMakeFiles/alps_sched.dir/wrr_policy.cpp.o.d"
  "libalps_sched.a"
  "libalps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
