file(REMOVE_RECURSE
  "CMakeFiles/alps_sim.dir/engine.cpp.o"
  "CMakeFiles/alps_sim.dir/engine.cpp.o.d"
  "libalps_sim.a"
  "libalps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
