file(REMOVE_RECURSE
  "libalps_sim.a"
)
