# Empty dependencies file for alps_sim.
# This may be replaced when dependencies are built.
