file(REMOVE_RECURSE
  "CMakeFiles/alps_util.dir/rng.cpp.o"
  "CMakeFiles/alps_util.dir/rng.cpp.o.d"
  "CMakeFiles/alps_util.dir/shares.cpp.o"
  "CMakeFiles/alps_util.dir/shares.cpp.o.d"
  "CMakeFiles/alps_util.dir/stats.cpp.o"
  "CMakeFiles/alps_util.dir/stats.cpp.o.d"
  "CMakeFiles/alps_util.dir/table.cpp.o"
  "CMakeFiles/alps_util.dir/table.cpp.o.d"
  "libalps_util.a"
  "libalps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
