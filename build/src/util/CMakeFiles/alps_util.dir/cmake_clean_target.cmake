file(REMOVE_RECURSE
  "libalps_util.a"
)
