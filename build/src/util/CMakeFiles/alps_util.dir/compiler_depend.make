# Empty compiler generated dependencies file for alps_util.
# This may be replaced when dependencies are built.
