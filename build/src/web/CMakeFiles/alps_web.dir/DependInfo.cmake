
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/clients.cpp" "src/web/CMakeFiles/alps_web.dir/clients.cpp.o" "gcc" "src/web/CMakeFiles/alps_web.dir/clients.cpp.o.d"
  "/root/repo/src/web/experiment.cpp" "src/web/CMakeFiles/alps_web.dir/experiment.cpp.o" "gcc" "src/web/CMakeFiles/alps_web.dir/experiment.cpp.o.d"
  "/root/repo/src/web/site.cpp" "src/web/CMakeFiles/alps_web.dir/site.cpp.o" "gcc" "src/web/CMakeFiles/alps_web.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alps/CMakeFiles/alps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/alps_os.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
