file(REMOVE_RECURSE
  "CMakeFiles/alps_web.dir/clients.cpp.o"
  "CMakeFiles/alps_web.dir/clients.cpp.o.d"
  "CMakeFiles/alps_web.dir/experiment.cpp.o"
  "CMakeFiles/alps_web.dir/experiment.cpp.o.d"
  "CMakeFiles/alps_web.dir/site.cpp.o"
  "CMakeFiles/alps_web.dir/site.cpp.o.d"
  "libalps_web.a"
  "libalps_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
