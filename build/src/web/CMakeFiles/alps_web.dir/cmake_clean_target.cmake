file(REMOVE_RECURSE
  "libalps_web.a"
)
