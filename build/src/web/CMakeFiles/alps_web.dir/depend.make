# Empty dependencies file for alps_web.
# This may be replaced when dependencies are built.
