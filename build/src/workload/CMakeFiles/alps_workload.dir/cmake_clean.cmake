file(REMOVE_RECURSE
  "CMakeFiles/alps_workload.dir/distributions.cpp.o"
  "CMakeFiles/alps_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/alps_workload.dir/experiments.cpp.o"
  "CMakeFiles/alps_workload.dir/experiments.cpp.o.d"
  "libalps_workload.a"
  "libalps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
