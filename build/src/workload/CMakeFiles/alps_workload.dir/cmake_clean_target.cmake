file(REMOVE_RECURSE
  "libalps_workload.a"
)
