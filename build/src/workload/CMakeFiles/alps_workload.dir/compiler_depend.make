# Empty compiler generated dependencies file for alps_workload.
# This may be replaced when dependencies are built.
