file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_core_adaptive.cpp.o"
  "CMakeFiles/test_core.dir/test_core_adaptive.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/test_core_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_driver.cpp.o"
  "CMakeFiles/test_core.dir/test_core_driver.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_group.cpp.o"
  "CMakeFiles/test_core.dir/test_core_group.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_group_properties.cpp.o"
  "CMakeFiles/test_core.dir/test_core_group_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_properties.cpp.o"
  "CMakeFiles/test_core.dir/test_core_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_scheduler.cpp.o"
  "CMakeFiles/test_core.dir/test_core_scheduler.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_snapshot.cpp.o"
  "CMakeFiles/test_core.dir/test_core_snapshot.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_trace.cpp.o"
  "CMakeFiles/test_core.dir/test_core_trace.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
