file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/test_integration_failures.cpp.o"
  "CMakeFiles/test_integration.dir/test_integration_failures.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_integration_sim.cpp.o"
  "CMakeFiles/test_integration.dir/test_integration_sim.cpp.o.d"
  "CMakeFiles/test_integration.dir/test_integration_smp.cpp.o"
  "CMakeFiles/test_integration.dir/test_integration_smp.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
