file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/test_os_behaviors.cpp.o"
  "CMakeFiles/test_os.dir/test_os_behaviors.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_bsd_policy.cpp.o"
  "CMakeFiles/test_os.dir/test_os_bsd_policy.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_edge_cases.cpp.o"
  "CMakeFiles/test_os.dir/test_os_edge_cases.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_kernel.cpp.o"
  "CMakeFiles/test_os.dir/test_os_kernel.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_nice.cpp.o"
  "CMakeFiles/test_os.dir/test_os_nice.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_signal_latency.cpp.o"
  "CMakeFiles/test_os.dir/test_os_signal_latency.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_smp.cpp.o"
  "CMakeFiles/test_os.dir/test_os_smp.cpp.o.d"
  "CMakeFiles/test_os.dir/test_os_stress.cpp.o"
  "CMakeFiles/test_os.dir/test_os_stress.cpp.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
