file(REMOVE_RECURSE
  "CMakeFiles/test_posix.dir/test_posix.cpp.o"
  "CMakeFiles/test_posix.dir/test_posix.cpp.o.d"
  "CMakeFiles/test_posix.dir/test_posix_cgroup.cpp.o"
  "CMakeFiles/test_posix.dir/test_posix_cgroup.cpp.o.d"
  "CMakeFiles/test_posix.dir/test_posix_cli.cpp.o"
  "CMakeFiles/test_posix.dir/test_posix_cli.cpp.o.d"
  "CMakeFiles/test_posix.dir/test_posix_fuzz.cpp.o"
  "CMakeFiles/test_posix.dir/test_posix_fuzz.cpp.o.d"
  "test_posix"
  "test_posix.pdb"
  "test_posix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
