file(REMOVE_RECURSE
  "CMakeFiles/alpsctl.dir/alpsctl.cpp.o"
  "CMakeFiles/alpsctl.dir/alpsctl.cpp.o.d"
  "alpsctl"
  "alpsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
