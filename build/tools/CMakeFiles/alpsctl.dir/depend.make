# Empty dependencies file for alpsctl.
# This may be replaced when dependencies are built.
