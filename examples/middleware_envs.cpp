// The paper's third motivating application (§1): middleware providing
// "remote resource-controlled execution environments" (the authors' Java
// Active Extensions system). Each client rents an execution environment —
// a group of processes — with a purchased CPU rate; environments come and
// go at runtime.
//
// This example runs a middleware host on the simulated kernel: a group-
// principal ALPS schedules three environments at 1:2:5 paid rates; env
// processes vary in count and behaviour (compute + bursts of I/O), a fourth
// environment is provisioned mid-run, and one environment is decommissioned.
#include <array>
#include <iostream>
#include <memory>
#include <vector>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"

int main() {
    using namespace alps;

    sim::Engine engine;
    os::Kernel kernel(engine);
    core::SchedulerConfig cfg;
    cfg.quantum = util::msec(10);
    core::SimGroupAlps alps(kernel, cfg);

    struct Env {
        const char* name;
        os::Uid uid;
        util::Share rate;
        int procs;
        core::EntityId principal = 0;
    };
    std::vector<Env> envs{{"env-basic", 201, 1, 1},
                          {"env-standard", 202, 2, 3},
                          {"env-premium", 203, 5, 4}};

    auto populate = [&](Env& env) {
        for (int i = 0; i < env.procs; ++i) {
            if (i % 2 == 0) {
                kernel.spawn(std::string(env.name) + "-w" + std::to_string(i), env.uid,
                             std::make_unique<os::CpuBoundBehavior>());
            } else {
                // Extension code that also does I/O.
                kernel.spawn(std::string(env.name) + "-io" + std::to_string(i), env.uid,
                             std::make_unique<os::PhasedIoBehavior>(util::msec(30),
                                                                    util::msec(20)));
            }
        }
        env.principal = alps.manage_user(env.name, env.uid, env.rate);
    };
    for (auto& env : envs) populate(env);

    auto report = [&](const char* title, util::Duration window) {
        std::array<util::Duration, 8> base{};
        std::vector<std::vector<os::Pid>> members(envs.size());
        double total = 0.0;
        std::vector<double> consumed(envs.size(), 0.0);
        for (std::size_t e = 0; e < envs.size(); ++e) {
            members[e] = kernel.pids_of_uid(envs[e].uid);
        }
        std::vector<std::vector<util::Duration>> start(envs.size());
        for (std::size_t e = 0; e < envs.size(); ++e) {
            for (const os::Pid pid : members[e]) {
                start[e].push_back(kernel.cpu_time(pid));
            }
        }
        engine.run_until(engine.now() + window);
        for (std::size_t e = 0; e < envs.size(); ++e) {
            for (std::size_t i = 0; i < members[e].size(); ++i) {
                if (!kernel.exists(members[e][i])) continue;
                consumed[e] +=
                    util::to_sec(kernel.cpu_time(members[e][i]) - start[e][i]);
            }
            total += consumed[e];
        }
        util::Share rate_total = 0;
        for (const auto& env : envs) rate_total += env.rate;
        std::cout << "\n" << title << "\n";
        util::TextTable t({"Environment", "Rate", "Procs", "Target %", "Received %"});
        for (std::size_t e = 0; e < envs.size(); ++e) {
            t.add_row({envs[e].name, std::to_string(envs[e].rate),
                       std::to_string(members[e].size()),
                       util::fmt(100.0 * static_cast<double>(envs[e].rate) /
                                     static_cast<double>(rate_total),
                                 1),
                       util::fmt(100.0 * consumed[e] / total, 1)});
        }
        t.print(std::cout);
        (void)base;
    };

    std::cout << "Middleware host: execution environments at paid CPU rates "
                 "(group principals, uid = environment).\n";
    engine.run_until(engine.now() + util::sec(5));  // settle
    report("Phase 1: three environments, rates 1:2:5", util::sec(20));

    // A new customer provisions an environment mid-run.
    envs.push_back({"env-newcomer", 204, 2, 2});
    populate(envs.back());
    std::cout << "\n>>> env-newcomer provisioned (rate 2, 2 processes).\n";
    engine.run_until(engine.now() + util::sec(3));  // membership settles
    report("Phase 2: four environments, rates 1:2:5:2", util::sec(20));

    // env-standard is decommissioned: kill its processes, drop the principal.
    for (const os::Pid pid : kernel.pids_of_uid(202)) {
        kernel.send_signal(pid, os::Signal::kKill);
    }
    alps.scheduler().remove(envs[1].principal);
    envs.erase(envs.begin() + 1);
    std::cout << "\n>>> env-standard decommissioned.\n";
    engine.run_until(engine.now() + util::sec(3));
    report("Phase 3: remaining environments, rates 1:5:2", util::sec(20));
    return 0;
}
