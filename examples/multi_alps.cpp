// Two independent applications, each with its own ALPS (paper §4.1): ALPSs
// do not coordinate, require no special privilege, and each apportions
// whatever CPU the kernel happens to give its application.
//
// App "render" (shares 1:1:2) starts first and owns the whole machine; app
// "batch" (shares 1:4) arrives later and the kernel splits the machine
// roughly by process count — yet *within* each app the ratios stay exact.
#include <array>
#include <iostream>
#include <memory>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"

int main() {
    using namespace alps;

    sim::Engine engine;
    os::Kernel kernel(engine);
    core::SchedulerConfig cfg;
    cfg.quantum = util::msec(10);

    // App 1: "render", three workers 1:1:2.
    core::SimAlps render(kernel, cfg, core::CostModel{}, "alps-render", 1);
    std::array<os::Pid, 3> rpids{};
    const util::Share rshares[] = {1, 1, 2};
    for (std::size_t i = 0; i < 3; ++i) {
        rpids[i] = kernel.spawn("render" + std::to_string(i), 1,
                                std::make_unique<os::CpuBoundBehavior>());
        render.manage(rpids[i], rshares[i]);
    }

    engine.run_until(engine.now() + util::sec(10));

    // App 2 arrives: "batch", two workers 1:4, its own ALPS.
    core::SimAlps batch(kernel, cfg, core::CostModel{}, "alps-batch", 2);
    std::array<os::Pid, 2> bpids{};
    const util::Share bshares[] = {1, 4};
    for (std::size_t i = 0; i < 2; ++i) {
        bpids[i] = kernel.spawn("batch" + std::to_string(i), 2,
                                std::make_unique<os::CpuBoundBehavior>());
        batch.manage(bpids[i], bshares[i]);
    }
    std::cout << ">>> t=10s: second application (own ALPS) joins.\n";

    // Snapshot and run the contention phase.
    std::array<util::Duration, 3> r0{};
    std::array<util::Duration, 2> b0{};
    for (std::size_t i = 0; i < 3; ++i) r0[i] = kernel.cpu_time(rpids[i]);
    for (std::size_t i = 0; i < 2; ++i) b0[i] = kernel.cpu_time(bpids[i]);
    engine.run_until(engine.now() + util::sec(30));

    double rc[3], bc[2], rtot = 0, btot = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        rc[i] = util::to_sec(kernel.cpu_time(rpids[i]) - r0[i]);
        rtot += rc[i];
    }
    for (std::size_t i = 0; i < 2; ++i) {
        bc[i] = util::to_sec(kernel.cpu_time(bpids[i]) - b0[i]);
        btot += bc[i];
    }

    std::cout << "\nContention phase (30 s): kernel gave render "
              << util::fmt(100.0 * rtot / (rtot + btot), 1) << "% and batch "
              << util::fmt(100.0 * btot / (rtot + btot), 1)
              << "% of the machine (per-process fairness, 3 vs 2 procs).\n\n";

    util::TextTable t({"App", "Process", "Share", "Target % within app",
                       "Received % within app"});
    for (std::size_t i = 0; i < 3; ++i) {
        t.add_row({"render", std::to_string(rpids[i]), std::to_string(rshares[i]),
                   util::fmt(100.0 * static_cast<double>(rshares[i]) / 4.0, 1),
                   util::fmt(100.0 * rc[i] / rtot, 1)});
    }
    for (std::size_t i = 0; i < 2; ++i) {
        t.add_row({"batch", std::to_string(bpids[i]), std::to_string(bshares[i]),
                   util::fmt(100.0 * static_cast<double>(bshares[i]) / 5.0, 1),
                   util::fmt(100.0 * bc[i] / btot, 1)});
    }
    t.print(std::cout);
    std::cout << "\nEach ALPS is accurate within its own application, "
                 "regardless of the other (paper Table 3).\n";
    return 0;
}
