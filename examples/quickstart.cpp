// Quickstart: proportional-share scheduling of real processes on Linux.
//
// Forks three compute-bound children, gives them shares 1:2:3, runs the
// user-level ALPS loop for a few seconds, and prints the CPU proportions the
// children actually received. Everything runs unprivileged: progress is read
// from /proc, control is SIGSTOP/SIGCONT, timing is clock_nanosleep — the
// same recipe as the paper's FreeBSD implementation.
//
// Usage: quickstart [seconds]            (default 5)
#include <iostream>
#include <string>

#include "alps/scheduler.h"
#include "posix/host.h"
#include "posix/runner.h"
#include "posix/spawn.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace alps;
    const int seconds = argc > 1 ? std::stoi(argv[1]) : 5;

    // The paper's machine has one CPU; pin the children to core 0 so they
    // contend the same way on a multicore host.
    posix::ChildSet children;
    const util::Share shares[] = {1, 2, 3};
    for (int i = 0; i < 3; ++i) {
        const pid_t pid = children.add_busy();
        if (!posix::pin_to_cpu(pid, 0)) {
            std::cerr << "warning: could not pin pid " << pid << " to CPU 0\n";
        }
    }

    posix::PosixProcessHost host;
    std::array<util::Duration, 3> before{};
    for (int i = 0; i < 3; ++i) {
        before[static_cast<std::size_t>(i)] =
            host.read_pid(children.pids()[static_cast<std::size_t>(i)]).cpu_time;
    }

    core::SchedulerConfig cfg;
    cfg.quantum = util::msec(10);
    posix::PosixAlpsRunner runner(cfg);
    for (int i = 0; i < 3; ++i) {
        runner.scheduler().add(children.pids()[static_cast<std::size_t>(i)],
                               shares[static_cast<std::size_t>(i)]);
    }

    std::cout << "Scheduling 3 busy children with shares 1:2:3 for " << seconds
              << " s (quantum 10 ms)...\n";
    const posix::RunTotals totals = runner.run_for(util::sec(seconds));

    double consumed[3];
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
        const auto now_cpu =
            host.read_pid(children.pids()[static_cast<std::size_t>(i)]).cpu_time;
        consumed[i] = util::to_sec(now_cpu - before[static_cast<std::size_t>(i)]);
        total += consumed[i];
    }

    util::TextTable t({"Child", "Share", "Target %", "Received %", "CPU (s)"});
    for (int i = 0; i < 3; ++i) {
        t.add_row({std::to_string(children.pids()[static_cast<std::size_t>(i)]),
                   std::to_string(shares[static_cast<std::size_t>(i)]),
                   util::fmt(100.0 * static_cast<double>(shares[static_cast<std::size_t>(i)]) / 6.0, 1),
                   util::fmt(100.0 * consumed[i] / total, 1), util::fmt(consumed[i], 2)});
    }
    t.print(std::cout);
    std::cout << "ALPS ticks: " << totals.ticks << ", ALPS overhead: "
              << util::fmt(100.0 * totals.overhead_fraction, 3) << "% of one CPU\n";
    return 0;
}
