// A scientific-computing scenario from the paper's introduction: an
// application spawns one process per mesh region and wants CPU time
// apportioned to region *size* — and re-apportioned when adaptive mesh
// refinement changes the sizes.
//
// Runs on the simulated kernel for exact, reproducible output. Four solver
// processes cover regions of 10k/20k/30k/40k cells; at t=20s region 1 is
// refined to 60k cells and the application simply updates its share — no
// kernel support, no process restarts.
#include <array>
#include <iostream>
#include <memory>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/table.h"

int main() {
    using namespace alps;

    sim::Engine engine;
    os::Kernel kernel(engine);

    core::SchedulerConfig cfg;
    cfg.quantum = util::msec(10);
    core::SimAlps alps(kernel, cfg);

    // Shares in thousands of cells.
    std::array<util::Share, 4> cells{10, 20, 30, 40};
    std::array<os::Pid, 4> pids{};
    for (std::size_t i = 0; i < 4; ++i) {
        pids[i] = kernel.spawn("region" + std::to_string(i), 100,
                               std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pids[i], cells[i]);
    }

    auto report = [&](const char* title, util::Duration window,
                      const std::array<util::Duration, 4>& base) {
        double consumed[4];
        double total = 0.0;
        for (std::size_t i = 0; i < 4; ++i) {
            consumed[i] = util::to_sec(kernel.cpu_time(pids[i]) - base[i]);
            total += consumed[i];
        }
        util::Share share_total = 0;
        for (const auto s : cells) share_total += s;
        std::cout << "\n" << title << " (window " << util::to_sec(window) << " s)\n";
        util::TextTable t({"Region", "Cells (k)", "Target %", "Received %"});
        for (std::size_t i = 0; i < 4; ++i) {
            t.add_row({std::to_string(i), std::to_string(cells[i]),
                       util::fmt(100.0 * static_cast<double>(cells[i]) /
                                     static_cast<double>(share_total),
                                 1),
                       util::fmt(100.0 * consumed[i] / total, 1)});
        }
        t.print(std::cout);
    };

    auto snapshot = [&] {
        std::array<util::Duration, 4> base{};
        for (std::size_t i = 0; i < 4; ++i) base[i] = kernel.cpu_time(pids[i]);
        return base;
    };

    std::cout << "Adaptive-mesh solver: CPU proportional to region size.\n";
    auto base = snapshot();
    engine.run_until(engine.now() + util::sec(20));
    report("Phase 1: initial mesh", util::sec(20), base);

    // AMR refines region 1: 20k -> 60k cells. Reweight in place.
    cells[1] = 60;
    alps.scheduler().set_share(static_cast<core::EntityId>(pids[1]), cells[1]);
    std::cout << "\n>>> t=20s: region 1 refined to 60k cells; share updated in place.\n";

    base = snapshot();
    engine.run_until(engine.now() + util::sec(20));
    report("Phase 2: after refinement", util::sec(20), base);
    return 0;
}
