// The paper's Section-5 motivation as a runnable example: a shared web host
// with three tenants, each an Apache-prefork-style multi-process server, and
// an administrator who wants CPU isolation between *users*, not processes.
//
// Usage: webserver_shares [s1 s2 s3]        (default shares 1 2 3)
//
// Runs the closed-loop workload twice on the simulated host — once under the
// stock kernel scheduler, once with a group-principal ALPS at a 100 ms
// quantum — and prints the per-tenant throughput.
#include <iostream>
#include <string>

#include "util/table.h"
#include "web/experiment.h"

int main(int argc, char** argv) {
    using namespace alps;

    web::WebExperimentConfig cfg;
    if (argc == 4) {
        for (int i = 0; i < 3; ++i) {
            cfg.shares[static_cast<std::size_t>(i)] = std::stol(argv[i + 1]);
        }
    }
    cfg.warmup = util::sec(8);
    cfg.measure = util::sec(40);

    std::cout << "Three tenants, 325 closed-loop clients each, CPU-bound "
                 "dynamic content.\n\nWithout ALPS (kernel scheduler only):\n";
    cfg.use_alps = false;
    const auto off = web::run_web_experiment(cfg);
    cfg.use_alps = true;
    const auto on = web::run_web_experiment(cfg);

    util::TextTable t({"Tenant", "Share", "kernel-only req/s", "ALPS req/s",
                       "ALPS resp (s)", "workers"});
    for (std::size_t i = 0; i < 3; ++i) {
        t.add_row({"user" + std::to_string(101 + i),
                   std::to_string(cfg.shares[i]),
                   util::fmt(off.throughput_rps[i], 1),
                   util::fmt(on.throughput_rps[i], 1),
                   util::fmt(on.mean_response_s[i], 1),
                   std::to_string(on.workers[i])});
    }
    t.print(std::cout);
    std::cout << "\nALPS scheduler overhead: "
              << util::fmt(100.0 * on.alps_overhead_fraction, 3)
              << "% of the CPU; host utilization "
              << util::fmt(100.0 * on.cpu_utilization, 1) << "%.\n"
              << "A tenant's buggy or malicious CGI code can no longer starve "
                 "the others.\n";
    return 0;
}
