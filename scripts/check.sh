#!/usr/bin/env bash
# CI check: ThreadSanitizer build + tier-1 tests.
#
#   scripts/check.sh [extra ctest args...]
#
# Configures a separate build tree with -DALPS_SANITIZE=thread (see the
# top-level CMakeLists) and runs ctest there. The experiment harness's
# ThreadPool and sweep runner must stay TSan-clean; the rest of the suite
# rides along as a broad regression net. Pass extra ctest args to narrow the
# run, e.g. `scripts/check.sh -R 'ThreadPool|Sweep'` for just the
# concurrency-sensitive tests.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
JOBS="$(nproc 2>/dev/null || echo 2)"

# Benches and examples are not test targets; skipping them keeps the
# sanitizer build (and CI) fast.
cmake -B "$BUILD_DIR" -S . \
  -DALPS_SANITIZE=thread \
  -DALPS_BUILD_BENCH=OFF \
  -DALPS_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error makes a data-race report fail the suite instead of only
# printing it; second_deadlock_stack improves lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

echo "check.sh: TSan build + ctest passed"
