#!/usr/bin/env bash
# CI check: sanitizer builds + tier-1 tests.
#
#   scripts/check.sh [extra ctest args...]
#
# Two separate build trees (see the top-level CMakeLists' ALPS_SANITIZE):
#   build-tsan: ThreadSanitizer — the experiment harness's ThreadPool and
#     sweep runner must stay TSan-clean.
#   build-asan: AddressSanitizer + UndefinedBehaviorSanitizer — the fault-
#     injection and degradation paths do pointer-light but lifetime-heavy
#     work (entities dropped mid-tick, maps mutated during iteration bugs
#     would surface here), and the rest of the suite rides along.
# Pass extra ctest args to narrow the run, e.g.
# `scripts/check.sh -R 'ThreadPool|Sweep'` for just the concurrency tests.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
# A wedged test (e.g. a scheduler that stops making progress under injected
# faults) should fail fast, not hang CI; sanitizers are slow, so be generous.
CTEST_TIMEOUT="${CTEST_TIMEOUT:-600}"

run_suite() { # <build-dir> <sanitize-value> [extra ctest args...]
  local dir="$1" san="$2"
  shift 2
  # Benches and examples are not test targets; skipping them keeps the
  # sanitizer builds (and CI) fast.
  cmake -B "$dir" -S . \
    -DALPS_SANITIZE="$san" \
    -DALPS_BUILD_BENCH=OFF \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    --timeout "$CTEST_TIMEOUT" "$@"
}

# halt_on_error makes a data-race report fail the suite instead of only
# printing it; second_deadlock_stack improves lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
run_suite build-tsan thread "$@"

# --- Many-core TSan smoke: per-CPU run queues under the race detector ---
# Runs the 64-core column of the many_core sweep (quick scale) in its own
# ThreadSanitizer tree (the main TSan tree builds with bench OFF): per-CPU
# domains, steal/rebalance migration, the SoA sampling mirror, and the batched
# measure() path all execute while the harness pool is genuinely parallel.
# ALPS_MANY_CORE_SKIP=1 skips the leg.
if [[ "${ALPS_MANY_CORE_SKIP:-0}" != "1" ]]; then
  cmake -B build-tsan-bench -S . \
    -DALPS_SANITIZE=thread \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-tsan-bench -j "$JOBS" --target alps-sweep
  build-tsan-bench/tools/alps-sweep --experiment many_core --ncpus 64 \
    --jobs 4 --quiet --no-json
fi

# --- web_scale smoke: the hosting sweep survives supervision + TSan ---
# The cell-scale web_scale grid (open-loop traffic, shared request table,
# one-global and one-per-core ALPS with pinned drivers) under --isolate:
# every point runs in a forked worker with a watchdog, exercising the
# supervisor on the newest experiment while TSan watches the harness pool.
# ALPS_WEB_SCALE_SKIP=1 skips the leg.
if [[ "${ALPS_WEB_SCALE_SKIP:-0}" != "1" ]]; then
  cmake -B build-tsan-bench -S . \
    -DALPS_SANITIZE=thread \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-tsan-bench -j "$JOBS" --target alps-sweep
  build-tsan-bench/tools/alps-sweep --experiment web_scale --sites 96 \
    --flash-crowd 8 --isolate --run-timeout 300 --jobs 4 --quiet --no-json
fi

# --- Sharded-engine TSan leg: lockstep differential replay at 8 shards ---
# The sharded_run experiment under ThreadSanitizer: every kernel policy runs
# the 8-group machine at 8 shards, serial-multiplexed and genuinely threaded,
# and the experiment's evaluate() gate fails unless the consumed checksums are
# bit-identical — a race in the barrier/channel/handoff protocol surfaces
# either as a TSan report or as a checksum split between the two modes.
# (The isolated barrier/SPSC churn tests already ran in build-tsan's ctest.)
# ALPS_SHARDED_SKIP=1 skips the leg.
if [[ "${ALPS_SHARDED_SKIP:-0}" != "1" ]]; then
  cmake -B build-tsan-bench -S . \
    -DALPS_SANITIZE=thread \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-tsan-bench -j "$JOBS" --target alps-sweep
  build-tsan-bench/tools/alps-sweep --experiment sharded_run --shards 8 \
    --jobs 2 --quiet --no-json
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
run_suite build-asan address,undefined "$@"

# --- Release + LTO leg: the engine's tagged/devirtualized event dispatch and
# the arena's placement-new slabs are exactly the kind of code where
# link-time optimization licenses new assumptions (strict aliasing across
# TUs, devirtualization of the registered trampolines). Build the simulation
# tests with interprocedural optimization and run them, so LTO-only breakage
# fails CI instead of first appearing in a user's -flto build.
# ALPS_LTO_SKIP=1 skips the leg (e.g. toolchains without a working LTO
# plugin).
if [[ "${ALPS_LTO_SKIP:-0}" != "1" ]]; then
  cmake -B build-lto -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON \
    -DALPS_SANITIZE=OFF \
    -DALPS_BUILD_BENCH=OFF \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-lto -j "$JOBS" --target test_sim test_os
  ctest --test-dir build-lto --output-on-failure -j "$JOBS" \
    --timeout "$CTEST_TIMEOUT" -R 'Engine|WheelDiff|Replay|Kernel'
fi

# --- Release perf smoke: the simulation substrate must not regress ---
# Runs the sim_perf experiment (engine schedule/cancel/fire churn, run-queue
# cycling, an end-to-end run) in a Release build and compares the engine's
# events/sec against the checked-in baseline BENCH_sim_perf.json. Best-of-N
# is compared (less scheduling-noise-prone than the mean); anything more than
# ALPS_PERF_TOLERANCE percent (default 20) below the baseline fails.
# ALPS_PERF_SKIP=1 skips the leg (e.g. on heavily loaded or throttled CI).
#
# The same leg also gates the telemetry subsystem:
#   - records a fig4 sweep to an .alpstrace and runs `alps-trace verify`
#     on it (the recorder, serializer, and semantic validator must agree
#     end-to-end on a real workload, every CI run);
#   - the sim_perf run above executes with tracing *disabled*, so its
#     events/sec doubles as the instrumentation-overhead probe: the
#     disabled-path cost of every telemetry::active() site must stay within
#     ALPS_TRACE_OVERHEAD_TOLERANCE percent (default 5) of the committed
#     baseline — much tighter than the general ALPS_PERF_TOLERANCE.
if [[ "${ALPS_PERF_SKIP:-0}" != "1" ]]; then
  cmake -B build-perf -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DALPS_SANITIZE=OFF \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-perf -j "$JOBS" --target alps-sweep alps-trace
  build-perf/tools/alps-sweep --experiment sim_perf --jobs 1 --quiet \
    --out build-perf
  python3 - build-perf/BENCH_sim_perf.json BENCH_sim_perf.json \
    "${ALPS_PERF_TOLERANCE:-20}" "${ALPS_TRACE_OVERHEAD_TOLERANCE:-5}" <<'PY'
import json, sys

new_path, base_path = sys.argv[1], sys.argv[2]
tol_pct, trace_tol_pct = float(sys.argv[3]), float(sys.argv[4])

def best_metric(path, point_name, metric):
    doc = json.load(open(path))
    for point in doc["points"]:
        if point["point"] == point_name:
            return point["metrics"][metric]["max"]
    raise SystemExit(f"{path}: no '{point_name}' point")

failed = False
def gate(label, point, metric, pct):
    global failed
    new = best_metric(new_path, point, metric)
    base = best_metric(base_path, point, metric)
    floor = base * (1.0 - pct / 100.0)
    verdict = "OK" if new >= floor else "REGRESSION"
    print(f"{label}: {point} {new:,.0f}/s vs baseline {base:,.0f} "
          f"(floor {floor:,.0f}, tolerance {pct:.0f}%) -> {verdict}")
    failed = failed or new < floor

# Engine throughput (also the tracing-disabled overhead probe, at a tighter
# tolerance) and the timer-op mixes the timing wheel is accountable for.
gate("perf smoke", "engine", "engine_events_per_sec", tol_pct)
gate("tracing-disabled overhead", "engine", "engine_events_per_sec", trace_tol_pct)
gate("timer ops (cancel-heavy)", "timer_ops", "timer_cancel_heavy_ops_per_sec", tol_pct)
gate("timer ops (expire)", "timer_ops", "timer_expire_ops_per_sec", tol_pct)
gate("timer ops (far-future)", "timer_ops", "timer_far_future_ops_per_sec", tol_pct)
# The per-quantum proc-table scan (the simulated /proc read path). Both the
# per-pid sample() loop and the batched measure() entry are gated: the SoA
# mirror exists for exactly this scan, so a regression here means the ALPS
# measurement tick got slower machine-wide.
gate("kernel scan (per-pid)", "kernel_scan", "kernel_scan_samples_per_sec", tol_pct)
gate("kernel scan (batched)", "kernel_scan", "kernel_scan_batch_samples_per_sec", tol_pct)
# The traffic subsystem's hot paths: thinning-sampled arrival draws and
# request-table churn. web_scale drives both millions of times per run.
gate("web arrivals (draws)", "web_arrivals", "web_arrival_draws_per_sec", tol_pct)
gate("web arrivals (table ops)", "web_arrivals", "web_table_ops_per_sec", tol_pct)
# The sharded engine's lockstep protocol: the serial-multiplexed aggregate at
# 8 shards is single-threaded and therefore stable on any host core count,
# yet runs the full epoch machinery (boundary pinning, channel drains, the
# degenerate barriers), so protocol overhead regressions land here.
gate("sharded engine (8-shard mux)", "sharded_engine", "sharded_mux_events_per_sec", tol_pct)
if failed:
    raise SystemExit(1)
PY

  # Record a real trace and validate it end-to-end.
  build-perf/tools/alps-sweep --experiment fig4 --quiet --no-json \
    --trace build-perf/fig4.alpstrace
  build-perf/tools/alps-trace verify build-perf/fig4.alpstrace
fi

# --- Policy-matrix leg: the ALPS invariants must hold on every kernel ---
# Runs the policy-matrix suite once per kernel scheduling policy (the same
# binary; ALPS_KERNEL_POLICY selects the kernel under the workload), plus the
# policy_zoo sweep itself, whose JSON must be jobs-independent and whose BSD
# row is the paper-baseline cross-check. Reuses the Release perf tree when it
# exists; ALPS_POLICY_MATRIX_SKIP=1 skips the leg.
if [[ "${ALPS_POLICY_MATRIX_SKIP:-0}" != "1" ]]; then
  cmake -B build-perf -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DALPS_SANITIZE=OFF \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-perf -j "$JOBS" --target test_policy_matrix alps-sweep
  build-perf/tools/alps-sweep --list-policies
  for policy in $(build-perf/tools/alps-sweep --list-policies | cut -d' ' -f1); do
    echo "--- policy matrix: $policy"
    ALPS_KERNEL_POLICY="$policy" build-perf/tests/test_policy_matrix
  done
  build-perf/tools/alps-sweep --experiment policy_zoo --quiet --out build-perf
  # The sharded determinism gate again in Release (the TSan leg above runs it
  # instrumented): its evaluate() criteria land in BENCH_sharded_run.json.
  build-perf/tools/alps-sweep --experiment sharded_run --quiet --out build-perf
fi

# --- Chaos leg: the sweep harness must survive its own runs dying ---
# Exercises the supervision layer (DESIGN.md §10) end to end on real
# processes and a real kill -9:
#   1. A supervised chaos_campaign: crashing/stalling/throwing tasks must be
#      classified, retried, quarantined — and the forensics repro command it
#      prints must actually re-execute the dead run.
#   2. Crash/recovery determinism: kill -9 a journaled sweep mid-flight, then
#      --resume with a *different* --jobs; the payload-only JSON must be
#      byte-identical to an uninterrupted clean run's.
#   3. Journal corruption: a truncated tail and a flipped bit must both be
#      detected (warning on stderr), the bad suffix re-run, and the final
#      JSON still byte-identical.
#   4. CLI robustness: an unknown --kernel-policy fails with exit 2 and the
#      valid-policy list, not a crash mid-sweep.
# Reuses the Release perf tree; ALPS_CHAOS_SKIP=1 skips the leg.
if [[ "${ALPS_CHAOS_SKIP:-0}" != "1" ]]; then
  cmake -B build-perf -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DALPS_SANITIZE=OFF \
    -DALPS_BUILD_BENCH=ON \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build build-perf -j "$JOBS" --target alps-sweep
  SWEEP="$(pwd)/build-perf/tools/alps-sweep"
  CHAOS="build-perf/chaos"
  rm -rf "$CHAOS"
  mkdir -p "$CHAOS"

  echo "--- chaos: supervised campaign (isolation + watchdog + retry/quarantine)"
  "$SWEEP" --experiment chaos_campaign --isolate --run-timeout 10 \
    --max-attempts 3 --jobs 4 --seed 7 --quiet --out "$CHAOS/campaign" \
    2> "$CHAOS/campaign.stderr"
  grep -q "run death" "$CHAOS/campaign.stderr"
  grep -q "repro:" "$CHAOS/campaign.stderr"

  echo "--- chaos: forensics repro command re-executes the dead run"
  # Take the first repro line the campaign printed and run it verbatim
  # (swapping in this build's binary); a crash_loop task must die the same
  # way in its single-task replay.
  REPRO="$(grep -m1 'repro:  alps-sweep --experiment chaos_campaign' \
    "$CHAOS/campaign.stderr" | sed 's/.*repro:  alps-sweep//')"
  # shellcheck disable=SC2086  # the repro line is intentionally word-split
  "$SWEEP" $REPRO --quiet --no-json > "$CHAOS/repro.out" 2> "$CHAOS/repro.err" || true
  grep -Eq "crashed|failed|timeout" "$CHAOS/repro.out"

  echo "--- chaos: kill -9 mid-sweep, resume with different --jobs, byte-compare"
  "$SWEEP" --experiment chaos_campaign --seed 11 --jobs 2 --quiet \
    --json-payload-only --out "$CHAOS/clean" > /dev/null
  "$SWEEP" --experiment chaos_campaign --seed 11 --jobs 3 --quiet \
    --journal --json-payload-only --out "$CHAOS/resumed" > /dev/null &
  SWEEP_PID=$!
  sleep 1
  kill -9 "$SWEEP_PID" 2>/dev/null || true
  wait "$SWEEP_PID" 2>/dev/null || true
  if [[ ! -s "$CHAOS/resumed/BENCH_chaos_campaign.journal" ]]; then
    echo "chaos: sweep finished before kill -9; leg still validates resume" >&2
  fi
  "$SWEEP" --experiment chaos_campaign --seed 11 --jobs 5 --quiet \
    --resume --json-payload-only --out "$CHAOS/resumed" > /dev/null
  cmp "$CHAOS/clean/BENCH_chaos_campaign.json" \
      "$CHAOS/resumed/BENCH_chaos_campaign.json"

  echo "--- chaos: corrupted journals are detected and the payload still matches"
  truncate -s -7 "$CHAOS/resumed/BENCH_chaos_campaign.journal"
  "$SWEEP" --experiment chaos_campaign --seed 11 --jobs 2 --quiet \
    --resume --json-payload-only --out "$CHAOS/resumed" \
    2> "$CHAOS/trunc.stderr" > /dev/null
  grep -q "journal: discarded" "$CHAOS/trunc.stderr"
  cmp "$CHAOS/clean/BENCH_chaos_campaign.json" \
      "$CHAOS/resumed/BENCH_chaos_campaign.json"
  python3 - "$CHAOS/resumed/BENCH_chaos_campaign.journal" <<'PY'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x10  # flip one bit mid-file
open(path, "wb").write(data)
PY
  "$SWEEP" --experiment chaos_campaign --seed 11 --jobs 2 --quiet \
    --resume --json-payload-only --out "$CHAOS/resumed" \
    2> "$CHAOS/flip.stderr" > /dev/null
  grep -Eq "journal: (discarded|.* is unreadable)" "$CHAOS/flip.stderr"
  cmp "$CHAOS/clean/BENCH_chaos_campaign.json" \
      "$CHAOS/resumed/BENCH_chaos_campaign.json"

  echo "--- chaos: unknown kernel policy fails cleanly with the valid list"
  if "$SWEEP" --experiment fig4 --kernel-policy nosuchpolicy --quiet --no-json \
      2> "$CHAOS/policy.stderr"; then
    echo "chaos: unknown policy should have failed" >&2
    exit 1
  else
    rc=$?
    [[ "$rc" == "2" ]]
  fi
  grep -q "valid policies:" "$CHAOS/policy.stderr"
fi

echo "check.sh: TSan (+many-core/web/sharded smoke) + ASan/UBSan + LTO builds + ctest + perf/timer-ops/kernel-scan/sharded smoke + trace verify + policy matrix + sharded determinism gate + chaos leg passed"
