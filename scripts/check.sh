#!/usr/bin/env bash
# CI check: sanitizer builds + tier-1 tests.
#
#   scripts/check.sh [extra ctest args...]
#
# Two separate build trees (see the top-level CMakeLists' ALPS_SANITIZE):
#   build-tsan: ThreadSanitizer — the experiment harness's ThreadPool and
#     sweep runner must stay TSan-clean.
#   build-asan: AddressSanitizer + UndefinedBehaviorSanitizer — the fault-
#     injection and degradation paths do pointer-light but lifetime-heavy
#     work (entities dropped mid-tick, maps mutated during iteration bugs
#     would surface here), and the rest of the suite rides along.
# Pass extra ctest args to narrow the run, e.g.
# `scripts/check.sh -R 'ThreadPool|Sweep'` for just the concurrency tests.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
# A wedged test (e.g. a scheduler that stops making progress under injected
# faults) should fail fast, not hang CI; sanitizers are slow, so be generous.
CTEST_TIMEOUT="${CTEST_TIMEOUT:-600}"

run_suite() { # <build-dir> <sanitize-value> [extra ctest args...]
  local dir="$1" san="$2"
  shift 2
  # Benches and examples are not test targets; skipping them keeps the
  # sanitizer builds (and CI) fast.
  cmake -B "$dir" -S . \
    -DALPS_SANITIZE="$san" \
    -DALPS_BUILD_BENCH=OFF \
    -DALPS_BUILD_EXAMPLES=OFF
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
    --timeout "$CTEST_TIMEOUT" "$@"
}

# halt_on_error makes a data-race report fail the suite instead of only
# printing it; second_deadlock_stack improves lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
run_suite build-tsan thread "$@"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
run_suite build-asan address,undefined "$@"

echo "check.sh: TSan + ASan/UBSan builds + ctest passed"
