#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# table/figure plus the extension studies.
#
#   scripts/run_all.sh [--full]
#
# --full runs the benches at the paper's full scale (ALPS_BENCH_FULL=1);
# outputs land in test_output.txt and bench_output.txt at the repo root, plus
# one BENCH_<name>.json per registry experiment.
#
# Registry experiments are enumerated from `alps-sweep --list` (the harness
# registry), not a hard-coded list, so a newly registered experiment can't be
# silently skipped. Standalone bench binaries that are *not* thin wrappers
# over the registry (detected by the absence of run_and_report in their
# source) still run directly.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
  FULL=1
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

SWEEP=build/tools/alps-sweep
SWEEP_FLAGS=()
if [[ "$FULL" == "1" ]]; then
  SWEEP_FLAGS+=(--full)
fi

{
  # Every experiment in the harness registry, via the sweep CLI (emits
  # BENCH_<name>.json next to the text output).
  "$SWEEP" --list | sed 's/ — .*//' | while read -r exp; do
    [[ -n "$exp" ]] || continue
    echo
    echo "=== registry experiment: $exp ==="
    "$SWEEP" --experiment "$exp" --out . "${SWEEP_FLAGS[@]}"
  done

  # Standalone benches that are not yet registry-backed. The registry-backed
  # ones (thin mains calling run_and_report) already ran above.
  for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    name=$(basename "$b")
    src="bench/${name}.cpp"
    if [[ -f "$src" ]] && grep -q "run_and_report" "$src"; then
      continue
    fi
    echo
    echo "=== standalone bench: $name ==="
    ALPS_BENCH_FULL=$FULL "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt, bench_output.txt, BENCH_*.json"
