#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# table/figure plus the extension studies.
#
#   scripts/run_all.sh [--full]
#
# --full runs the benches at the paper's full scale (ALPS_BENCH_FULL=1);
# outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
  FULL=1
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo
    ALPS_BENCH_FULL=$FULL "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt, bench_output.txt"
