#include "alps/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace alps::core {

AdaptiveQuantumController::AdaptiveQuantumController(AdaptiveQuantumConfig cfg)
    : cfg_(cfg) {
    ALPS_EXPECT(cfg_.min_quantum > util::Duration::zero());
    ALPS_EXPECT(cfg_.max_quantum >= cfg_.min_quantum);
    ALPS_EXPECT(cfg_.target_overhead > 0.0);
    ALPS_EXPECT(cfg_.gain > 0.0 && cfg_.gain <= 1.0);
    ALPS_EXPECT(cfg_.granularity > util::Duration::zero());
    ALPS_EXPECT(cfg_.smoothing > 0.0 && cfg_.smoothing <= 1.0);
    ALPS_EXPECT(cfg_.deadband >= 0.0);
}

util::Duration AdaptiveQuantumController::update(util::Duration current_quantum,
                                                 util::Duration alps_cpu,
                                                 util::Duration window) {
    ALPS_EXPECT(current_quantum > util::Duration::zero());
    ALPS_EXPECT(window > util::Duration::zero());
    ALPS_EXPECT(alps_cpu >= util::Duration::zero());

    const double overhead =
        static_cast<double>(alps_cpu.count()) / static_cast<double>(window.count());
    if (!primed_) {
        ewma_ = overhead;
        primed_ = true;
    } else {
        ewma_ = (1.0 - cfg_.smoothing) * ewma_ + cfg_.smoothing * overhead;
    }

    // Model: overhead ~ c/Q, so the quantum that meets the budget is
    // Q * overhead/target. Move a `gain` fraction of the way (geometrically,
    // so up- and down-corrections are symmetric), on the smoothed estimate,
    // and only when outside the dead band.
    const double ratio = ewma_ / cfg_.target_overhead;
    if (std::abs(ratio - 1.0) <= cfg_.deadband) return current_quantum;
    const double factor = std::pow(ratio, cfg_.gain);
    const double raw =
        static_cast<double>(current_quantum.count()) * factor;

    const auto gran = static_cast<double>(cfg_.granularity.count());
    const double quantized = std::round(raw / gran) * gran;
    const auto clamped = std::clamp(
        static_cast<std::int64_t>(quantized), cfg_.min_quantum.count(),
        cfg_.max_quantum.count());
    return util::Duration{clamped};
}

}  // namespace alps::core
