// Adaptive quantum control (extension).
//
// The paper (§2.1) calls the quantum "a primary configuration parameter that
// enables an application to balance accuracy and overhead" — and leaves the
// balancing to the user. This controller automates it: given a target
// overhead budget (ALPS CPU as a fraction of wall time), it adjusts the
// quantum after each observation window. Per-tick cost is roughly constant
// for a given workload, so overhead scales like 1/Q; the controller applies
// that model with damping, and clamps to a configured range.
#pragma once

#include "util/time.h"

namespace alps::core {

struct AdaptiveQuantumConfig {
    util::Duration min_quantum = util::msec(5);
    util::Duration max_quantum = util::msec(200);
    /// Overhead budget (fraction of one CPU, e.g. 0.002 = 0.2%).
    double target_overhead = 0.002;
    /// 1.0 jumps straight to the model's answer; smaller damps oscillation.
    double gain = 0.5;
    /// Quantum granularity (real timers cannot honor arbitrary periods).
    util::Duration granularity = util::msec(1);
    /// Per-window observations are noisy (a window usually covers only part
    /// of a cycle, and the measurement load varies across a cycle), so the
    /// controller acts on an EWMA. Weight of the newest observation.
    double smoothing = 0.3;
    /// Dead band: no adjustment while the smoothed overhead is within this
    /// relative distance of the target (prevents hunting).
    double deadband = 0.2;
};

class AdaptiveQuantumController {
public:
    explicit AdaptiveQuantumController(AdaptiveQuantumConfig cfg = {});

    /// One observation window: the scheduler consumed `alps_cpu` of CPU over
    /// `window` of wall time while running at `current_quantum`. Returns the
    /// quantum to use next.
    [[nodiscard]] util::Duration update(util::Duration current_quantum,
                                        util::Duration alps_cpu,
                                        util::Duration window);

    [[nodiscard]] const AdaptiveQuantumConfig& config() const { return cfg_; }
    /// Smoothed overhead estimate (0 until the first update).
    [[nodiscard]] double smoothed_overhead() const { return ewma_; }

private:
    AdaptiveQuantumConfig cfg_;
    double ewma_ = 0.0;
    bool primed_ = false;
};

}  // namespace alps::core
