// Umbrella header for the ALPS core library.
//
//   #include "alps/alps.h"
//
// pulls in the scheduler (the paper's Figure-3 algorithm), the backend
// interfaces, group principals, the Table-1 cost model, tracing, and the
// adaptive-quantum extension. Backends are separate:
//   * simulation:  alps/sim_adapter.h   (links alps_os/alps_sim)
//   * real Linux:  posix/runner.h       (links alps_posix)
#pragma once

#include "alps/adaptive.h"        // IWYU pragma: export
#include "alps/cost_model.h"      // IWYU pragma: export
#include "alps/group_control.h"   // IWYU pragma: export
#include "alps/host.h"            // IWYU pragma: export
#include "alps/process_control.h" // IWYU pragma: export
#include "alps/scheduler.h"       // IWYU pragma: export
#include "alps/trace.h"           // IWYU pragma: export
