#include "alps/cost_model.h"

namespace alps::core {

util::Duration CostModel::tick_cost(const TickStats& stats) const {
    double us = timer_event_us;
    if (stats.measured > 0) {
        us += measure_base_us + measure_per_proc_us * stats.measured;
    }
    us += signal_us * (stats.suspended + stats.resumed);
    return util::from_us(us);
}

}  // namespace alps::core
