#include "alps/cost_model.h"

namespace alps::core {

util::Duration CostModel::tick_cost(const TickStats& stats) const {
    // Degraded-mode work costs the same as its healthy counterpart: a failed
    // or retried read is still a read, a re-issued or undelivered signal is
    // still a kill(2). All these terms are zero on a healthy channel.
    const int reads = stats.measured + stats.retries + stats.read_failures;
    double us = timer_event_us;
    if (reads > 0) {
        us += measure_base_us + measure_per_proc_us * reads;
    }
    us += signal_us * (stats.suspended + stats.resumed + stats.reissues +
                       stats.control_failures);
    return util::from_us(us);
}

}  // namespace alps::core
