// The cost of one ALPS invocation, per the paper's Table 1 measurements
// (FreeBSD 4.8 on a 2.2 GHz Pentium 4):
//
//     Receive a timer event            9.02 µs
//     Measure CPU time of n processes  1.1 + 17.4 n µs
//     Signal a process                 0.97 µs
//
// The simulation charges the ALPS driver process this much CPU per tick, so
// that the overhead figures (5, 8) and the scalability breakdown (Fig 9 /
// §4.2) arise from ALPS competing for the CPU exactly as on the real host.
#pragma once

#include "alps/scheduler.h"
#include "util/time.h"

namespace alps::core {

struct CostModel {
    double timer_event_us = 9.02;      ///< per invocation
    double measure_base_us = 1.1;      ///< per invocation that measures >= 1
    double measure_per_proc_us = 17.4; ///< per entity measured
    double signal_us = 0.97;           ///< per suspend/resume signal

    /// CPU demand of one tick that performed the given operations.
    [[nodiscard]] util::Duration tick_cost(const TickStats& stats) const;
};

}  // namespace alps::core
