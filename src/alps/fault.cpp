#include "alps/fault.h"

#include "util/assert.h"

namespace alps::core {

Sample FaultInjectingControl::read_progress(EntityId id) {
    if (!enabled_) return inner_.read_progress(id);

    // Roll every read-path fault up front so the Rng consumption per call is
    // fixed regardless of which branch wins (keeps streams stable when one
    // probability is tweaked).
    const bool fail = roll(plan_.read_fail);
    const bool stale = roll(plan_.stale_sample);
    const bool reuse = roll(plan_.pid_reuse);
    const bool flip = roll(plan_.blocked_flip);

    if (fail) {
        ++injected_.reads_failed;
        Sample s;
        s.ok = false;
        return s;
    }

    Sample s = inner_.read_progress(id);
    if (!s.ok) return s;  // genuine backend failure passes through

    if (stale) {
        auto it = last_sample_.find(id);
        if (it != last_sample_.end()) {
            ++injected_.stale_samples;
            return it->second;
        }
    }

    if (s.alive) {
        if (reuse) {
            // Pretend a new process now owns the id: its CPU clock restarts
            // near zero. Raise the offset so the *adjusted* reading drops,
            // then stays monotone (the offset only ever grows).
            auto& off = cpu_offset_[id];
            if (s.cpu_time - off > util::Duration::zero()) {
                ++injected_.pid_reuses;
                off = s.cpu_time;
            }
        }
        auto it = cpu_offset_.find(id);
        if (it != cpu_offset_.end()) s.cpu_time = s.cpu_time - it->second;
        if (flip) {
            ++injected_.blocked_flips;
            s.blocked = !s.blocked;
        }
    }

    last_sample_[id] = s;
    return s;
}

void FaultInjectingControl::read_progress_batch(std::span<const EntityId> ids,
                                                Sample* out) {
    if (!enabled_ && inner_.supports_batch_read()) {
        inner_.read_progress_batch(ids, out);
        return;
    }
    // Enabled (or un-batched inner): per-id calls keep the Rng stream and
    // the stale/reuse bookkeeping identical to unbatched operation.
    for (std::size_t i = 0; i < ids.size(); ++i) out[i] = read_progress(ids[i]);
}

ControlResult FaultInjectingControl::signal(EntityId id, bool is_resume) {
    if (!enabled_) {
        return is_resume ? inner_.resume(id) : inner_.suspend(id);
    }
    const bool lost = roll(plan_.signal_lost);
    const bool denied = roll(plan_.signal_denied);
    if (lost) {
        // The cruellest failure: reported delivered, never delivered.
        ++injected_.signals_lost;
        return ControlResult::kOk;
    }
    if (denied) {
        ++injected_.signals_denied;
        return ControlResult::kDenied;
    }
    return is_resume ? inner_.resume(id) : inner_.suspend(id);
}

ControlResult FaultInjectingControl::suspend(EntityId id) {
    return signal(id, /*is_resume=*/false);
}

ControlResult FaultInjectingControl::resume(EntityId id) {
    return signal(id, /*is_resume=*/true);
}

}  // namespace alps::core
