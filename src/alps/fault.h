// Deterministic fault injection for the ProcessControl channel.
//
// ALPS drives processes it does not own through fallible channels: signals
// can be lost in delivery or denied (EPERM), /proc reads can fail or return
// stale data, and a pid can be recycled between two measurements so the
// entity's CPU counter appears to jump backwards. FaultInjectingControl is a
// decorator that injects exactly these failure modes into any ProcessControl
// backend, driven by a seeded util::Rng so every campaign is reproducible
// from (seed, plan) alone. It is how the fault_campaign experiment and the
// robustness tests exercise the scheduler's degradation policy without a
// flaky host.
#pragma once

#include <cstdint>
#include <map>

#include "alps/process_control.h"
#include "util/rng.h"

namespace alps::core {

/// Per-operation fault probabilities, all in [0, 1]. The default plan is
/// all-zero (the decorator is then a transparent pass-through).
struct FaultPlan {
    std::uint64_t seed = 1;
    /// A read_progress call fails transiently (Sample::ok = false).
    double read_fail = 0.0;
    /// A read returns the *previous* successful sample again (a cached or
    /// torn /proc read) instead of fresh data.
    double stale_sample = 0.0;
    /// A read reports the entity's cumulative CPU lower than before, as if
    /// the pid had been recycled by a new process (then monotone again).
    double pid_reuse = 0.0;
    /// A read flips the blocked flag (wait-channel misattribution).
    double blocked_flip = 0.0;
    /// A suspend/resume reports success but is never delivered (lost
    /// signal — the worst case: the scheduler believes the state changed).
    double signal_lost = 0.0;
    /// A suspend/resume is refused with kDenied (EPERM) and not delivered.
    double signal_denied = 0.0;

    /// Convenience: every fault mode at the same probability `p`.
    [[nodiscard]] static FaultPlan uniform(double p, std::uint64_t seed = 1) {
        FaultPlan plan;
        plan.seed = seed;
        plan.read_fail = p;
        plan.stale_sample = p;
        plan.pid_reuse = p;
        plan.blocked_flip = p;
        plan.signal_lost = p;
        plan.signal_denied = p;
        return plan;
    }

    [[nodiscard]] bool any() const {
        return read_fail > 0 || stale_sample > 0 || pid_reuse > 0 ||
               blocked_flip > 0 || signal_lost > 0 || signal_denied > 0;
    }
};

/// What the decorator actually injected (for asserting campaigns did
/// something, and for the experiment's JSON output).
struct InjectedCounts {
    std::uint64_t reads_failed = 0;
    std::uint64_t stale_samples = 0;
    std::uint64_t pid_reuses = 0;
    std::uint64_t blocked_flips = 0;
    std::uint64_t signals_lost = 0;
    std::uint64_t signals_denied = 0;

    [[nodiscard]] std::uint64_t total() const {
        return reads_failed + stale_samples + pid_reuses + blocked_flips +
               signals_lost + signals_denied;
    }
};

/// ProcessControl decorator injecting the FaultPlan's failure modes.
///
/// Determinism: one Rng, consumed in call order. The decorated scheduler
/// must itself be deterministic (it is: std::map iteration order) for a
/// campaign to be reproducible — which the tests assert.
///
/// While disabled (the initial state and after disable()), every call is a
/// verbatim pass-through and the Rng is not consumed, so setup (manage/add)
/// and the post-campaign drain see a clean channel.
class FaultInjectingControl final : public ProcessControl {
public:
    FaultInjectingControl(ProcessControl& inner, FaultPlan plan)
        : inner_(inner), plan_(plan), rng_(plan.seed) {}

    /// Faults are injected only while enabled (default: off).
    void set_enabled(bool on) { enabled_ = on; }
    void disable() { enabled_ = false; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    [[nodiscard]] const InjectedCounts& injected() const { return injected_; }
    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    Sample read_progress(EntityId id) override;
    /// Batching is only a pass-through privilege: while faults are enabled
    /// every read must consume the Rng in per-call order, so the decorator
    /// withdraws batch support (the caller re-checks each tick) and the
    /// batch entry below degrades to the per-id loop.
    [[nodiscard]] bool supports_batch_read() const override {
        return !enabled_ && inner_.supports_batch_read();
    }
    void read_progress_batch(std::span<const EntityId> ids, Sample* out) override;
    ControlResult suspend(EntityId id) override;
    ControlResult resume(EntityId id) override;

private:
    [[nodiscard]] bool roll(double p) { return p > 0.0 && rng_.next_double() < p; }
    ControlResult signal(EntityId id, bool is_resume);

    ProcessControl& inner_;
    FaultPlan plan_;
    util::Rng rng_;
    bool enabled_ = false;
    InjectedCounts injected_;
    /// Last successful (post-injection) sample per entity, replayed on a
    /// stale_sample fault.
    std::map<EntityId, Sample> last_sample_;
    /// Per-entity CPU offset subtracted from real samples; a pid_reuse fault
    /// raises it to just below the current reading, so the entity's clock
    /// jumps backwards once and then advances monotonically — exactly what a
    /// recycled pid looks like.
    std::map<EntityId, util::Duration> cpu_offset_;
};

}  // namespace alps::core
