#include "alps/group_control.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::core {

EntityId GroupProcessControl::add_principal(std::string name, std::optional<HostUid> uid) {
    const EntityId id = next_id_++;
    Principal pr;
    pr.name = std::move(name);
    pr.uid = uid;
    principals_.emplace(id, std::move(pr));
    return id;
}

GroupProcessControl::Principal& GroupProcessControl::get(EntityId id) {
    auto it = principals_.find(id);
    ALPS_EXPECT(it != principals_.end());
    return it->second;
}

const GroupProcessControl::Principal& GroupProcessControl::get(EntityId id) const {
    auto it = principals_.find(id);
    ALPS_EXPECT(it != principals_.end());
    return it->second;
}

void GroupProcessControl::join(Principal& pr, HostPid pid) {
    Member m;
    m.pid = pid;
    // Baseline: consumption before joining is not charged to the principal.
    // If the join-time read fails, baseline at the first successful read
    // instead (so the failure does not turn into a retroactive charge).
    const Sample s = host_.read_pid(pid);
    if (s.ok) {
        m.last_cpu = s.cpu_time;
        m.baselined = true;
    } else {
        ++faults_.member_read_failures;
    }
    pr.members.push_back(m);
    // The whole principal is one scheduling unit: late joiners inherit its
    // eligibility.
    if (pr.suspended) host_.stop_pid(pid);
}

void GroupProcessControl::add_member(EntityId principal, HostPid pid) {
    Principal& pr = get(principal);
    const bool present = std::any_of(pr.members.begin(), pr.members.end(),
                                     [&](const Member& m) { return m.pid == pid; });
    ALPS_EXPECT(!present);
    join(pr, pid);
}

void GroupProcessControl::remove_member(EntityId principal, HostPid pid) {
    Principal& pr = get(principal);
    auto it = std::find_if(pr.members.begin(), pr.members.end(),
                           [&](const Member& m) { return m.pid == pid; });
    ALPS_EXPECT(it != pr.members.end());
    // Charge any unread consumption before letting go, so it is not lost.
    const Sample s = host_.read_pid(pid);
    if (s.alive) {
        if (s.ok && it->baselined && s.cpu_time >= it->last_cpu) {
            pr.cum += s.cpu_time - it->last_cpu;
        } else if (!s.ok) {
            ++faults_.member_read_failures;
        }
        if (pr.suspended) host_.cont_pid(pid);  // do not leave it stopped
    }
    pr.members.erase(it);
}

int GroupProcessControl::refresh(EntityId principal) {
    Principal& pr = get(principal);
    if (!pr.uid.has_value()) return 0;
    // Allocation-free sampling: the host refills our reusable buffer (the
    // simulated kernel serves it straight from its per-uid cache).
    host_.pids_of_user(*pr.uid, refresh_scratch_);
    const std::vector<HostPid>& current = refresh_scratch_;

    // Drop members that are gone (their charged consumption stays in cum).
    std::erase_if(pr.members, [&](const Member& m) {
        return std::find(current.begin(), current.end(), m.pid) == current.end();
    });
    // Join newcomers.
    for (HostPid pid : current) {
        const bool known = std::any_of(pr.members.begin(), pr.members.end(),
                                       [&](const Member& m) { return m.pid == pid; });
        if (!known) join(pr, pid);
    }
    return static_cast<int>(current.size());
}

int GroupProcessControl::refresh_all() {
    int scanned = 0;
    for (auto& [id, pr] : principals_) scanned += refresh(id);
    return scanned;
}

std::vector<HostPid> GroupProcessControl::members(EntityId principal) const {
    const Principal& pr = get(principal);
    std::vector<HostPid> out;
    out.reserve(pr.members.size());
    for (const Member& m : pr.members) out.push_back(m.pid);
    return out;
}

const std::string& GroupProcessControl::name(EntityId principal) const {
    return get(principal).name;
}

Sample GroupProcessControl::read_progress(EntityId id) {
    Principal& pr = get(id);
    bool all_blocked = true;
    bool any_stopped = false;
    std::size_t failed = 0;
    dead_scratch_.clear();
    std::vector<HostPid>& dead = dead_scratch_;
    for (Member& m : pr.members) {
        const Sample s = host_.read_pid(m.pid);
        if (!s.ok) {
            // One unreadable member must not poison the whole principal:
            // skip it this round (its consumption is picked up next time —
            // cumulative counters lose nothing).
            ++failed;
            ++faults_.member_read_failures;
            continue;
        }
        if (!s.alive) {
            dead.push_back(m.pid);
            continue;
        }
        if (!m.baselined) {
            m.last_cpu = s.cpu_time;  // deferred join baseline
            m.baselined = true;
            if (!s.blocked) all_blocked = false;
            if (s.stopped) any_stopped = true;
            continue;
        }
        if (s.cpu_time < m.last_cpu) {
            // The member's pid was recycled: rebaseline it instead of
            // charging the principal a negative amount.
            ++faults_.member_rebaselines;
            m.last_cpu = s.cpu_time;
        }
        pr.cum += s.cpu_time - m.last_cpu;
        m.last_cpu = s.cpu_time;
        if (!s.blocked) all_blocked = false;
        if (s.stopped) any_stopped = true;
    }
    std::erase_if(pr.members, [&](const Member& m) {
        return std::find(dead.begin(), dead.end(), m.pid) != dead.end();
    });
    if (!pr.members.empty() && failed == pr.members.size()) {
        // Nothing readable at all: report a transient failure so the
        // scheduler retries rather than charging a zero-progress sample.
        Sample out;
        out.ok = false;
        return out;
    }
    Sample out;
    out.cpu_time = pr.cum;
    // An empty principal is not contending for the CPU either.
    out.blocked = all_blocked;
    out.stopped = any_stopped;
    out.alive = true;  // principals persist even with no processes
    return out;
}

ControlResult GroupProcessControl::signal_all(EntityId id, bool is_resume) {
    Principal& pr = get(id);
    pr.suspended = !is_resume;
    ControlResult worst = ControlResult::kOk;
    for (const Member& m : pr.members) {
        const ControlResult r =
            is_resume ? host_.cont_pid(m.pid) : host_.stop_pid(m.pid);
        if (r == ControlResult::kOk || r == ControlResult::kGone) continue;
        ++faults_.member_signal_failures;
        if (r == ControlResult::kDenied || worst == ControlResult::kOk) worst = r;
    }
    return worst;
}

ControlResult GroupProcessControl::suspend(EntityId id) {
    return signal_all(id, /*is_resume=*/false);
}

ControlResult GroupProcessControl::resume(EntityId id) {
    return signal_all(id, /*is_resume=*/true);
}

}  // namespace alps::core
