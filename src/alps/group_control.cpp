#include "alps/group_control.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::core {

EntityId GroupProcessControl::add_principal(std::string name, std::optional<HostUid> uid) {
    const EntityId id = next_id_++;
    Principal pr;
    pr.name = std::move(name);
    pr.uid = uid;
    principals_.emplace(id, std::move(pr));
    return id;
}

GroupProcessControl::Principal& GroupProcessControl::get(EntityId id) {
    auto it = principals_.find(id);
    ALPS_EXPECT(it != principals_.end());
    return it->second;
}

const GroupProcessControl::Principal& GroupProcessControl::get(EntityId id) const {
    auto it = principals_.find(id);
    ALPS_EXPECT(it != principals_.end());
    return it->second;
}

void GroupProcessControl::join(Principal& pr, HostPid pid) {
    Member m;
    m.pid = pid;
    // Baseline: consumption before joining is not charged to the principal.
    m.last_cpu = host_.read_pid(pid).cpu_time;
    pr.members.push_back(m);
    // The whole principal is one scheduling unit: late joiners inherit its
    // eligibility.
    if (pr.suspended) host_.stop_pid(pid);
}

void GroupProcessControl::add_member(EntityId principal, HostPid pid) {
    Principal& pr = get(principal);
    const bool present = std::any_of(pr.members.begin(), pr.members.end(),
                                     [&](const Member& m) { return m.pid == pid; });
    ALPS_EXPECT(!present);
    join(pr, pid);
}

void GroupProcessControl::remove_member(EntityId principal, HostPid pid) {
    Principal& pr = get(principal);
    auto it = std::find_if(pr.members.begin(), pr.members.end(),
                           [&](const Member& m) { return m.pid == pid; });
    ALPS_EXPECT(it != pr.members.end());
    // Charge any unread consumption before letting go, so it is not lost.
    const Sample s = host_.read_pid(pid);
    if (s.alive) {
        pr.cum += s.cpu_time - it->last_cpu;
        if (pr.suspended) host_.cont_pid(pid);  // do not leave it stopped
    }
    pr.members.erase(it);
}

int GroupProcessControl::refresh(EntityId principal) {
    Principal& pr = get(principal);
    if (!pr.uid.has_value()) return 0;
    const std::vector<HostPid> current = host_.pids_of_user(*pr.uid);

    // Drop members that are gone (their charged consumption stays in cum).
    std::erase_if(pr.members, [&](const Member& m) {
        return std::find(current.begin(), current.end(), m.pid) == current.end();
    });
    // Join newcomers.
    for (HostPid pid : current) {
        const bool known = std::any_of(pr.members.begin(), pr.members.end(),
                                       [&](const Member& m) { return m.pid == pid; });
        if (!known) join(pr, pid);
    }
    return static_cast<int>(current.size());
}

int GroupProcessControl::refresh_all() {
    int scanned = 0;
    for (auto& [id, pr] : principals_) scanned += refresh(id);
    return scanned;
}

std::vector<HostPid> GroupProcessControl::members(EntityId principal) const {
    const Principal& pr = get(principal);
    std::vector<HostPid> out;
    out.reserve(pr.members.size());
    for (const Member& m : pr.members) out.push_back(m.pid);
    return out;
}

const std::string& GroupProcessControl::name(EntityId principal) const {
    return get(principal).name;
}

Sample GroupProcessControl::read_progress(EntityId id) {
    Principal& pr = get(id);
    bool all_blocked = true;
    std::vector<HostPid> dead;
    for (Member& m : pr.members) {
        const Sample s = host_.read_pid(m.pid);
        if (!s.alive) {
            dead.push_back(m.pid);
            continue;
        }
        pr.cum += s.cpu_time - m.last_cpu;
        m.last_cpu = s.cpu_time;
        if (!s.blocked) all_blocked = false;
    }
    std::erase_if(pr.members, [&](const Member& m) {
        return std::find(dead.begin(), dead.end(), m.pid) != dead.end();
    });
    Sample out;
    out.cpu_time = pr.cum;
    // An empty principal is not contending for the CPU either.
    out.blocked = all_blocked;
    out.alive = true;  // principals persist even with no processes
    return out;
}

void GroupProcessControl::suspend(EntityId id) {
    Principal& pr = get(id);
    pr.suspended = true;
    for (const Member& m : pr.members) host_.stop_pid(m.pid);
}

void GroupProcessControl::resume(EntityId id) {
    Principal& pr = get(id);
    pr.suspended = false;
    for (const Member& m : pr.members) host_.cont_pid(m.pid);
}

}  // namespace alps::core
