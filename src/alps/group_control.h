// Group resource principals (paper Section 5).
//
// The shared-web-server deployment decouples the resource principal from the
// process: the scheduled entity is a *user*, and CPU consumption by any of
// the user's processes counts against the user's allocation. This
// ProcessControl implementation:
//   * sums the CPU consumption of a principal's member processes (members
//     are baselined at join, so pre-join consumption is not charged);
//   * reports the principal blocked when every member is blocked (or it has
//     no members — an empty principal is not contending for the CPU);
//   * suspends/resumes all members together, stopping late joiners of a
//     suspended principal on arrival;
//   * can refresh a principal's membership from the host's per-user process
//     list (the paper does this once per second via kvm_getprocs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "alps/host.h"
#include "alps/process_control.h"

namespace alps::core {

class GroupProcessControl final : public ProcessControl {
public:
    explicit GroupProcessControl(ProcessHost& host) : host_(host) {}

    /// Creates a principal; if `uid` is given, refresh() tracks that user's
    /// processes. Returns the EntityId to register with the Scheduler.
    EntityId add_principal(std::string name, std::optional<HostUid> uid = std::nullopt);

    /// Manually adds/removes a member process.
    void add_member(EntityId principal, HostPid pid);
    void remove_member(EntityId principal, HostPid pid);

    /// Re-queries the host for the principal's uid and reconciles membership
    /// (joins new processes, drops dead ones). No-op for uid-less principals.
    /// Returns the number of processes scanned (for cost accounting).
    int refresh(EntityId principal);

    /// Refreshes every principal; returns total processes scanned.
    int refresh_all();

    [[nodiscard]] std::vector<HostPid> members(EntityId principal) const;
    [[nodiscard]] const std::string& name(EntityId principal) const;
    [[nodiscard]] std::size_t principal_count() const { return principals_.size(); }

    // --- ProcessControl ---
    /// Aggregates member samples. A member whose read fails is skipped (and
    /// counted) rather than poisoning the principal; only when *every*
    /// member read fails does the principal's sample come back not-ok. The
    /// principal reports stopped if any member is stopped, so a lost SIGCONT
    /// to one member surfaces to the scheduler's watchdog.
    Sample read_progress(EntityId id) override;
    /// Fan the signal out to all members; the result is the worst member
    /// outcome (kDenied > kTransient > kOk). A kGone member is not a
    /// failure — it is pruned at the next read/refresh.
    ControlResult suspend(EntityId id) override;
    ControlResult resume(EntityId id) override;

    /// Member-level channel failures absorbed by the aggregation (the
    /// principal-level health lives in the Scheduler's HealthReport).
    struct MemberFaults {
        std::uint64_t member_read_failures = 0;
        std::uint64_t member_signal_failures = 0;
        std::uint64_t member_rebaselines = 0;  ///< member CPU went backwards
    };
    [[nodiscard]] const MemberFaults& member_faults() const { return faults_; }

private:
    struct Member {
        HostPid pid = 0;
        util::Duration last_cpu{0};  ///< cumulative at last read (baseline at join)
        bool baselined = false;      ///< join-time read succeeded
    };
    struct Principal {
        std::string name;
        std::optional<HostUid> uid;
        std::vector<Member> members;
        util::Duration cum{0};  ///< principal's cumulative charged CPU
        bool suspended = false;
    };

    Principal& get(EntityId id);
    const Principal& get(EntityId id) const;
    void join(Principal& pr, HostPid pid);
    ControlResult signal_all(EntityId id, bool is_resume);

    ProcessHost& host_;
    std::map<EntityId, Principal> principals_;
    EntityId next_id_ = 1;
    MemberFaults faults_;
    /// Reused across refresh() calls so the once-per-second membership scan
    /// does not allocate.
    std::vector<HostPid> refresh_scratch_;
    std::vector<HostPid> dead_scratch_;
};

}  // namespace alps::core
