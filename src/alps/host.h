// Minimal per-process surface of a host system, from the point of view of an
// unprivileged user process. Both backends implement it:
//   * alps::core::SimProcessHost  (sim_adapter.h) over the simulated kernel,
//   * alps::posix::PosixProcessHost (posix/) over a real /proc + signals.
//
// ProcessControl implementations (single-process and group-principal) are
// built on top of this, so the ALPS core is oblivious to the backend.
#pragma once

#include <cstdint>
#include <vector>

#include "alps/process_control.h"

namespace alps::core {

using HostPid = std::int64_t;
using HostUid = std::int64_t;

class ProcessHost {
public:
    virtual ~ProcessHost() = default;

    /// Cumulative CPU time + blocked flag for one process (getrusage + kvm
    /// wchan). `alive=false` if the pid no longer exists.
    virtual Sample read_pid(HostPid pid) = 0;

    /// SIGSTOP / SIGCONT.
    virtual void stop_pid(HostPid pid) = 0;
    virtual void cont_pid(HostPid pid) = 0;

    /// Live pids owned by a user (kvm_getprocs analogue), for group-principal
    /// membership refresh.
    virtual std::vector<HostPid> pids_of_user(HostUid uid) = 0;
};

/// The ordinary one-entity-per-process control: EntityId is the pid.
class PidProcessControl final : public ProcessControl {
public:
    explicit PidProcessControl(ProcessHost& host) : host_(host) {}

    Sample read_progress(EntityId id) override { return host_.read_pid(id); }
    void suspend(EntityId id) override { host_.stop_pid(id); }
    void resume(EntityId id) override { host_.cont_pid(id); }

private:
    ProcessHost& host_;
};

}  // namespace alps::core
