// Minimal per-process surface of a host system, from the point of view of an
// unprivileged user process. Both backends implement it:
//   * alps::core::SimProcessHost  (sim_adapter.h) over the simulated kernel,
//   * alps::posix::PosixProcessHost (posix/) over a real /proc + signals.
//
// ProcessControl implementations (single-process and group-principal) are
// built on top of this, so the ALPS core is oblivious to the backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "alps/process_control.h"

namespace alps::core {

using HostPid = std::int64_t;
using HostUid = std::int64_t;

class ProcessHost {
public:
    virtual ~ProcessHost() = default;

    /// Cumulative CPU time + blocked/stopped flags for one process
    /// (getrusage + kvm wchan). `alive=false` if the pid no longer exists;
    /// `ok=false` if the read failed transiently (retryable).
    virtual Sample read_pid(HostPid pid) = 0;

    /// True when read_pids below is genuinely batched (one pass through the
    /// host's accounting) rather than the default per-pid loop.
    [[nodiscard]] virtual bool supports_batch_read() const { return false; }

    /// Batched read_pid: fills out[i] with the equivalent of read_pid(
    /// pids[i]) for the whole span, in order. `out` must have room for
    /// pids.size() entries. Backends with a one-pass sampling path (the
    /// simulated kernel's SoA accounting arrays) override this.
    virtual void read_pids(std::span<const HostPid> pids, Sample* out) {
        for (std::size_t i = 0; i < pids.size(); ++i) out[i] = read_pid(pids[i]);
    }

    /// SIGSTOP / SIGCONT. Both report delivery failures (lost pids, denied
    /// signals) instead of swallowing them.
    virtual ControlResult stop_pid(HostPid pid) = 0;
    virtual ControlResult cont_pid(HostPid pid) = 0;

    /// Live pids owned by a user (kvm_getprocs analogue), for group-principal
    /// membership refresh.
    virtual std::vector<HostPid> pids_of_user(HostUid uid) = 0;

    /// Allocation-free variant for periodic refresh loops: clears and refills
    /// `out`. Backends with a cheap path (the simulated kernel's per-uid
    /// cache) override this; the default simply wraps the allocating call.
    virtual void pids_of_user(HostUid uid, std::vector<HostPid>& out) {
        out = pids_of_user(uid);
    }
};

/// The ordinary one-entity-per-process control: EntityId is the pid.
class PidProcessControl final : public ProcessControl {
public:
    explicit PidProcessControl(ProcessHost& host) : host_(host) {}

    Sample read_progress(EntityId id) override { return host_.read_pid(id); }
    [[nodiscard]] bool supports_batch_read() const override {
        return host_.supports_batch_read();
    }
    // EntityId and HostPid are both int64 by design; the span passes through.
    void read_progress_batch(std::span<const EntityId> ids, Sample* out) override {
        host_.read_pids(ids, out);
    }
    ControlResult suspend(EntityId id) override { return host_.stop_pid(id); }
    ControlResult resume(EntityId id) override { return host_.cont_pid(id); }

private:
    ProcessHost& host_;
};

}  // namespace alps::core
