// The backend interface between the ALPS algorithm and the host system.
//
// ALPS (the paper, Section 2) needs exactly three capabilities, all available
// to an unprivileged UNIX process:
//   * READ-PROGRESS: a scheduled entity's cumulative CPU time and whether it
//     is currently blocked (getrusage / kvm wait-channel);
//   * suspend: make it ineligible to run (SIGSTOP);
//   * resume: make it eligible again (SIGCONT).
//
// A scheduled entity is identified by an EntityId. It is usually one process,
// but the Section-5 web-server deployment schedules *resource principals* —
// all processes of a user — as one entity (see group_control.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/time.h"

namespace alps::core {

/// Identifies one scheduled entity (process or resource principal).
using EntityId = std::int64_t;

/// Outcome of a suspend/resume request. ALPS is an *unprivileged* controller
/// driving processes it does not own through fallible channels (kill(2) can
/// fail with ESRCH or EPERM, signals can race with exits), so the control
/// surface reports what happened instead of pretending it cannot fail.
enum class ControlResult {
    kOk,         ///< the request was accepted by the host
    kTransient,  ///< temporary failure (e.g. EINTR/EAGAIN); worth retrying
    kDenied,     ///< the host refused (EPERM) — retrying may or may not help
    kGone,       ///< the entity no longer exists (ESRCH)
};

[[nodiscard]] constexpr const char* to_string(ControlResult r) {
    switch (r) {
        case ControlResult::kOk: return "ok";
        case ControlResult::kTransient: return "transient";
        case ControlResult::kDenied: return "denied";
        case ControlResult::kGone: return "gone";
    }
    return "?";
}

/// One progress observation.
struct Sample {
    /// Cumulative CPU time consumed by the entity since it was first seen.
    /// Monotone non-decreasing while the same process holds the id; a
    /// backwards jump means the id was reused (the scheduler rebaselines).
    util::Duration cpu_time{0};
    /// True if the entity is currently blocked (sleeping on a wait channel).
    bool blocked = false;
    /// True if the entity is currently job-control stopped (SIGSTOP). The
    /// scheduler compares this against the state it *wanted* to detect lost
    /// or undelivered signals and re-issue them (self-healing).
    bool stopped = false;
    /// False once the entity no longer exists; the scheduler then drops it.
    bool alive = true;
    /// False when the read itself failed transiently (e.g. a /proc read
    /// raced a context switch); all other fields are then meaningless and
    /// the scheduler retries with backoff instead of charging garbage.
    bool ok = true;
};

/// Host-system backend. Implementations exist for the simulated kernel
/// (alps/sim_adapter.h) and for a real POSIX system (posix/).
class ProcessControl {
public:
    virtual ~ProcessControl() = default;

    /// Reads the entity's progress. This is the expensive operation the
    /// lazy-measurement optimization (paper §2.3) minimizes. A transient
    /// failure is reported via Sample::ok, not by throwing.
    virtual Sample read_progress(EntityId id) = 0;

    /// True when read_progress_batch below is genuinely batched (one pass
    /// through the backend) rather than the default per-id loop. Dynamic,
    /// not static: a decorator can batch only while it is a pass-through
    /// (see FaultInjectingControl) and the caller re-checks every tick.
    [[nodiscard]] virtual bool supports_batch_read() const { return false; }

    /// Batched read: fills out[i] with the equivalent of read_progress(
    /// ids[i]) for the whole span, in order. `out` must have room for
    /// ids.size() entries. The contract is equivalence to the per-id calls
    /// issued back-to-back — per-entity failures are still reported through
    /// Sample::ok/alive, never by throwing.
    virtual void read_progress_batch(std::span<const EntityId> ids, Sample* out) {
        for (std::size_t i = 0; i < ids.size(); ++i) out[i] = read_progress(ids[i]);
    }

    /// Makes the entity ineligible to run (moves it to the ineligible group).
    virtual ControlResult suspend(EntityId id) = 0;

    /// Makes the entity eligible to run again.
    virtual ControlResult resume(EntityId id) = 0;
};

}  // namespace alps::core
