// The backend interface between the ALPS algorithm and the host system.
//
// ALPS (the paper, Section 2) needs exactly three capabilities, all available
// to an unprivileged UNIX process:
//   * READ-PROGRESS: a scheduled entity's cumulative CPU time and whether it
//     is currently blocked (getrusage / kvm wait-channel);
//   * suspend: make it ineligible to run (SIGSTOP);
//   * resume: make it eligible again (SIGCONT).
//
// A scheduled entity is identified by an EntityId. It is usually one process,
// but the Section-5 web-server deployment schedules *resource principals* —
// all processes of a user — as one entity (see group_control.h).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace alps::core {

/// Identifies one scheduled entity (process or resource principal).
using EntityId = std::int64_t;

/// One progress observation.
struct Sample {
    /// Cumulative CPU time consumed by the entity since it was first seen.
    /// Monotone non-decreasing.
    util::Duration cpu_time{0};
    /// True if the entity is currently blocked (sleeping on a wait channel).
    bool blocked = false;
    /// False once the entity no longer exists; the scheduler then drops it.
    bool alive = true;
};

/// Host-system backend. Implementations exist for the simulated kernel
/// (alps/sim_adapter.h) and for a real POSIX system (posix/).
class ProcessControl {
public:
    virtual ~ProcessControl() = default;

    /// Reads the entity's progress. This is the expensive operation the
    /// lazy-measurement optimization (paper §2.3) minimizes.
    virtual Sample read_progress(EntityId id) = 0;

    /// Makes the entity ineligible to run (moves it to the ineligible group).
    virtual void suspend(EntityId id) = 0;

    /// Makes the entity eligible to run again.
    virtual void resume(EntityId id) = 0;
};

}  // namespace alps::core
