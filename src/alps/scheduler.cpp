#include "alps/scheduler.h"

#include <cmath>

#include "util/assert.h"

namespace alps::core {

Scheduler::Scheduler(ProcessControl& control, SchedulerConfig cfg)
    : control_(control), cfg_(cfg) {
    ALPS_EXPECT(cfg_.quantum > Duration::zero());
    ALPS_EXPECT(cfg_.max_parallelism >= 1.0);
}

void Scheduler::add(EntityId id, Share share) {
    ALPS_EXPECT(share > 0);
    ALPS_EXPECT(!entities_.contains(id));
    Entity e;
    e.share = share;
    e.allowance = static_cast<double>(share);  // paper: allowance_i <- share_i
    e.eligible = false;                        // paper: state_i <- ineligible
    e.update = count_;                         // due for its first measurement
    const Sample s = control_.read_progress(id);
    e.last_cpu = s.cpu_time;
    e.have_baseline = true;
    // Ineligible entities are suspended; it becomes eligible on the next
    // tick, thanks to its positive allowance.
    control_.suspend(id);
    entities_.emplace(id, e);
    total_shares_ += share;
    // Keep the invariant sum(a_i)*Q == t_c: the newcomer brings its
    // allowance into the cycle.
    tc_ns_ += static_cast<double>(share) * static_cast<double>(cfg_.quantum.count());
}

void Scheduler::remove(EntityId id) {
    auto it = entities_.find(id);
    ALPS_EXPECT(it != entities_.end());
    Entity& e = it->second;
    if (!e.eligible) control_.resume(id);  // leave nothing suspended behind
    total_shares_ -= e.share;
    tc_ns_ -= e.allowance * static_cast<double>(cfg_.quantum.count());
    entities_.erase(it);
}

void Scheduler::set_quantum(Duration quantum) {
    ALPS_EXPECT(quantum > Duration::zero());
    if (quantum == cfg_.quantum) return;
    const double scale = static_cast<double>(cfg_.quantum.count()) /
                         static_cast<double>(quantum.count());
    for (auto& [id, e] : entities_) {
        e.allowance *= scale;  // same CPU entitlement, new denomination
        e.update = count_;     // old postponements are no longer sound
    }
    cfg_.quantum = quantum;
}

void Scheduler::set_share(EntityId id, Share share) {
    ALPS_EXPECT(share > 0);
    auto it = entities_.find(id);
    ALPS_EXPECT(it != entities_.end());
    total_shares_ += share - it->second.share;
    it->second.share = share;
}

double Scheduler::allowance(EntityId id) const {
    auto it = entities_.find(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.allowance;
}

bool Scheduler::eligible(EntityId id) const {
    auto it = entities_.find(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.eligible;
}

Share Scheduler::share(EntityId id) const {
    auto it = entities_.find(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.share;
}

std::vector<EntityId> Scheduler::ids() const {
    std::vector<EntityId> out;
    out.reserve(entities_.size());
    for (const auto& [id, e] : entities_) out.push_back(id);
    return out;
}

void Scheduler::transition(EntityId id, Entity& e, bool make_eligible, TickStats& stats,
                           TickTrace* trace) {
    if (e.eligible == make_eligible) return;
    e.eligible = make_eligible;
    if (make_eligible) {
        control_.resume(id);
        ++stats.resumed;
        if (trace != nullptr) trace->resumed.push_back(id);
    } else {
        control_.suspend(id);
        ++stats.suspended;
        if (trace != nullptr) trace->suspended.push_back(id);
    }
}

void Scheduler::release_all() {
    for (auto& [id, e] : entities_) {
        if (!e.eligible) {
            control_.resume(id);
            e.eligible = true;
        }
    }
}

TickStats Scheduler::tick() {
    TickStats stats;
    ++count_;  // paper: count <- count + 1
    TickTrace trace;
    TickTrace* tp = tick_observer_ ? &trace : nullptr;
    if (entities_.empty()) {
        if (tp != nullptr) {
            trace.tick = count_;
            tick_observer_(trace);
        }
        return stats;
    }

    const auto quantum_ns = static_cast<double>(cfg_.quantum.count());
    std::vector<EntityId> dead;

    // --- Measurement loop (Figure 3, first for-all) ---
    for (auto& [id, e] : entities_) {
        if (!e.eligible) continue;  // cannot have run: skip (free of charge)
        if (cfg_.lazy_measurement && e.update > count_) continue;

        const Sample s = control_.read_progress(id);
        ++stats.measured;
        ++total_measurements_;
        if (tp != nullptr) trace.measured.push_back(id);
        if (!s.alive) {
            dead.push_back(id);
            continue;
        }
        const Duration consumed = s.cpu_time - e.last_cpu;
        ALPS_ENSURE(consumed >= Duration::zero());
        e.last_cpu = s.cpu_time;
        e.cycle_consumed += consumed;
        e.allowance -= static_cast<double>(consumed.count()) / quantum_ns;
        tc_ns_ -= static_cast<double>(consumed.count());

        if (cfg_.io_accounting && s.blocked) {
            // §2.4: the blocked process gave up one quantum's worth of its
            // right to run; shorten the cycle by the same amount.
            e.allowance -= 1.0;
            tc_ns_ -= quantum_ns;
        }
    }

    // Entities that vanished take their remaining allowance with them.
    for (EntityId id : dead) {
        auto it = entities_.find(id);
        total_shares_ -= it->second.share;
        tc_ns_ -= it->second.allowance * quantum_ns;
        entities_.erase(it);
    }
    if (entities_.empty()) {
        if (tp != nullptr) {
            trace.tick = count_;
            tick_observer_(trace);
        }
        return stats;
    }

    // --- Cycle completion (Figure 3, middle) ---
    int cycles = 0;
    if (tc_ns_ <= 0.0) {
        cycles = 1;
        tc_ns_ += static_cast<double>(total_shares_) * quantum_ns;
        stats.cycle_completed = true;
        emit_cycle_record();
        ++cycles_done_;
    }

    // --- Allowance refresh and partition (Figure 3, second for-all) ---
    for (auto& [id, e] : entities_) {
        e.allowance += static_cast<double>(e.share * cycles);
        transition(id, e, e.allowance > 0.0, stats, tp);
        if (!cfg_.lazy_measurement) continue;
        if (e.update <= count_) {
            // §2.3: entity i cannot exhaust its allowance in fewer than
            // ceil(allowance / parallelism) quanta, so skip measuring it
            // until then.
            const double quanta_until_due =
                std::max(std::ceil(e.allowance / cfg_.max_parallelism), 1.0);
            e.update = count_ + static_cast<std::uint64_t>(quanta_until_due);
        }
    }

    if (tp != nullptr) {
        trace.tick = count_;
        trace.cycle_completed = stats.cycle_completed;
        trace.cycle_time_remaining = cycle_time_remaining();
        trace.entities.reserve(entities_.size());
        trace.allowances.reserve(entities_.size());
        for (const auto& [id, e] : entities_) {
            trace.entities.push_back(id);
            trace.allowances.push_back(e.allowance);
        }
        tick_observer_(trace);
    }
    return stats;
}

void Scheduler::emit_cycle_record() {
    if (observer_) {
        CycleRecord rec;
        rec.index = cycles_done_;
        rec.end_tick = count_;
        rec.ids.reserve(entities_.size());
        for (const auto& [id, e] : entities_) {
            rec.ids.push_back(id);
            rec.shares.push_back(e.share);
            rec.consumed.push_back(e.cycle_consumed);
        }
        observer_(rec);
    }
    for (auto& [id, e] : entities_) e.cycle_consumed = Duration::zero();
}

}  // namespace alps::core
