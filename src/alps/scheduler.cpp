#include "alps/scheduler.h"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/assert.h"

namespace alps::core {

namespace {
/// Bounded resume attempts per entity during release_all on a degraded
/// channel (each verified with a read; with independent loss probability p
/// the chance of leaving an entity stopped is p^8).
constexpr int kReleaseAttempts = 8;

// ----- telemetry (all no-ops without an attached sink) -----
//
// Each entity gets one state-span timeline on track == its id: an
// "eligible" or "ineligible" span is always open between admission and
// removal, switching at every *desired*-eligibility flip (what ALPS wants,
// which is exactly what Entity::eligible stores). The simulated kernel emits
// the matching "running" spans, so a Perfetto timeline shows desire vs.
// reality per process.

std::uint32_t track_of(EntityId id) { return static_cast<std::uint32_t>(id); }

std::uint16_t state_name(bool eligible) {
    return eligible ? telemetry::kNameEligible : telemetry::kNameIneligible;
}

void trace_state_open(EntityId id, bool eligible) {
    if (telemetry::active()) telemetry::span_begin(state_name(eligible), track_of(id));
}

void trace_state_close(EntityId id, bool eligible) {
    if (telemetry::active()) telemetry::span_end(state_name(eligible), track_of(id));
}

void trace_state_flip(EntityId id, bool was_eligible, bool now_eligible) {
    if (was_eligible == now_eligible || !telemetry::active()) return;
    telemetry::span_end(state_name(was_eligible), track_of(id));
    telemetry::span_begin(state_name(now_eligible), track_of(id));
}

}  // namespace

Scheduler::Scheduler(ProcessControl& control, SchedulerConfig cfg, util::Arena* arena)
    : control_(control),
      cfg_(cfg),
      entities_(util::ArenaAllocator<std::pair<EntityId, Entity>>(arena)) {
    ALPS_EXPECT(cfg_.quantum > Duration::zero());
    ALPS_EXPECT(cfg_.max_parallelism >= 1.0);
    ALPS_EXPECT(cfg_.faults.max_read_retries >= 0);
    ALPS_EXPECT(cfg_.faults.max_backoff_ticks >= 1);
    ALPS_EXPECT(cfg_.faults.quarantine_after == 0 ||
                cfg_.faults.drop_after > cfg_.faults.quarantine_after);
}

void Scheduler::add(EntityId id, Share share) {
    ALPS_EXPECT(share > 0);
    ALPS_EXPECT(!contains(id));
    Entity e;
    e.share = share;
    e.allowance = static_cast<double>(share);  // paper: allowance_i <- share_i
    e.eligible = false;                        // paper: state_i <- ineligible
    e.update = count_;                         // due for its first measurement
    const Sample s = control_.read_progress(id);
    if (s.ok) {
        e.last_cpu = s.cpu_time;
        e.have_baseline = true;
    } else {
        // Transient read failure at admission: baseline at the first
        // successful measurement instead (nothing is charged until then).
        ++health_.read_failures;
        e.have_baseline = false;
    }
    // Ineligible entities are suspended; it becomes eligible on the next
    // tick, thanks to its positive allowance.
    if (control_.suspend(id) != ControlResult::kOk) {
        ++health_.control_failures;
        e.suspect = true;  // the watchdog re-issues the desired state
        e.fail_streak = 1;
    }
    insert_entity(id, e);
    trace_state_open(id, e.eligible);
    total_shares_ += share;
    // Keep the invariant sum(a_i)*Q == t_c: the newcomer brings its
    // allowance into the cycle.
    tc_ns_ += static_cast<double>(share) * static_cast<double>(cfg_.quantum.count());
}

void Scheduler::remove(EntityId id) {
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    Entity& e = it->second;
    if (!e.eligible) control_.resume(id);  // leave nothing suspended behind
    trace_state_close(id, e.eligible);
    total_shares_ -= e.share;
    tc_ns_ -= e.allowance * static_cast<double>(cfg_.quantum.count());
    entities_.erase(it);
}

void Scheduler::forget(EntityId id) {
    auto it = find_entity(id);
    if (it == entities_.end()) return;
    trace_state_close(id, it->second.eligible);
    total_shares_ -= it->second.share;
    tc_ns_ -= it->second.allowance * static_cast<double>(cfg_.quantum.count());
    entities_.erase(it);
}

void Scheduler::set_quantum(Duration quantum) {
    ALPS_EXPECT(quantum > Duration::zero());
    if (quantum == cfg_.quantum) return;
    const double scale = static_cast<double>(cfg_.quantum.count()) /
                         static_cast<double>(quantum.count());
    for (auto& [id, e] : entities_) {
        e.allowance *= scale;  // same CPU entitlement, new denomination
        e.update = count_;     // old postponements are no longer sound
    }
    cfg_.quantum = quantum;
}

void Scheduler::set_share(EntityId id, Share share) {
    ALPS_EXPECT(share > 0);
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    total_shares_ += share - it->second.share;
    it->second.share = share;
}

double Scheduler::allowance(EntityId id) const {
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.allowance;
}

bool Scheduler::eligible(EntityId id) const {
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.eligible;
}

bool Scheduler::quarantined(EntityId id) const {
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.quarantined;
}

Share Scheduler::share(EntityId id) const {
    auto it = find_entity(id);
    ALPS_EXPECT(it != entities_.end());
    return it->second.share;
}

std::vector<EntityId> Scheduler::ids() const {
    std::vector<EntityId> out;
    out.reserve(entities_.size());
    for (const auto& [id, e] : entities_) out.push_back(id);
    return out;
}

HealthReport Scheduler::health() const {
    HealthReport h = health_;
    h.quarantined_now = 0;
    for (const auto& [id, e] : entities_) {
        if (e.quarantined) ++h.quarantined_now;
    }
    return h;
}

void Scheduler::export_metrics(telemetry::MetricsRegistry& reg,
                               const std::string& prefix) const {
    reg.counter(prefix + "ticks").add(count_);
    reg.counter(prefix + "cycles").add(cycles_done_);
    reg.counter(prefix + "measurements").add(total_measurements_);
    const HealthReport h = health();
    reg.counter(prefix + "read_failures").add(h.read_failures);
    reg.counter(prefix + "control_failures").add(h.control_failures);
    reg.counter(prefix + "retries").add(h.retries);
    reg.counter(prefix + "reissues").add(h.reissues);
    reg.counter(prefix + "rebaselines").add(h.rebaselines);
    reg.counter(prefix + "quarantines").add(h.quarantines);
    reg.counter(prefix + "drops").add(h.drops);
    reg.counter(prefix + "exceptions").add(h.exceptions);
}

Sample Scheduler::guarded_read(EntityId id, TickStats& stats) {
    Sample s;
    for (int attempt = 0;; ++attempt) {
        try {
            s = control_.read_progress(id);
        } catch (...) {
            // A throwing backend is just another fault: count it and treat
            // the read as failed rather than unwinding mid-tick.
            ++health_.exceptions;
            s = Sample{};
            s.ok = false;
        }
        if (s.ok || attempt >= cfg_.faults.max_read_retries) return s;
        ++stats.retries;
        ++health_.retries;
    }
}

ControlResult Scheduler::guarded_signal(EntityId id, bool make_eligible) {
    try {
        return make_eligible ? control_.resume(id) : control_.suspend(id);
    } catch (...) {
        ++health_.exceptions;
        return ControlResult::kTransient;
    }
}

bool Scheduler::note_failure(Entity& e) {
    // Note: does NOT set `suspect` — that flag means "the last control op may
    // not have taken" and triggers signal re-delivery. A failed *read* says
    // nothing about signal delivery; marking it suspect would make the
    // watchdog's (successful) re-signal reset the streak and an unreadable
    // entity would never reach quarantine. Signal-failure call sites set
    // `suspect` themselves.
    ++e.fail_streak;
    return !e.quarantined && cfg_.faults.quarantine_after > 0 &&
           e.fail_streak >= cfg_.faults.quarantine_after;
}

void Scheduler::transition(EntityId id, Entity& e, bool make_eligible, TickStats& stats,
                           TickTrace* trace) {
    const bool changing = e.eligible != make_eligible;
    const bool healing = e.suspect && cfg_.faults.self_heal;
    if (!changing && !healing) return;
    trace_state_flip(id, e.eligible, make_eligible);
    e.eligible = make_eligible;  // desired state, regardless of delivery
    const ControlResult r = guarded_signal(id, make_eligible);
    if (r == ControlResult::kOk) {
        note_success(e);
        if (changing) {
            if (make_eligible) {
                ++stats.resumed;
                if (trace != nullptr) trace->resumed.push_back(id);
            } else {
                ++stats.suspended;
                if (trace != nullptr) trace->suspended.push_back(id);
            }
        } else {
            ++stats.reissues;  // watchdog re-delivery of the desired state
            ++health_.reissues;
        }
        return;
    }
    if (r == ControlResult::kGone) {
        // Discovered dead through the control channel; the next measurement
        // confirms and drops it (an ineligible entity is re-checked by the
        // watchdog path, which maps kGone here every tick).
        e.suspect = true;
        return;
    }
    ++stats.control_failures;
    ++health_.control_failures;
    e.suspect = true;  // delivery failed: the watchdog re-issues next tick
    note_failure(e);   // quarantine decision is made in tick()'s loops
}

void Scheduler::release_all() noexcept {
    const bool verify = health_.degraded();
    for (auto& [id, e] : entities_) {
        if (e.eligible && !verify) continue;
        trace_state_flip(id, e.eligible, true);
        for (int attempt = 0; attempt < kReleaseAttempts; ++attempt) {
            ControlResult r = ControlResult::kOk;
            try {
                r = control_.resume(id);
            } catch (...) {
                ++health_.exceptions;
                r = ControlResult::kTransient;
            }
            e.eligible = true;
            if (r == ControlResult::kGone) break;
            if (!verify) break;  // healthy channel: one resume suffices
            // Degraded channel: trust but verify — the resume may have been
            // lost; only a read showing the entity not stopped settles it.
            try {
                const Sample s = control_.read_progress(id);
                if (s.ok && (!s.alive || !s.stopped)) break;
            } catch (...) {
                ++health_.exceptions;
            }
        }
    }
}

TickStats Scheduler::tick() {
    TickStats stats;
    ++count_;  // paper: count <- count + 1
    if (telemetry::active()) telemetry::instant(telemetry::kNameTick, 0, count_);
    TickTrace trace;
    TickTrace* tp = tick_observer_ ? &trace : nullptr;
    if (entities_.empty()) {
        if (tp != nullptr) {
            trace.tick = count_;
            tick_observer_(trace);
        }
        return stats;
    }

    const auto quantum_ns = static_cast<double>(cfg_.quantum.count());
    std::vector<EntityId> dead;
    std::vector<EntityId> dropped;

    const auto fill_fault_trace = [](TickTrace& t, const TickStats& st) {
        t.read_failures = st.read_failures;
        t.control_failures = st.control_failures;
        t.retries = st.retries;
        t.reissues = st.reissues;
        t.rebaselines = st.rebaselines;
    };

    const auto enter_quarantine = [&](EntityId id, Entity& e) {
        e.quarantined = true;
        e.suspect = false;
        ++stats.quarantined;
        ++health_.quarantines;
        if (tp != nullptr) trace.quarantined.push_back(id);
        if (telemetry::active()) {
            telemetry::instant(telemetry::kNameQuarantine, track_of(id));
        }
        // Quarantine must never wedge a process in SIGSTOP: release it
        // (best-effort) and let it free-run while we probe the channel.
        if (!e.eligible) guarded_signal(id, /*make_eligible=*/true);
        trace_state_flip(id, e.eligible, true);
        e.eligible = true;
    };

    const auto charge = [&](Entity& e, const Sample& s) {
        if (!e.have_baseline) {
            // Admission read had failed; start charging from here.
            e.last_cpu = s.cpu_time;
            e.have_baseline = true;
            return;
        }
        Duration consumed = s.cpu_time - e.last_cpu;
        if (consumed < Duration::zero()) {
            // The id's CPU counter went backwards: the pid was reused (or
            // the host rebooted). The old process's unread tail is
            // unknowable — rebaseline and keep going instead of aborting.
            ++stats.rebaselines;
            ++health_.rebaselines;
            consumed = Duration::zero();
        }
        e.last_cpu = s.cpu_time;
        e.cycle_consumed += consumed;
        e.allowance -= static_cast<double>(consumed.count()) / quantum_ns;
        tc_ns_ -= static_cast<double>(consumed.count());

        if (cfg_.io_accounting && s.blocked) {
            // §2.4: the blocked process gave up one quantum's worth of its
            // right to run; shorten the cycle by the same amount.
            e.allowance -= 1.0;
            tc_ns_ -= quantum_ns;
        }
    };

    // --- Batched measurement prefetch ---
    // Pre-collect exactly the ids the eligible path of the loop below will
    // read this tick (same predicate, same entity order) and fetch them in
    // one backend pass when the channel supports it. The quarantined-probe
    // and lost-SIGSTOP verification paths keep per-id reads: they are rare,
    // fault-driven, and interleave control ops with their reads.
    batch_ids_.clear();
    if (control_.supports_batch_read()) {
        for (const auto& [id, e] : entities_) {
            if (!e.quarantined && e.eligible &&
                (!cfg_.lazy_measurement || e.update <= count_)) {
                batch_ids_.push_back(id);
            }
        }
    }
    bool batch_valid = false;
    if (batch_ids_.size() > 1) {
        batch_samples_.resize(batch_ids_.size());
        try {
            control_.read_progress_batch(batch_ids_, batch_samples_.data());
            batch_valid = true;
        } catch (...) {
            ++health_.exceptions;  // fall back to per-id reads below
        }
    }
    std::size_t batch_cursor = 0;
    // The prefetched sample if one exists for this id, with guarded_read's
    // same-tick retry semantics on a failed entry; a plain guarded_read
    // when no batch was fetched.
    const auto measure_eligible = [&](EntityId id) -> Sample {
        if (!batch_valid) return guarded_read(id, stats);
        ALPS_EXPECT(batch_cursor < batch_ids_.size() &&
                    batch_ids_[batch_cursor] == id);
        Sample s = batch_samples_[batch_cursor++];
        for (int attempt = 0; !s.ok && attempt < cfg_.faults.max_read_retries;
             ++attempt) {
            ++stats.retries;
            ++health_.retries;
            try {
                s = control_.read_progress(id);
            } catch (...) {
                ++health_.exceptions;
                s = Sample{};
                s.ok = false;
            }
        }
        return s;
    };

    // --- Measurement loop (Figure 3, first for-all) ---
    for (auto& [id, e] : entities_) {
        if (e.quarantined) {
            // Probe the channel every tick: recover, or escalate to drop.
            e.touched = true;
            const Sample s = guarded_read(id, stats);
            if (!s.ok) {
                ++stats.read_failures;
                ++health_.read_failures;
                note_failure(e);
                if (e.fail_streak >= cfg_.faults.drop_after) dropped.push_back(id);
                continue;
            }
            ++stats.measured;
            ++total_measurements_;
            if (tp != nullptr) trace.measured.push_back(id);
            if (!s.alive) {
                dead.push_back(id);
                continue;
            }
            charge(e, s);
            // Reads are back; try to regain the control channel by
            // enforcing the desired state.
            const bool want_eligible = e.allowance > 0.0;
            const ControlResult r = guarded_signal(id, want_eligible);
            if (r == ControlResult::kOk) {
                e.quarantined = false;
                trace_state_flip(id, e.eligible, want_eligible);
                e.eligible = want_eligible;
                note_success(e);
                e.update = count_ + 1;
                ++stats.reissues;
                ++health_.reissues;
            } else if (r == ControlResult::kGone) {
                dead.push_back(id);
            } else {
                ++stats.control_failures;
                ++health_.control_failures;
                note_failure(e);
                if (e.fail_streak >= cfg_.faults.drop_after) dropped.push_back(id);
            }
            continue;
        }

        if (!e.eligible) {
            // Cannot have run: skip (free of charge) — unless a suspend may
            // have been lost. Once the channel has ever misbehaved, verify
            // ineligible entities on the same lazy schedule: a lost SIGSTOP
            // otherwise lets the entity free-run *unmeasured*, the one
            // failure mode the eligible-path watchdog cannot see.
            if (!cfg_.faults.self_heal || !health_.degraded()) continue;
            if (cfg_.lazy_measurement && e.update > count_) continue;
            e.touched = true;
            const Sample s = guarded_read(id, stats);
            if (!s.ok) {
                ++stats.read_failures;
                ++health_.read_failures;
                if (note_failure(e)) enter_quarantine(id, e);
                continue;
            }
            ++stats.measured;
            ++total_measurements_;
            if (tp != nullptr) trace.measured.push_back(id);
            if (!s.alive) {
                dead.push_back(id);
                continue;
            }
            // Charge whatever it consumed (the tail before the stop took
            // effect, or everything it stole while the stop was lost).
            charge(e, s);
            if (!s.stopped) {
                // Lost SIGSTOP: re-issue the desired state.
                ++stats.reissues;
                ++health_.reissues;
                const ControlResult r = guarded_signal(id, /*make_eligible=*/false);
                if (r == ControlResult::kOk) {
                    note_success(e);
                } else if (r == ControlResult::kGone) {
                    dead.push_back(id);
                } else {
                    ++stats.control_failures;
                    ++health_.control_failures;
                    e.suspect = true;
                    if (note_failure(e)) enter_quarantine(id, e);
                }
            } else {
                note_success(e);
            }
            continue;
        }
        if (cfg_.lazy_measurement && e.update > count_) continue;

        e.touched = true;
        const Sample s = measure_eligible(id);
        if (!s.ok) {
            ++stats.read_failures;
            ++health_.read_failures;
            if (note_failure(e)) {
                enter_quarantine(id, e);
            } else {
                // Cross-tick exponential backoff: 1, 2, 4, ... ticks.
                const int shift = std::min(e.fail_streak - 1, 6);
                const auto backoff = static_cast<std::uint64_t>(
                    std::min(1 << shift, cfg_.faults.max_backoff_ticks));
                e.update = count_ + backoff;
            }
            continue;
        }
        ++stats.measured;
        ++total_measurements_;
        if (tp != nullptr) trace.measured.push_back(id);
        if (!s.alive) {
            dead.push_back(id);
            continue;
        }
        if (s.stopped) {
            // Desired eligible but actually stopped: a lost or undelivered
            // SIGCONT (or an outside party stopped it). Self-heal so no
            // entity stays wedged longer than its measurement postponement
            // (at most one cycle).
            if (cfg_.faults.self_heal) {
                ++stats.reissues;
                ++health_.reissues;
                const ControlResult r = guarded_signal(id, /*make_eligible=*/true);
                if (r == ControlResult::kOk) {
                    note_success(e);
                } else if (r == ControlResult::kGone) {
                    dead.push_back(id);
                    continue;
                } else {
                    ++stats.control_failures;
                    ++health_.control_failures;
                    e.suspect = true;
                    if (note_failure(e)) enter_quarantine(id, e);
                }
            }
        } else {
            note_success(e);
        }
        charge(e, s);
    }
    // Predicate drift between prefetch and loop would desynchronize the
    // cursor and charge samples to the wrong entities — make it loud.
    ALPS_ENSURE(!batch_valid || batch_cursor == batch_ids_.size());

    // Entities that vanished take their remaining allowance with them;
    // entities whose channel never recovered are dropped the same way (a
    // final best-effort resume first — never leave a process stopped).
    for (EntityId id : dropped) {
        guarded_signal(id, /*make_eligible=*/true);
        ++stats.dropped;
        ++health_.drops;
        if (tp != nullptr) trace.dropped.push_back(id);
        if (telemetry::active()) telemetry::instant(telemetry::kNameDrop, track_of(id));
        forget(id);
    }
    for (EntityId id : dead) forget(id);
    if (entities_.empty()) {
        if (tp != nullptr) {
            trace.tick = count_;
            fill_fault_trace(trace, stats);
            tick_observer_(trace);
        }
        return stats;
    }

    // --- Cycle completion (Figure 3, middle) ---
    int cycles = 0;
    if (tc_ns_ <= 0.0) {
        cycles = 1;
        tc_ns_ += static_cast<double>(total_shares_) * quantum_ns;
        stats.cycle_completed = true;
        emit_cycle_record();
        ++cycles_done_;
        if (telemetry::active()) {
            telemetry::instant(telemetry::kNameCycle, 0, cycles_done_);
        }
    }

    // --- Allowance refresh and partition (Figure 3, second for-all) ---
    std::vector<EntityId> gone;
    for (auto& [id, e] : entities_) {
        // Fast path: nothing about this entity changed this tick — it was
        // not measured (allowance unchanged), is not suspect or quarantined,
        // its desired eligibility already holds, no cycle boundary refreshed
        // its allowance, and its lazy-measurement postponement is not due
        // for recomputation. Every statement below is then a no-op, so
        // skipping is behaviour-preserving (runs replay bit-identically);
        // under lazy measurement this is the vast majority of entities.
        if (cycles == 0 && !e.touched && !e.suspect && !e.quarantined &&
            e.eligible == (e.allowance > 0.0) &&
            (!cfg_.lazy_measurement || e.update > count_)) {
            continue;
        }
        e.touched = false;
        e.allowance += static_cast<double>(e.share * cycles);
        if (e.quarantined) continue;  // no signalling until the probe recovers
        const int failures_before = e.fail_streak;
        const bool want_eligible = e.allowance > 0.0;
        // Duplicates transition()'s no-change early return so the common
        // case pays no call overhead.
        if (e.eligible != want_eligible || (e.suspect && cfg_.faults.self_heal)) {
            transition(id, e, want_eligible, stats, tp);
        }
        if (e.suspect && e.fail_streak == failures_before) {
            // kGone surfaced through the control channel: an ineligible
            // entity would never be measured again, so confirm by reading
            // right here (counted as a verification retry).
            ++stats.retries;
            ++health_.retries;
            const Sample s = guarded_read(id, stats);
            if (s.ok && !s.alive) {
                gone.push_back(id);
                continue;
            }
            if (s.ok) {
                note_success(e);
            } else {
                ++stats.read_failures;
                ++health_.read_failures;
                note_failure(e);
            }
        }
        if (cfg_.faults.quarantine_after > 0 && !e.quarantined &&
            e.fail_streak >= cfg_.faults.quarantine_after) {
            enter_quarantine(id, e);
            continue;
        }
        if (!cfg_.lazy_measurement) continue;
        if (e.update <= count_) {
            // §2.3: entity i cannot exhaust its allowance in fewer than
            // ceil(allowance / parallelism) quanta, so skip measuring it
            // until then.
            const double quanta_until_due =
                std::max(std::ceil(e.allowance / cfg_.max_parallelism), 1.0);
            e.update = count_ + static_cast<std::uint64_t>(quanta_until_due);
        }
    }
    for (EntityId id : gone) forget(id);

    if (tp != nullptr) {
        trace.tick = count_;
        trace.cycle_completed = stats.cycle_completed;
        trace.cycle_time_remaining = cycle_time_remaining();
        fill_fault_trace(trace, stats);
        trace.entities.reserve(entities_.size());
        trace.allowances.reserve(entities_.size());
        for (const auto& [id, e] : entities_) {
            trace.entities.push_back(id);
            trace.allowances.push_back(e.allowance);
        }
        tick_observer_(trace);
    }
    return stats;
}

void Scheduler::emit_cycle_record() {
    if (observer_) {
        CycleRecord rec;
        rec.index = cycles_done_;
        rec.end_tick = count_;
        rec.ids.reserve(entities_.size());
        for (const auto& [id, e] : entities_) {
            rec.ids.push_back(id);
            rec.shares.push_back(e.share);
            rec.consumed.push_back(e.cycle_consumed);
        }
        observer_(rec);
    }
    for (auto& [id, e] : entities_) e.cycle_consumed = Duration::zero();
}

}  // namespace alps::core
