// The ALPS scheduling algorithm (paper Figure 3).
//
// State model:
//   * Each entity i has a share s_i, an allowance a_i (in quanta of CPU
//     time it may still consume this cycle), and a state (eligible or
//     ineligible). Eligible entities contend for the CPU under the kernel's
//     native policy; ineligible ones are suspended.
//   * Globally the scheduler keeps the total shares S and the remaining
//     cycle time t_c. A cycle is S·Q of *consumed* CPU time — proportional
//     share is guaranteed per cycle, on the "virtual processor" whose speed
//     the kernel dictates (§2.1).
//
// Core invariant (verified by the test suite): at the end of every tick,
//     Σ_i a_i · Q == t_c
// Measurements subtract the same amount from both sides; the blocked-process
// heuristic subtracts one quantum from both sides; a cycle completion adds
// S (· Q) to both sides; membership changes adjust both sides together.
//
// Lazy measurement (§2.3): an entity with allowance a cannot exhaust it in
// fewer than ⌈a⌉ quanta, so its next measurement is scheduled ⌈a⌉ ticks out.
// Disable via SchedulerConfig::lazy_measurement to get the paper's
// "unoptimized" comparison version.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "alps/process_control.h"
#include "alps/trace.h"
#include "util/arena.h"
#include "util/shares.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::core {

using util::Duration;
using util::Share;

/// Degradation policy: how the scheduler reacts when the backend channel
/// fails. The defaults keep the no-fault fast path bit-identical to a
/// scheduler without any fault handling (every mechanism below only
/// activates after a failure is actually observed).
struct FaultPolicy {
    /// Immediate same-tick retries of a failed progress read (bounded; the
    /// cross-tick backoff below handles persistent failures).
    int max_read_retries = 2;
    /// After this many *consecutive* failures on one entity, stop signalling
    /// it (quarantine): it is released to run freely, probed every tick, and
    /// either recovers or is dropped. 0 disables quarantine.
    int quarantine_after = 4;
    /// After this many consecutive failures the entity is dropped from the
    /// cycle entirely (its share and allowance leave the accounting).
    /// Must be > quarantine_after when both are enabled.
    int drop_after = 12;
    /// Cap on the cross-tick measurement backoff after failed reads, in
    /// ticks (backoff is 1, 2, 4, ... up to this).
    int max_backoff_ticks = 8;
    /// Self-healing watchdog: re-issue the desired-state signal to entities
    /// whose last control op failed, and re-resume entities that a
    /// measurement finds stopped while eligible (a lost SIGCONT).
    bool self_heal = true;
};

struct SchedulerConfig {
    /// The ALPS quantum Q — the period between algorithm invocations and the
    /// unit of allowance. The paper evaluates 10–40 ms (100 ms in §5).
    Duration quantum = util::msec(10);
    /// §2.3 optimization: postpone measuring entity i for ⌈a_i⌉ ticks.
    bool lazy_measurement = true;
    /// §2.4: charge blocked entities one quantum and shrink the cycle.
    bool io_accounting = true;
    /// Upper bound on how many quanta of CPU one entity can consume per tick.
    /// 1 for a single process on one CPU (the paper's setting); a group
    /// principal of k processes on an m-CPU host can burn min(k, m) — the
    /// lazy-measurement postponement divides by this so it stays a sound
    /// lower bound.
    double max_parallelism = 1.0;
    /// Failure-degradation policy (see FaultPolicy).
    FaultPolicy faults{};
};

/// Everything the algorithm did during one tick; the simulation backend
/// converts this to CPU cost via the Table-1 cost model.
struct TickStats {
    int measured = 0;    ///< entities whose progress was read
    int suspended = 0;   ///< eligible -> ineligible transitions (signals)
    int resumed = 0;     ///< ineligible -> eligible transitions (signals)
    bool cycle_completed = false;
    // --- degraded-mode operations (all zero on a healthy channel) ---
    int read_failures = 0;     ///< reads still failing after in-tick retries
    int control_failures = 0;  ///< suspend/resume ops that did not take
    int retries = 0;           ///< extra same-tick read attempts
    int reissues = 0;          ///< watchdog re-sent signals (self-healing)
    int rebaselines = 0;       ///< backwards CPU samples absorbed (PID reuse)
    int quarantined = 0;       ///< entities that entered quarantine this tick
    int dropped = 0;           ///< entities dropped after repeated failures
};

/// Cumulative channel-health counters since construction. `degraded()` is
/// the "has this scheduler ever seen its backend misbehave" bit; until it
/// flips, every hot path is exactly the infallible-backend code path.
struct HealthReport {
    std::uint64_t read_failures = 0;
    std::uint64_t control_failures = 0;
    std::uint64_t retries = 0;
    std::uint64_t reissues = 0;
    std::uint64_t rebaselines = 0;
    std::uint64_t quarantines = 0;   ///< quarantine entries (not current count)
    std::uint64_t drops = 0;
    std::uint64_t exceptions = 0;    ///< backend calls that threw mid-tick
    std::size_t quarantined_now = 0;

    [[nodiscard]] bool degraded() const {
        return read_failures + control_failures + reissues + quarantines +
                   drops + exceptions >
               0;
    }
};

/// Per-cycle accounting record, for the accuracy evaluation (§3.1).
struct CycleRecord {
    std::uint64_t index = 0;       ///< cycle number, from 0
    std::uint64_t end_tick = 0;    ///< tick count at which the cycle ended
    /// Parallel arrays: entity, its share, and the CPU it consumed during
    /// this cycle (as measured by ALPS).
    std::vector<EntityId> ids;
    std::vector<Share> shares;
    std::vector<Duration> consumed;
};

struct SchedulerSnapshot;

class Scheduler {
public:
    /// `arena` (optional) backs the entity table with a per-run arena (the
    /// simulation backends pass their engine's); null keeps it on the heap,
    /// which is right for hosts without a run arena (POSIX, unit tests).
    Scheduler(ProcessControl& control, SchedulerConfig cfg = {},
              util::Arena* arena = nullptr);

    // ----- membership -----

    /// Adds an entity with the given share (> 0). Per the paper, its
    /// allowance starts at `share` and it starts ineligible; it becomes
    /// eligible (and is resumed) on the next tick. The entity must currently
    /// be runnable from the host's point of view; ALPS suspends it here so
    /// that it cannot run before its first tick.
    void add(EntityId id, Share share);

    /// Removes an entity (resuming it if suspended — ALPS relinquishes
    /// control). Its unused allowance leaves the cycle.
    void remove(EntityId id);

    /// Extension: changes an entity's share mid-flight. The entity's
    /// remaining allowance is kept; future cycles use the new share.
    void set_share(EntityId id, Share share);

    /// Extension: changes the quantum mid-flight (the accuracy/overhead
    /// knob, §2.1). Allowances are denominated in quanta, so they are
    /// rescaled by old/new to keep every entity's remaining CPU entitlement
    /// — and the Σ a_i·Q == t_c invariant — intact. All measurement
    /// postponements are reset (they were computed under the old quantum).
    void set_quantum(Duration quantum);

    [[nodiscard]] bool contains(EntityId id) const {
        return find_entity(id) != entities_.end();
    }
    [[nodiscard]] std::size_t size() const { return entities_.size(); }

    // ----- operation -----

    /// One invocation of the Figure-3 algorithm. Call every quantum.
    TickStats tick();

    /// Hands every entity back to the kernel (resumes all suspended ones).
    /// Used at teardown so no process is left SIGSTOPped. Never throws: a
    /// backend failure on one entity must not leave the others stopped. On a
    /// degraded channel each resume is verified with a read and retried a
    /// bounded number of times.
    void release_all() noexcept;

    // ----- observation -----

    using CycleObserver = std::function<void(const CycleRecord&)>;
    /// Called at the end of every cycle with that cycle's consumption.
    void set_cycle_observer(CycleObserver obs) { observer_ = std::move(obs); }

    using TickObserver = std::function<void(const TickTrace&)>;
    /// Called after every tick with that tick's decisions (see trace.h).
    /// Costs nothing when unset.
    void set_tick_observer(TickObserver obs) { tick_observer_ = std::move(obs); }

    [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }
    [[nodiscard]] Share total_shares() const { return total_shares_; }
    [[nodiscard]] Duration cycle_length() const {
        return cfg_.quantum * total_shares_;
    }
    /// Remaining CPU time in the current cycle (t_c in the paper).
    [[nodiscard]] Duration cycle_time_remaining() const {
        return Duration{static_cast<std::int64_t>(tc_ns_)};
    }
    [[nodiscard]] std::uint64_t tick_count() const { return count_; }
    [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_done_; }
    [[nodiscard]] std::uint64_t total_measurements() const { return total_measurements_; }

    /// Channel-health counters since construction (see HealthReport).
    [[nodiscard]] HealthReport health() const;

    /// Registers algorithm totals (`<prefix>ticks`, `<prefix>cycles`,
    /// `<prefix>measurements`) and every HealthReport counter in `reg` —
    /// the one metrics surface for scheduler health, replacing ad-hoc
    /// plumbing of HealthReport fields.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "alps.") const;
    /// True once the entity is in quarantine (signalling given up, probing).
    [[nodiscard]] bool quarantined(EntityId id) const;

    /// Remaining allowance of an entity, in quanta.
    [[nodiscard]] double allowance(EntityId id) const;
    [[nodiscard]] bool eligible(EntityId id) const;
    [[nodiscard]] Share share(EntityId id) const;
    [[nodiscard]] std::vector<EntityId> ids() const;

private:
    friend SchedulerSnapshot snapshot(const Scheduler&);
    friend void restore(Scheduler&, const SchedulerSnapshot&);

    struct Entity {
        Share share = 0;
        double allowance = 0.0;         ///< in quanta
        bool eligible = false;          ///< *desired* state (what ALPS wants)
        std::uint64_t update = 0;       ///< next tick index at which to measure
        Duration last_cpu{0};           ///< cumulative CPU at last measurement
        Duration cycle_consumed{0};     ///< consumption logged this cycle
        bool have_baseline = false;     ///< first read_progress done
        // --- fault bookkeeping (all quiescent on a healthy channel) ---
        int fail_streak = 0;            ///< consecutive backend failures
        bool suspect = false;           ///< last control op may not have taken
        bool quarantined = false;       ///< signalling given up; probing
        /// Measured or probed by this tick's measurement loop. The refresh
        /// loop skips untouched entities when nothing else (cycle boundary,
        /// suspect state, pending eligibility flip, due lazy-update
        /// recompute) concerns them — for those the loop body is provably a
        /// no-op, and they are the vast majority under lazy measurement.
        bool touched = false;
    };

    /// Flat entity table, sorted by id — the same deterministic iteration
    /// order as the std::map it replaces, but contiguous: tick() walks every
    /// entity twice per quantum, and the map's node hops dominated that walk.
    /// Membership changes are rare (admission, death), so O(n) sorted
    /// insert/erase is the right trade. Arena-backed when the scheduler is
    /// given a per-run arena (growth strands the old buffer there — fine for
    /// a table that reaches its run's population and stays).
    using EntityTable =
        std::vector<std::pair<EntityId, Entity>,
                    util::ArenaAllocator<std::pair<EntityId, Entity>>>;

    [[nodiscard]] EntityTable::iterator find_entity(EntityId id) {
        const auto it = std::lower_bound(
            entities_.begin(), entities_.end(), id,
            [](const auto& p, EntityId v) { return p.first < v; });
        return (it != entities_.end() && it->first == id) ? it : entities_.end();
    }
    [[nodiscard]] EntityTable::const_iterator find_entity(EntityId id) const {
        const auto it = std::lower_bound(
            entities_.begin(), entities_.end(), id,
            [](const auto& p, EntityId v) { return p.first < v; });
        return (it != entities_.end() && it->first == id) ? it : entities_.end();
    }
    void insert_entity(EntityId id, const Entity& e) {
        entities_.insert(std::lower_bound(entities_.begin(), entities_.end(), id,
                                          [](const auto& p, EntityId v) {
                                              return p.first < v;
                                          }),
                         {id, e});
    }

    /// Applies an eligibility transition through the backend.
    void transition(EntityId id, Entity& e, bool make_eligible, TickStats& stats,
                    TickTrace* trace);

    /// read_progress with bounded same-tick retries; exceptions and !ok
    /// samples become counted transient failures.
    Sample guarded_read(EntityId id, TickStats& stats);
    /// One suspend/resume through the backend; exceptions become kTransient.
    ControlResult guarded_signal(EntityId id, bool make_eligible);
    /// Records a failure on `e`; returns true when the entity just crossed
    /// into quarantine (caller counts it).
    bool note_failure(Entity& e);
    void note_success(Entity& e) {
        e.fail_streak = 0;
        e.suspect = false;
    }
    /// Removes `id` from the cycle accounting (dead or dropped).
    void forget(EntityId id);

    void emit_cycle_record();

    ProcessControl& control_;
    SchedulerConfig cfg_;

    EntityTable entities_;
    /// Scratch for the batched measurement path (tick() pre-collects the
    /// ids it will measure and reads them in one backend pass); members so
    /// the per-tick hot path does not allocate.
    std::vector<EntityId> batch_ids_;
    std::vector<Sample> batch_samples_;
    Share total_shares_ = 0;
    double tc_ns_ = 0.0;  ///< remaining cycle time, in ns (t_c)
    std::uint64_t count_ = 0;
    std::uint64_t cycles_done_ = 0;
    std::uint64_t total_measurements_ = 0;
    HealthReport health_{};
    CycleObserver observer_;
    TickObserver tick_observer_;
};

}  // namespace alps::core
