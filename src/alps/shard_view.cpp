#include "alps/shard_view.h"

#include <span>

#include "util/assert.h"

namespace alps::core {

util::Duration ShardSampleBoard::Slice::total_cpu() const {
    util::Duration sum{0};
    for (const auto& v : views) {
        if (v.alive) sum += v.cpu_time;
    }
    return sum;
}

std::size_t ShardSampleBoard::Slice::alive_count() const {
    std::size_t n = 0;
    for (const auto& v : views) n += v.alive ? 1 : 0;
    return n;
}

ShardSampleBoard::ShardSampleBoard(unsigned groups) {
    ALPS_EXPECT(groups >= 1);
    slices_.reserve(groups);
    for (unsigned g = 0; g < groups; ++g) {
        slices_.push_back(std::make_unique<AlignedEntry>());
    }
}

void ShardSampleBoard::track(unsigned group, os::Kernel& kernel, os::Uid uid) {
    ALPS_EXPECT(group < slices_.size());
    slices_[group]->kernel = &kernel;
    slices_[group]->uid = uid;
}

void ShardSampleBoard::publish(unsigned group, util::TimePoint t) {
    ALPS_EXPECT(group < slices_.size());
    Entry& e = *slices_[group];
    ALPS_EXPECT(e.kernel != nullptr);  // track() first
    // Membership then one batched SoA pass — both allocation-free once the
    // vectors have grown to the group's working-set size.
    e.kernel->pids_of_uid(e.uid, e.slice.pids);
    e.slice.views.resize(e.slice.pids.size());
    e.kernel->measure(std::span<const os::Pid>(e.slice.pids),
                      e.slice.views.data());
    e.slice.at = t;
    ++e.slice.epoch;
}

const ShardSampleBoard::Slice& ShardSampleBoard::slice(unsigned group) const {
    ALPS_EXPECT(group < slices_.size());
    return slices_[group]->slice;
}

util::Duration ShardSampleBoard::machine_cpu() const {
    util::Duration sum{0};
    for (const auto& e : slices_) sum += e->slice.total_cpu();
    return sum;
}

std::size_t ShardSampleBoard::machine_alive() const {
    std::size_t n = 0;
    for (const auto& e : slices_) n += e->slice.alive_count();
    return n;
}

}  // namespace alps::core
