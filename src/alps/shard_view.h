// Cross-shard sample board: the sharded engine's answer to "one ALPS driver
// reads the whole machine".
//
// Each kernel group owns one slice of the board. During its shard's publish
// hook (after run_until, before barrier A) the owning thread refreshes the
// slice with one batched Kernel::measure() pass over the group's tracked
// uid — the same SoA walk the per-tick measurement uses, so a slice costs
// one table scan, not one lookup per process. During the boundary hook
// (after barrier A, before barrier B) *any* shard may read *any* slice: the
// epoch barrier is the happens-before edge, so readers see complete,
// unchanging slices without any locking, and every reader sees the same
// epoch-consistent snapshot of all groups.
//
// Slices are cache-line aligned so two shards publishing concurrently never
// write the same line (the telemetry rings' padding discipline).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "os/kernel.h"
#include "os/types.h"
#include "sim/spsc.h"
#include "util/time.h"

namespace alps::core {

class ShardSampleBoard {
public:
    /// One group's epoch-boundary snapshot. `pids[i]` pairs with `views[i]`.
    struct Slice {
        util::TimePoint at{};  ///< the boundary this snapshot describes
        std::uint64_t epoch = 0;  ///< publishes so far (0 = never published)
        std::vector<os::Pid> pids;
        std::vector<os::Kernel::SampleView> views;

        /// Sum of cpu_time over the snapshot (alive entries only).
        [[nodiscard]] util::Duration total_cpu() const;
        [[nodiscard]] std::size_t alive_count() const;
    };

    explicit ShardSampleBoard(unsigned groups);

    ShardSampleBoard(const ShardSampleBoard&) = delete;
    ShardSampleBoard& operator=(const ShardSampleBoard&) = delete;

    [[nodiscard]] unsigned groups() const {
        return static_cast<unsigned>(slices_.size());
    }

    /// Declares what group `group` publishes: the live processes of `uid`
    /// on `kernel` (the ALPS "my workload" membership rule). Call from the
    /// owning shard's thread (or before the run starts).
    void track(unsigned group, os::Kernel& kernel, os::Uid uid);

    /// Refreshes group `group`'s slice at boundary `t`. Call ONLY from the
    /// owning shard's publish hook — it writes the slice in place.
    void publish(unsigned group, util::TimePoint t);

    /// Reads a slice. Safe from any shard's boundary hook (and from the
    /// caller between run_lockstep calls); never safe during produce.
    [[nodiscard]] const Slice& slice(unsigned group) const;

    /// Whole-machine aggregate over every published slice — what a global
    /// controller reads at the boundary.
    [[nodiscard]] util::Duration machine_cpu() const;
    [[nodiscard]] std::size_t machine_alive() const;

private:
    struct Entry {
        os::Kernel* kernel = nullptr;
        os::Uid uid = 0;
        Slice slice;
    };
    /// unique_ptr keeps each aligned Entry stable; the vector itself is
    /// never resized after construction.
    struct alignas(sim::kCacheLine) AlignedEntry : Entry {};
    std::vector<std::unique_ptr<AlignedEntry>> slices_;
};

}  // namespace alps::core
