#include "alps/sim_adapter.h"

#include <utility>

#include "util/assert.h"

namespace alps::core {

using util::Duration;
using util::TimePoint;

// ----------------------------------------------------------------------------
// SimProcessHost

Sample SimProcessHost::read_pid(HostPid pid) {
    // One table lookup per measurement: this runs once per managed entity
    // per quantum, so the split alive/cpu_time/is_blocked/proc reads (four
    // lookups) used to dominate the whole sampling path.
    const os::Kernel::SampleView v = kernel_.sample(static_cast<os::Pid>(pid));
    Sample s;
    s.cpu_time = v.cpu_time;
    s.blocked = v.blocked;
    s.stopped = v.stopped;
    s.alive = v.alive;
    return s;
}

void SimProcessHost::read_pids(std::span<const HostPid> pids, Sample* out) {
    batch_pid_scratch_.clear();
    batch_pid_scratch_.reserve(pids.size());
    for (const HostPid p : pids) {
        batch_pid_scratch_.push_back(static_cast<os::Pid>(p));
    }
    batch_view_scratch_.resize(pids.size());
    kernel_.measure(batch_pid_scratch_, batch_view_scratch_.data());
    for (std::size_t i = 0; i < pids.size(); ++i) {
        const os::Kernel::SampleView& v = batch_view_scratch_[i];
        Sample s;
        s.cpu_time = v.cpu_time;
        s.blocked = v.blocked;
        s.stopped = v.stopped;
        s.alive = v.alive;
        out[i] = s;
    }
}

ControlResult SimProcessHost::stop_pid(HostPid pid) {
    const auto p = static_cast<os::Pid>(pid);
    if (!kernel_.alive(p)) return ControlResult::kGone;
    kernel_.send_signal(p, os::Signal::kStop);
    return ControlResult::kOk;
}

ControlResult SimProcessHost::cont_pid(HostPid pid) {
    const auto p = static_cast<os::Pid>(pid);
    if (!kernel_.alive(p)) return ControlResult::kGone;
    kernel_.send_signal(p, os::Signal::kCont);
    return ControlResult::kOk;
}

std::vector<HostPid> SimProcessHost::pids_of_user(HostUid uid) {
    std::vector<HostPid> out;
    pids_of_user(uid, out);
    return out;
}

void SimProcessHost::pids_of_user(HostUid uid, std::vector<HostPid>& out) {
    kernel_.pids_of_uid(static_cast<os::Uid>(uid), pid_scratch_);
    out.clear();
    out.reserve(pid_scratch_.size());
    for (const os::Pid p : pid_scratch_) out.push_back(p);
}

// ----------------------------------------------------------------------------
// AlpsDriverBehavior

AlpsDriverBehavior::AlpsDriverBehavior(Scheduler& scheduler, CostModel cost,
                                       std::function<Duration()> pre_tick)
    : scheduler_(scheduler), cost_(cost), pre_tick_(std::move(pre_tick)) {}

os::Action AlpsDriverBehavior::next_action(os::ProcContext ctx) {
    const Duration q = scheduler_.config().quantum;
    if (!started_) {
        // First boundary: one quantum after spawn.
        started_ = true;
        awake_ = false;
        epoch_ = ctx.kernel.now();
        next_boundary_ = 1;
        grid_q_ = q;
        return os::SleepUntilAction{epoch_ + q, this};
    }
    if (!awake_) {
        // The timer fired; do this quantum's work when we get the CPU.
        awake_ = true;
        return os::RunAction{.duration = {}, .lazy = true};
    }
    // Work done; sleep to the next boundary strictly after "now" (late ticks
    // skip boundaries, like a real absolute interval timer).
    awake_ = false;
    const TimePoint now = ctx.kernel.now();
    const auto elapsed = (now - epoch_).count();
    const auto due = elapsed / q.count() + 1;
    if (q != grid_q_) {
        // The quantum changed (adaptive control): re-grid without counting
        // skipped boundaries as misses.
        grid_q_ = q;
        next_boundary_ = due - 1;
    }
#ifdef ALPS_TRACE_DRIVER
    if (due - next_boundary_ - 1 > 0) {
        const os::Proc& self = ctx.kernel.proc(ctx.pid);
        std::fprintf(stderr,
                     "[driver late] pid=%d home=%d now=%.3fms boundary=%lld due=%lld\n",
                     ctx.pid, self.home_cpu, util::to_ms(now.since_epoch),
                     static_cast<long long>(next_boundary_),
                     static_cast<long long>(due));
        for (os::Pid pid : ctx.kernel.live_pids()) {
            const os::Proc& p = ctx.kernel.proc(pid);
            if (p.home_cpu != self.home_cpu) continue;
            std::fprintf(stderr,
                         "  pid %d %s nice %d estcpu %.1f usrpri %.1f cpu %d %s%s\n",
                         pid, p.name.c_str(), p.nice, p.estcpu, p.usrpri, p.on_cpu,
                         std::string(to_string(p.state)).c_str(),
                         p.stopped ? " stopped" : "");
        }
    }
#endif
    missed_ += static_cast<std::uint64_t>(due - next_boundary_ - 1 > 0
                                              ? due - next_boundary_ - 1
                                              : 0);
    next_boundary_ = due;
    return os::SleepUntilAction{epoch_ + Duration{q.count() * due}, this};
}

Duration AlpsDriverBehavior::lazy_run_duration(os::ProcContext) {
    Duration extra{0};
    if (pre_tick_) extra = pre_tick_();
    const TickStats stats = scheduler_.tick();
    ++ticks_;
    return cost_.tick_cost(stats) + extra;
}

// ----------------------------------------------------------------------------
// SimAlps

SimAlps::SimAlps(os::Kernel& kernel, SchedulerConfig cfg, CostModel cost,
                 std::string name, os::Uid uid, FaultPlan faults,
                 int driver_home_cpu, bool driver_pinned, int driver_nice)
    : kernel_(kernel) {
    host_ = std::make_unique<SimProcessHost>(kernel_);
    control_ = std::make_unique<PidProcessControl>(*host_);
    // The fault layer always sits in the stack but starts disabled (a pure
    // pass-through), so the no-fault configuration behaves identically.
    fault_control_ = std::make_unique<FaultInjectingControl>(*control_, faults);
    scheduler_ =
        std::make_unique<Scheduler>(*fault_control_, cfg, &kernel_.engine().arena());
    auto behavior = std::make_unique<AlpsDriverBehavior>(*scheduler_, cost);
    driver_ = behavior.get();
    driver_pid_ = kernel_.spawn(std::move(name), uid, std::move(behavior),
                                driver_nice, driver_home_cpu, driver_pinned);
}

SimAlps::~SimAlps() {
    // Leave no workload process stopped, then retire the driver, so a
    // simulation can continue past this ALPS's lifetime.
    scheduler_->release_all();
    if (kernel_.alive(driver_pid_)) kernel_.send_signal(driver_pid_, os::Signal::kKill);
}

void SimAlps::manage(os::Pid pid, Share share) {
    ALPS_EXPECT(kernel_.alive(pid));
    scheduler_->add(static_cast<EntityId>(pid), share);
}

Duration SimAlps::overhead_cpu() const { return kernel_.cpu_time(driver_pid_); }

// ----------------------------------------------------------------------------
// SimAdaptiveQuantum

SimAdaptiveQuantum::SimAdaptiveQuantum(SimAlps& alps, AdaptiveQuantumConfig cfg,
                                       Duration window)
    : alps_(alps), controller_(cfg), window_(window) {
    ALPS_EXPECT(window > Duration::zero());
    last_cpu_ = alps_.overhead_cpu();
    last_eval_ = alps_.kernel().now();
    // The window timer recurs for the whole run: register it on the engine's
    // devirtualized dispatch path (registrations are engine-lifetime, and so
    // is this controller by contract).
    window_kind_ = alps_.kernel().engine().register_hot(
        [](void* self, std::uint64_t) {
            static_cast<SimAdaptiveQuantum*>(self)->on_window();
        },
        this);
    event_ = alps_.kernel().engine().schedule_after(effective_window(), window_kind_, 0);
}

SimAdaptiveQuantum::~SimAdaptiveQuantum() {
    if (event_ != 0) alps_.kernel().engine().cancel(event_);
}

Duration SimAdaptiveQuantum::effective_window() const {
    // The cycle is ALPS's fairness horizon and its measurement load is very
    // uneven within one; sampling overhead over less than a cycle produces a
    // phase-dependent (noisy) signal the controller would chase.
    return std::max(window_, alps_.scheduler().cycle_length());
}

void SimAdaptiveQuantum::on_window() {
    const Duration cpu = alps_.overhead_cpu();
    const Duration elapsed = alps_.kernel().now() - last_eval_;
    const Duration old_q = alps_.scheduler().config().quantum;
    const Duration new_q = controller_.update(old_q, cpu - last_cpu_, elapsed);
    last_cpu_ = cpu;
    last_eval_ = alps_.kernel().now();
    if (new_q != old_q) {
        alps_.scheduler().set_quantum(new_q);
        ++adjustments_;
    }
    event_ = alps_.kernel().engine().schedule_after(effective_window(), window_kind_, 0);
}

// ----------------------------------------------------------------------------
// SimGroupAlps

SimGroupAlps::SimGroupAlps(os::Kernel& kernel, SchedulerConfig cfg, CostModel cost,
                           Duration refresh_period, std::string name, os::Uid uid,
                           int driver_home_cpu, bool driver_pinned, int driver_nice)
    : kernel_(kernel), cost_(cost), refresh_period_(refresh_period) {
    ALPS_EXPECT(refresh_period > Duration::zero());
    host_ = std::make_unique<SimProcessHost>(kernel_);
    control_ = std::make_unique<GroupProcessControl>(*host_);
    scheduler_ = std::make_unique<Scheduler>(*control_, cfg, &kernel_.engine().arena());
    next_refresh_ = kernel_.now();

    // Once per refresh period, reconcile every principal's membership with
    // the process table; the scan is charged like measuring each scanned
    // process (a kvm_getprocs walk touches the same per-process kernel data).
    auto pre_tick = [this]() -> Duration {
        if (kernel_.now() < next_refresh_) return Duration::zero();
        next_refresh_ = kernel_.now() + refresh_period_;
        const int scanned = control_->refresh_all();
        TickStats as_if;
        as_if.measured = scanned;
        return cost_.tick_cost(as_if) - util::from_us(cost_.timer_event_us);
    };
    auto behavior =
        std::make_unique<AlpsDriverBehavior>(*scheduler_, cost_, std::move(pre_tick));
    driver_ = behavior.get();
    driver_pid_ = kernel_.spawn(std::move(name), uid, std::move(behavior),
                                driver_nice, driver_home_cpu, driver_pinned);
}

SimGroupAlps::~SimGroupAlps() {
    scheduler_->release_all();
    if (kernel_.alive(driver_pid_)) kernel_.send_signal(driver_pid_, os::Signal::kKill);
}

EntityId SimGroupAlps::manage_user(std::string name, os::Uid uid, Share share) {
    const EntityId id = control_->add_principal(std::move(name), uid);
    control_->refresh(id);
    scheduler_->add(id, share);
    return id;
}

Duration SimGroupAlps::overhead_cpu() const { return kernel_.cpu_time(driver_pid_); }

}  // namespace alps::core
