// Binds the ALPS core to the simulated kernel.
//
// The driver runs *as a simulated process*: it sleeps until each quantum
// boundary (an absolute timer, like the real implementation's interval
// timer), and when the kernel dispatches it, it executes one tick of the
// Figure-3 algorithm and then consumes the CPU time that tick would cost on
// the paper's host (Table-1 cost model). ALPS therefore competes for the CPU
// with the workload it schedules — which is what bounds its scalability
// (paper §4.2).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "alps/adaptive.h"
#include "alps/cost_model.h"
#include "alps/fault.h"
#include "alps/group_control.h"
#include "alps/host.h"
#include "alps/scheduler.h"
#include "os/behavior.h"
#include "os/kernel.h"

namespace alps::core {

/// ProcessHost over the simulated kernel.
class SimProcessHost final : public ProcessHost {
public:
    explicit SimProcessHost(os::Kernel& kernel) : kernel_(kernel) {}

    Sample read_pid(HostPid pid) override;
    /// One kernel pass over the SoA accounting arrays per tick instead of
    /// one sample() call per entity (the batched Kernel::measure entry).
    [[nodiscard]] bool supports_batch_read() const override { return true; }
    void read_pids(std::span<const HostPid> pids, Sample* out) override;
    ControlResult stop_pid(HostPid pid) override;
    ControlResult cont_pid(HostPid pid) override;
    std::vector<HostPid> pids_of_user(HostUid uid) override;
    void pids_of_user(HostUid uid, std::vector<HostPid>& out) override;

private:
    os::Kernel& kernel_;
    /// Reused by pids_of_user so the once-per-second membership refresh does
    /// not allocate (single-threaded with its scheduler, like all hosts).
    std::vector<os::Pid> pid_scratch_;
    /// Reused by read_pids (HostPid is int64, the kernel's Pid is int32).
    std::vector<os::Pid> batch_pid_scratch_;
    std::vector<os::Kernel::SampleView> batch_view_scratch_;
};

/// The ALPS process body: sleep to the next quantum boundary, tick, pay the
/// tick's CPU cost, repeat.
class AlpsDriverBehavior final : public os::Behavior {
public:
    /// `pre_tick` (optional) runs before each tick — e.g. the §5 once-per-
    /// second membership refresh — and returns extra CPU cost to charge.
    AlpsDriverBehavior(Scheduler& scheduler, CostModel cost,
                       std::function<util::Duration()> pre_tick = nullptr);

    os::Action next_action(os::ProcContext ctx) override;
    util::Duration lazy_run_duration(os::ProcContext ctx) override;

    [[nodiscard]] std::uint64_t ticks_run() const { return ticks_; }
    /// Quantum boundaries that passed while the driver was still busy or
    /// waiting for the CPU (a breakdown symptom).
    [[nodiscard]] std::uint64_t boundaries_missed() const { return missed_; }

private:
    Scheduler& scheduler_;
    CostModel cost_;
    std::function<util::Duration()> pre_tick_;
    util::TimePoint epoch_{};
    std::int64_t next_boundary_ = 1;
    util::Duration grid_q_{0};  ///< quantum the boundary index refers to
    bool started_ = false;
    bool awake_ = false;
    std::uint64_t ticks_ = 0;
    std::uint64_t missed_ = 0;
};

/// One complete per-application ALPS on the simulated kernel: host bridge,
/// per-pid control, scheduler, and the driver process. Keep it alive for as
/// long as the simulation runs.
class SimAlps {
public:
    /// `faults` (optional) interposes a FaultInjectingControl between the
    /// scheduler and the per-pid control. It starts *disabled* — enable it
    /// via faults().set_enabled(true) once setup is done — so construction
    /// and manage() always see a clean channel.
    /// `driver_home_cpu` places the ALPS driver process on a scheduling
    /// domain when the kernel runs per-CPU queues (one-ALPS-per-core
    /// deployments); -1 (default) leaves placement to the kernel.
    /// `driver_pinned` additionally exempts the driver from idle-steal and
    /// rebalance so the placement is hard (Proc::pinned).
    /// `driver_nice` is the driver process's kernel nice value: a real ALPS
    /// daemon runs at elevated priority so its ticks are not queued behind
    /// the very workload it schedules (a nice-0 driver on a saturated host
    /// misses quantum boundaries wholesale).
    explicit SimAlps(os::Kernel& kernel, SchedulerConfig cfg = {}, CostModel cost = {},
                     std::string name = "alps", os::Uid uid = 0, FaultPlan faults = {},
                     int driver_home_cpu = -1, bool driver_pinned = false,
                     int driver_nice = 0);
    ~SimAlps();

    SimAlps(const SimAlps&) = delete;
    SimAlps& operator=(const SimAlps&) = delete;

    /// Puts a process under ALPS control with the given share.
    void manage(os::Pid pid, Share share);

    [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
    [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }
    [[nodiscard]] os::Kernel& kernel() { return kernel_; }
    [[nodiscard]] os::Pid driver_pid() const { return driver_pid_; }
    [[nodiscard]] const AlpsDriverBehavior& driver() const { return *driver_; }

    /// CPU consumed by the ALPS process itself (the §3.2 overhead numerator).
    [[nodiscard]] util::Duration overhead_cpu() const;

    /// The fault-injection layer (a pass-through until enabled).
    [[nodiscard]] FaultInjectingControl& faults() { return *fault_control_; }
    /// Scheduler channel-health counters (see HealthReport).
    [[nodiscard]] HealthReport health() const { return scheduler_->health(); }

private:
    os::Kernel& kernel_;
    std::unique_ptr<SimProcessHost> host_;
    std::unique_ptr<PidProcessControl> control_;
    std::unique_ptr<FaultInjectingControl> fault_control_;
    std::unique_ptr<Scheduler> scheduler_;
    AlpsDriverBehavior* driver_ = nullptr;  // owned by the kernel's Proc
    os::Pid driver_pid_ = os::kNoPid;
};

/// Extension: drives an AdaptiveQuantumController from the simulation —
/// every `window`, reads the ALPS driver's CPU consumption and retunes the
/// scheduler's quantum toward the configured overhead budget. Keep it alive
/// (together with its SimAlps) for the duration of the run.
class SimAdaptiveQuantum {
public:
    SimAdaptiveQuantum(SimAlps& alps, AdaptiveQuantumConfig cfg,
                       util::Duration window = util::sec(2));
    ~SimAdaptiveQuantum();

    SimAdaptiveQuantum(const SimAdaptiveQuantum&) = delete;
    SimAdaptiveQuantum& operator=(const SimAdaptiveQuantum&) = delete;

    [[nodiscard]] util::Duration current_quantum() const {
        return alps_.scheduler().config().quantum;
    }
    /// Number of windows in which the quantum actually changed.
    [[nodiscard]] int adjustments() const { return adjustments_; }

private:
    void on_window();
    /// At least one cycle — the signal is too phase-noisy below that.
    [[nodiscard]] util::Duration effective_window() const;

    SimAlps& alps_;
    AdaptiveQuantumController controller_;
    util::Duration window_;
    util::Duration last_cpu_{0};
    util::TimePoint last_eval_{};
    sim::EventId event_ = 0;
    sim::Engine::HotKind window_kind_ = 0;  ///< devirtualized on_window timer
    int adjustments_ = 0;
};

/// The §5 variant: schedules group principals (users) instead of processes,
/// refreshing each principal's membership from the process table once per
/// `refresh_period`.
class SimGroupAlps {
public:
    /// `driver_home_cpu` / `driver_pinned` place (and optionally hard-pin)
    /// the driver process on a per-CPU-queue kernel, exactly as for SimAlps
    /// — the one-group-ALPS-per-core web deployments use this.
    SimGroupAlps(os::Kernel& kernel, SchedulerConfig cfg, CostModel cost = {},
                 util::Duration refresh_period = util::sec(1),
                 std::string name = "alps-group", os::Uid uid = 0,
                 int driver_home_cpu = -1, bool driver_pinned = false,
                 int driver_nice = 0);
    ~SimGroupAlps();

    SimGroupAlps(const SimGroupAlps&) = delete;
    SimGroupAlps& operator=(const SimGroupAlps&) = delete;

    /// Creates a principal tracking all processes of `uid` and registers it
    /// with the given share.
    EntityId manage_user(std::string name, os::Uid uid, Share share);

    [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
    [[nodiscard]] GroupProcessControl& groups() { return *control_; }
    [[nodiscard]] os::Pid driver_pid() const { return driver_pid_; }
    [[nodiscard]] const AlpsDriverBehavior& driver() const { return *driver_; }
    [[nodiscard]] util::Duration overhead_cpu() const;
    /// Scheduler channel-health counters (see HealthReport).
    [[nodiscard]] HealthReport health() const { return scheduler_->health(); }

private:
    os::Kernel& kernel_;
    std::unique_ptr<SimProcessHost> host_;
    std::unique_ptr<GroupProcessControl> control_;
    std::unique_ptr<Scheduler> scheduler_;
    AlpsDriverBehavior* driver_ = nullptr;  // owned by the kernel's Proc
    CostModel cost_;
    util::Duration refresh_period_;
    util::TimePoint next_refresh_{};
    os::Pid driver_pid_ = os::kNoPid;
};

}  // namespace alps::core
