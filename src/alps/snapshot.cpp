#include "alps/snapshot.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace alps::core {

SchedulerSnapshot snapshot(const Scheduler& sched) {
    SchedulerSnapshot snap;
    snap.quantum = sched.cfg_.quantum;
    snap.tc_ns = sched.tc_ns_;
    snap.tick_count = sched.count_;
    snap.entities.reserve(sched.entities_.size());
    for (const auto& [id, e] : sched.entities_) {
        snap.entities.push_back(
            {id, e.share, e.allowance, e.eligible, e.last_cpu});
    }
    return snap;
}

void restore(Scheduler& sched, const SchedulerSnapshot& snap) {
    ALPS_EXPECT(sched.entities_.empty());
    ALPS_EXPECT(snap.quantum > util::Duration::zero());
    sched.cfg_.quantum = snap.quantum;
    sched.tc_ns_ = snap.tc_ns;
    sched.count_ = snap.tick_count;
    sched.total_shares_ = 0;
    for (const auto& es : snap.entities) {
        ALPS_EXPECT(es.share > 0);
        Scheduler::Entity e;
        e.share = es.share;
        e.allowance = es.allowance;
        e.eligible = es.eligible;
        e.update = sched.count_;  // everyone is due at the next tick
        // Charge unsupervised consumption at the next tick — unless the
        // host's counters went backwards (different boot): re-baseline. A
        // failed read here defers the baseline to the first successful
        // measurement (nothing charged until then).
        const Sample now_sample = sched.control_.read_progress(es.id);
        if (now_sample.ok) {
            e.have_baseline = true;
            e.last_cpu = now_sample.cpu_time < es.last_cpu ? now_sample.cpu_time
                                                           : es.last_cpu;
        } else {
            ++sched.health_.read_failures;
            e.have_baseline = false;
        }
        // Enforce the recorded eligibility on the backend.
        if (es.eligible) {
            sched.control_.resume(es.id);
        } else {
            sched.control_.suspend(es.id);
        }
        sched.total_shares_ += es.share;
        sched.insert_entity(es.id, e);
    }
}

void serialize(const SchedulerSnapshot& snap, std::ostream& out) {
    // Full round-trip precision for the floating-point fields.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "alps-snapshot 1\n";
    out << "quantum_ns " << snap.quantum.count() << "\n";
    out << "tc_ns " << snap.tc_ns << "\n";
    out << "tick_count " << snap.tick_count << "\n";
    for (const auto& e : snap.entities) {
        out << "entity " << e.id << ' ' << e.share << ' ' << e.allowance << ' '
            << (e.eligible ? 1 : 0) << ' ' << e.last_cpu.count() << "\n";
    }
}

std::optional<SchedulerSnapshot> deserialize(std::istream& in) {
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != "alps-snapshot" || version != 1) {
        return std::nullopt;
    }
    SchedulerSnapshot snap;
    std::string key;
    while (in >> key) {
        if (key == "quantum_ns") {
            std::int64_t ns = 0;
            if (!(in >> ns) || ns <= 0) return std::nullopt;
            snap.quantum = util::Duration{ns};
        } else if (key == "tc_ns") {
            if (!(in >> snap.tc_ns)) return std::nullopt;
        } else if (key == "tick_count") {
            if (!(in >> snap.tick_count)) return std::nullopt;
        } else if (key == "entity") {
            SchedulerSnapshot::Entity e;
            int eligible = 0;
            std::int64_t last_cpu_ns = 0;
            if (!(in >> e.id >> e.share >> e.allowance >> eligible >> last_cpu_ns)) {
                return std::nullopt;
            }
            if (e.share <= 0) return std::nullopt;
            e.eligible = eligible != 0;
            e.last_cpu = util::Duration{last_cpu_ns};
            snap.entities.push_back(e);
        } else {
            return std::nullopt;  // unknown key: refuse rather than guess
        }
    }
    if (snap.quantum <= util::Duration::zero()) return std::nullopt;
    return snap;
}

}  // namespace alps::core
