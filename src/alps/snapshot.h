// Scheduler state snapshot/restore (extension).
//
// A control daemon (alpsctl, or an application-embedded ALPS) may need to
// restart without losing cycle accounting — otherwise every restart hands
// back any debt over-consumers owe. A snapshot captures the global cycle
// state and every entity's share/allowance/eligibility/consumption baseline;
// restore() rebuilds a scheduler from it, charging whatever the entities
// consumed while unsupervised (their cumulative CPU counters kept running).
//
// The text format is line-oriented (`key value` pairs, one entity per
// `entity` line) so state can live in a file across process restarts.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "alps/scheduler.h"

namespace alps::core {

struct SchedulerSnapshot {
    util::Duration quantum{0};
    double tc_ns = 0.0;
    std::uint64_t tick_count = 0;

    struct Entity {
        EntityId id = 0;
        util::Share share = 0;
        double allowance = 0.0;
        bool eligible = false;
        util::Duration last_cpu{0};

        bool operator==(const Entity&) const = default;
    };
    std::vector<Entity> entities;

    bool operator==(const SchedulerSnapshot&) const = default;
};

/// Captures the scheduler's state (between ticks).
[[nodiscard]] SchedulerSnapshot snapshot(const Scheduler& sched);

/// Rebuilds scheduler state into `sched`, which must be freshly constructed
/// (no entities) with any config; the snapshot's quantum and cycle state
/// replace it. Entities are suspended/resumed to match their recorded
/// eligibility. If an entity's cumulative CPU went backwards (a different
/// host boot), its baseline is refreshed instead of charging garbage.
void restore(Scheduler& sched, const SchedulerSnapshot& snap);

/// Text round-trip.
void serialize(const SchedulerSnapshot& snap, std::ostream& out);
[[nodiscard]] std::optional<SchedulerSnapshot> deserialize(std::istream& in);

}  // namespace alps::core
