#include "alps/stride_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "alps/host.h"
#include "alps/sim_adapter.h"
#include "util/assert.h"

namespace alps::core {

using util::Duration;
using util::TimePoint;

StrideEngine::StrideEngine(ProcessControl& control, StrideEngineConfig cfg)
    : control_(control), cfg_(cfg) {
    ALPS_EXPECT(cfg_.quantum > Duration::zero());
    ALPS_EXPECT(cfg_.stride1 > 0.0);
}

std::size_t StrideEngine::find(EntityId id) const {
    const auto it = std::lower_bound(
        entities_.begin(), entities_.end(), id,
        [](const auto& p, EntityId v) { return p.first < v; });
    if (it != entities_.end() && it->first == id) {
        return static_cast<std::size_t>(it - entities_.begin());
    }
    return entities_.size();
}

void StrideEngine::add(EntityId id, Share share) {
    ALPS_EXPECT(share > 0);
    ALPS_EXPECT(find(id) == entities_.size());
    Entity e;
    e.share = share;
    e.stride = cfg_.stride1 / static_cast<double>(share);
    // Join at the back of the current pass window, like a stride client_init:
    // one stride behind nobody, one ahead of everyone's history.
    double max_pass = 0.0;
    for (const auto& [eid, ent] : entities_) max_pass = std::max(max_pass, ent.pass);
    e.pass = max_pass + e.stride;
    e.last_cpu = control_.read_progress(id).cpu_time;
    // Like Scheduler::add: the entity is parked until the engine picks it.
    control_.suspend(id);
    entities_.insert(std::lower_bound(entities_.begin(), entities_.end(), id,
                                      [](const auto& p, EntityId v) {
                                          return p.first < v;
                                      }),
                     {id, e});
    total_shares_ += share;
    next_measure_ = 0;  // membership changed: the skip window is stale
}

void StrideEngine::remove(EntityId id) {
    const std::size_t i = find(id);
    ALPS_EXPECT(i < entities_.size());
    total_shares_ -= entities_[i].second.share;
    if (current_ != id) control_.resume(id);  // relinquish control
    if (current_ == id) current_ = -1;
    entities_.erase(entities_.begin() + static_cast<std::ptrdiff_t>(i));
    next_measure_ = 0;  // membership changed: the skip window is stale
}

TickStats StrideEngine::tick() {
    TickStats stats;
    ++count_;
    if (entities_.empty()) return stats;

    // 0. Lazy measurement (§2.3 in stride terms): while the runner provably
    // holds the minimum pass, the tick is a pure timer event — no read, no
    // signals. Cycle boundaries always measure so cycle records stay exact.
    const bool cycle_edge =
        ticks_in_cycle_ + 1 >= static_cast<std::uint64_t>(total_shares_);
    if (cfg_.lazy_measurement && current_ >= 0 && !cycle_edge &&
        count_ < next_measure_) {
        ++lazy_skips_;
        ++ticks_in_cycle_;
        return stats;
    }

    // 1. Measure the incumbent and advance its pass. An entity that blocked
    // through (part of) its quantum is still charged a full stride per tick
    // of its measurement window — use-it-or-lose-it, the stride analogue of
    // ALPS's §2.4 blocked charge.
    if (current_ >= 0) {
        const std::size_t i = find(current_);
        if (i < entities_.size()) {
            Entity& e = entities_[i].second;
            const Sample s = control_.read_progress(current_);
            ++stats.measured;
            ++total_measurements_;
            if (!s.ok || !s.alive) {
                remove(current_);
            } else {
                const Duration delta =
                    std::max(Duration::zero(), s.cpu_time - e.last_cpu);
                e.last_cpu = s.cpu_time;
                e.cycle_consumed += delta;
                const double quanta = util::to_sec(delta) / util::to_sec(cfg_.quantum);
                // Ticks since the runner was last measured — 1 when eager,
                // the whole skipped window when lazy.
                const double window = static_cast<double>(
                    count_ > runner_since_ ? count_ - runner_since_ : 1);
                e.pass += e.stride * std::max(window, quanta);
            }
        } else {
            current_ = -1;  // removed behind our back
        }
    }
    runner_since_ = count_;

    // 2. Cycle accounting on the same S·Q grid as ALPS.
    if (++ticks_in_cycle_ >= static_cast<std::uint64_t>(total_shares_)) {
        emit_cycle_record();
        ticks_in_cycle_ = 0;
        ++cycles_done_;
        stats.cycle_completed = true;
    }

    // 3. Run the minimum-pass entity (ties to the lower id via table order).
    if (entities_.empty()) return stats;
    std::size_t best = 0;
    for (std::size_t i = 1; i < entities_.size(); ++i) {
        if (entities_[i].second.pass < entities_[best].second.pass) best = i;
    }
    const EntityId next = entities_[best].first;
    if (next != current_) {
        if (current_ >= 0 && find(current_) < entities_.size()) {
            if (control_.suspend(current_) == ControlResult::kOk) ++stats.suspended;
        }
        if (control_.resume(next) == ControlResult::kOk) ++stats.resumed;
        current_ = next;
        runner_since_ = count_;
    }

    // 4. Open the next skip window: each tick charges >= one stride, so the
    // runner cannot rise past the field's second-minimum pass in fewer than
    // ceil((second_min - pass) / stride) ticks.
    if (cfg_.lazy_measurement) {
        double second = std::numeric_limits<double>::infinity();
        for (const auto& [id, e] : entities_) {
            if (id != current_) second = std::min(second, e.pass);
        }
        const Entity& runner = entities_[best].second;
        std::uint64_t window = 1;
        if (!std::isfinite(second)) {
            // Sole entity: nothing can overtake it; the cycle edge is the
            // only forced measurement.
            window = static_cast<std::uint64_t>(std::max<Share>(total_shares_, 1));
        } else if (second > runner.pass) {
            window = static_cast<std::uint64_t>(
                std::max(1.0, std::ceil((second - runner.pass) / runner.stride)));
        }
        next_measure_ = count_ + window;
    }
    return stats;
}

void StrideEngine::emit_cycle_record() {
    if (observer_) {
        CycleRecord rec;
        rec.index = cycles_done_;
        rec.end_tick = count_;
        rec.ids.reserve(entities_.size());
        rec.shares.reserve(entities_.size());
        rec.consumed.reserve(entities_.size());
        for (const auto& [id, e] : entities_) {
            rec.ids.push_back(id);
            rec.shares.push_back(e.share);
            rec.consumed.push_back(e.cycle_consumed);
        }
        observer_(rec);
    }
    for (auto& [id, e] : entities_) e.cycle_consumed = Duration::zero();
}

void StrideEngine::release_all() noexcept {
    for (const auto& [id, e] : entities_) {
        if (id != current_) control_.resume(id);
    }
    current_ = -1;
}

// ----------------------------------------------------------------------------
// SimStrideAlps

/// Sleep to each quantum boundary, run one stride tick, pay its modeled
/// cost — AlpsDriverBehavior with the allowance loop swapped for the stride
/// engine (the boundary grid never changes: no set_quantum here).
class SimStrideAlps::DriverBehavior final : public os::Behavior {
public:
    DriverBehavior(StrideEngine& engine, CostModel cost)
        : engine_(engine), cost_(cost) {}

    os::Action next_action(os::ProcContext ctx) override {
        const Duration q = engine_.config().quantum;
        if (!started_) {
            started_ = true;
            awake_ = false;
            epoch_ = ctx.kernel.now();
            next_boundary_ = 1;
            return os::SleepUntilAction{epoch_ + q, this};
        }
        if (!awake_) {
            awake_ = true;
            return os::RunAction{.duration = {}, .lazy = true};
        }
        awake_ = false;
        const TimePoint now = ctx.kernel.now();
        const auto due = (now - epoch_).count() / q.count() + 1;
        missed_ += static_cast<std::uint64_t>(
            due - next_boundary_ - 1 > 0 ? due - next_boundary_ - 1 : 0);
        next_boundary_ = due;
        return os::SleepUntilAction{epoch_ + Duration{q.count() * due}, this};
    }

    Duration lazy_run_duration(os::ProcContext) override {
        return cost_.tick_cost(engine_.tick());
    }

    [[nodiscard]] std::uint64_t boundaries_missed() const { return missed_; }

private:
    StrideEngine& engine_;
    CostModel cost_;
    TimePoint epoch_{};
    std::int64_t next_boundary_ = 1;
    bool started_ = false;
    bool awake_ = false;
    std::uint64_t missed_ = 0;
};

SimStrideAlps::SimStrideAlps(os::Kernel& kernel, StrideEngineConfig cfg,
                             CostModel cost, std::string name, os::Uid uid)
    : kernel_(kernel) {
    auto host = std::make_unique<SimProcessHost>(kernel_);
    auto control = std::make_unique<PidProcessControl>(*host);
    engine_ = std::make_unique<StrideEngine>(*control, cfg);
    host_ = std::move(host);
    control_ = std::move(control);
    auto behavior = std::make_unique<DriverBehavior>(*engine_, cost);
    driver_ = behavior.get();
    driver_pid_ = kernel_.spawn(std::move(name), uid, std::move(behavior));
}

SimStrideAlps::~SimStrideAlps() {
    engine_->release_all();
    if (kernel_.alive(driver_pid_)) kernel_.send_signal(driver_pid_, os::Signal::kKill);
}

void SimStrideAlps::manage(os::Pid pid, Share share) {
    ALPS_EXPECT(kernel_.alive(pid));
    engine_->add(static_cast<EntityId>(pid), share);
}

std::uint64_t SimStrideAlps::boundaries_missed() const {
    return driver_->boundaries_missed();
}

Duration SimStrideAlps::overhead_cpu() const { return kernel_.cpu_time(driver_pid_); }

}  // namespace alps::core
