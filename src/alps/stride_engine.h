// Stride scheduling as an *application-level* engine — the policy-zoo A/B
// the paper could not run.
//
// ALPS enforces proportional share with a per-cycle allowance loop (Figure
// 3): every entity holds an allowance of quanta, measurements subtract from
// it, exhausted entities are suspended until the cycle turns over. This
// engine replaces that loop with Waldspurger's stride algorithm operating on
// the same unprivileged control surface (read CPU time, SIGSTOP, SIGCONT):
// exactly one entity is left runnable at a time — the minimum-pass one — and
// each tick advances its pass by stride × (CPU consumed / quantum), floored
// at one full stride (use-it-or-lose-it: an entity that blocked through its
// quantum still paid for it, the analogue of ALPS's §2.4 charge).
//
// Costing is identical to ALPS's: each tick is one progress read plus at
// most one suspend/resume pair, priced through the same Table-1 CostModel,
// so BENCH_policy_zoo's A/B point compares mechanisms, not implementations.
//
// Lazy measurement carries over from ALPS §2.3 in stride terms: every tick
// charges the runner at least one full stride, so the runner provably keeps
// the minimum pass for ⌈(second_min_pass − pass) / stride⌉ ticks — those
// ticks skip the progress read and all signals, costing only the timer
// event. A skipped window settles at the next real measurement (the
// cumulative CPU delta spans the window, charged max(window, quanta)
// strides), and cycle boundaries force an eager tick so the S·Q cycle
// records stay exact.
//
// Deliberately minimal relative to core::Scheduler — no fault degradation,
// no mid-flight share or quantum changes. It exists to answer one question:
// how much of ALPS's share error is the allowance loop, and how much is the
// application-level control channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alps/cost_model.h"
#include "alps/host.h"
#include "alps/process_control.h"
#include "alps/scheduler.h"
#include "os/kernel.h"

namespace alps::core {

struct StrideEngineConfig {
    /// Tick period and the unit of pass advancement (like the ALPS Q).
    Duration quantum = util::msec(10);
    /// stride1: the stride of a single share (2^20, as in the paper).
    double stride1 = 1048576.0;
    /// §2.3 mapped onto stride: skip measuring while the runner provably
    /// holds the minimum pass (off = the eager ablation, one read per tick).
    bool lazy_measurement = true;
};

class StrideEngine {
public:
    explicit StrideEngine(ProcessControl& control, StrideEngineConfig cfg = {});

    /// Adds an entity with the given share (> 0); it is suspended here and
    /// runs only when it holds the minimum pass. Must not already be present.
    void add(EntityId id, Share share);
    /// Removes an entity, resuming it (the engine relinquishes control).
    void remove(EntityId id);

    /// One stride decision: measure the runner, advance its pass, run the
    /// new minimum-pass entity. Call every quantum.
    TickStats tick();

    /// Resumes everything (teardown: never leave a process stopped).
    void release_all() noexcept;

    using CycleObserver = Scheduler::CycleObserver;
    /// Called with per-entity consumption every total_shares() ticks — the
    /// same S·Q cycle grid as ALPS, so fairness metrics compare directly.
    void set_cycle_observer(CycleObserver obs) { observer_ = std::move(obs); }

    [[nodiscard]] const StrideEngineConfig& config() const { return cfg_; }
    [[nodiscard]] Share total_shares() const { return total_shares_; }
    [[nodiscard]] Duration cycle_length() const {
        return cfg_.quantum * total_shares_;
    }
    [[nodiscard]] std::size_t size() const { return entities_.size(); }
    [[nodiscard]] std::uint64_t tick_count() const { return count_; }
    [[nodiscard]] std::uint64_t cycles_completed() const { return cycles_done_; }
    [[nodiscard]] std::uint64_t total_measurements() const {
        return total_measurements_;
    }
    /// Ticks that skipped the progress read under lazy measurement.
    [[nodiscard]] std::uint64_t lazy_ticks_skipped() const { return lazy_skips_; }

private:
    struct Entity {
        Share share = 0;
        double stride = 0.0;         ///< stride1 / share
        double pass = 0.0;
        Duration last_cpu{0};        ///< cumulative CPU at last measurement
        Duration cycle_consumed{0};  ///< consumption logged this cycle
    };

    [[nodiscard]] std::size_t find(EntityId id) const;  ///< index or size()
    void emit_cycle_record();

    ProcessControl& control_;
    StrideEngineConfig cfg_;

    /// Flat table sorted by id (deterministic iteration, like the ALPS
    /// entity table). Membership changes are rare; ticks walk it.
    std::vector<std::pair<EntityId, Entity>> entities_;
    Share total_shares_ = 0;
    EntityId current_ = -1;  ///< the one runnable entity; -1 = none yet
    std::uint64_t count_ = 0;
    std::uint64_t ticks_in_cycle_ = 0;
    std::uint64_t cycles_done_ = 0;
    std::uint64_t total_measurements_ = 0;
    /// Lazy-measurement window: the runner is provably still the minimum
    /// pass until tick next_measure_; runner_since_ is when it was last
    /// measured (the window length settles the pass charge).
    std::uint64_t next_measure_ = 0;
    std::uint64_t runner_since_ = 0;
    std::uint64_t lazy_skips_ = 0;
    CycleObserver observer_;
};

/// One complete stride-engine instance on the simulated kernel: host bridge,
/// per-pid control, engine, and a driver process that sleeps to each quantum
/// boundary and pays the tick's modeled cost — the SimAlps counterpart.
class SimStrideAlps {
public:
    explicit SimStrideAlps(os::Kernel& kernel, StrideEngineConfig cfg = {},
                           CostModel cost = {}, std::string name = "stride-alps",
                           os::Uid uid = 0);
    ~SimStrideAlps();

    SimStrideAlps(const SimStrideAlps&) = delete;
    SimStrideAlps& operator=(const SimStrideAlps&) = delete;

    /// Puts a process under stride control with the given share.
    void manage(os::Pid pid, Share share);

    [[nodiscard]] StrideEngine& engine() { return *engine_; }
    [[nodiscard]] const StrideEngine& engine() const { return *engine_; }
    [[nodiscard]] os::Pid driver_pid() const { return driver_pid_; }
    /// Quantum boundaries missed while the driver was busy or runnable.
    [[nodiscard]] std::uint64_t boundaries_missed() const;
    /// CPU consumed by the driver process (the overhead numerator).
    [[nodiscard]] util::Duration overhead_cpu() const;

private:
    class DriverBehavior;

    os::Kernel& kernel_;
    std::unique_ptr<ProcessHost> host_;
    std::unique_ptr<ProcessControl> control_;
    std::unique_ptr<StrideEngine> engine_;
    DriverBehavior* driver_ = nullptr;  // owned by the kernel's Proc
    os::Pid driver_pid_ = os::kNoPid;
};

}  // namespace alps::core
