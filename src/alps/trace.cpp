#include "alps/trace.h"

#include <algorithm>
#include <sstream>

#include "telemetry/metrics.h"
#include "util/assert.h"

namespace alps::core {

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
    ALPS_EXPECT(capacity > 0);
}

void TraceLog::observe(TickTrace trace) {
    if (traces_.size() >= capacity_) {
        ++dropped_ticks_;
        return;
    }
    traces_.push_back(std::move(trace));
}

void TraceLog::register_metrics(telemetry::MetricsRegistry& reg,
                                const std::string& prefix) const {
    reg.counter(prefix + "ticks_logged").add(traces_.size());
    reg.counter(prefix + "dropped_ticks").add(dropped_ticks_);
}

std::string TraceLog::to_csv() const {
    std::ostringstream out;
    out << "tick,entity,allowance,measured,suspended,resumed,cycle_completed,tc_ms,"
           "quarantined,dropped,faults\n";
    const auto contains = [](const std::vector<EntityId>& v, EntityId id) {
        return std::find(v.begin(), v.end(), id) != v.end();
    };
    for (const TickTrace& t : traces_) {
        const int faults = t.read_failures + t.control_failures + t.retries +
                           t.reissues + t.rebaselines;
        for (std::size_t i = 0; i < t.entities.size(); ++i) {
            const EntityId id = t.entities[i];
            out << t.tick << ',' << id << ',' << t.allowances[i] << ','
                << (contains(t.measured, id) ? 1 : 0) << ','
                << (contains(t.suspended, id) ? 1 : 0) << ','
                << (contains(t.resumed, id) ? 1 : 0) << ','
                << (t.cycle_completed ? 1 : 0) << ','
                << util::to_ms(t.cycle_time_remaining) << ','
                << (contains(t.quarantined, id) ? 1 : 0) << ','
                << (contains(t.dropped, id) ? 1 : 0) << ',' << faults << '\n';
        }
    }
    if (dropped_ticks_ > 0) out << "# dropped_ticks," << dropped_ticks_ << '\n';
    return out.str();
}

}  // namespace alps::core
