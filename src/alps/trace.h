// Tick-level tracing of the ALPS algorithm's decisions.
//
// When an observer is attached (Scheduler::set_tick_observer), every tick
// emits a TickTrace: what was measured, what changed eligibility, and the
// global cycle state. TraceLog collects these and can render them as CSV for
// offline inspection. With no observer attached, tracing costs nothing.
#pragma once

#include <string>
#include <vector>

#include "alps/process_control.h"
#include "util/shares.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::core {

/// One tick's decisions (emitted after the Figure-3 pass completes).
struct TickTrace {
    std::uint64_t tick = 0;              ///< invocation index (count)
    bool cycle_completed = false;
    util::Duration cycle_time_remaining{0};  ///< t_c after the tick
    std::vector<EntityId> measured;      ///< progress reads this tick
    std::vector<EntityId> suspended;     ///< eligible -> ineligible
    std::vector<EntityId> resumed;       ///< ineligible -> eligible
    /// Post-tick allowance snapshot, parallel to `entities`.
    std::vector<EntityId> entities;
    std::vector<double> allowances;
    // --- degraded-mode activity (all empty/zero on a healthy channel) ---
    std::vector<EntityId> quarantined;   ///< entered quarantine this tick
    std::vector<EntityId> dropped;       ///< dropped after repeated failures
    int read_failures = 0;
    int control_failures = 0;
    int retries = 0;
    int reissues = 0;
    int rebaselines = 0;
};

/// Collects TickTraces; bounded so long experiments cannot exhaust memory.
class TraceLog {
public:
    explicit TraceLog(std::size_t capacity = 100000);

    void observe(TickTrace trace);

    [[nodiscard]] const std::vector<TickTrace>& traces() const { return traces_; }
    [[nodiscard]] std::size_t size() const { return traces_.size(); }
    [[nodiscard]] bool truncated() const { return dropped_ticks_ > 0; }
    /// Ticks observed after the log filled (the trace is an exact prefix —
    /// how much is missing is no longer silent).
    [[nodiscard]] std::uint64_t dropped_ticks() const { return dropped_ticks_; }

    /// Registers `<prefix>ticks_logged` and `<prefix>dropped_ticks` in `reg`.
    void register_metrics(telemetry::MetricsRegistry& reg,
                          const std::string& prefix = "trace_log.") const;

    /// CSV with one row per (tick, entity): tick, entity, allowance,
    /// measured, suspended, resumed, cycle_completed, tc_ms, plus the
    /// degraded-mode columns quarantined, dropped, faults (per-tick sum of
    /// read/control failures, retries, reissues, and rebaselines). A
    /// truncated log appends a `# dropped_ticks,<N>` trailer so downstream
    /// analysis can tell a short run from a clipped one.
    [[nodiscard]] std::string to_csv() const;

private:
    std::size_t capacity_;
    std::uint64_t dropped_ticks_ = 0;
    std::vector<TickTrace> traces_;
};

}  // namespace alps::core
