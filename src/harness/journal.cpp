#include "harness/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "harness/wire.h"

namespace alps::harness {

namespace {

constexpr char kJournalMagic[8] = {'A', 'L', 'P', 'S', 'J', 'R', 'N', '1'};
constexpr std::uint32_t kJournalVersion = 1;

std::string encode_header(const JournalHeader& h) {
    wire::Encoder e;
    e.u8(wire::kHeaderRecord);
    e.u32(kJournalVersion);
    e.str(h.experiment);
    e.u64(h.seed);
    e.u8(h.full_scale ? 1 : 0);
    e.str(h.kernel_policy);
    e.u64(h.task_count);
    return e.take();
}

bool decode_header(std::string_view payload, JournalHeader& h) {
    wire::Decoder d(payload);
    std::uint8_t type = 0;
    std::uint32_t version = 0;
    if (!d.u8(type) || type != wire::kHeaderRecord) return false;
    if (!d.u32(version) || version != kJournalVersion) return false;
    d.str(h.experiment);
    d.u64(h.seed);
    std::uint8_t full = 0;
    d.u8(full);
    h.full_scale = full != 0;
    d.str(h.kernel_policy);
    d.u64(h.task_count);
    return d.at_end();
}

bool write_all_fd(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

}  // namespace

SweepJournal::~SweepJournal() { close(); }

std::string SweepJournal::path_for(const std::string& dir, const std::string& experiment) {
    return (std::filesystem::path(dir) / ("BENCH_" + experiment + ".journal")).string();
}

LoadedJournal SweepJournal::load(const std::string& path) {
    LoadedJournal out;
    std::ifstream in(path, std::ios::binary);
    if (!in) return out;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();

    if (data.size() < sizeof(kJournalMagic) ||
        std::memcmp(data.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
        out.discarded_bytes = data.size();
        return out;
    }
    std::size_t offset = sizeof(kJournalMagic);

    std::string_view payload;
    std::size_t next = 0;
    if (wire::extract_frame(data, offset, payload, next) != wire::FrameStatus::kOk ||
        !decode_header(payload, out.header)) {
        // An unreadable header means nothing in the file can be trusted.
        out.discarded_bytes = data.size();
        return out;
    }
    out.found = true;
    offset = next;
    out.valid_bytes = offset;

    for (;;) {
        const wire::FrameStatus st = wire::extract_frame(data, offset, payload, next);
        if (st != wire::FrameStatus::kOk) break;  // torn tail or corruption: stop
        std::uint64_t index = 0;
        TaskOutcome outcome;
        if (!wire::decode_outcome(payload, index, outcome)) break;
        out.outcomes[index] = std::move(outcome);
        offset = next;
        out.valid_bytes = offset;
    }
    out.discarded_bytes = data.size() - out.valid_bytes;
    return out;
}

void SweepJournal::open(const std::string& path, const JournalHeader& header,
                        std::size_t keep_bytes) {
    close();
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
        throw std::runtime_error("journal: cannot open " + path + ": " +
                                 std::strerror(errno));
    }
    // Drop everything past the validated prefix (or everything, for a fresh
    // run) so corrupt bytes can never sit between valid records.
    if (::ftruncate(fd, static_cast<off_t>(keep_bytes)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("journal: cannot truncate " + path + ": " +
                                 std::strerror(err));
    }
    if (keep_bytes == 0) {
        std::string prefix(kJournalMagic, sizeof(kJournalMagic));
        wire::append_frame(prefix, encode_header(header));
        if (!write_all_fd(fd, prefix.data(), prefix.size())) {
            const int err = errno;
            ::close(fd);
            throw std::runtime_error("journal: cannot write header to " + path + ": " +
                                     std::strerror(err));
        }
    }
    ::fsync(fd);
    fd_ = fd;
    warned_ = false;
}

void SweepJournal::append(std::uint64_t task_index, const TaskOutcome& outcome) {
    std::scoped_lock lock(mu_);
    if (fd_ < 0) return;
    std::string frame;
    wire::append_frame(frame, wire::encode_outcome(task_index, outcome));
    // One write() per record: a kill -9 can tear at most the final frame,
    // which load() then rejects by checksum. fsync makes the record durable
    // before the runner reports the task done.
    if (!write_all_fd(fd_, frame.data(), frame.size()) || ::fsync(fd_) != 0) {
        if (!warned_) {
            std::cerr << "warning: journal append failed (" << std::strerror(errno)
                      << "); journaling disabled for the rest of this sweep\n";
            warned_ = true;
        }
        ::close(fd_);
        fd_ = -1;
    }
}

void SweepJournal::close() {
    std::scoped_lock lock(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace alps::harness
