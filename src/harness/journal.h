// Crash-consistent sweep journal: `BENCH_<name>.journal`.
//
// The journal is the sweep's write-ahead record of finished runs. Layout:
//
//   magic   8 bytes  "ALPSJRN1"
//   header  1 frame  identity record: experiment, seed, full_scale,
//                    kernel policy, task count (wire::kHeaderRecord)
//   body    frames   one wire::kOutcomeRecord per completed task, appended
//                    in completion order (any order — records carry their
//                    task index), each fsync'd before the sweep moves on
//
// Recovery contract: load() accepts exactly the longest valid prefix. A torn
// final append (kill -9 mid-write), a truncated file, or a bit-flipped byte
// anywhere invalidates that frame's checksum and everything after it is
// discarded — the affected tasks simply re-run on --resume. Because task
// results are pure functions of (sweep seed, task index) and metric doubles
// round-trip bit-exactly through the wire format, a resumed sweep's JSON
// payload is byte-identical to an uninterrupted run's.
//
// The journal deliberately stores *outcomes*, never aggregates: aggregation
// (sink.cpp) is recomputed from scratch on every run, so resume cannot drift
// from the normal path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "harness/sink.h"

namespace alps::harness {

/// Identity of the sweep a journal belongs to. A resume only honors a
/// journal whose header matches the current invocation exactly — replaying
/// results across a different seed, scale, policy, or grid would silently
/// corrupt the report.
struct JournalHeader {
    std::string experiment;
    std::uint64_t seed = 0;
    bool full_scale = false;
    std::string kernel_policy;
    std::uint64_t task_count = 0;

    [[nodiscard]] bool matches(const JournalHeader& other) const {
        return experiment == other.experiment && seed == other.seed &&
               full_scale == other.full_scale && kernel_policy == other.kernel_policy &&
               task_count == other.task_count;
    }
};

/// Everything load() recovered from an existing journal.
struct LoadedJournal {
    /// True when the file existed with a valid magic + header frame. False
    /// means "treat as no journal" (fresh run); header/outcomes are empty.
    bool found = false;
    JournalHeader header;
    /// Completed outcomes by sweep task index (duplicates: last record wins;
    /// a re-run after a discarded tail may legitimately re-append).
    std::map<std::uint64_t, TaskOutcome> outcomes;
    /// Byte length of the valid prefix; open() truncates here before
    /// appending so a corrupt middle can never shadow fresh records.
    std::size_t valid_bytes = 0;
    /// Bytes past the valid prefix (torn append, truncation, bit flip).
    std::uint64_t discarded_bytes = 0;
};

/// Append-side handle. Thread-safe: sweep workers append concurrently; each
/// record is written with a single write() and fsync'd before append()
/// returns (crash consistency beats throughput here — a record is a whole
/// finished run, not a hot-path event).
class SweepJournal {
public:
    SweepJournal() = default;
    ~SweepJournal();
    SweepJournal(const SweepJournal&) = delete;
    SweepJournal& operator=(const SweepJournal&) = delete;

    /// `<dir>/BENCH_<experiment>.journal`.
    [[nodiscard]] static std::string path_for(const std::string& dir,
                                             const std::string& experiment);

    /// Reads and validates an existing journal. Never throws: a missing,
    /// unreadable, or header-corrupt file comes back found=false.
    [[nodiscard]] static LoadedJournal load(const std::string& path);

    /// Opens `path` for appending. keep_bytes > 0 (a resume) truncates to
    /// that valid prefix and appends after it; keep_bytes == 0 rewrites the
    /// file from scratch with a fresh magic + header. Throws
    /// std::runtime_error on I/O failure.
    void open(const std::string& path, const JournalHeader& header,
              std::size_t keep_bytes);

    /// Appends one completed task (framed, single write, fsync). Failures
    /// warn once on stderr and disable the journal rather than failing the
    /// sweep — the in-memory results are still intact.
    void append(std::uint64_t task_index, const TaskOutcome& outcome);

    [[nodiscard]] bool is_open() const { return fd_ >= 0; }
    void close();

private:
    std::mutex mu_;
    int fd_ = -1;
    bool warned_ = false;
};

}  // namespace alps::harness
