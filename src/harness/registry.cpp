#include "harness/registry.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::harness {

ExperimentRegistry& ExperimentRegistry::instance() {
    static ExperimentRegistry registry;
    return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
    ALPS_EXPECT(!experiment.name.empty());
    ALPS_EXPECT(experiment.make_tasks != nullptr);
    ALPS_EXPECT(find(experiment.name) == nullptr);
    experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(std::string_view name) const {
    for (const Experiment& e : experiments_) {
        if (e.name == name) return &e;
    }
    return nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::list() const {
    std::vector<const Experiment*> out;
    out.reserve(experiments_.size());
    for (const Experiment& e : experiments_) out.push_back(&e);
    std::sort(out.begin(), out.end(), [](const Experiment* a, const Experiment* b) {
        return a->name < b->name;
    });
    return out;
}

}  // namespace alps::harness
