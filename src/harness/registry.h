// Declarative registry of sweep experiments.
//
// An Experiment names a parameter grid (built lazily so --full can change the
// grid), an optional paper-style text presentation, and an optional
// cross-point evaluation (used by the reproduction gate, whose criteria
// combine several points). Bench binaries and the alps-sweep CLI both pull
// experiments from here; registration is explicit (register_* functions
// called from bench/experiments.h's register_all) to avoid relying on static
// initializers surviving static-library linking.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/result.h"
#include "harness/sink.h"

namespace alps::harness {

struct SweepOptions {
    unsigned jobs = 0;            ///< worker threads; 0 = hardware concurrency
    std::uint64_t seed = 0xa155;  ///< sweep seed (per-task seeds derive from it)
    bool full_scale = false;      ///< paper-scale grid / cycle counts
    std::string out_dir;          ///< where BENCH_<name>.json lands; "" = skip
    bool quiet = false;           ///< suppress progress/ETA on stderr
    /// Record an .alpstrace of the whole sweep here ("" = tracing off).
    /// Tracing forces jobs = 1 so two same-seed runs produce byte-identical
    /// traces (`alps-trace diff` reports zero differences).
    std::string trace_path;
    /// Kernel scheduling policy for experiments that honor it (fig4,
    /// policy_zoo); "" keeps each experiment's own default. Validated by the
    /// kernel policy factory at task run time (alps-sweep pre-checks it
    /// against --list-policies for a friendlier error).
    std::string kernel_policy;
    /// Simulated core count for experiments that sweep machine sizes
    /// (many_core, web_scale): restricts the grid to this one size. 0 = the
    /// full grid.
    int ncpus = 0;
    /// Site count for experiments that sweep hosting scale (web_scale):
    /// restricts the grid to this one cluster size. 0 = the full grid.
    int sites = 0;
    /// Shard count for experiments that sweep the sharded engine
    /// (sharded_run, sim_perf's sharded point): restricts the grid to this
    /// one shard count. 0 = the full grid.
    int shards = 0;
    /// Flash-crowd intensity override for web_scale: restricts the grid to
    /// points with this arrival multiplier. < 0 = the full grid.
    double flash_crowd = -1.0;
    // ---- supervision (harness::RunSupervisor) --------------------------
    /// Fork one worker process per task execution so crashes and hangs are
    /// classified per task instead of killing the sweep.
    bool isolate = false;
    /// Per-execution watchdog deadline, seconds; 0 = none. > 0 implies
    /// isolate (the watchdog needs a killable process).
    double run_timeout_s = 0.0;
    /// Executions per task before a crash/timeout quarantines it.
    int max_attempts = 3;
    /// Keep a crash-consistent BENCH_<name>.journal of finished tasks.
    bool journal = false;
    /// Skip tasks already completed in a matching journal (implies journal).
    bool resume = false;
    /// Run exactly one task by sweep index (repro mode): < 0 = all. The task
    /// keeps its original index/seed; journaling and evaluate are skipped.
    long only_task = -1;
    /// Omit the non-deterministic "run" section from BENCH_<name>.json so
    /// resumed and uninterrupted sweeps can be byte-compared.
    bool json_payload_only = false;
};

struct Experiment {
    std::string name;         ///< CLI key and JSON file stem ("fig4")
    std::string description;  ///< one line for --list
    /// Builds the task list for this run's options (full_scale may change it).
    std::function<std::vector<Task>(const SweepOptions&)> make_tasks;
    /// Optional: prints the paper-style tables from the finished sweep.
    std::function<void(const SweepReport&, std::ostream&)> present;
    /// Optional: cross-point criteria (reproduction gate). Appends its
    /// verdicts to report.gate_checks (so they reach the JSON), may print a
    /// verdict table, and returns the number of failed criteria.
    std::function<int(SweepReport&, std::ostream&)> evaluate;
    /// Task errors are expected (fault-injection experiments like
    /// chaos_campaign): they don't fail the sweep's exit code; only failed
    /// checks do.
    bool tolerate_task_errors = false;
};

class ExperimentRegistry {
public:
    static ExperimentRegistry& instance();

    /// Registers an experiment. Contract: name non-empty and unique.
    void add(Experiment experiment);

    /// Looks up by name; nullptr when unknown.
    [[nodiscard]] const Experiment* find(std::string_view name) const;

    /// All experiments, sorted by name (stable CLI listing).
    [[nodiscard]] std::vector<const Experiment*> list() const;

private:
    std::vector<Experiment> experiments_;
};

}  // namespace alps::harness
