// Structured results and task declarations for the experiment harness.
//
// A sweep is a flat list of Tasks (one per parameter-grid point × repetition).
// Each task runs a pure function of its TaskContext — the task's global index,
// a seed derived deterministically from (sweep seed, index), and the scale
// flag — and returns a Result of named scalar metrics plus string metadata.
// Because nothing else flows in, results are bit-identical for any worker
// count (the --jobs determinism guarantee).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::harness {

/// Everything a task may depend on. Tasks must not read globals, the clock,
/// or any other task's output.
struct TaskContext {
    std::size_t index = 0;       ///< position in the sweep's task list
    std::uint64_t seed = 0;      ///< derive_task_seed(sweep seed, index)
    bool full_scale = false;     ///< paper-scale parameters (--full)
    /// The sweep's metrics registry (never null during a sweep). Tasks
    /// export cumulative counters/histograms here; counter adds commute, so
    /// the totals are --jobs-independent. Serialized into the report's
    /// non-deterministic "run" section.
    telemetry::MetricsRegistry* metrics = nullptr;
};

/// One task's output: ordered named metrics + optional criterion verdicts.
class Result {
public:
    struct Metric {
        std::string name;
        double value = 0.0;
    };

    /// Criterion check recorded by gate-style experiments: the paper's value,
    /// ours, and the verdict. Any failed check fails the sweep (exit code).
    struct Check {
        std::string criterion;
        std::string paper;
        std::string measured;
        bool passed = true;
    };

    Result& metric(std::string name, double value) {
        metrics_.push_back({std::move(name), value});
        return *this;
    }

    Result& check(std::string criterion, std::string paper, std::string measured,
                  bool passed) {
        checks_.push_back(
            {std::move(criterion), std::move(paper), std::move(measured), passed});
        return *this;
    }

    [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
    [[nodiscard]] const std::vector<Check>& checks() const { return checks_; }

    /// Value of a named metric; `fallback` when absent.
    [[nodiscard]] double value_of(const std::string& name, double fallback = 0.0) const {
        for (const Metric& m : metrics_) {
            if (m.name == name) return m.value;
        }
        return fallback;
    }

    [[nodiscard]] bool all_checks_passed() const {
        for (const Check& c : checks_) {
            if (!c.passed) return false;
        }
        return true;
    }

private:
    std::vector<Metric> metrics_;
    std::vector<Check> checks_;
};

/// One unit of parallel work in a sweep.
struct Task {
    /// Grouping key: repetitions of the same grid point share a `point` (and
    /// differ only in `rep`); the sink aggregates mean/stdev across them.
    std::string point;
    int rep = 0;
    /// Ordered parameter echo for the JSON output, e.g. {{"model","linear"},
    /// {"n","5"}}. Repetitions of a point should carry identical params.
    std::vector<std::pair<std::string, std::string>> params;
    std::function<Result(const TaskContext&)> fn;
};

/// splitmix64 step — the same mixer util::Rng seeds from, so per-task streams
/// are decorrelated even for adjacent indices.
[[nodiscard]] constexpr std::uint64_t derive_task_seed(std::uint64_t sweep_seed,
                                                       std::size_t task_index) {
    std::uint64_t z = sweep_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace alps::harness
