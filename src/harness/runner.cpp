#include "harness/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "harness/journal.h"
#include "harness/supervisor.h"
#include "harness/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace_file.h"
#include "util/assert.h"

namespace alps::harness {

namespace {

unsigned effective_jobs(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t trace_ring_capacity() {
    if (const char* v = std::getenv("ALPS_TRACE_CAPACITY")) {
        const auto n = std::strtoull(v, nullptr, 10);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{1} << 22;  // 4M records = 128 MiB, ~a full fig4 sweep
}

/// Serialized progress/ETA line, overwritten in place on a terminal-ish
/// stream. Called from worker threads under its own mutex.
class ProgressMeter {
public:
    ProgressMeter(std::ostream* out, std::size_t total, std::string label)
        : out_(out), total_(total), label_(std::move(label)),
          start_(std::chrono::steady_clock::now()) {}

    void task_done() {
        if (out_ == nullptr) return;
        std::scoped_lock lock(mu_);
        ++done_;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
        const double eta =
            done_ == 0 ? 0.0
                       : elapsed * static_cast<double>(total_ - done_) /
                             static_cast<double>(done_);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\r[%zu/%zu] %s  elapsed %.1fs  eta %.1fs   ", done_, total_,
                      label_.c_str(), elapsed, eta);
        *out_ << buf << std::flush;
        if (done_ == total_) *out_ << "\n";
    }

private:
    std::ostream* out_;
    std::size_t total_;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::size_t done_ = 0;
};

}  // namespace

std::string current_git_sha() {
    FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (pipe == nullptr) return "unknown";
    char buf[64] = {};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    ::pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

SweepReport run_sweep(const Experiment& experiment, const SweepOptions& raw_options,
                      std::ostream* progress) {
    const auto t0 = std::chrono::steady_clock::now();

    // ---- option normalization. The watchdog needs a killable process, so a
    // deadline implies isolation; tracing needs the task's telemetry rings in
    // *this* process, so it wins over isolation; --resume implies --journal;
    // --only-task is repro mode (one task, original index/seed, no journal).
    SweepOptions options = raw_options;
    if (options.run_timeout_s > 0.0) options.isolate = true;
    const bool tracing = !options.trace_path.empty();
    if (tracing && options.isolate) {
        std::cerr << "warning: --trace runs tasks in-process; isolation and the "
                     "watchdog are disabled for this sweep\n";
        options.isolate = false;
        options.run_timeout_s = 0.0;
    }
    if (options.resume) options.journal = true;
    if (options.only_task >= 0) {
        options.journal = false;
        options.resume = false;
    }

    std::vector<Task> tasks = experiment.make_tasks(options);
    ALPS_EXPECT(!tasks.empty());

    // The slots this sweep actually covers, as *original* sweep indices —
    // --only-task keeps its task's index and therefore its derived seed, so
    // a repro run replays the exact same pure function.
    std::vector<std::size_t> selected;
    if (options.only_task >= 0) {
        if (static_cast<std::size_t>(options.only_task) >= tasks.size()) {
            throw std::runtime_error("--only-task " + std::to_string(options.only_task) +
                                     " out of range (sweep has " +
                                     std::to_string(tasks.size()) + " tasks)");
        }
        selected.push_back(static_cast<std::size_t>(options.only_task));
    } else {
        selected.resize(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) selected[i] = i;
    }

    SweepReport report;
    report.experiment = experiment.name;
    report.seed = options.seed;
    report.full_scale = options.full_scale;
    // Tracing forces a single worker: per-thread rings and emission order
    // would otherwise interleave nondeterministically, and the acceptance
    // bar is that two same-seed traced runs diff clean.
    report.jobs = tracing ? 1 : effective_jobs(options.jobs);
    report.tasks.resize(selected.size());

    telemetry::MetricsRegistry metrics;
    telemetry::Session session({.ring_capacity = trace_ring_capacity()});
    if (tracing) telemetry::attach(session);

    // ---- journal: load (resume) and open for appending.
    SweepJournal journal;
    std::map<std::uint64_t, TaskOutcome> resumed;
    if (options.journal) {
        const std::string jdir = options.out_dir.empty() ? "." : options.out_dir;
        const std::string jpath = SweepJournal::path_for(jdir, experiment.name);
        JournalHeader header;
        header.experiment = experiment.name;
        header.seed = options.seed;
        header.full_scale = options.full_scale;
        header.kernel_policy = options.kernel_policy;
        header.task_count = tasks.size();
        std::size_t keep_bytes = 0;
        if (options.resume) {
            LoadedJournal loaded = SweepJournal::load(jpath);
            if (loaded.found) {
                if (!loaded.header.matches(header)) {
                    throw std::runtime_error(
                        "journal: " + jpath +
                        " belongs to a different sweep (experiment/seed/scale/"
                        "policy/task-count mismatch); delete it or drop --resume");
                }
                if (loaded.discarded_bytes > 0) {
                    std::cerr << "journal: discarded " << loaded.discarded_bytes
                              << " invalid trailing byte(s) of " << jpath
                              << "; affected tasks re-run\n";
                }
                resumed = std::move(loaded.outcomes);
                keep_bytes = loaded.valid_bytes;
            } else if (loaded.discarded_bytes > 0) {
                std::cerr << "journal: " << jpath
                          << " is unreadable; starting fresh\n";
            }
        }
        journal.open(jpath, header, keep_bytes);
    }

    // ---- supervision counters + supervisor. Registered up front (even at
    // zero) whenever supervision/journaling is on, so the telemetry section
    // always answers "did anything get retried?".
    if (options.isolate || options.journal) {
        metrics.counter("harness.runs_retried");
        metrics.counter("harness.runs_quarantined");
        metrics.counter("harness.watchdog_kills");
        metrics.counter("harness.journal_resumes");
    }
    SupervisorConfig scfg;
    scfg.isolate = options.isolate;
    scfg.run_timeout_s = options.run_timeout_s;
    scfg.max_attempts = options.max_attempts;
    scfg.forensics_dir = options.out_dir.empty()
                             ? std::string("forensics")
                             : options.out_dir + "/forensics";
    ReproInfo repro;
    repro.experiment = experiment.name;
    repro.seed = options.seed;
    repro.full_scale = options.full_scale;
    repro.kernel_policy = options.kernel_policy;
    const RunSupervisor supervisor(scfg, repro, &metrics);

    ProgressMeter meter(options.quiet ? nullptr : progress, selected.size(),
                        experiment.name);
    {
        ThreadPool pool(report.jobs);
        for (std::size_t slot = 0; slot < selected.size(); ++slot) {
            const std::size_t orig = selected[slot];
            // Journal replay: a completed outcome round-trips bit-exactly, so
            // filling the slot is equivalent to re-running the (pure) task.
            const auto it = resumed.find(orig);
            if (it != resumed.end()) {
                report.tasks[slot] = it->second;
                metrics.counter("harness.journal_resumes").add(1);
                meter.task_done();
                continue;
            }
            // Each worker writes only to its own pre-sized slot; the vector is
            // never resized while the pool runs.
            pool.submit([&, slot, orig, tracing] {
                const Task& task = tasks[orig];
                TaskContext ctx;
                ctx.index = orig;
                ctx.seed = derive_task_seed(options.seed, orig);
                ctx.full_scale = options.full_scale;
                ctx.metrics = &metrics;
                if (tracing) {
                    telemetry::set_scope(static_cast<std::uint32_t>(orig));
                }
                const auto task_t0 = std::chrono::steady_clock::now();
                report.tasks[slot] = supervisor.run(task, ctx);
                const auto task_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - task_t0);
                metrics.histogram("harness.task_wall_us")
                    .record(static_cast<std::uint64_t>(task_us.count()));
                if (journal.is_open()) journal.append(orig, report.tasks[slot]);
                meter.task_done();
            });
        }
        pool.wait_idle();
        pool.export_metrics(metrics, "harness.pool.");
    }
    journal.close();

    if (tracing) {
        // The pool has joined, so every producer is quiescent; drain after
        // detach is the recorder's documented consumption contract.
        telemetry::detach();
        telemetry::TraceFile trace;
        trace.names = session.names();
        trace.dropped_records = session.dropped();
        trace.records = session.drain();
        metrics.counter("harness.trace_records").add(trace.records.size());
        metrics.counter("harness.trace_dropped_records").add(trace.dropped_records);
        try {
            telemetry::write_trace_file(options.trace_path, trace);
        } catch (const std::exception& e) {
            std::cerr << "warning: trace not written: " << e.what() << "\n";
        }
    }

    aggregate_points(report);
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    report.git_sha = current_git_sha();
    if (!metrics.empty()) report.telemetry = metrics.to_json();
    return report;
}

bool parse_sweep_args(int argc, char** argv, SweepOptions& options) {
    const auto env = [](const char* name) -> const char* {
        const char* v = std::getenv(name);
        return (v != nullptr && *v != '\0') ? v : nullptr;
    };
    if (const char* v = env("ALPS_BENCH_FULL")) {
        options.full_scale = std::strcmp(v, "1") == 0;
    }
    if (const char* v = env("ALPS_BENCH_JOBS")) {
        options.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    }
    if (const char* v = env("ALPS_BENCH_JSON")) options.out_dir = v;
    if (const char* v = env("ALPS_BENCH_TRACE")) options.trace_path = v;

    const auto usage = [&] {
        std::cerr << "usage: " << argv[0]
                  << " [--jobs N] [--seed S] [--full] [--out DIR] [--no-json]"
                     " [--quiet] [--trace FILE.alpstrace] [--kernel-policy NAME]"
                     " [--ncpus N] [--sites N] [--shards N] [--flash-crowd X]"
                     " [--isolate] [--run-timeout SECONDS]"
                     " [--max-attempts N] [--journal] [--resume]"
                     " [--only-task INDEX] [--json-payload-only]\n";
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        // Rejects non-numeric values; strtoul alone would fold "abc" to 0,
        // silently selecting the hardware-concurrency default.
        const auto parse_u64 = [&](const char* v, std::uint64_t& out) {
            char* end = nullptr;
            out = std::strtoull(v, &end, 0);
            if (end == v || *end != '\0') {
                std::cerr << arg << ": not a number: " << v << "\n";
                return false;
            }
            return true;
        };
        if (arg == "--jobs") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n)) return usage();
            options.jobs = static_cast<unsigned>(n);
        } else if (arg == "--seed") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n)) return usage();
            options.seed = n;
        } else if (arg == "--full") {
            options.full_scale = true;
        } else if (arg == "--out") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.out_dir = v;
        } else if (arg == "--no-json") {
            options.out_dir.clear();
        } else if (arg == "--trace") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.trace_path = v;
        } else if (arg == "--kernel-policy") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.kernel_policy = v;
        } else if (arg == "--ncpus") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n) || n == 0) return usage();
            options.ncpus = static_cast<int>(n);
        } else if (arg == "--sites") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n) || n == 0) return usage();
            options.sites = static_cast<int>(n);
        } else if (arg == "--shards") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n) || n == 0) return usage();
            options.shards = static_cast<int>(n);
        } else if (arg == "--flash-crowd") {
            const char* v = next();
            if (v == nullptr) return usage();
            char* end = nullptr;
            options.flash_crowd = std::strtod(v, &end);
            if (end == v || *end != '\0' || options.flash_crowd < 0.0) {
                std::cerr << arg << ": not a non-negative number: " << v << "\n";
                return usage();
            }
        } else if (arg == "--isolate") {
            options.isolate = true;
        } else if (arg == "--run-timeout") {
            const char* v = next();
            if (v == nullptr) return usage();
            char* end = nullptr;
            options.run_timeout_s = std::strtod(v, &end);
            if (end == v || *end != '\0' || options.run_timeout_s < 0.0) {
                std::cerr << arg << ": not a non-negative number: " << v << "\n";
                return usage();
            }
        } else if (arg == "--max-attempts") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n) || n == 0) return usage();
            options.max_attempts = static_cast<int>(n);
        } else if (arg == "--journal") {
            options.journal = true;
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--only-task") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n)) return usage();
            options.only_task = static_cast<long>(n);
        } else if (arg == "--json-payload-only") {
            options.json_payload_only = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return usage();
        }
    }
    return true;
}

int run_and_report(std::string_view name, const SweepOptions& options) {
    const Experiment* experiment = ExperimentRegistry::instance().find(name);
    if (experiment == nullptr) {
        std::cerr << "unknown experiment: " << name << " (try --list)\n";
        return 2;
    }
    SweepReport report;
    try {
        report = run_sweep(*experiment, options, &std::cerr);
    } catch (const std::runtime_error& e) {
        // Setup problems (bad --only-task, unusable journal), not task
        // failures — those are classified into the report.
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    const bool repro_mode = options.only_task >= 0;
    if (repro_mode) {
        // Presentation and gate evaluation expect the full grid; a single
        // replayed task just reports what it did.
        for (const TaskOutcome& t : report.tasks) {
            std::cout << "task " << options.only_task << " (" << t.point << " rep "
                      << t.rep << "): " << t.disposition << " after " << t.attempts
                      << " attempt(s)" << (t.ok ? "" : ": " + t.error) << "\n";
        }
    } else {
        if (experiment->present) experiment->present(report, std::cout);
        if (experiment->evaluate) {
            report.failed_checks += experiment->evaluate(report, std::cout);
        }
    }
    const int failures =
        report.failed_checks +
        (experiment->tolerate_task_errors ? 0 : report.task_errors);
    if (!options.out_dir.empty()) {
        const std::string path =
            write_json_report(report, options.out_dir, !options.json_payload_only);
        if (!path.empty()) {
            std::cout << "(json written to " << path << ")\n";
        }
    }
    for (const TaskOutcome& t : report.tasks) {
        if (!t.ok) std::cerr << "task failed: " << t.point << ": " << t.error << "\n";
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace alps::harness
