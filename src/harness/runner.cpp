#include "harness/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "harness/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace_file.h"
#include "util/assert.h"

namespace alps::harness {

namespace {

unsigned effective_jobs(unsigned requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t trace_ring_capacity() {
    if (const char* v = std::getenv("ALPS_TRACE_CAPACITY")) {
        const auto n = std::strtoull(v, nullptr, 10);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{1} << 22;  // 4M records = 128 MiB, ~a full fig4 sweep
}

/// Serialized progress/ETA line, overwritten in place on a terminal-ish
/// stream. Called from worker threads under its own mutex.
class ProgressMeter {
public:
    ProgressMeter(std::ostream* out, std::size_t total, std::string label)
        : out_(out), total_(total), label_(std::move(label)),
          start_(std::chrono::steady_clock::now()) {}

    void task_done() {
        if (out_ == nullptr) return;
        std::scoped_lock lock(mu_);
        ++done_;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
        const double eta =
            done_ == 0 ? 0.0
                       : elapsed * static_cast<double>(total_ - done_) /
                             static_cast<double>(done_);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\r[%zu/%zu] %s  elapsed %.1fs  eta %.1fs   ", done_, total_,
                      label_.c_str(), elapsed, eta);
        *out_ << buf << std::flush;
        if (done_ == total_) *out_ << "\n";
    }

private:
    std::ostream* out_;
    std::size_t total_;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::size_t done_ = 0;
};

}  // namespace

std::string current_git_sha() {
    FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (pipe == nullptr) return "unknown";
    char buf[64] = {};
    std::string sha;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    ::pclose(pipe);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

SweepReport run_sweep(const Experiment& experiment, const SweepOptions& options,
                      std::ostream* progress) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Task> tasks = experiment.make_tasks(options);
    ALPS_EXPECT(!tasks.empty());

    SweepReport report;
    report.experiment = experiment.name;
    report.seed = options.seed;
    report.full_scale = options.full_scale;
    // Tracing forces a single worker: per-thread rings and emission order
    // would otherwise interleave nondeterministically, and the acceptance
    // bar is that two same-seed traced runs diff clean.
    const bool tracing = !options.trace_path.empty();
    report.jobs = tracing ? 1 : effective_jobs(options.jobs);
    report.tasks.resize(tasks.size());

    telemetry::MetricsRegistry metrics;
    telemetry::Session session({.ring_capacity = trace_ring_capacity()});
    if (tracing) telemetry::attach(session);

    ProgressMeter meter(options.quiet ? nullptr : progress, tasks.size(),
                        experiment.name);
    {
        ThreadPool pool(report.jobs);
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            // Each worker writes only to its own pre-sized slot; the vector is
            // never resized while the pool runs.
            pool.submit([&, i, tracing] {
                const Task& task = tasks[i];
                TaskOutcome& out = report.tasks[i];
                out.point = task.point;
                out.rep = task.rep;
                out.params = task.params;
                TaskContext ctx;
                ctx.index = i;
                ctx.seed = derive_task_seed(options.seed, i);
                ctx.full_scale = options.full_scale;
                ctx.metrics = &metrics;
                if (tracing) {
                    telemetry::set_scope(static_cast<std::uint32_t>(i));
                }
                const auto task_t0 = std::chrono::steady_clock::now();
                try {
                    out.result = task.fn(ctx);
                } catch (const std::exception& e) {
                    out.ok = false;
                    out.error = e.what();
                } catch (...) {
                    out.ok = false;
                    out.error = "unknown exception";
                }
                const auto task_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - task_t0);
                metrics.histogram("harness.task_wall_us")
                    .record(static_cast<std::uint64_t>(task_us.count()));
                meter.task_done();
            });
        }
        pool.wait_idle();
        pool.export_metrics(metrics, "harness.pool.");
    }

    if (tracing) {
        // The pool has joined, so every producer is quiescent; drain after
        // detach is the recorder's documented consumption contract.
        telemetry::detach();
        telemetry::TraceFile trace;
        trace.names = session.names();
        trace.dropped_records = session.dropped();
        trace.records = session.drain();
        metrics.counter("harness.trace_records").add(trace.records.size());
        metrics.counter("harness.trace_dropped_records").add(trace.dropped_records);
        try {
            telemetry::write_trace_file(options.trace_path, trace);
        } catch (const std::exception& e) {
            std::cerr << "warning: trace not written: " << e.what() << "\n";
        }
    }

    aggregate_points(report);
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    report.git_sha = current_git_sha();
    if (!metrics.empty()) report.telemetry = metrics.to_json();
    return report;
}

bool parse_sweep_args(int argc, char** argv, SweepOptions& options) {
    const auto env = [](const char* name) -> const char* {
        const char* v = std::getenv(name);
        return (v != nullptr && *v != '\0') ? v : nullptr;
    };
    if (const char* v = env("ALPS_BENCH_FULL")) {
        options.full_scale = std::strcmp(v, "1") == 0;
    }
    if (const char* v = env("ALPS_BENCH_JOBS")) {
        options.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    }
    if (const char* v = env("ALPS_BENCH_JSON")) options.out_dir = v;
    if (const char* v = env("ALPS_BENCH_TRACE")) options.trace_path = v;

    const auto usage = [&] {
        std::cerr << "usage: " << argv[0]
                  << " [--jobs N] [--seed S] [--full] [--out DIR] [--no-json]"
                     " [--quiet] [--trace FILE.alpstrace] [--kernel-policy NAME]\n";
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        // Rejects non-numeric values; strtoul alone would fold "abc" to 0,
        // silently selecting the hardware-concurrency default.
        const auto parse_u64 = [&](const char* v, std::uint64_t& out) {
            char* end = nullptr;
            out = std::strtoull(v, &end, 0);
            if (end == v || *end != '\0') {
                std::cerr << arg << ": not a number: " << v << "\n";
                return false;
            }
            return true;
        };
        if (arg == "--jobs") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n)) return usage();
            options.jobs = static_cast<unsigned>(n);
        } else if (arg == "--seed") {
            const char* v = next();
            std::uint64_t n = 0;
            if (v == nullptr || !parse_u64(v, n)) return usage();
            options.seed = n;
        } else if (arg == "--full") {
            options.full_scale = true;
        } else if (arg == "--out") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.out_dir = v;
        } else if (arg == "--no-json") {
            options.out_dir.clear();
        } else if (arg == "--trace") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.trace_path = v;
        } else if (arg == "--kernel-policy") {
            const char* v = next();
            if (v == nullptr) return usage();
            options.kernel_policy = v;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return usage();
        }
    }
    return true;
}

int run_and_report(std::string_view name, const SweepOptions& options) {
    const Experiment* experiment = ExperimentRegistry::instance().find(name);
    if (experiment == nullptr) {
        std::cerr << "unknown experiment: " << name << " (try --list)\n";
        return 2;
    }
    SweepReport report = run_sweep(*experiment, options, &std::cerr);
    if (experiment->present) experiment->present(report, std::cout);
    if (experiment->evaluate) {
        report.failed_checks += experiment->evaluate(report, std::cout);
    }
    const int failures = report.task_errors + report.failed_checks;
    if (!options.out_dir.empty()) {
        const std::string path = write_json_report(report, options.out_dir);
        if (!path.empty()) {
            std::cout << "(json written to " << path << ")\n";
        }
    }
    for (const TaskOutcome& t : report.tasks) {
        if (!t.ok) std::cerr << "task failed: " << t.point << ": " << t.error << "\n";
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace alps::harness
