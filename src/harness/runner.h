// The sweep runner: fans an experiment's tasks out over a ThreadPool,
// reports progress/ETA to stderr, aggregates results in task-index order,
// and (optionally) writes BENCH_<name>.json.
//
// Determinism guarantee: each task computes from its TaskContext alone and
// writes into its own pre-allocated slot, so the report — and the JSON metric
// payload — is byte-identical for every --jobs value. Only the "run" section
// (jobs, wall-clock, git sha) differs between runs.
#pragma once

#include <iosfwd>

#include "harness/registry.h"
#include "harness/sink.h"

namespace alps::harness {

/// Runs one experiment under `options`. Progress/ETA goes to `progress`
/// (pass nullptr or set options.quiet to silence it).
[[nodiscard]] SweepReport run_sweep(const Experiment& experiment,
                                    const SweepOptions& options,
                                    std::ostream* progress);

/// Shared driver for the thin standalone bench binaries and alps-sweep:
/// runs `name` from the registry with `options`, prints the experiment's
/// paper-style presentation and evaluation to stdout, and writes the JSON
/// report when options.out_dir is set. Returns the process exit code
/// (0 = success; 1 = failed criteria or task errors; 2 = unknown experiment).
int run_and_report(std::string_view name, const SweepOptions& options);

/// Builds SweepOptions from the environment (ALPS_BENCH_FULL=1 -> full scale,
/// ALPS_BENCH_JOBS -> jobs, ALPS_BENCH_JSON -> out_dir, default ".") and then
/// applies any of --jobs N, --seed S, --full, --out DIR, --quiet, --no-json
/// from argv. Returns false (and prints usage to stderr) on a bad flag.
bool parse_sweep_args(int argc, char** argv, SweepOptions& options);

/// Short git commit hash of the working tree, or "unknown" outside a repo.
std::string current_git_sha();

}  // namespace alps::harness
