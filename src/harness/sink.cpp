#include "harness/sink.h"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "util/stats.h"

namespace alps::harness {

const PointAggregate* SweepReport::find_point(const std::string& point) const {
    for (const PointAggregate& p : points) {
        if (p.point == point) return &p;
    }
    return nullptr;
}

double SweepReport::metric_mean(const std::string& point, const std::string& metric,
                                double fallback) const {
    const PointAggregate* p = find_point(point);
    if (p == nullptr) return fallback;
    for (const MetricAggregate& m : p->metrics) {
        if (m.name == metric) return m.mean;
    }
    return fallback;
}

void aggregate_points(SweepReport& report) {
    report.points.clear();
    report.task_errors = 0;
    report.failed_checks = 0;

    // Group by point in first-appearance order; accumulate per-metric stats.
    struct Accum {
        std::size_t point_index;
        std::vector<std::pair<std::string, util::RunningStats>> stats;
    };
    std::vector<Accum> accums;

    for (const TaskOutcome& t : report.tasks) {
        if (!t.ok) {
            ++report.task_errors;
            continue;
        }
        for (const Result::Check& c : t.result.checks()) {
            if (!c.passed) ++report.failed_checks;
        }
        Accum* acc = nullptr;
        for (Accum& a : accums) {
            if (report.points[a.point_index].point == t.point) {
                acc = &a;
                break;
            }
        }
        if (acc == nullptr) {
            PointAggregate p;
            p.point = t.point;
            p.params = t.params;
            report.points.push_back(std::move(p));
            accums.push_back({report.points.size() - 1, {}});
            acc = &accums.back();
        }
        ++report.points[acc->point_index].reps;
        for (const Result::Metric& m : t.result.metrics()) {
            util::RunningStats* rs = nullptr;
            for (auto& [name, stats] : acc->stats) {
                if (name == m.name) {
                    rs = &stats;
                    break;
                }
            }
            if (rs == nullptr) {
                acc->stats.emplace_back(m.name, util::RunningStats{});
                rs = &acc->stats.back().second;
            }
            rs->add(m.value);
        }
    }

    for (const Accum& a : accums) {
        PointAggregate& p = report.points[a.point_index];
        for (const auto& [name, stats] : a.stats) {
            MetricAggregate m;
            m.name = name;
            m.mean = stats.mean();
            m.stdev = stats.stddev();
            m.min = stats.min();
            m.max = stats.max();
            m.n = stats.count();
            p.metrics.push_back(std::move(m));
        }
    }
}

util::Json report_to_json(const SweepReport& report, bool include_run) {
    util::Json doc = util::Json::object();
    doc.set("schema", "alps-sweep-v1");
    doc.set("experiment", report.experiment);
    doc.set("seed", report.seed);
    doc.set("full_scale", report.full_scale);

    util::Json points = util::Json::array();
    for (const PointAggregate& p : report.points) {
        util::Json jp = util::Json::object();
        jp.set("point", p.point);
        util::Json params = util::Json::object();
        for (const auto& [k, v] : p.params) params.set(k, v);
        jp.set("params", std::move(params));
        jp.set("reps", static_cast<std::int64_t>(p.reps));
        util::Json metrics = util::Json::object();
        for (const MetricAggregate& m : p.metrics) {
            util::Json jm = util::Json::object();
            jm.set("mean", m.mean);
            jm.set("stdev", m.stdev);
            jm.set("min", m.min);
            jm.set("max", m.max);
            jm.set("n", static_cast<std::uint64_t>(m.n));
            metrics.set(m.name, std::move(jm));
        }
        jp.set("metrics", std::move(metrics));
        points.push(std::move(jp));
    }
    doc.set("points", std::move(points));

    util::Json checks = util::Json::array();
    const auto push_check = [&checks](const Result::Check& c) {
        util::Json jc = util::Json::object();
        jc.set("criterion", c.criterion);
        jc.set("paper", c.paper);
        jc.set("measured", c.measured);
        jc.set("passed", c.passed);
        checks.push(std::move(jc));
    };
    for (const TaskOutcome& t : report.tasks) {
        for (const Result::Check& c : t.result.checks()) push_check(c);
    }
    for (const Result::Check& c : report.gate_checks) push_check(c);
    if (checks.size() > 0) doc.set("checks", std::move(checks));

    util::Json errors = util::Json::array();
    for (const TaskOutcome& t : report.tasks) {
        if (t.ok) continue;
        util::Json je = util::Json::object();
        je.set("point", t.point);
        je.set("rep", static_cast<std::int64_t>(t.rep));
        je.set("error", t.error);
        errors.push(std::move(je));
    }
    if (errors.size() > 0) doc.set("task_errors", std::move(errors));

    // Supervision trail: only tasks the RunSupervisor had to intervene on
    // (retries or a final failure), so unsupervised sweeps keep their exact
    // historical payload. Attempt counts and dispositions are deterministic,
    // hence part of the jobs-/resume-independent payload.
    util::Json supervision = util::Json::array();
    for (const TaskOutcome& t : report.tasks) {
        if (t.ok && t.attempts <= 1) continue;
        util::Json js = util::Json::object();
        js.set("point", t.point);
        js.set("rep", static_cast<std::int64_t>(t.rep));
        js.set("attempts", static_cast<std::int64_t>(t.attempts));
        js.set("disposition", t.disposition);
        supervision.push(std::move(js));
    }
    if (supervision.size() > 0) doc.set("supervision", std::move(supervision));
    doc.set("failed_checks", static_cast<std::int64_t>(report.failed_checks));

    if (include_run) {
        // Everything non-deterministic lives here, after the metric payload.
        util::Json run = util::Json::object();
        run.set("jobs", static_cast<std::uint64_t>(report.jobs));
        run.set("tasks", static_cast<std::uint64_t>(report.tasks.size()));
        run.set("wall_clock_s", report.wall_seconds);
        run.set("git_sha", report.git_sha);
        if (report.telemetry.type() == util::Json::Type::kObject) {
            run.set("telemetry", report.telemetry);
        }
        doc.set("run", std::move(run));
    }
    return doc;
}

std::string write_json_report(const SweepReport& report, const std::string& dir,
                              bool include_run) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; open() decides
    const std::string path =
        (std::filesystem::path(dir) / ("BENCH_" + report.experiment + ".json")).string();
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return "";
    }
    out << report_to_json(report, include_run).dump(2) << "\n";
    return out ? path : "";
}

}  // namespace alps::harness
