// Result aggregation and deterministic JSON emission.
//
// The sink consumes task outcomes in task-index order (the runner stores them
// into a pre-sized vector, so worker scheduling cannot reorder anything),
// groups repetitions of the same grid point, and computes mean/stdev/min/max
// per metric. to_json() splits the document into a deterministic results
// payload and a non-deterministic "run" section (wall-clock, jobs, git sha) so
// that runs with different --jobs values can be diffed byte-for-byte on
// everything above "run".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/result.h"
#include "util/json.h"

namespace alps::harness {

/// One finished task: its declaration echo plus its Result (or an error).
struct TaskOutcome {
    std::string point;
    int rep = 0;
    std::vector<std::pair<std::string, std::string>> params;
    Result result;
    bool ok = true;       ///< false when the task threw (or its worker died)
    std::string error;    ///< exception / crash classification text when !ok
    /// Supervision record (harness::RunSupervisor). Everything here is a pure
    /// function of the task's deterministic behaviour — attempt counts and
    /// dispositions never encode wall-clock — so it lives in the
    /// jobs-independent JSON payload and round-trips through the journal.
    int attempts = 1;                 ///< executions including retries
    std::string disposition = "ok";   ///< "ok" | "failed" | "crashed" | "timeout"
};

/// Mean/stdev of one metric across a point's repetitions.
struct MetricAggregate {
    std::string name;
    double mean = 0.0;
    double stdev = 0.0;  ///< sample stdev; 0 for a single repetition
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;
};

/// One grid point with its repetitions folded together.
struct PointAggregate {
    std::string point;
    std::vector<std::pair<std::string, std::string>> params;
    int reps = 0;
    std::vector<MetricAggregate> metrics;  ///< first-appearance order
};

/// The finished sweep.
struct SweepReport {
    std::string experiment;
    std::uint64_t seed = 0;
    bool full_scale = false;
    std::vector<TaskOutcome> tasks;      ///< task-index order
    std::vector<PointAggregate> points;  ///< first-appearance order
    /// Cross-point criteria appended by the experiment's evaluate hook.
    std::vector<Result::Check> gate_checks;
    int task_errors = 0;                 ///< tasks that threw
    int failed_checks = 0;               ///< failures among task + gate checks
    // Non-deterministic run facts (excluded from the metric payload):
    unsigned jobs = 0;
    double wall_seconds = 0.0;
    std::string git_sha;
    /// Serialized sweep MetricsRegistry (telemetry::MetricsRegistry::to_json);
    /// null when no metrics were registered. Emitted inside "run" — counter
    /// totals are jobs-independent, but wall-time histograms are not, so the
    /// whole block stays out of the determinism-compared payload.
    util::Json telemetry;

    /// The point named `point`; nullptr when absent.
    [[nodiscard]] const PointAggregate* find_point(const std::string& point) const;

    /// Mean of `metric` at `point`; `fallback` when either is absent.
    [[nodiscard]] double metric_mean(const std::string& point, const std::string& metric,
                                     double fallback = 0.0) const;
};

/// Builds aggregates (report.points, counters) from report.tasks in order.
void aggregate_points(SweepReport& report);

/// Serializes the report. The "run" object (jobs, wall-clock, git sha) is
/// emitted last; everything before it is a pure function of (experiment,
/// seed, full_scale, task results). `include_run=false` drops it entirely,
/// which is what the determinism tests compare.
[[nodiscard]] util::Json report_to_json(const SweepReport& report,
                                        bool include_run = true);

/// Writes `BENCH_<experiment>.json` under `dir` (created if missing).
/// Returns the path written, or "" on I/O failure (warned on stderr).
/// `include_run=false` omits the non-deterministic "run" section entirely so
/// that files from interrupted-and-resumed sweeps can be byte-compared
/// against clean baselines (alps-sweep --json-payload-only).
std::string write_json_report(const SweepReport& report, const std::string& dir,
                              bool include_run = true);

}  // namespace alps::harness
