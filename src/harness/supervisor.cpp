#include "harness/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "harness/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace_file.h"

namespace alps::harness {

namespace {

/// How a single execution ended.
enum class RunClass {
    kOk,        ///< result frame received, task succeeded
    kFailed,    ///< result frame received, task threw (deterministic)
    kCrashed,   ///< worker died (signal / bad exit / torn protocol)
    kTimedOut,  ///< watchdog SIGKILLed the worker at the deadline
};

// ---------------------------------------------------------- child crash dump
//
// Installed in the forked worker only. On a fatal signal it dumps the tail
// of the worker's telemetry rings to a .alpstrace, then re-raises with the
// default disposition so the parent still sees the real signal. The dump
// path lives in static storage (no allocation on the signal path to find
// it); alarm() bounds a dump that itself wedges. Strict async-signal-safety
// is deliberately traded away here: the child is freshly forked and
// effectively single-threaded, and try_snapshot_tail refuses rather than
// deadlocks if the session mutex was mid-flight at crash time.

struct ChildCrashState {
    volatile std::sig_atomic_t armed = 0;
    char trace_path[512] = {};
    std::size_t tail_records = 0;
};
ChildCrashState g_child_crash;

constexpr int kCrashSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

extern "C" void alps_child_crash_handler(int sig) {
    if (g_child_crash.armed != 0) {
        g_child_crash.armed = 0;
        ::alarm(5);  // if the dump wedges, SIGALRM (default: terminate) ends it
        alps::telemetry::dump_attached_session_tail(g_child_crash.trace_path,
                                                    g_child_crash.tail_records);
    }
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}

void arm_child_crash_dump(const std::string& trace_path, std::size_t tail_records) {
    std::snprintf(g_child_crash.trace_path, sizeof g_child_crash.trace_path, "%s",
                  trace_path.c_str());
    g_child_crash.tail_records = tail_records;
    for (const int sig : kCrashSignals) std::signal(sig, alps_child_crash_handler);
    g_child_crash.armed = 1;
}

// --------------------------------------------------------------- I/O helpers

bool write_all_fd(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/// Pulls everything currently readable from a nonblocking fd into `buf`.
/// Returns false once the peer has closed every write end (EOF).
bool drain_fd(int fd, std::string& buf) {
    char tmp[4096];
    for (;;) {
        const ssize_t r = ::read(fd, tmp, sizeof tmp);
        if (r > 0) {
            buf.append(tmp, static_cast<std::size_t>(r));
            continue;
        }
        if (r == 0) return false;  // true EOF
        if (errno == EINTR) continue;
        return true;  // EAGAIN: nothing more right now
    }
}

std::string format_seconds(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", s);
    return buf;
}

std::string describe_wait_status(int wstatus) {
    if (WIFSIGNALED(wstatus)) {
        return "signal " + std::to_string(WTERMSIG(wstatus));
    }
    if (WIFEXITED(wstatus)) {
        return "exit code " + std::to_string(WEXITSTATUS(wstatus));
    }
    return "unknown wait status " + std::to_string(wstatus);
}

/// Serializes forensics bundles from concurrent sweep workers.
std::mutex g_forensics_mu;

}  // namespace

/// One execution's classified result.
struct RunSupervisor::Attempt {
    RunClass cls = RunClass::kCrashed;
    TaskOutcome outcome;     ///< meaningful for kOk / kFailed
    std::string detail;      ///< crash/timeout description ("signal 6", ...)
    std::string trace_path;  ///< flight-recorder dump that exists on disk; "" = none
};

RunSupervisor::RunSupervisor(SupervisorConfig cfg, ReproInfo repro,
                             telemetry::MetricsRegistry* metrics,
                             std::ostream* forensics_out)
    : cfg_(std::move(cfg)),
      repro_(std::move(repro)),
      metrics_(metrics),
      forensics_out_(forensics_out != nullptr ? forensics_out : &std::cerr) {
    if (cfg_.max_attempts < 1) cfg_.max_attempts = 1;
    if (cfg_.isolate && !cfg_.forensics_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.forensics_dir, ec);
        if (ec) cfg_.forensics_dir.clear();  // dumps off; bundles still print
    }
}

void RunSupervisor::bump(const char* counter) const {
    if (metrics_ != nullptr) metrics_->counter(counter).add(1);
}

std::string RunSupervisor::trace_path_for(std::size_t index, int attempt) const {
    if (cfg_.forensics_dir.empty()) return "";
    return (std::filesystem::path(cfg_.forensics_dir) /
            (repro_.experiment + "_task" + std::to_string(index) + "_attempt" +
             std::to_string(attempt) + ".alpstrace"))
        .string();
}

std::string RunSupervisor::repro_command(std::size_t task_index) const {
    std::string cmd = "alps-sweep --experiment " + repro_.experiment + " --seed " +
                      std::to_string(repro_.seed) + " --only-task " +
                      std::to_string(task_index) + " --isolate --max-attempts 1";
    if (cfg_.run_timeout_s > 0.0) {
        cmd += " --run-timeout " + format_seconds(cfg_.run_timeout_s);
    }
    if (repro_.full_scale) cmd += " --full";
    if (!repro_.kernel_policy.empty()) cmd += " --kernel-policy " + repro_.kernel_policy;
    return cmd;
}

RunSupervisor::Attempt RunSupervisor::run_inline(const Task& task,
                                                 const TaskContext& ctx) const {
    Attempt a;
    a.outcome.point = task.point;
    a.outcome.rep = task.rep;
    a.outcome.params = task.params;
    try {
        a.outcome.result = task.fn(ctx);
        a.cls = RunClass::kOk;
    } catch (const std::exception& e) {
        a.outcome.ok = false;
        a.outcome.error = e.what();
        a.cls = RunClass::kFailed;
    } catch (...) {
        a.outcome.ok = false;
        a.outcome.error = "unknown exception";
        a.cls = RunClass::kFailed;
    }
    return a;
}

RunSupervisor::Attempt RunSupervisor::run_isolated(const Task& task,
                                                   const TaskContext& ctx,
                                                   int attempt) const {
    Attempt a;
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        a.cls = RunClass::kCrashed;
        a.detail = std::string("pipe failed: ") + std::strerror(errno);
        return a;
    }

    const std::string trace_path = trace_path_for(ctx.index, attempt);
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        a.cls = RunClass::kCrashed;
        a.detail = std::string("fork failed: ") + std::strerror(errno);
        return a;
    }

    if (pid == 0) {
        // ---- worker child. Parent state (pool, meter, journal, metrics
        // mutexes) is off-limits: run the task against fresh per-process
        // telemetry, write exactly one frame, _exit. _exit (not exit) skips
        // atexit/static destructors the parent owns — and LSan teardown.
        ::close(fds[0]);
        char attempt_env[16];
        std::snprintf(attempt_env, sizeof attempt_env, "%d", attempt - 1);
        ::setenv("ALPS_HARNESS_ATTEMPT", attempt_env, 1);
        ::setenv("ALPS_HARNESS_ISOLATED", "1", 1);

        telemetry::MetricsRegistry child_metrics;  // parent's may be mid-mutation
        TaskContext child_ctx = ctx;
        child_ctx.metrics = &child_metrics;

        // Flight recorder: a wrap-mode session so the newest records survive
        // into a crash dump. Skipped if a session is somehow already attached
        // (tracing disables isolation, so this is belt-and-braces).
        telemetry::SessionConfig scfg;
        scfg.ring_capacity = cfg_.trace_tail_records;
        scfg.wrap = true;
        telemetry::Session flight(scfg);
        if (!telemetry::active() && !trace_path.empty()) {
            telemetry::attach(flight);
            telemetry::set_scope(static_cast<std::uint32_t>(ctx.index));
            arm_child_crash_dump(trace_path, cfg_.trace_tail_records);
        }

        TaskOutcome out;
        out.point = task.point;
        out.rep = task.rep;
        out.params = task.params;
        try {
            out.result = task.fn(child_ctx);
        } catch (const std::exception& e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
        g_child_crash.armed = 0;

        std::string frame;
        wire::append_frame(frame, wire::encode_outcome(ctx.index, out));
        write_all_fd(fds[1], frame.data(), frame.size());
        ::_exit(0);
    }

    // ---- parent: collect the frame, reap, classify. The read end must not
    // rely on EOF — sibling workers forked later inherit this pipe's write
    // end, so it can stay open long after our child dies. Instead: poll for
    // bytes, watch the child via waitpid(WNOHANG), enforce the deadline on
    // the monotonic clock.
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

    using Clock = std::chrono::steady_clock;
    const bool has_deadline = cfg_.run_timeout_s > 0.0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(cfg_.run_timeout_s));

    std::string buf;
    std::string payload_copy;
    bool have_frame = false;
    bool corrupt = false;
    bool exited = false;
    bool timed_out = false;
    int wstatus = 0;

    for (;;) {
        drain_fd(fds[0], buf);
        std::string_view payload;
        std::size_t next = 0;
        const wire::FrameStatus st = wire::extract_frame(buf, 0, payload, next);
        if (st == wire::FrameStatus::kOk) {
            payload_copy.assign(payload.data(), payload.size());
            have_frame = true;
            break;
        }
        if (st == wire::FrameStatus::kCorrupt) {
            corrupt = true;
            break;
        }
        if (exited) break;  // child gone, buffer drained, frame incomplete
        if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
            exited = true;
            continue;  // one more drain pass for bytes that raced the exit
        }
        if (has_deadline && Clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            timed_out = true;
            break;
        }
        struct pollfd p = {fds[0], POLLIN, 0};
        ::poll(&p, 1, 50);
    }
    ::close(fds[0]);
    if (!exited) {
        while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {}
    }

    if (timed_out) {
        a.cls = RunClass::kTimedOut;
        a.detail = "watchdog deadline " + format_seconds(cfg_.run_timeout_s) + "s";
    } else if (have_frame) {
        std::uint64_t echoed_index = 0;
        if (wire::decode_outcome(payload_copy, echoed_index, a.outcome) &&
            echoed_index == ctx.index) {
            a.cls = a.outcome.ok ? RunClass::kOk : RunClass::kFailed;
        } else {
            a.cls = RunClass::kCrashed;
            a.detail = "malformed result record";
        }
    } else {
        a.cls = RunClass::kCrashed;
        a.detail = corrupt ? "corrupt result frame" : describe_wait_status(wstatus);
    }

    if (a.cls == RunClass::kCrashed || a.cls == RunClass::kTimedOut) {
        std::error_code ec;
        if (!trace_path.empty() && std::filesystem::exists(trace_path, ec)) {
            a.trace_path = trace_path;
        }
    }
    return a;
}

void RunSupervisor::emit_forensics(const Attempt& attempt, const Task& task,
                                   std::size_t index, int attempt_no,
                                   bool quarantined) const {
    std::scoped_lock lock(g_forensics_mu);
    std::ostream& out = *forensics_out_;
    out << "=== run death: " << repro_.experiment << " task " << index << " ("
        << task.point << " rep " << task.rep << "), attempt " << attempt_no << "/"
        << cfg_.max_attempts << " ===\n";
    out << "  status: "
        << (attempt.cls == RunClass::kTimedOut ? "killed by watchdog after " +
                                                     format_seconds(cfg_.run_timeout_s) +
                                                     "s"
                                               : attempt.detail)
        << "\n";
    out << "  repro:  " << repro_command(index) << "\n";
    if (!attempt.trace_path.empty()) {
        out << "  trace:  " << attempt.trace_path << " (flight-recorder tail)\n";
    }
    if (quarantined) {
        out << "  action: quarantined after " << attempt_no
            << " attempt(s); sweep continues\n";
    } else {
        out << "  action: retrying\n";
    }
    out.flush();
}

TaskOutcome RunSupervisor::run(const Task& task, const TaskContext& ctx) const {
    int backoff_ms = cfg_.backoff_initial_ms;
    for (int attempt = 1;; ++attempt) {
        Attempt a = cfg_.isolate ? run_isolated(task, ctx, attempt)
                                 : run_inline(task, ctx);

        if (a.cls == RunClass::kOk || a.cls == RunClass::kFailed) {
            a.outcome.attempts = attempt;
            a.outcome.disposition = a.cls == RunClass::kOk ? "ok" : "failed";
            if (a.cls == RunClass::kFailed) bump("harness.runs_quarantined");
            return a.outcome;
        }

        if (a.cls == RunClass::kTimedOut) bump("harness.watchdog_kills");

        const bool out_of_attempts = attempt >= cfg_.max_attempts;
        emit_forensics(a, task, ctx.index, attempt, out_of_attempts);
        if (!out_of_attempts) {
            bump("harness.runs_retried");
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
            backoff_ms = std::min(backoff_ms * 2, cfg_.backoff_max_ms);
            continue;
        }

        bump("harness.runs_quarantined");
        TaskOutcome out;
        out.point = task.point;
        out.rep = task.rep;
        out.params = task.params;
        out.ok = false;
        out.attempts = attempt;
        if (a.cls == RunClass::kTimedOut) {
            out.disposition = "timeout";
            out.error = "task exceeded " + format_seconds(cfg_.run_timeout_s) +
                        "s watchdog deadline on all " + std::to_string(attempt) +
                        " attempt(s)";
        } else {
            out.disposition = "crashed";
            out.error = "task crashed (" + a.detail + ") on all " +
                        std::to_string(attempt) + " attempt(s)";
        }
        return out;
    }
}

}  // namespace alps::harness
