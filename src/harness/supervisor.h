// Run supervision: isolation, watchdog, retry/quarantine, crash forensics.
//
// The RunSupervisor sits between the sweep runner and a task's fn. In its
// default (inline) mode it is a thin try/catch — same behaviour the runner
// always had. With isolation on (--isolate, implied by --run-timeout), each
// execution happens in a forked worker process that sends its finished
// TaskOutcome back over a pipe as one checksummed wire frame; the parent can
// then classify anything the child does — clean result, thrown exception,
// SIGSEGV, abort()ed invariant guard, or a wedged loop the watchdog SIGKILLs
// at the deadline — without the sweep process ever being at risk.
//
// Classification drives the retry policy:
//
//   result frame, ok          -> done ("ok")
//   result frame, !ok         -> deterministic failure: quarantine at once
//                                ("failed"); retrying a pure function cannot
//                                help and would just repeat the work
//   crash / watchdog kill     -> possibly environmental: retry with bounded
//                                exponential backoff up to max_attempts, then
//                                quarantine ("crashed" / "timeout")
//
// A quarantined task becomes a normal task-error record — siblings keep
// running, the sweep completes, and the JSON carries a "supervision" trail.
// Every crash/timeout also emits a forensics bundle on the forensics stream:
// exit status, a copy-pasteable single-run repro command (deterministic by
// construction: tasks are pure functions of (seed, index)), and — when the
// child managed to dump one — the path of a flight-recorder .alpstrace tail
// holding the worker's final telemetry records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "harness/result.h"
#include "harness/sink.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::harness {

struct SupervisorConfig {
    /// Fork a worker per execution. Off = run in-thread (fast path; crashes
    /// take down the sweep, exactly as before supervision existed).
    bool isolate = false;
    /// Watchdog deadline per execution, seconds; 0 = none. Measured on the
    /// monotonic clock; expiry SIGKILLs the worker. Requires isolate.
    double run_timeout_s = 0.0;
    /// Executions per task before a crash/timeout quarantines it.
    int max_attempts = 3;
    /// Retry backoff: initial delay, doubling per retry, capped.
    int backoff_initial_ms = 10;
    int backoff_max_ms = 250;
    /// Where flight-recorder dumps land (created on demand); "" disables
    /// the crash-dump half of forensics.
    std::string forensics_dir;
    /// Flight-recorder ring capacity per worker thread: the newest N
    /// telemetry records survive into the crash dump.
    std::size_t trace_tail_records = 65536;
};

/// Sweep identity needed to render a single-run repro command
/// (`alps-sweep --experiment X --seed S --only-task I --isolate ...`).
struct ReproInfo {
    std::string experiment;
    std::uint64_t seed = 0;
    bool full_scale = false;
    std::string kernel_policy;  ///< "" = experiment default (flag omitted)
};

class RunSupervisor {
public:
    /// `metrics` may be null (counters skipped). `forensics_out` receives
    /// the human-readable crash bundles; defaults to stderr.
    RunSupervisor(SupervisorConfig cfg, ReproInfo repro,
                  telemetry::MetricsRegistry* metrics,
                  std::ostream* forensics_out = nullptr);

    /// Executes `task` under the configured policy and returns its outcome
    /// with `attempts`/`disposition` filled in. Thread-safe: sweep workers
    /// call this concurrently. Never throws on task failure — every way a
    /// run can die becomes a classified TaskOutcome.
    [[nodiscard]] TaskOutcome run(const Task& task, const TaskContext& ctx) const;

    /// The copy-pasteable command that re-executes exactly one task of this
    /// sweep (used in forensics bundles; exposed for tests).
    [[nodiscard]] std::string repro_command(std::size_t task_index) const;

private:
    struct Attempt;  // one execution's classified result (supervisor.cpp)

    Attempt run_isolated(const Task& task, const TaskContext& ctx, int attempt) const;
    Attempt run_inline(const Task& task, const TaskContext& ctx) const;
    void emit_forensics(const Attempt& attempt, const Task& task, std::size_t index,
                        int attempt_no, bool quarantined) const;
    void bump(const char* counter) const;
    [[nodiscard]] std::string trace_path_for(std::size_t index, int attempt) const;

    SupervisorConfig cfg_;
    ReproInfo repro_;
    telemetry::MetricsRegistry* metrics_;
    std::ostream* forensics_out_;
};

}  // namespace alps::harness
