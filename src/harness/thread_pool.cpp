#include "harness/thread_pool.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/assert.h"

namespace alps::harness {

ThreadPool::ThreadPool(unsigned threads) {
    const unsigned n = std::max(1u, threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lock(mu_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    ALPS_EXPECT(task != nullptr);
    {
        std::unique_lock lock(mu_);
        ALPS_EXPECT(!stopping_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mu_);
    became_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            // Drain semantics: even when stopping, finish what was queued.
            if (queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        // A throwing task must not unwind the worker thread (std::terminate)
        // or wedge wait_idle() by leaking `active_`: capture and move on.
        try {
            task();
        } catch (const std::exception& e) {
            note_failure(e.what());
        } catch (...) {
            note_failure("unknown exception");
        }
        executed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::unique_lock lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) became_idle_.notify_all();
        }
    }
}

void ThreadPool::note_failure(const char* what) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock(mu_);
    if (task_errors_.size() < kMaxTaskErrors) task_errors_.emplace_back(what);
}

std::vector<std::string> ThreadPool::take_task_errors() {
    std::unique_lock lock(mu_);
    std::vector<std::string> out = std::move(task_errors_);
    task_errors_.clear();
    return out;
}

void ThreadPool::export_metrics(telemetry::MetricsRegistry& reg,
                                const std::string& prefix) const {
    reg.counter(prefix + "workers").add(workers_.size());
    reg.counter(prefix + "tasks_executed").add(tasks_executed());
    reg.counter(prefix + "tasks_failed").add(tasks_failed());
}

}  // namespace alps::harness
