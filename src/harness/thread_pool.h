// Fixed-size worker pool for the experiment harness.
//
// Simulation sweeps are embarrassingly parallel: each task owns its own
// sim::Engine and RNG streams, so workers share nothing but the queue. The
// pool therefore stays deliberately simple — a mutex-protected deque and two
// condition variables — and is written to be clean under ThreadSanitizer
// (scripts/check.sh builds with -DALPS_SANITIZE=thread).
//
// Determinism note: the pool affects only *when* tasks run, never *what* they
// compute; a sweep's results are a pure function of per-task inputs, so any
// pool size yields identical results (see harness::run_sweep).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::harness {

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to >= 1).
    explicit ThreadPool(unsigned threads);

    /// Joins all workers. Pending tasks are still executed (drain semantics):
    /// destroying the pool is equivalent to wait_idle() then join.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task. Tasks must not throw (wrap fallible work yourself;
    /// the sweep runner records per-task errors). May be called from within
    /// a running task.
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and no task is executing.
    void wait_idle();

    [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Tasks completed so far (lifetime total).
    [[nodiscard]] std::uint64_t tasks_executed() const {
        return executed_.load(std::memory_order_relaxed);
    }

    /// Registers `<prefix>workers` and `<prefix>tasks_executed` in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "pool.") const;

private:
    void worker_loop();

    std::atomic<std::uint64_t> executed_{0};
    std::mutex mu_;
    std::condition_variable work_available_;
    std::condition_variable became_idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace alps::harness
