// Fixed-size worker pool for the experiment harness.
//
// Simulation sweeps are embarrassingly parallel: each task owns its own
// sim::Engine and RNG streams, so workers share nothing but the queue. The
// pool therefore stays deliberately simple — a mutex-protected deque and two
// condition variables — and is written to be clean under ThreadSanitizer
// (scripts/check.sh builds with -DALPS_SANITIZE=thread).
//
// Determinism note: the pool affects only *when* tasks run, never *what* they
// compute; a sweep's results are a pure function of per-task inputs, so any
// pool size yields identical results (see harness::run_sweep).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::harness {

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to >= 1).
    explicit ThreadPool(unsigned threads);

    /// Joins all workers. Pending tasks are still executed (drain semantics):
    /// destroying the pool is equivalent to wait_idle() then join.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task. A task that throws does not take the pool (or the
    /// process) down: the exception is captured as a per-task error record —
    /// see tasks_failed()/take_task_errors() — and the worker moves on to the
    /// next task. May be called from within a running task.
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and no task is executing.
    void wait_idle();

    [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Tasks completed so far (lifetime total), including ones that threw.
    [[nodiscard]] std::uint64_t tasks_executed() const {
        return executed_.load(std::memory_order_relaxed);
    }

    /// Tasks that escaped with an exception (lifetime total).
    [[nodiscard]] std::uint64_t tasks_failed() const {
        return failed_.load(std::memory_order_relaxed);
    }

    /// Drains the captured exception messages (first kMaxTaskErrors kept;
    /// later ones only count toward tasks_failed()).
    [[nodiscard]] std::vector<std::string> take_task_errors();

    /// Registers `<prefix>workers`, `<prefix>tasks_executed`, and
    /// `<prefix>tasks_failed` in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "pool.") const;

private:
    /// Cap on retained error strings — a sweep with thousands of failing
    /// tasks should not hoard memory for identical messages.
    static constexpr std::size_t kMaxTaskErrors = 64;

    void worker_loop();
    void note_failure(const char* what);

    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::mutex mu_;
    std::condition_variable work_available_;
    std::condition_variable became_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::string> task_errors_;  ///< guarded by mu_, capped
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace alps::harness
