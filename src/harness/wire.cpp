#include "harness/wire.h"

#include <bit>
#include <cstring>

namespace alps::harness::wire {

namespace {

struct Crc32Table {
    std::uint32_t entries[256];
    Crc32Table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            }
            entries[i] = c;
        }
    }
};

const Crc32Table& crc_table() {
    static const Crc32Table table;
    return table;
}

void put_le32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_le32(const char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    const Crc32Table& table = crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

void append_frame(std::string& out, std::string_view payload) {
    put_le32(out, static_cast<std::uint32_t>(payload.size()));
    put_le32(out, crc32(payload.data(), payload.size()));
    out.append(payload);
}

FrameStatus extract_frame(std::string_view data, std::size_t offset,
                          std::string_view& payload, std::size_t& next_offset) {
    payload = {};
    next_offset = offset;
    if (offset > data.size()) return FrameStatus::kCorrupt;
    const std::size_t avail = data.size() - offset;
    if (avail == 0) return FrameStatus::kNeedMore;
    if (avail < kFrameHeaderBytes) return FrameStatus::kNeedMore;
    const std::uint32_t len = get_le32(data.data() + offset);
    const std::uint32_t want_crc = get_le32(data.data() + offset + 4);
    if (len > kMaxFramePayload) return FrameStatus::kCorrupt;
    if (avail - kFrameHeaderBytes < len) return FrameStatus::kNeedMore;
    const char* body = data.data() + offset + kFrameHeaderBytes;
    if (crc32(body, len) != want_crc) return FrameStatus::kCorrupt;
    payload = std::string_view(body, len);
    next_offset = offset + kFrameHeaderBytes + len;
    return FrameStatus::kOk;
}

// ----------------------------------------------------------------- field codecs

void Encoder::u32(std::uint32_t v) { put_le32(buf_, v); }

void Encoder::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
}

bool Decoder::take(void* out, std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
}

bool Decoder::u8(std::uint8_t& v) { return take(&v, 1); }

bool Decoder::u32(std::uint32_t& v) {
    char raw[4];
    if (!take(raw, 4)) return false;
    v = get_le32(raw);
    return true;
}

bool Decoder::u64(std::uint64_t& v) {
    char raw[8];
    if (!take(raw, 8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(raw[i])) << (8 * i);
    }
    return true;
}

bool Decoder::f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
}

bool Decoder::str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (!ok_ || data_.size() - pos_ < len) {
        ok_ = false;
        return false;
    }
    v.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
}

// -------------------------------------------------------------- outcome codec

std::string encode_outcome(std::uint64_t task_index, const TaskOutcome& outcome) {
    Encoder e;
    e.u8(kOutcomeRecord);
    e.u64(task_index);
    e.str(outcome.point);
    e.u64(static_cast<std::uint64_t>(outcome.rep));
    e.u8(outcome.ok ? 1 : 0);
    e.str(outcome.error);
    e.u32(static_cast<std::uint32_t>(outcome.attempts));
    e.str(outcome.disposition);
    e.u32(static_cast<std::uint32_t>(outcome.params.size()));
    for (const auto& [k, v] : outcome.params) {
        e.str(k);
        e.str(v);
    }
    const auto& metrics = outcome.result.metrics();
    e.u32(static_cast<std::uint32_t>(metrics.size()));
    for (const Result::Metric& m : metrics) {
        e.str(m.name);
        e.f64(m.value);
    }
    const auto& checks = outcome.result.checks();
    e.u32(static_cast<std::uint32_t>(checks.size()));
    for (const Result::Check& c : checks) {
        e.str(c.criterion);
        e.str(c.paper);
        e.str(c.measured);
        e.u8(c.passed ? 1 : 0);
    }
    return e.take();
}

bool decode_outcome(std::string_view payload, std::uint64_t& task_index,
                    TaskOutcome& outcome) {
    Decoder d(payload);
    std::uint8_t type = 0;
    if (!d.u8(type) || type != kOutcomeRecord) return false;
    d.u64(task_index);
    outcome = TaskOutcome{};
    d.str(outcome.point);
    std::uint64_t rep = 0;
    d.u64(rep);
    outcome.rep = static_cast<int>(rep);
    std::uint8_t ok = 0;
    d.u8(ok);
    outcome.ok = ok != 0;
    d.str(outcome.error);
    std::uint32_t attempts = 0;
    d.u32(attempts);
    outcome.attempts = static_cast<int>(attempts);
    d.str(outcome.disposition);
    std::uint32_t n = 0;
    d.u32(n);
    for (std::uint32_t i = 0; d.ok() && i < n; ++i) {
        std::string k;
        std::string v;
        d.str(k);
        d.str(v);
        outcome.params.emplace_back(std::move(k), std::move(v));
    }
    d.u32(n);
    for (std::uint32_t i = 0; d.ok() && i < n; ++i) {
        std::string name;
        double value = 0.0;
        d.str(name);
        d.f64(value);
        outcome.result.metric(std::move(name), value);
    }
    d.u32(n);
    for (std::uint32_t i = 0; d.ok() && i < n; ++i) {
        std::string criterion;
        std::string paper;
        std::string measured;
        std::uint8_t passed = 0;
        d.str(criterion);
        d.str(paper);
        d.str(measured);
        d.u8(passed);
        outcome.result.check(std::move(criterion), std::move(paper), std::move(measured),
                             passed != 0);
    }
    return d.at_end();
}

}  // namespace alps::harness::wire
