// Binary wire format shared by the run supervisor's worker pipe and the
// sweep journal.
//
// Both channels carry the same unit — one finished TaskOutcome — and both
// must survive hostile conditions: a worker can die mid-write, a `kill -9`
// can truncate a journal append, and a disk can hand back flipped bits. So
// every payload travels in a checksummed frame:
//
//   u32 LE payload length | u32 LE CRC-32 of payload | payload bytes
//
// A reader either gets the exact bytes the writer framed or a definite
// kCorrupt/kNeedMore verdict — never a silently short or mangled record.
// Doubles are encoded as raw IEEE-754 bit patterns, so a journaled metric
// re-serializes byte-identically into BENCH_<name>.json after a resume (the
// crash-recovery determinism guarantee rests on this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/sink.h"

namespace alps::harness::wire {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

/// Bytes of frame overhead before the payload (length + checksum).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Frames larger than this are rejected as corrupt: a real outcome record is
/// a few KB, so a length field beyond the cap is garbage, not data.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

/// Appends one frame (header + payload) to `out`.
void append_frame(std::string& out, std::string_view payload);

enum class FrameStatus {
    kOk,        ///< `payload` and `next_offset` are valid
    kNeedMore,  ///< the buffer ends mid-frame (stream: keep reading;
                ///< journal: a torn final append — discard the tail)
    kCorrupt,   ///< checksum mismatch or nonsense length
};

/// Scans `data` at `offset` for one frame. On kOk, `payload` views into
/// `data` (valid while `data` lives) and `next_offset` is the byte after the
/// frame. Exactly at end-of-buffer returns kNeedMore with payload empty.
[[nodiscard]] FrameStatus extract_frame(std::string_view data, std::size_t offset,
                                        std::string_view& payload,
                                        std::size_t& next_offset);

// ------------------------------------------------------------ record payloads

/// Record type tags (first payload byte).
inline constexpr std::uint8_t kHeaderRecord = 1;   ///< journal identity header
inline constexpr std::uint8_t kOutcomeRecord = 2;  ///< one finished task

/// Serializes `outcome` (with its sweep-global task index) as an outcome
/// record payload. Metric values round-trip bit-exactly.
[[nodiscard]] std::string encode_outcome(std::uint64_t task_index,
                                         const TaskOutcome& outcome);

/// Parses an outcome record payload. Returns false (outputs untouched or
/// partially filled — discard them) on any structural problem.
[[nodiscard]] bool decode_outcome(std::string_view payload, std::uint64_t& task_index,
                                  TaskOutcome& outcome);

// ----------------------------------------------------- low-level field codecs

/// Little-endian append-only encoder over a std::string.
class Encoder {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);  ///< IEEE-754 bit pattern (exact round trip)
    void str(std::string_view s);

    [[nodiscard]] const std::string& buffer() const { return buf_; }
    [[nodiscard]] std::string take() { return std::move(buf_); }

private:
    std::string buf_;
};

/// Bounds-checked reader; every getter returns false on underrun (and the
/// decoder stays failed — callers may check once at the end).
class Decoder {
public:
    explicit Decoder(std::string_view data) : data_(data) {}

    bool u8(std::uint8_t& v);
    bool u32(std::uint32_t& v);
    bool u64(std::uint64_t& v);
    bool f64(double& v);
    bool str(std::string& v);

    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] bool at_end() const { return ok_ && pos_ == data_.size(); }

private:
    bool take(void* out, std::size_t n);

    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace alps::harness::wire
