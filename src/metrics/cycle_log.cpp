#include "metrics/cycle_log.h"

#include <algorithm>

#include "util/stats.h"

namespace alps::metrics {

core::Scheduler::CycleObserver CycleLog::observer() {
    return [this](const core::CycleRecord& rec) { observe(rec); };
}

double CycleLog::cycle_rms_error(const core::CycleRecord& rec) {
    double total = 0.0;
    util::Share total_shares = 0;
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        total += static_cast<double>(rec.consumed[i].count());
        total_shares += rec.shares[i];
    }
    if (total <= 0.0 || total_shares == 0) return 0.0;

    std::vector<double> actual(rec.consumed.size());
    std::vector<double> ideal(rec.consumed.size());
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        actual[i] = static_cast<double>(rec.consumed[i].count());
        ideal[i] = total * static_cast<double>(rec.shares[i]) /
                   static_cast<double>(total_shares);
    }
    return util::rms_relative_error(actual, ideal);
}

double CycleLog::mean_rms_relative_error(std::size_t warmup, std::size_t limit) const {
    if (warmup >= records_.size()) return 0.0;
    const std::size_t end =
        limit == 0 ? records_.size() : std::min(records_.size(), warmup + limit);
    util::RunningStats stats;
    for (std::size_t i = warmup; i < end; ++i) {
        stats.add(cycle_rms_error(records_[i]));
    }
    return stats.mean();
}

std::vector<double> CycleLog::cycle_fractions(const core::CycleRecord& rec) {
    double total = 0.0;
    for (const auto& c : rec.consumed) total += static_cast<double>(c.count());
    std::vector<double> out(rec.consumed.size(), 0.0);
    if (total <= 0.0) return out;
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        out[i] = static_cast<double>(rec.consumed[i].count()) / total;
    }
    return out;
}

}  // namespace alps::metrics
