// Per-cycle accuracy accounting (paper §3.1).
//
// The paper instruments ALPS to log each process's CPU consumption per cycle,
// computes the RMS of per-process relative errors (actual vs ideal) within
// each cycle, and reports the mean of that RMS over all cycles of a run.
// The ideal consumption of process i in a cycle is its proportional share of
// what the group actually received: share_i / S × total consumed — ALPS
// promises proportionality of whatever CPU the kernel grants (§2.1), not an
// absolute rate.
#pragma once

#include <cstddef>
#include <vector>

#include "alps/scheduler.h"

namespace alps::metrics {

class CycleLog {
public:
    /// Wire into a scheduler: sched.set_cycle_observer(log.observer()).
    [[nodiscard]] core::Scheduler::CycleObserver observer();

    void observe(const core::CycleRecord& rec) { records_.push_back(rec); }

    [[nodiscard]] std::size_t cycle_count() const { return records_.size(); }
    [[nodiscard]] const std::vector<core::CycleRecord>& records() const {
        return records_;
    }

    /// RMS of per-process relative errors within one cycle. Cycles in which
    /// the group consumed nothing yield 0.
    [[nodiscard]] static double cycle_rms_error(const core::CycleRecord& rec);

    /// Mean of the per-cycle RMS relative error over cycles
    /// [warmup, warmup+limit); limit 0 means "to the end".
    [[nodiscard]] double mean_rms_relative_error(std::size_t warmup = 0,
                                                 std::size_t limit = 0) const;

    /// Fraction of the cycle's consumption received by each entity of one
    /// cycle, in record order (the Figure-6 "Share (%)" series, as fractions).
    [[nodiscard]] static std::vector<double> cycle_fractions(const core::CycleRecord& rec);

private:
    std::vector<core::CycleRecord> records_;
};

}  // namespace alps::metrics
