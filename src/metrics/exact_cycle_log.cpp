#include "metrics/exact_cycle_log.h"

#include <algorithm>

#include "util/assert.h"
#include "util/stats.h"

namespace alps::metrics {

ExactCycleLog::ExactCycleLog(CpuReader read_cpu) : read_cpu_(std::move(read_cpu)) {
    ALPS_EXPECT(read_cpu_ != nullptr);
}

core::Scheduler::CycleObserver ExactCycleLog::observer() {
    return [this](const core::CycleRecord& rec) { observe(rec); };
}

void ExactCycleLog::observe(const core::CycleRecord& rec) {
    core::CycleRecord exact;
    exact.index = rec.index;
    exact.end_tick = rec.end_tick;
    exact.ids = rec.ids;
    exact.shares = rec.shares;
    exact.consumed.reserve(rec.ids.size());
    bool first_sighting = false;
    for (const core::EntityId id : rec.ids) {
        const util::Duration now_cpu = read_cpu_(id);
        auto [it, inserted] = last_cpu_.try_emplace(id, now_cpu);
        if (inserted) {
            first_sighting = true;
            exact.consumed.push_back(util::Duration::zero());
        } else {
            exact.consumed.push_back(now_cpu - it->second);
            it->second = now_cpu;
        }
    }
    // The first cycle that introduces an entity has no baseline for it;
    // counting a zero would skew the error metric, so such cycles are only
    // recorded once every member has a baseline.
    if (!first_sighting) records_.push_back(std::move(exact));
}

double ExactCycleLog::mean_rms_relative_error(std::size_t warmup, std::size_t limit) const {
    if (warmup >= records_.size()) return 0.0;
    const std::size_t end =
        limit == 0 ? records_.size() : std::min(records_.size(), warmup + limit);
    util::RunningStats stats;
    for (std::size_t i = warmup; i < end; ++i) {
        stats.add(CycleLog::cycle_rms_error(records_[i]));
    }
    return stats.mean();
}

}  // namespace alps::metrics
