// Exact per-cycle consumption instrumentation (paper §3.1).
//
// The paper "instruments ALPS to record a log of the CPU time consumed by
// each process in every cycle". That instrumentation reads the processes'
// actual accumulated CPU time (getrusage / kp_proc) at each cycle boundary —
// it is *not* limited to what the lazy-measurement algorithm happened to
// sample, whose per-cycle attribution is deliberately coarse for large
// allowances. This log does the equivalent: at every cycle end it snapshots
// each entity's true cumulative CPU through a caller-provided reader and
// differences consecutive snapshots.
//
// (The algorithm-internal view is still available via CycleLog; the
// bench_ablation_lazy harness contrasts the two.)
#pragma once

#include <functional>
#include <map>

#include "alps/scheduler.h"
#include "metrics/cycle_log.h"

namespace alps::metrics {

class ExactCycleLog {
public:
    /// `read_cpu` returns an entity's true cumulative CPU time (the
    /// simulated getrusage). Entities are baselined at the first cycle end
    /// that includes them.
    using CpuReader = std::function<util::Duration(core::EntityId)>;

    explicit ExactCycleLog(CpuReader read_cpu);

    /// Wire into a scheduler: sched.set_cycle_observer(log.observer()).
    [[nodiscard]] core::Scheduler::CycleObserver observer();

    void observe(const core::CycleRecord& rec);

    [[nodiscard]] std::size_t cycle_count() const { return records_.size(); }
    [[nodiscard]] const std::vector<core::CycleRecord>& records() const {
        return records_;
    }

    /// Mean of per-cycle RMS relative error (same metric as CycleLog, on
    /// exact data). Cycles [warmup, warmup+limit); limit 0 = to the end.
    [[nodiscard]] double mean_rms_relative_error(std::size_t warmup = 0,
                                                 std::size_t limit = 0) const;

private:
    CpuReader read_cpu_;
    std::map<core::EntityId, util::Duration> last_cpu_;
    std::vector<core::CycleRecord> records_;
};

}  // namespace alps::metrics
