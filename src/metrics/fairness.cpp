#include "metrics/fairness.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "metrics/cycle_log.h"
#include "telemetry/metrics.h"
#include "util/stats.h"

namespace alps::metrics {

namespace {

/// Total consumption and total shares of one cycle; false if either is zero
/// (an idle cycle carries no fairness information).
bool cycle_totals(const core::CycleRecord& rec, double& total, double& total_shares) {
    total = 0.0;
    total_shares = 0.0;
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        total += static_cast<double>(rec.consumed[i].count());
        total_shares += static_cast<double>(rec.shares[i]);
    }
    return total > 0.0 && total_shares > 0.0;
}

}  // namespace

double cycle_time_ratio(const core::CycleRecord& rec) {
    double total = 0.0;
    double total_shares = 0.0;
    if (!cycle_totals(rec, total, total_shares)) return 1.0;
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        if (rec.shares[i] <= 0) continue;  // no entitlement, no ratio
        const double r = static_cast<double>(rec.consumed[i].count()) /
                         static_cast<double>(rec.shares[i]);
        if (first) {
            lo = hi = r;
            first = false;
        } else {
            lo = std::min(lo, r);
            hi = std::max(hi, r);
        }
    }
    if (first || hi <= 0.0) return 1.0;
    return lo / hi;
}

double cycle_max_complaint(const core::CycleRecord& rec) {
    double total = 0.0;
    double total_shares = 0.0;
    if (!cycle_totals(rec, total, total_shares)) return 0.0;
    double worst = 0.0;
    for (std::size_t i = 0; i < rec.consumed.size(); ++i) {
        const double ideal =
            total * static_cast<double>(rec.shares[i]) / total_shares;
        if (ideal <= 0.0) continue;
        const double gap =
            (ideal - static_cast<double>(rec.consumed[i].count())) / ideal;
        worst = std::max(worst, gap);
    }
    return worst;
}

FairnessReport analyze_fairness(std::span<const core::CycleRecord> records,
                                std::size_t warmup, std::size_t limit) {
    FairnessReport report;
    if (warmup >= records.size()) return report;
    const std::size_t end =
        limit == 0 ? records.size() : std::min(records.size(), warmup + limit);
    util::RunningStats ratio;
    util::RunningStats rms;
    for (std::size_t i = warmup; i < end; ++i) {
        const core::CycleRecord& rec = records[i];
        double total = 0.0;
        double total_shares = 0.0;
        if (!cycle_totals(rec, total, total_shares)) continue;
        ratio.add(cycle_time_ratio(rec));
        rms.add(CycleLog::cycle_rms_error(rec));
        report.max_complaint = std::max(report.max_complaint, cycle_max_complaint(rec));
        ++report.cycles;
    }
    if (report.cycles > 0) {
        report.time_ratio = ratio.mean();
        report.rms_share_error = rms.mean();
    }
    return report;
}

void export_fairness(const FairnessReport& report, telemetry::MetricsRegistry& reg,
                     const std::string& prefix) {
    const auto ppm = [](double fraction) {
        return static_cast<std::uint64_t>(std::max(0.0, fraction) * 1e6 + 0.5);
    };
    reg.histogram(prefix + "time_ratio_ppm").record(ppm(report.time_ratio));
    reg.histogram(prefix + "rms_share_error_ppm").record(ppm(report.rms_share_error));
    reg.histogram(prefix + "max_complaint_ppm").record(ppm(report.max_complaint));
    reg.counter(prefix + "cycles").add(report.cycles);
}

PerCpuFairnessReport analyze_fairness_per_cpu(
    std::span<const std::vector<core::CycleRecord>> per_cpu_records,
    std::size_t warmup, std::size_t limit) {
    PerCpuFairnessReport report;
    report.per_cpu.reserve(per_cpu_records.size());
    double best = 0.0;
    for (const auto& records : per_cpu_records) {
        FairnessReport r = analyze_fairness(records, warmup, limit);
        if (r.cycles > 0) {
            if (report.cpus_with_cycles == 0) {
                best = r.rms_share_error;
                report.worst_rms_share_error = r.rms_share_error;
            } else {
                best = std::min(best, r.rms_share_error);
                report.worst_rms_share_error =
                    std::max(report.worst_rms_share_error, r.rms_share_error);
            }
            report.mean_rms_share_error += r.rms_share_error;
            report.worst_max_complaint =
                std::max(report.worst_max_complaint, r.max_complaint);
            ++report.cpus_with_cycles;
        }
        report.per_cpu.push_back(std::move(r));
    }
    if (report.cpus_with_cycles > 0) {
        report.mean_rms_share_error /= static_cast<double>(report.cpus_with_cycles);
        report.rms_error_spread = report.worst_rms_share_error - best;
    }
    return report;
}

void export_fairness_per_cpu(const PerCpuFairnessReport& report,
                             telemetry::MetricsRegistry& reg,
                             const std::string& prefix) {
    const auto ppm = [](double fraction) {
        return static_cast<std::uint64_t>(std::max(0.0, fraction) * 1e6 + 0.5);
    };
    reg.histogram(prefix + "per_cpu_mean_rms_ppm")
        .record(ppm(report.mean_rms_share_error));
    reg.histogram(prefix + "per_cpu_worst_rms_ppm")
        .record(ppm(report.worst_rms_share_error));
    reg.histogram(prefix + "per_cpu_rms_spread_ppm")
        .record(ppm(report.rms_error_spread));
    reg.histogram(prefix + "per_cpu_worst_complaint_ppm")
        .record(ppm(report.worst_max_complaint));
    reg.counter(prefix + "per_cpu_cpus").add(report.cpus_with_cycles);
}

}  // namespace alps::metrics
