// Fairness metrics over ALPS cycle logs.
//
// Three complementary views of "did everyone get their share", computed from
// the same per-cycle consumption records (CycleRecord) the accuracy metric
// already uses:
//
//   * time-ratio fairness (the chap9/SRM metric): per cycle, normalize each
//     entity's consumption by its share (r_i = consumed_i / share_i) and take
//     min_i r_i / max_i r_i. 1.0 is perfect proportionality; 0 means someone
//     was starved while another ran. Reported as the mean over cycles.
//   * RMS share error: the paper's §3.1 metric — per-cycle RMS of relative
//     errors against ideal proportional consumption, meaned over cycles
//     (identical to CycleLog::mean_rms_relative_error, included here so one
//     report carries all three numbers).
//   * max justified-complaint gap: the largest relative shortfall any entity
//     could justifiably complain about — max over cycles and entities of
//     (ideal_i − consumed_i) / ideal_i, counting only shortfalls (an entity
//     that got *more* than its share has no complaint). Bounds the worst
//     single-cycle starvation, which means hide.
//
// All three treat shares as entitlements to a fraction of what the group
// actually received in that cycle (the paper's §2.1 proportionality promise),
// so an idle machine or a blocked-process redistribution does not read as
// unfairness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "alps/scheduler.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::metrics {

struct FairnessReport {
    double time_ratio = 1.0;       ///< mean min/max share-normalized ratio; 1 = perfect
    double rms_share_error = 0.0;  ///< mean per-cycle RMS relative error (fraction)
    double max_complaint = 0.0;    ///< worst relative shortfall in any cycle (fraction)
    std::size_t cycles = 0;        ///< cycles the statistics cover
};

/// Computes all three metrics over records [warmup, warmup+limit); limit 0
/// means "to the end". Cycles where the group consumed nothing are skipped
/// (nothing was distributed, so nothing could be misdistributed).
[[nodiscard]] FairnessReport analyze_fairness(std::span<const core::CycleRecord> records,
                                              std::size_t warmup = 0,
                                              std::size_t limit = 0);

/// Time-ratio fairness of a single cycle (1.0 for empty/idle cycles).
[[nodiscard]] double cycle_time_ratio(const core::CycleRecord& rec);

/// Worst justified complaint within a single cycle (0 when none).
[[nodiscard]] double cycle_max_complaint(const core::CycleRecord& rec);

/// Exports the report into `reg` as ppm-scaled histograms
/// (`<prefix>time_ratio_ppm`, `<prefix>rms_share_error_ppm`,
/// `<prefix>max_complaint_ppm`) plus a `<prefix>cycles` counter. Histograms
/// (not gauges) so parallel sweep tasks merge deterministically for any
/// --jobs value.
void export_fairness(const FairnessReport& report, telemetry::MetricsRegistry& reg,
                     const std::string& prefix = "fairness.");

/// Per-CPU share-error breakdown for many-core deployments that run one
/// scheduling instance per core (the many_core experiment): one full
/// FairnessReport per instance plus the cross-instance aggregates a sweep
/// row needs. A "CPU" here is whatever produced one cycle-record stream —
/// a per-core ALPS, or the single global instance (then per_cpu.size()==1
/// and mean == worst).
struct PerCpuFairnessReport {
    std::vector<FairnessReport> per_cpu;      ///< index = instance / CPU
    double mean_rms_share_error = 0.0;        ///< mean over instances with cycles
    double worst_rms_share_error = 0.0;       ///< max over instances with cycles
    double worst_max_complaint = 0.0;         ///< max complaint anywhere
    /// worst − best RMS error across instances: the imbalance signal (a
    /// global scheduler shows 0 by construction; per-core instances diverge
    /// when load or steal traffic treats cores differently).
    double rms_error_spread = 0.0;
    std::size_t cpus_with_cycles = 0;         ///< instances that completed cycles
};

/// analyze_fairness per instance over records [warmup, warmup+limit), plus
/// the aggregates above. Instances with no analyzable cycles keep a default
/// FairnessReport and are excluded from the aggregates.
[[nodiscard]] PerCpuFairnessReport analyze_fairness_per_cpu(
    std::span<const std::vector<core::CycleRecord>> per_cpu_records,
    std::size_t warmup = 0, std::size_t limit = 0);

/// Exports the aggregates into `reg` as ppm-scaled histograms
/// (`<prefix>per_cpu_mean_rms_ppm`, `<prefix>per_cpu_worst_rms_ppm`,
/// `<prefix>per_cpu_rms_spread_ppm`, `<prefix>per_cpu_worst_complaint_ppm`)
/// plus a `<prefix>per_cpu_cpus` counter — same merge-deterministic shapes
/// as export_fairness.
void export_fairness_per_cpu(const PerCpuFairnessReport& report,
                             telemetry::MetricsRegistry& reg,
                             const std::string& prefix = "fairness.");

}  // namespace alps::metrics
