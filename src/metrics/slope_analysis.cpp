#include "metrics/slope_analysis.h"

#include "util/assert.h"

namespace alps::metrics {

double ConsumptionSeries::rate(util::TimePoint begin, util::TimePoint end) const {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& p : points) {
        if (p.when >= begin && p.when < end) {
            xs.push_back(util::to_sec(p.when.since_epoch));
            ys.push_back(util::to_sec(p.cumulative_cpu));
        }
    }
    ALPS_EXPECT(xs.size() >= 2);
    return util::linear_fit(xs, ys).slope;
}

std::size_t ConsumptionSeries::points_in(util::TimePoint begin, util::TimePoint end) const {
    std::size_t n = 0;
    for (const auto& p : points) {
        if (p.when >= begin && p.when < end) ++n;
    }
    return n;
}

std::vector<PhaseShare> analyze_phase(const std::vector<const ConsumptionSeries*>& series,
                                      const std::vector<util::Share>& shares,
                                      util::TimePoint begin, util::TimePoint end) {
    ALPS_EXPECT(series.size() == shares.size());
    ALPS_EXPECT(!series.empty());

    std::vector<PhaseShare> out(series.size());
    double rate_sum = 0.0;
    util::Share share_sum = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        out[i].rate = series[i]->rate(begin, end);
        rate_sum += out[i].rate;
        share_sum += shares[i];
    }
    ALPS_EXPECT(rate_sum > 0.0);
    for (std::size_t i = 0; i < series.size(); ++i) {
        out[i].fraction = out[i].rate / rate_sum;
        out[i].target_fraction =
            static_cast<double>(shares[i]) / static_cast<double>(share_sum);
        out[i].relative_error =
            std::abs(out[i].fraction - out[i].target_fraction) / out[i].target_fraction;
    }
    return out;
}

}  // namespace alps::metrics
