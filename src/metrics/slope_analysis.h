// The paper's Table-3 analysis machinery.
//
// Section 4.1 records, for each process, its cumulative CPU consumption at
// each of its ALPS's cycle ends, then fits a line per experiment phase; the
// slope is the process's CPU rate during that phase, and within each group
// the rates should divide in proportion to the shares.
#pragma once

#include <vector>

#include "util/shares.h"
#include "util/stats.h"
#include "util/time.h"

namespace alps::metrics {

/// One (wall time, cumulative CPU) observation for one process.
struct ConsumptionPoint {
    util::TimePoint when;
    util::Duration cumulative_cpu;
};

/// Cumulative-consumption series for one process.
struct ConsumptionSeries {
    std::vector<ConsumptionPoint> points;

    void add(util::TimePoint when, util::Duration cumulative_cpu) {
        points.push_back({when, cumulative_cpu});
    }

    /// Least-squares CPU rate (CPU seconds per wall second) over the window
    /// [begin, end). Requires >= 2 points in the window.
    [[nodiscard]] double rate(util::TimePoint begin, util::TimePoint end) const;

    /// Number of points in the window.
    [[nodiscard]] std::size_t points_in(util::TimePoint begin, util::TimePoint end) const;
};

/// Per-process result of a phase analysis.
struct PhaseShare {
    double rate = 0.0;             ///< absolute CPU rate in the phase
    double fraction = 0.0;         ///< rate / sum of group rates
    double target_fraction = 0.0;  ///< share / group total shares
    double relative_error = 0.0;   ///< |fraction - target| / target
};

/// For one group of processes with the given shares, computes each process's
/// fraction of the group's CPU during [begin, end) and its relative error
/// against the share-proportional target. Series and shares are parallel.
[[nodiscard]] std::vector<PhaseShare> analyze_phase(
    const std::vector<const ConsumptionSeries*>& series,
    const std::vector<util::Share>& shares, util::TimePoint begin, util::TimePoint end);

}  // namespace alps::metrics
