#include "metrics/threshold.h"

#include <cmath>

#include "util/assert.h"

namespace alps::metrics {

double breakdown_threshold(const util::LinearFit& fit) {
    const double a = fit.slope;
    const double b = fit.intercept;
    ALPS_EXPECT(a > 0.0);
    // a*N^2 + (a+b)*N + (b-100) = 0
    const double p = a + b;
    const double q = b - 100.0;
    const double disc = p * p - 4.0 * a * q;
    ALPS_ENSURE(disc >= 0.0);
    const double root = (-p + std::sqrt(disc)) / (2.0 * a);
    ALPS_ENSURE(root > 0.0);
    return root;
}

}  // namespace alps::metrics
