// The §4.2 scalability-threshold model.
//
// ALPS breaks down once the CPU it needs per quantum exceeds the fair share a
// kernel time-sharing scheduler would grant it: with N workload processes
// (plus ALPS itself), that share is 1/(N+1) of the CPU. Given a linear fit of
// ALPS overhead U_Q(N) = a·N + b (in percent), the predicted breakdown N*
// solves
//        U_Q(N*) = 100 / (N* + 1)
// i.e. the positive root of  a·N² + (a + b)·N + (b − 100) = 0.
#pragma once

#include "util/stats.h"

namespace alps::metrics {

/// Solves U(N) = 100/(N+1) for the positive root. `fit` is overhead in
/// percent as a function of N; requires a positive slope.
[[nodiscard]] double breakdown_threshold(const util::LinearFit& fit);

}  // namespace alps::metrics
