#include "metrics/waterfill.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::metrics {

std::vector<double> waterfill(std::span<const util::Share> weights,
                              std::span<const double> demand_caps) {
    ALPS_EXPECT(weights.size() == demand_caps.size());
    const std::size_t n = weights.size();
    std::vector<double> alloc(n, 0.0);
    if (n == 0) return alloc;

    double remaining = 1.0;
    std::vector<bool> capped(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        ALPS_EXPECT(weights[i] > 0);
        ALPS_EXPECT(demand_caps[i] >= 0.0 && demand_caps[i] <= 1.0);
    }

    // Each round, distribute the remaining CPU proportionally among the
    // uncapped clients; clients whose cap binds are frozen at their cap and
    // their overflow is redistributed next round. Terminates in <= n rounds.
    for (std::size_t round = 0; round < n; ++round) {
        double weight_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!capped[i]) weight_sum += static_cast<double>(weights[i]);
        }
        if (weight_sum == 0.0 || remaining <= 0.0) break;
        const double level = remaining / weight_sum;

        bool froze_any = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (capped[i]) continue;
            if (demand_caps[i] < static_cast<double>(weights[i]) * level) {
                alloc[i] = demand_caps[i];
                remaining -= demand_caps[i];
                capped[i] = true;
                froze_any = true;
            }
        }
        if (!froze_any) {
            // The level is feasible for everyone still unfrozen: final split.
            for (std::size_t i = 0; i < n; ++i) {
                if (!capped[i]) alloc[i] = static_cast<double>(weights[i]) * level;
            }
            return alloc;
        }
        // Recompute with the frozen clients' overflow returned to the pool.
    }
    return alloc;  // everyone capped (machine partly idle)
}

}  // namespace alps::metrics
