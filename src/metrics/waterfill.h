// Demand-capped proportional share ("water-filling") — the reference
// allocation for workloads where some clients cannot use their full share
// (e.g. they block on I/O).
//
// Client i has weight w_i and a demand cap d_i ∈ [0, 1] (the largest CPU
// fraction it can consume). The allocation raises a common "water level" L:
// each client receives min(d_i, w_i·L), growing L until either the CPU is
// exhausted (Σ a_i = 1) or every client is demand-capped (Σ a_i = Σ d_i).
// Uncapped clients end up exactly share-proportional to each other.
//
// The paper's §2.4 heuristic should drive ALPS to this fixed point: blocked
// clients' unused entitlement flows to the others in proportion (Figure 6's
// 1:2:3 → 25/–/75 is the two-point special case). bench_io_mix tests the
// general case against this model.
#pragma once

#include <span>
#include <vector>

#include "util/shares.h"

namespace alps::metrics {

/// Returns each client's CPU fraction under demand-capped proportional
/// share. `weights` positive; `demand_caps` in [0, 1], parallel arrays.
/// The result sums to min(1, Σ caps).
[[nodiscard]] std::vector<double> waterfill(std::span<const util::Share> weights,
                                            std::span<const double> demand_caps);

}  // namespace alps::metrics
