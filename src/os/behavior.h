// Process behaviours: what a simulated process *does*.
//
// A behaviour is a phase machine. Whenever a process finishes its current
// phase the kernel asks the behaviour for the next Action. Run phases may be
// *lazy*: their CPU demand is computed at the moment the process is actually
// dispatched. The ALPS driver uses this so that its sampling work happens —
// and is costed — when the kernel really gives it the CPU, which is exactly
// the mechanism behind the paper's Section-4.2 breakdown analysis.
#pragma once

#include <memory>
#include <variant>

#include "os/types.h"
#include "util/time.h"

namespace alps::os {

class Kernel;

/// Sentinel for "run forever" (a compute-bound process).
inline constexpr util::Duration kRunForever = util::Duration::max();

/// Consume `duration` of CPU time. If `lazy`, the duration is obtained from
/// Behavior::lazy_run_duration() when the process is first dispatched into
/// this phase (and `duration` is ignored).
struct RunAction {
    util::Duration duration{};
    bool lazy = false;
};

/// Sleep for `duration` of real time (models blocking I/O with known latency).
struct SleepAction {
    util::Duration duration{};
    WaitChannel wchan = nullptr;
};

/// Sleep until an absolute instant (models an absolute interval timer; the
/// ALPS driver sleeps until the next quantum boundary).
struct SleepUntilAction {
    util::TimePoint deadline{};
    WaitChannel wchan = nullptr;
};

/// Block on a wait channel until some other process calls
/// Kernel::wakeup_channel (models queue waits, e.g. an idle web worker).
struct BlockAction {
    WaitChannel wchan = nullptr;
};

/// Terminate the process.
struct ExitAction {};

using Action = std::variant<RunAction, SleepAction, SleepUntilAction, BlockAction, ExitAction>;

/// Context handed to behaviour hooks.
struct ProcContext {
    Kernel& kernel;
    Pid pid;
};

/// Interface implemented by every simulated process body.
///
/// Hooks are invoked synchronously from inside the kernel's scheduling path.
/// They may call kernel services (signals, wakeups, spawns); the kernel
/// defers the resulting rescheduling until the hook returns.
class Behavior {
public:
    virtual ~Behavior() = default;

    /// Returns the process's next phase. Called once at spawn for the first
    /// phase and thereafter each time the current phase completes.
    virtual Action next_action(ProcContext ctx) = 0;

    /// For lazy RunActions: called at first dispatch into the phase; returns
    /// the CPU demand of the phase. Must be >= 0 (0 completes immediately).
    virtual util::Duration lazy_run_duration(ProcContext ctx);
};

}  // namespace alps::os
