#include "os/behaviors.h"

#include "util/assert.h"

namespace alps::os {

util::Duration Behavior::lazy_run_duration(ProcContext) {
    // Only behaviours that emit lazy RunActions need to override this.
    return util::Duration::zero();
}

FiniteCpuBehavior::FiniteCpuBehavior(util::Duration total) : total_(total) {
    ALPS_EXPECT(total > util::Duration::zero());
}

Action FiniteCpuBehavior::next_action(ProcContext) {
    if (started_) return ExitAction{};
    started_ = true;
    return RunAction{total_};
}

PhasedIoBehavior::PhasedIoBehavior(util::Duration burst, util::Duration sleep,
                                   util::Duration initial_cpu)
    : burst_(burst), sleep_(sleep), initial_cpu_(initial_cpu) {
    ALPS_EXPECT(burst > util::Duration::zero());
    ALPS_EXPECT(sleep > util::Duration::zero());
    ALPS_EXPECT(initial_cpu >= util::Duration::zero());
}

Action PhasedIoBehavior::next_action(ProcContext) {
    switch (phase_) {
        case Phase::kInitial:
            phase_ = Phase::kSleep;  // after the initial CPU phase, sleep next
            if (initial_cpu_ > util::Duration::zero()) {
                return RunAction{initial_cpu_ + burst_};
            }
            return RunAction{burst_};
        case Phase::kBurst:
            phase_ = Phase::kSleep;
            return RunAction{burst_};
        case Phase::kSleep:
            phase_ = Phase::kBurst;
            return SleepAction{sleep_, this};  // wchan: "doing I/O"
    }
    return ExitAction{};  // unreachable
}

ScriptedBehavior::ScriptedBehavior(std::vector<Action> script, bool repeat)
    : script_(std::move(script)), repeat_(repeat) {
    ALPS_EXPECT(!script_.empty());
}

Action ScriptedBehavior::next_action(ProcContext) {
    if (index_ == script_.size()) {
        if (!repeat_) return ExitAction{};
        index_ = 0;
    }
    return script_[index_++];
}

FunctionBehavior::FunctionBehavior(NextFn next, LazyFn lazy)
    : next_(std::move(next)), lazy_(std::move(lazy)) {
    ALPS_EXPECT(next_ != nullptr);
}

Action FunctionBehavior::next_action(ProcContext ctx) { return next_(ctx); }

util::Duration FunctionBehavior::lazy_run_duration(ProcContext ctx) {
    ALPS_EXPECT(lazy_ != nullptr);
    return lazy_(ctx);
}

}  // namespace alps::os
