// Stock process behaviours used by tests and workloads.
#pragma once

#include <functional>
#include <vector>

#include "os/behavior.h"

namespace alps::os {

/// A compute-bound process: runs forever (the paper's synthetic workload).
class CpuBoundBehavior final : public Behavior {
public:
    Action next_action(ProcContext) override { return RunAction{kRunForever}; }
};

/// Runs for a fixed total amount of CPU time, then exits.
class FiniteCpuBehavior final : public Behavior {
public:
    explicit FiniteCpuBehavior(util::Duration total);
    Action next_action(ProcContext) override;

private:
    util::Duration total_;
    bool started_ = false;
};

/// Alternates CPU bursts and sleeps forever — the paper's I/O model
/// (Section 3.3: process B runs 80 ms then sleeps 240 ms). An optional
/// initial pure-CPU phase delays the onset of I/O, as in Figure 6 where
/// process B starts I/O only after reaching steady state.
class PhasedIoBehavior final : public Behavior {
public:
    PhasedIoBehavior(util::Duration burst, util::Duration sleep,
                     util::Duration initial_cpu = util::Duration::zero());
    Action next_action(ProcContext) override;

private:
    util::Duration burst_;
    util::Duration sleep_;
    util::Duration initial_cpu_;
    enum class Phase { kInitial, kBurst, kSleep } phase_ = Phase::kInitial;
};

/// Plays a fixed list of actions, then exits (or repeats).
class ScriptedBehavior final : public Behavior {
public:
    explicit ScriptedBehavior(std::vector<Action> script, bool repeat = false);
    Action next_action(ProcContext) override;

private:
    std::vector<Action> script_;
    std::size_t index_ = 0;
    bool repeat_;
};

/// Adapts std::functions into a behaviour (ad-hoc test logic).
class FunctionBehavior final : public Behavior {
public:
    using NextFn = std::function<Action(ProcContext)>;
    using LazyFn = std::function<util::Duration(ProcContext)>;

    explicit FunctionBehavior(NextFn next, LazyFn lazy = nullptr);
    Action next_action(ProcContext ctx) override;
    util::Duration lazy_run_duration(ProcContext ctx) override;

private:
    NextFn next_;
    LazyFn lazy_;
};

}  // namespace alps::os
