#include "os/bsd_policy.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.h"

namespace alps::os {

BsdPolicy::BsdPolicy(BsdPolicyConfig cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg_.stat_tick > util::Duration::zero());
    ALPS_EXPECT(cfg_.round_robin > util::Duration::zero());
}

int BsdPolicy::queue_index(const Proc& p) const {
    // A freshly woken process still holds its kernel sleep priority (PWAIT
    // class) until it returns to user mode.
    const double pri = p.wake_boost ? cfg_.sleep_pri : p.usrpri;
    const double span = cfg_.max_pri + 1.0;
    int idx = static_cast<int>(pri / (span / kNumQueues));
    return std::clamp(idx, 0, kNumQueues - 1);
}

void BsdPolicy::recompute_priority(Proc& p) const {
    // resetpriority() clamps only the upper bound: a negative nice drops
    // below PUSER by design, so a privileged daemon outranks user-mode
    // processes even after its wakeup boost is spent.
    const double pri = cfg_.puser + p.estcpu / 4.0 + 2.0 * p.nice;
    p.usrpri = std::clamp(pri, 0.0, cfg_.max_pri);
}

double BsdPolicy::decay_factor(double loadavg) {
    return (2.0 * loadavg) / (2.0 * loadavg + 1.0);
}

void BsdPolicy::add(Proc& p) {
    p.estcpu = 0.0;
    recompute_priority(p);
}

void BsdPolicy::remove(Proc& p) {
    // A process can exit while queued (e.g. killed); make sure it is gone.
    dequeue(p);
}

void BsdPolicy::enqueue(Proc& p) {
    // Contract: never enqueue twice (the cached index doubles as the
    // membership flag, replacing the old O(n) std::find check).
    ALPS_EXPECT(p.rq_index < 0);
    const int idx = queue_index(p);
    RunQueue& q = queues_[static_cast<std::size_t>(idx)];
    p.rq_index = idx;
    p.rq_next = nullptr;
    p.rq_prev = q.tail;
    if (q.tail != nullptr) {
        q.tail->rq_next = &p;
    } else {
        q.head = &p;
        whichqs_ |= 1u << idx;
    }
    q.tail = &p;
    ++runnable_;
}

void BsdPolicy::dequeue(Proc& p) {
    // Benign on a non-queued process, like the old scan (remove() and stop
    // handling call this unconditionally).
    if (p.rq_index < 0) return;
    RunQueue& q = queues_[static_cast<std::size_t>(p.rq_index)];
    if (p.rq_prev != nullptr) {
        p.rq_prev->rq_next = p.rq_next;
    } else {
        q.head = p.rq_next;
    }
    if (p.rq_next != nullptr) {
        p.rq_next->rq_prev = p.rq_prev;
    } else {
        q.tail = p.rq_prev;
    }
    if (q.head == nullptr) whichqs_ &= ~(1u << p.rq_index);
    p.rq_prev = nullptr;
    p.rq_next = nullptr;
    p.rq_index = -1;
    --runnable_;
}

Proc* BsdPolicy::peek() {
    if (whichqs_ == 0) return nullptr;
    return queues_[static_cast<std::size_t>(std::countr_zero(whichqs_))].head;
}

Proc* BsdPolicy::pop() {
    Proc* p = peek();
    if (p != nullptr) dequeue(*p);
    return p;
}

bool BsdPolicy::preempts(const Proc& cand, const Proc& running) const {
    // Queue-granular comparison, as in the real dispatcher.
    return queue_index(cand) < queue_index(running);
}

bool BsdPolicy::yields_to(const Proc& running, const Proc& cand) const {
    // roundrobin(): at slice expiry, yield to an equal-or-better peer.
    return queue_index(cand) <= queue_index(running);
}

void BsdPolicy::charge(Proc& p, util::Duration ran) {
    ALPS_EXPECT(ran >= util::Duration::zero());
    const double ticks =
        static_cast<double>(ran.count()) / static_cast<double>(cfg_.stat_tick.count());
    p.estcpu = std::min(p.estcpu + ticks, cfg_.estcpu_limit);
    recompute_priority(p);
}

void BsdPolicy::on_wakeup(Proc& p, util::Duration slept) {
    // updatepri(): one decay per whole second slept.
    const auto seconds = slept / util::sec(1);
    if (seconds >= 1) {
        const double d = decay_factor(std::max(last_loadavg_, 0.0));
        // Sleeps of 1-3 whole seconds dominate; spare them the per-wakeup
        // libm pow() call. Replay determinism demands the *same doubles* the
        // uncached pow(d, seconds) produced, and multiplications are not
        // that: libm's pow is off the correctly-rounded square/cube by an
        // ulp for a fraction of decay factors (d*d for ~0.1%, d*d*d for
        // ~25% — test_os_bsd_policy pins this down), so only seconds==1 may
        // shortcut (pow(d, 1) returns d exactly). The squares and cubes are
        // libm values cached per decay factor: under steady load that is one
        // pow() per schedcpu load change instead of one per wakeup.
        double f;
        if (seconds == 1) {
            f = d;
        } else if (seconds <= 3) {
            if (d != pow_base_) {
                pow_base_ = d;
                // Volatile exponents force the real libm calls: the
                // compiler folds pow(d, 2.0) into d*d, which is exactly the
                // ulp divergence this cache exists to avoid.
                volatile double two = 2.0;
                volatile double three = 3.0;
                pow2_ = std::pow(d, two);
                pow3_ = std::pow(d, three);
            }
            f = seconds == 2 ? pow2_ : pow3_;
        } else {
            f = std::pow(d, static_cast<double>(seconds));
        }
        p.estcpu *= f;
        recompute_priority(p);
    }
}

void BsdPolicy::second_tick(std::span<Proc* const> procs, double loadavg,
                            util::TimePoint now) {
    last_loadavg_ = loadavg;
    const double d = decay_factor(loadavg);
    for (Proc* p : procs) {
        if (p->state == RunState::kZombie) continue;
        // schedcpu skips processes idle for more than a second (p_slptime >
        // 1); those are decayed wholesale at wakeup/SIGCONT. Short sleepers
        // (e.g. the 10 ms ALPS timer sleep) decay here like runnable ones.
        if (p->state == RunState::kSleeping && now - p->sleep_start > util::sec(1)) {
            continue;
        }
        if (p->stopped && now - p->stop_start > util::sec(1)) continue;
        // The cached run-queue index is the ground truth for membership —
        // no scan, and requeueing below is O(1) unlink + append.
        const bool queued = p->rq_index >= 0;
        const double new_estcpu = std::clamp(
            d * p->estcpu + static_cast<double>(p->nice), 0.0, cfg_.estcpu_limit);
        if (new_estcpu == p->estcpu) continue;
        const int old_index = queue_index(*p);
        p->estcpu = new_estcpu;
        recompute_priority(*p);
        // Requeue only on an actual cross-queue move so that decay does not
        // perturb FIFO order within a queue.
        if (queued && queue_index(*p) != old_index) {
            dequeue(*p);
            enqueue(*p);
        }
    }
}

}  // namespace alps::os
