#include "os/bsd_policy.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace alps::os {

BsdPolicy::BsdPolicy(BsdPolicyConfig cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg_.stat_tick > util::Duration::zero());
    ALPS_EXPECT(cfg_.round_robin > util::Duration::zero());
}

int BsdPolicy::queue_index(const Proc& p) const {
    // A freshly woken process still holds its kernel sleep priority (PWAIT
    // class) until it returns to user mode.
    const double pri = p.wake_boost ? cfg_.sleep_pri : p.usrpri;
    const double span = cfg_.max_pri + 1.0;
    int idx = static_cast<int>(pri / (span / kNumQueues));
    return std::clamp(idx, 0, kNumQueues - 1);
}

void BsdPolicy::recompute_priority(Proc& p) const {
    const double pri = cfg_.puser + p.estcpu / 4.0 + 2.0 * p.nice;
    p.usrpri = std::clamp(pri, cfg_.puser, cfg_.max_pri);
}

double BsdPolicy::decay_factor(double loadavg) {
    return (2.0 * loadavg) / (2.0 * loadavg + 1.0);
}

void BsdPolicy::add(Proc& p) {
    p.estcpu = 0.0;
    recompute_priority(p);
}

void BsdPolicy::remove(Proc& p) {
    // A process can exit while queued (e.g. killed); make sure it is gone.
    dequeue(p);
}

void BsdPolicy::enqueue(Proc& p) {
    auto& q = queues_[static_cast<std::size_t>(queue_index(p))];
    // Contract: never enqueue twice.
    ALPS_EXPECT(std::find(q.begin(), q.end(), &p) == q.end());
    q.push_back(&p);
    ++runnable_;
}

void BsdPolicy::dequeue(Proc& p) {
    for (auto& q : queues_) {
        auto it = std::find(q.begin(), q.end(), &p);
        if (it != q.end()) {
            q.erase(it);
            --runnable_;
            return;
        }
    }
}

Proc* BsdPolicy::peek() {
    for (auto& q : queues_) {
        if (!q.empty()) return q.front();
    }
    return nullptr;
}

Proc* BsdPolicy::pop() {
    for (auto& q : queues_) {
        if (!q.empty()) {
            Proc* p = q.front();
            q.pop_front();
            --runnable_;
            return p;
        }
    }
    return nullptr;
}

bool BsdPolicy::preempts(const Proc& cand, const Proc& running) const {
    // Queue-granular comparison, as in the real dispatcher.
    return queue_index(cand) < queue_index(running);
}

bool BsdPolicy::yields_to(const Proc& running, const Proc& cand) const {
    // roundrobin(): at slice expiry, yield to an equal-or-better peer.
    return queue_index(cand) <= queue_index(running);
}

void BsdPolicy::charge(Proc& p, util::Duration ran) {
    ALPS_EXPECT(ran >= util::Duration::zero());
    const double ticks =
        static_cast<double>(ran.count()) / static_cast<double>(cfg_.stat_tick.count());
    p.estcpu = std::min(p.estcpu + ticks, cfg_.estcpu_limit);
    recompute_priority(p);
}

void BsdPolicy::on_wakeup(Proc& p, util::Duration slept) {
    // updatepri(): one decay per whole second slept.
    const auto seconds = slept / util::sec(1);
    if (seconds >= 1) {
        const double d = decay_factor(std::max(last_loadavg_, 0.0));
        p.estcpu *= std::pow(d, static_cast<double>(seconds));
        recompute_priority(p);
    }
}

void BsdPolicy::second_tick(std::span<Proc* const> procs, double loadavg,
                            util::TimePoint now) {
    last_loadavg_ = loadavg;
    const double d = decay_factor(loadavg);
    for (Proc* p : procs) {
        if (p->state == RunState::kZombie) continue;
        // schedcpu skips processes idle for more than a second (p_slptime >
        // 1); those are decayed wholesale at wakeup/SIGCONT. Short sleepers
        // (e.g. the 10 ms ALPS timer sleep) decay here like runnable ones.
        if (p->state == RunState::kSleeping && now - p->sleep_start > util::sec(1)) {
            continue;
        }
        if (p->stopped && now - p->stop_start > util::sec(1)) continue;
        const bool queued = p->state == RunState::kRunnable && !p->stopped;
        const double new_estcpu =
            std::min(d * p->estcpu + static_cast<double>(p->nice), cfg_.estcpu_limit);
        if (new_estcpu == p->estcpu) continue;
        const int old_index = queue_index(*p);
        p->estcpu = new_estcpu;
        recompute_priority(*p);
        // Requeue only on an actual cross-queue move so that decay does not
        // perturb FIFO order within a queue.
        if (queued && queue_index(*p) != old_index) {
            dequeue(*p);
            enqueue(*p);
        }
    }
}

}  // namespace alps::os
