// The 4.4BSD time-sharing scheduler (the policy under FreeBSD 4.x, the
// paper's host kernel), as a SchedPolicy.
//
// Model (McKusick et al., "The Design and Implementation of the 4.4BSD
// Operating System", ch. 4):
//   * p_estcpu: decaying average of recent CPU use, in statclock ticks
//     (1 tick = 10 ms here). Incremented while running; once per second
//     schedcpu() applies  estcpu <- estcpu * 2L/(2L+1) + nice  where L is the
//     1-minute load average; clamped to ESTCPULIM.
//   * p_usrpri = PUSER + estcpu/4 + 2*nice, clamped from above only (so a
//     negative nice sits below PUSER, like resetpriority()); lower is better.
//   * Processes that slept >= 1 s get their estcpu decayed once per slept
//     second at wakeup (updatepri) — this is the "interactive credit" the
//     paper invokes to explain ALPS exceeding its theoretical scalability
//     threshold at Q = 40 ms.
//   * 32 run queues indexed by usrpri/4; FIFO within a queue; roundrobin()
//     forces a switch among equal-priority peers every 100 ms.
#pragma once

#include <array>
#include <cstdint>

#include "os/policy.h"

namespace alps::os {

struct BsdPolicyConfig {
    /// Statclock period: one estcpu "tick" of CPU use.
    util::Duration stat_tick = util::msec(10);
    /// Round-robin interval (RR slice among equal-priority processes).
    util::Duration round_robin = util::msec(100);
    double puser = 50.0;      ///< base user priority (PUSER)
    double max_pri = 127.0;   ///< worst priority
    double estcpu_limit = 255.0;  ///< ESTCPULIM
    /// Kernel sleep priority a woken process briefly holds (PWAIT class);
    /// always beats user priorities, so sleepers preempt compute-bound work.
    double sleep_pri = 32.0;
};

class BsdPolicy final : public SchedPolicy {
public:
    explicit BsdPolicy(BsdPolicyConfig cfg = {});

    void add(Proc& p) override;
    void remove(Proc& p) override;
    void enqueue(Proc& p) override;
    void dequeue(Proc& p) override;
    Proc* peek() override;
    Proc* pop() override;
    [[nodiscard]] bool preempts(const Proc& cand, const Proc& running) const override;
    [[nodiscard]] bool yields_to(const Proc& running, const Proc& cand) const override;
    void charge(Proc& p, util::Duration ran) override;
    void on_wakeup(Proc& p, util::Duration slept) override;
    void second_tick(std::span<Proc* const> procs, double loadavg,
                     util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override { return cfg_.round_robin; }
    [[nodiscard]] std::size_t runnable() const override { return runnable_; }
    /// estcpu/usrpri live on the Proc and must survive a migration — add()
    /// would zero the usage history and hand a migrated hog a fresh top
    /// priority. There is no per-instance state to adopt, so arriving is
    /// just a priority recompute against this instance's config.
    void on_migrate_in(Proc& p) override { recompute_priority(p); }

    [[nodiscard]] const BsdPolicyConfig& config() const { return cfg_; }

private:
    static constexpr int kNumQueues = 32;
    static_assert(kNumQueues <= 32, "whichqs_ is a 32-bit ready-queue bitmap");

    /// One run queue: an intrusive doubly-linked FIFO threaded through
    /// Proc::rq_prev/rq_next, exactly like the 4.4BSD qs[] TAILQs. All four
    /// queue operations are O(1).
    struct RunQueue {
        Proc* head = nullptr;
        Proc* tail = nullptr;
    };

    [[nodiscard]] int queue_index(const Proc& p) const;
    void recompute_priority(Proc& p) const;
    /// The schedcpu/updatepri decay factor 2L/(2L+1).
    [[nodiscard]] static double decay_factor(double loadavg);

    BsdPolicyConfig cfg_;
    std::array<RunQueue, kNumQueues> queues_;
    /// 4.4BSD `whichqs`: bit q set iff queues_[q] is non-empty, so the
    /// dispatcher's "best queue" is a find-first-set, not a 32-queue scan.
    std::uint32_t whichqs_ = 0;
    std::size_t runnable_ = 0;
    double last_loadavg_ = 0.0;  ///< load used for wakeup credit between ticks
    /// Once-per-loadavg cache of pow(d, 2) and pow(d, 3) for the dominant
    /// short wakeup decays (see on_wakeup): keyed by the decay factor, so
    /// steady load pays one libm call per load change instead of per wakeup.
    double pow_base_ = -1.0;
    double pow2_ = 0.0;
    double pow3_ = 0.0;
};

}  // namespace alps::os
