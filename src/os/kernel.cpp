#include "os/kernel.h"

#include <algorithm>
#include <cmath>

#include "os/policies/factory.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/assert.h"

namespace alps::os {

using util::Duration;
using util::TimePoint;

Kernel::Kernel(sim::Engine& engine, std::unique_ptr<SchedPolicy> policy, KernelConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)) {
    ALPS_EXPECT(cfg_.ncpus >= 1);
    ALPS_EXPECT(cfg_.schedcpu_period > Duration::zero());
    ALPS_EXPECT(cfg_.loadavg_tau > Duration::zero());
    // A pre-constructed policy object is inherently single-instance, so it
    // implies the shared global queue.
    ALPS_EXPECT(policy == nullptr || !cfg_.percpu_queues);
    if (policy != nullptr) {
        domains_.push_back(std::move(policy));
    } else {
        // An unknown cfg.policy name throws here — a mistyped experiment
        // config must fail loudly, never silently run under BSD. Under
        // per-CPU domains each instance gets its own derived seed so the
        // lottery domains draw decorrelated streams.
        const std::size_t n = cfg_.percpu_queues ? static_cast<std::size_t>(cfg_.ncpus) : 1;
        for (std::size_t d = 0; d < n; ++d) {
            domains_.push_back(policies::make_policy(
                cfg_.policy, {.seed = cfg_.policy_seed + static_cast<std::uint64_t>(d)}));
        }
    }
    running_.assign(static_cast<std::size_t>(cfg_.ncpus), nullptr);
    decision_events_.assign(static_cast<std::size_t>(cfg_.ncpus), 0);
    last_on_cpu_.assign(static_cast<std::size_t>(cfg_.ncpus), kNoPid);
    table_.push_back(nullptr);  // slot 0: kNoPid, never issued
    soa_base_ns_.push_back(0);
    soa_flags_.push_back(0);
    soa_uid_.push_back(0);
    if (cfg_.percpu_queues) tick_scratch_.resize(static_cast<std::size_t>(cfg_.ncpus));
    decision_kind_ = engine_.register_hot(&Kernel::on_decision_timer, this);
    wake_kind_ = engine_.register_hot(&Kernel::on_timer_wake, this);
    tick_kind_ = engine_.register_hot(&Kernel::on_second_tick, this);
    engine_.schedule_after(cfg_.schedcpu_period, tick_kind_, 0);
}

Kernel::~Kernel() {
    // Proc records live in the arena; run their destructors (name, behaviour)
    // here — the bytes go back with the arena.
    for (Proc* p : table_) {
        if (p != nullptr) p->~Proc();
    }
}

void Kernel::on_decision_timer(void* self, std::uint64_t) {
    static_cast<Kernel*>(self)->schedule();
}

void Kernel::on_timer_wake(void* self, std::uint64_t arg) {
    static_cast<Kernel*>(self)->timer_wake(static_cast<Pid>(arg));
}

void Kernel::on_second_tick(void* self, std::uint64_t) {
    static_cast<Kernel*>(self)->second_tick();
}

// ----------------------------------------------------------------------------
// Process table

Pid Kernel::spawn(std::string name, Uid uid, std::unique_ptr<Behavior> behavior, int nice,
                  int home_cpu, bool pinned) {
    ALPS_EXPECT(behavior != nullptr);
    ALPS_EXPECT(home_cpu >= -1 && home_cpu < cfg_.ncpus);
    const Pid pid = next_pid_++;
    Proc* owned = engine_.arena().create<Proc>();
    Proc& p = *owned;
    p.pid = pid;
    p.name = std::move(name);
    p.uid = uid;
    p.nice = nice;
    p.state = RunState::kRunnable;
    p.behavior = std::move(behavior);
    p.last_charge = now();
    if (cfg_.percpu_queues) {
        // Default placement: deal new pids round-robin across the domains.
        p.home_cpu = home_cpu >= 0 ? home_cpu : (pid - 1) % cfg_.ncpus;
        p.pinned = pinned;
    }
    ALPS_ENSURE(static_cast<std::size_t>(pid) == table_.size());
    table_.push_back(owned);
    soa_base_ns_.push_back(0);
    soa_flags_.push_back(0);
    soa_uid_.push_back(0);
    sync_soa(p);
    p.ordered_index = ordered_.size();
    ordered_.push_back(&p);
    std::vector<Proc*>& members = by_uid_[uid];
    p.uid_index = members.size();
    members.push_back(&p);
    dom(p).add(p);

    const Action first = p.behavior->next_action({*this, pid});
    apply_action(p, first);
    schedule();
    return pid;
}

void Kernel::reap(Pid pid) {
    Proc& p = proc_mut(pid);
    ALPS_EXPECT(p.state == RunState::kZombie);
    // ordered_'s iteration order IS observed — wakeup_channel wakes in
    // creation order for determinism, second_tick hands the span to the
    // policy, and live_pids reports creation order — so the erase must keep
    // order (shift + reindex the tail), not swap with the tail. The stored
    // index still removes the old O(N) pointer scan to *find* the entry.
    ALPS_ENSURE(ordered_[p.ordered_index] == &p);
    ordered_.erase(ordered_.begin() + static_cast<std::ptrdiff_t>(p.ordered_index));
    for (std::size_t i = p.ordered_index; i < ordered_.size(); ++i) {
        ordered_[i]->ordered_index = i;
    }
    p.~Proc();  // arena-backed: destroy in place, the arena keeps the bytes
    table_[static_cast<std::size_t>(pid)] = nullptr;
    soa_base_ns_[static_cast<std::size_t>(pid)] = 0;
    soa_flags_[static_cast<std::size_t>(pid)] = 0;  // !kSoaAlive: never sampled again
    soa_uid_[static_cast<std::size_t>(pid)] = 0;
}

MigratedProc Kernel::extradite(Pid pid) {
    Proc& p = proc_mut(pid);
    ALPS_EXPECT(p.state == RunState::kRunnable);
    ALPS_EXPECT(!p.stopped);
    ALPS_EXPECT(p.on_cpu < 0);
    // Runnable off-CPU with no stop in flight means no engine events
    // reference the process; the handle can cross to an engine this one has
    // never heard of.
    ALPS_EXPECT(p.sleep_event == 0 && p.pending_stop_event == 0);

    MigratedProc handle;
    handle.name = std::move(p.name);
    handle.uid = p.uid;
    handle.nice = p.nice;
    handle.behavior = std::move(p.behavior);
    handle.cpu_consumed = p.cpu_consumed;
    handle.run_remaining = p.run_remaining;
    handle.phase_lazy_pending = p.phase_lazy_pending;
    handle.pinned = p.pinned;

    dom(p).dequeue(p);
    dom(p).remove(p);
    // Retire the pid exactly as do_exit + reap would: per-uid cache, creation
    // order, table slot, SoA row.
    std::vector<Proc*>& members = by_uid_[p.uid];
    ALPS_ENSURE(members[p.uid_index] == &p);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(p.uid_index));
    for (std::size_t i = p.uid_index; i < members.size(); ++i) {
        members[i]->uid_index = i;
    }
    ALPS_ENSURE(ordered_[p.ordered_index] == &p);
    ordered_.erase(ordered_.begin() + static_cast<std::ptrdiff_t>(p.ordered_index));
    for (std::size_t i = p.ordered_index; i < ordered_.size(); ++i) {
        ordered_[i]->ordered_index = i;
    }
    p.~Proc();
    table_[static_cast<std::size_t>(pid)] = nullptr;
    soa_base_ns_[static_cast<std::size_t>(pid)] = 0;
    soa_flags_[static_cast<std::size_t>(pid)] = 0;
    soa_uid_[static_cast<std::size_t>(pid)] = 0;
    ++extraditions_;
    return handle;
}

Pid Kernel::adopt(MigratedProc&& handle, int home_cpu) {
    ALPS_EXPECT(handle.behavior != nullptr);
    ALPS_EXPECT(home_cpu >= -1 && home_cpu < cfg_.ncpus);
    const Pid pid = next_pid_++;
    Proc* owned = engine_.arena().create<Proc>();
    Proc& p = *owned;
    p.pid = pid;
    p.name = std::move(handle.name);
    p.uid = handle.uid;
    p.nice = handle.nice;
    p.state = RunState::kRunnable;
    p.behavior = std::move(handle.behavior);
    p.cpu_consumed = handle.cpu_consumed;
    p.run_remaining = handle.run_remaining;
    p.phase_lazy_pending = handle.phase_lazy_pending;
    p.last_charge = now();
    if (cfg_.percpu_queues) {
        p.home_cpu = home_cpu >= 0 ? home_cpu : (pid - 1) % cfg_.ncpus;
        p.pinned = handle.pinned;
    }
    ALPS_ENSURE(static_cast<std::size_t>(pid) == table_.size());
    table_.push_back(owned);
    soa_base_ns_.push_back(0);
    soa_flags_.push_back(0);
    soa_uid_.push_back(0);
    sync_soa(p);
    p.ordered_index = ordered_.size();
    ordered_.push_back(&p);
    std::vector<Proc*>& members = by_uid_[p.uid];
    p.uid_index = members.size();
    members.push_back(&p);
    dom(p).add(p);
    p.enqueue_time = now();
    dom(p).enqueue(p);
    ++adoptions_;
    // Unlike spawn, no next_action: the process resumes its interrupted
    // phase (run_remaining / the lazy-demand flag travelled with it).
    schedule();
    return pid;
}

const Proc* Kernel::lookup(Pid pid) const {
    if (pid <= 0 || static_cast<std::size_t>(pid) >= table_.size()) return nullptr;
    return table_[static_cast<std::size_t>(pid)];
}

Proc& Kernel::proc_mut(Pid pid) {
    Proc* p = pid > 0 && static_cast<std::size_t>(pid) < table_.size()
                  ? table_[static_cast<std::size_t>(pid)]
                  : nullptr;
    ALPS_EXPECT(p != nullptr);
    return *p;
}

const Proc& Kernel::proc(Pid pid) const {
    const Proc* p = lookup(pid);
    ALPS_EXPECT(p != nullptr);
    return *p;
}

bool Kernel::alive(Pid pid) const {
    const Proc* p = lookup(pid);
    return p != nullptr && p->state != RunState::kZombie;
}

bool Kernel::exists(Pid pid) const { return lookup(pid) != nullptr; }

Duration Kernel::cpu_time(Pid pid) const {
    const Proc& p = proc(pid);
    Duration t = p.cpu_consumed;
    if (p.on_cpu >= 0) t += now() - p.last_charge;
    return t;
}

bool Kernel::is_blocked(Pid pid) const { return proc(pid).blocked(); }

Kernel::SampleView Kernel::sample(Pid pid) const {
    SampleView s;
    if (pid <= 0 || static_cast<std::size_t>(pid) >= table_.size()) return s;
    const std::size_t i = static_cast<std::size_t>(pid);
    const std::uint8_t f = soa_flags_[i];
    if ((f & kSoaAlive) == 0) return s;  // unknown, reaped, or zombie
    s.cpu_time = Duration{soa_base_ns_[i] +
                          ((f & kSoaOnCpu) != 0 ? now().since_epoch.count() : 0)};
    s.blocked = (f & kSoaBlocked) != 0;
    s.stopped = (f & kSoaStopped) != 0;
    s.alive = true;
    return s;
}

void Kernel::measure(std::span<const Pid> pids, SampleView* out) const {
    ALPS_EXPECT(out != nullptr || pids.empty());
    // One clock read for the whole batch: every on-CPU process is charged to
    // the same instant, which is also what a sequence of sample() calls sees
    // (simulated time cannot advance between them).
    const std::int64_t now_ns = now().since_epoch.count();
    const std::size_t table_size = table_.size();
    for (std::size_t k = 0; k < pids.size(); ++k) {
        const Pid pid = pids[k];
        SampleView s;
        if (pid > 0 && static_cast<std::size_t>(pid) < table_size) {
            const std::size_t i = static_cast<std::size_t>(pid);
            const std::uint8_t f = soa_flags_[i];
            if ((f & kSoaAlive) != 0) {
                s.cpu_time =
                    Duration{soa_base_ns_[i] + ((f & kSoaOnCpu) != 0 ? now_ns : 0)};
                s.blocked = (f & kSoaBlocked) != 0;
                s.stopped = (f & kSoaStopped) != 0;
                s.alive = true;
            }
        }
        out[k] = s;
    }
}

std::vector<Pid> Kernel::pids_of_uid(Uid uid) const {
    std::vector<Pid> out;
    pids_of_uid(uid, out);
    return out;
}

void Kernel::pids_of_uid(Uid uid, std::vector<Pid>& out) const {
    out.clear();
    const auto it = by_uid_.find(uid);
    if (it == by_uid_.end()) return;
    out.reserve(it->second.size());
    for (const Proc* p : it->second) out.push_back(p->pid);
}

std::vector<Pid> Kernel::live_pids() const {
    std::vector<Pid> out;
    live_pids(out);
    return out;
}

void Kernel::live_pids(std::vector<Pid>& out) const {
    out.clear();
    for (const Proc* p : ordered_) {
        if (p->state != RunState::kZombie) out.push_back(p->pid);
    }
}

util::Duration Kernel::busy_time() const {
    Duration t = busy_;
    for (const Proc* p : running_) {
        if (p != nullptr) t += now() - p->last_charge;
    }
    return t;
}

Pid Kernel::running_pid_on(int cpu) const {
    // An out-of-range CPU index means the caller's topology bookkeeping is
    // corrupt; indexing running_ with it would be UB. Abort, don't unwind.
    ALPS_GUARD(cpu >= 0 && cpu < cfg_.ncpus);
    const Proc* p = running_[static_cast<std::size_t>(cpu)];
    return p != nullptr ? p->pid : kNoPid;
}

const SchedPolicy& Kernel::policy_on(int cpu) const {
    ALPS_GUARD(cpu >= 0 && cpu < cfg_.ncpus);
    return *domains_[cfg_.percpu_queues ? static_cast<std::size_t>(cpu) : 0];
}

std::size_t Kernel::eligible_count() const {
    // Flags-only SoA scan (a contiguous byte per pid): the schedcpu loadavg
    // input no longer walks the Proc records.
    std::size_t n = 0;
    for (const std::uint8_t f : soa_flags_) {
        if ((f & kSoaWantsCpu) != 0 && (f & kSoaStopped) == 0) ++n;
    }
    return n;
}

// ----------------------------------------------------------------------------
// Signals and wakeups

void Kernel::send_signal(Pid pid, Signal sig) {
    Proc& p = proc_mut(pid);
    if (p.state == RunState::kZombie) return;
    switch (sig) {
        case Signal::kStop:
            if (p.stopped || p.pending_stop_event != 0) return;
            // A running process only acts on the stop when it next enters
            // the kernel — at the next hardclock tick under the latency
            // model (see KernelConfig::stop_latency_grid).
            if (cfg_.stop_latency_grid > Duration::zero() && p.on_cpu >= 0) {
                const auto grid = cfg_.stop_latency_grid.count();
                const auto boundary = (now().since_epoch.count() / grid + 1) * grid;
                p.pending_stop_event = engine_.schedule_at(
                    TimePoint{Duration{boundary}}, [this, pid] {
                        Proc& target = proc_mut(pid);
                        target.pending_stop_event = 0;
                        if (target.state == RunState::kZombie || target.stopped) return;
                        apply_stop(target);
                        schedule();
                    });
                return;
            }
            apply_stop(p);
            break;
        case Signal::kCont:
            // A continue overrides a stop still in flight.
            if (p.pending_stop_event != 0) {
                engine_.cancel(p.pending_stop_event);
                p.pending_stop_event = 0;
            }
            if (!p.stopped) return;
            p.stopped = false;
            sync_soa(p);
            // 4.4BSD setrunnable(): estcpu was frozen while stopped (schedcpu
            // skips stopped processes); updatepri now credits whole seconds
            // of stop time, exactly like a long sleep.
            dom(p).on_wakeup(p, now() - p.stop_start);
            if (p.state == RunState::kRunnable) {
                p.enqueue_time = now();
                dom(p).enqueue(p);
            }
            break;
        case Signal::kKill:
            do_exit(p);
            break;
    }
    schedule();
}

void Kernel::apply_stop(Proc& p) {
    p.stopped = true;
    p.stop_start = now();
    sync_soa(p);
    if (p.state == RunState::kRunnable && p.on_cpu < 0) {
        dom(p).dequeue(p);
    }
    // A running process is descheduled by the dispatcher (it is no longer
    // eligible()); a sleeper keeps sleeping, as under job control.
}

void Kernel::wakeup_channel(WaitChannel chan) {
    ALPS_EXPECT(chan != nullptr);
    // Creation-order iteration keeps wake order deterministic.
    for (Proc* p : ordered_) {
        if (p->state == RunState::kSleeping && p->wchan == chan) {
            if (p->sleep_event != 0) {
                engine_.cancel(p->sleep_event);
                p->sleep_event = 0;
            }
            do_wake(*p);
        }
    }
    schedule();
}

void Kernel::timer_wake(Pid pid) {
    Proc& p = proc_mut(pid);
    p.sleep_event = 0;
    ALPS_ENSURE(p.state == RunState::kSleeping);
    do_wake(p);
    schedule();
}

void Kernel::do_wake(Proc& p) {
    ALPS_EXPECT(p.state == RunState::kSleeping);
    const Duration slept = now() - p.sleep_start;
    dom(p).on_wakeup(p, slept);
    p.state = RunState::kRunnable;
    p.wchan = nullptr;
    sync_soa(p);
    if (!p.stopped) {
        // The waker leaves the kernel at its sleep priority: it preempts any
        // user-mode process until its own first dispatch.
        p.wake_boost = true;
        p.enqueue_time = now();
        dom(p).enqueue(p);
    }
}

void Kernel::do_exit(Proc& p) {
    ALPS_EXPECT(p.state != RunState::kZombie);
    if (p.on_cpu >= 0) {
        charge_running(p.on_cpu);
        vacate(p.on_cpu);
    } else if (p.state == RunState::kRunnable && !p.stopped) {
        dom(p).dequeue(p);
    }
    if (p.sleep_event != 0) {
        engine_.cancel(p.sleep_event);
        p.sleep_event = 0;
    }
    if (p.pending_stop_event != 0) {
        engine_.cancel(p.pending_stop_event);
        p.pending_stop_event = 0;
    }
    p.state = RunState::kZombie;
    p.wchan = nullptr;
    sync_soa(p);
    // Zombies are invisible to pids_of_uid: drop the process from the per-uid
    // cache here (not at reap), keeping the survivors' creation order.
    std::vector<Proc*>& members = by_uid_[p.uid];
    ALPS_ENSURE(members[p.uid_index] == &p);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(p.uid_index));
    for (std::size_t i = p.uid_index; i < members.size(); ++i) {
        members[i]->uid_index = i;
    }
    dom(p).remove(p);
}

// ----------------------------------------------------------------------------
// Phases

void Kernel::complete_phase(Proc& p) {
    const Action a = p.behavior->next_action({*this, p.pid});
    apply_action(p, a);
}

void Kernel::apply_action(Proc& p, const Action& a) {
    if (const auto* run = std::get_if<RunAction>(&a)) {
        if (run->lazy) {
            p.phase_lazy_pending = true;
            p.run_remaining = Duration::zero();
        } else {
            ALPS_EXPECT(run->duration > Duration::zero());
            p.phase_lazy_pending = false;
            p.run_remaining = run->duration;
        }
        // Phase transitions happen either on a CPU (p simply continues with
        // the new demand) or at spawn (p is runnable but not yet queued).
        if (p.on_cpu < 0) {
            ALPS_ENSURE(p.state == RunState::kRunnable && !p.stopped);
            p.enqueue_time = now();
            dom(p).enqueue(p);
        }
        return;
    }
    if (const auto* sl = std::get_if<SleepAction>(&a)) {
        ALPS_EXPECT(sl->duration >= Duration::zero());
        begin_sleep(p, /*timed=*/true, now() + sl->duration, sl->wchan);
        return;
    }
    if (const auto* su = std::get_if<SleepUntilAction>(&a)) {
        begin_sleep(p, /*timed=*/true, std::max(su->deadline, now()), su->wchan);
        return;
    }
    if (const auto* bl = std::get_if<BlockAction>(&a)) {
        ALPS_EXPECT(bl->wchan != nullptr);
        begin_sleep(p, /*timed=*/false, TimePoint{}, bl->wchan);
        return;
    }
    ALPS_ENSURE(std::holds_alternative<ExitAction>(a));
    do_exit(p);
}

void Kernel::begin_sleep(Proc& p, bool timed, TimePoint wake_at, WaitChannel chan) {
    if (p.on_cpu >= 0) {
        // charge_running() already ran (a phase completes only after a
        // charge), so just vacate the CPU.
        vacate(p.on_cpu);
    }
    p.state = RunState::kSleeping;
    p.wchan = chan;
    p.sleep_start = now();
    sync_soa(p);
    ++p.voluntary_sleeps;
    if (timed) {
        p.sleep_event =
            engine_.schedule_at(wake_at, wake_kind_, static_cast<std::uint64_t>(p.pid));
    }
}

// ----------------------------------------------------------------------------
// The dispatcher

void Kernel::charge_running(int cpu) {
    Proc& p = *running_[static_cast<std::size_t>(cpu)];
    ALPS_GUARD(p.on_cpu == cpu);
    const Duration ran = now() - p.last_charge;
    ALPS_ENSURE(ran >= Duration::zero());
    if (ran > Duration::zero()) {
        p.cpu_consumed += ran;
        busy_ += ran;
        if (p.run_remaining != kRunForever) {
            ALPS_ENSURE(p.run_remaining >= ran);
            p.run_remaining -= ran;
        }
        dom(p).charge(p, ran);
    }
    p.last_charge = now();
    sync_soa(p);
}

void Kernel::resolve_phase(int cpu) {
    // Bounded: a behaviour may chain a few zero-length phases (the ALPS
    // driver's no-op invocation) but not spin forever.
    int guard = 0;
    while (running_[static_cast<std::size_t>(cpu)] != nullptr) {
        Proc& p = *running_[static_cast<std::size_t>(cpu)];
        if (p.phase_lazy_pending) {
            ALPS_ENSURE(++guard < 64);
            p.phase_lazy_pending = false;
            const Duration d = p.behavior->lazy_run_duration({*this, p.pid});
            ALPS_EXPECT(d >= Duration::zero());
            p.run_remaining = d;
        } else if (p.run_remaining == Duration::zero()) {
            ALPS_ENSURE(++guard < 64);
            complete_phase(p);  // may sleep/exit -> vacates the CPU
        } else {
            return;  // has real work
        }
    }
}

void Kernel::dispatch(Proc& p, int cpu) {
    ALPS_EXPECT(p.state == RunState::kRunnable && !p.stopped);
    ALPS_EXPECT(running_[static_cast<std::size_t>(cpu)] == nullptr);
    // Dispatching a process that still claims a CPU would leave running_[]
    // and on_cpu disagreeing — corrupted accounting, so abort, don't unwind.
    ALPS_GUARD(p.on_cpu < 0);
    p.state = RunState::kRunning;
    p.on_cpu = cpu;
    running_[static_cast<std::size_t>(cpu)] = &p;
    p.last_charge = now();
    p.slice_end = now() + dom(p).slice();
    ++p.dispatches;
    sync_soa(p);
    if (p.pid != last_on_cpu_[static_cast<std::size_t>(cpu)]) {
        ++context_switches_;
        last_on_cpu_[static_cast<std::size_t>(cpu)] = p.pid;
    }
    if (telemetry::active()) {
        telemetry::span_begin_at(
            static_cast<std::uint64_t>(now().since_epoch.count()),
            telemetry::kNameRunning, static_cast<std::uint32_t>(p.pid));
    }
    if (p.wake_boost) {
        // The boost covered kernel exit; from here the process runs at user
        // priority. Re-evaluate preemption: past its scalability threshold,
        // this is where an overloaded ALPS loses the CPU to the workload
        // before doing any of its work (paper §4.2).
        p.wake_boost = false;
        resched_ = true;
    }
}

void Kernel::vacate(int cpu) {
    Proc* p = running_[static_cast<std::size_t>(cpu)];
    ALPS_EXPECT(p != nullptr);
    if (p->state == RunState::kRunning) p->state = RunState::kRunnable;
    p->on_cpu = -1;
    running_[static_cast<std::size_t>(cpu)] = nullptr;
    sync_soa(*p);
    if (telemetry::active()) {
        telemetry::span_end_at(
            static_cast<std::uint64_t>(now().since_epoch.count()),
            telemetry::kNameRunning, static_cast<std::uint32_t>(p->pid));
    }
}

void Kernel::arm_decision_timer(int cpu) {
    auto& ev = decision_events_[static_cast<std::size_t>(cpu)];
    if (ev != 0) {
        engine_.cancel(ev);
        ev = 0;
    }
    const Proc* p = running_[static_cast<std::size_t>(cpu)];
    if (p == nullptr) return;
    TimePoint next = p->slice_end;
    if (p->run_remaining != kRunForever) {
        next = std::min(next, now() + p->run_remaining);
    }
    ev = engine_.schedule_at(next, decision_kind_, 0);
}

void Kernel::schedule() {
    if (in_schedule_) {
        resched_ = true;
        return;
    }
    in_schedule_ = true;
    do {
        resched_ = false;

        // 1. Account for every running process and handle phase completion.
        for (int c = 0; c < cfg_.ncpus; ++c) {
            if (running_[static_cast<std::size_t>(c)] == nullptr) continue;
            charge_running(c);
            Proc* p = running_[static_cast<std::size_t>(c)];
            if (!p->phase_lazy_pending && p->run_remaining == Duration::zero()) {
                resolve_phase(c);  // finished its work; transition
            }
        }

        // A signal may have stopped (or a hook killed) a process on a CPU.
        for (int c = 0; c < cfg_.ncpus; ++c) {
            Proc* p = running_[static_cast<std::size_t>(c)];
            if (p != nullptr && (p->stopped || p->state == RunState::kZombie)) {
                const bool was_zombie = p->state == RunState::kZombie;
                vacate(c);
                if (was_zombie) {
                    p->state = RunState::kZombie;
                    sync_soa(*p);
                }
            }
        }

        // 2. Preemption and round-robin decisions, one queue head per
        // domain. With the shared queue there is one domain covering every
        // CPU — exactly the pre-domain global pass; under percpu_queues each
        // domain checks only its own CPU.
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            SchedPolicy& pol = *domains_[d];
            Proc* cand = pol.peek();
            if (cand == nullptr) continue;
            const int c_begin = cfg_.percpu_queues ? static_cast<int>(d) : 0;
            const int c_end = cfg_.percpu_queues ? static_cast<int>(d) + 1 : cfg_.ncpus;
            // Find the most preemptable runner: the one every other
            // preemptable runner would itself preempt.
            int victim = -1;
            for (int c = c_begin; c < c_end; ++c) {
                Proc* p = running_[static_cast<std::size_t>(c)];
                if (p == nullptr) continue;
                const bool slice_over = now() >= p->slice_end;
                const bool takeable = pol.preempts(*cand, *p) ||
                                      (slice_over && pol.yields_to(*p, *cand));
                if (!takeable) continue;
                if (victim < 0 ||
                    pol.preempts(*running_[static_cast<std::size_t>(victim)], *p)) {
                    victim = c;
                }
            }
            if (victim >= 0) {
                Proc* v = running_[static_cast<std::size_t>(victim)];
                vacate(victim);
                v->enqueue_time = now();
                pol.enqueue(*v);
                resched_ = true;  // re-evaluate after the fill below
            }
        }
        // Runners that exhausted a slice unopposed get a fresh one.
        for (int c = 0; c < cfg_.ncpus; ++c) {
            Proc* p = running_[static_cast<std::size_t>(c)];
            if (p != nullptr && now() >= p->slice_end) {
                p->slice_end = now() + dom(*p).slice();
            }
        }

        // 3. Fill idle CPUs — from the CPU's own domain first, then (under
        // percpu_queues) by stealing from the most-loaded peer.
        for (int c = 0; c < cfg_.ncpus; ++c) {
            if (running_[static_cast<std::size_t>(c)] != nullptr) continue;
            SchedPolicy& pol =
                *domains_[cfg_.percpu_queues ? static_cast<std::size_t>(c) : 0];
            Proc* next = pol.pop();
            if (next == nullptr && cfg_.percpu_queues) next = steal_for(c);
            if (next == nullptr) {
                if (!cfg_.percpu_queues) break;  // shared queue drained: done
                continue;  // this domain idles; peers may still have work
            }
            dispatch(*next, c);
        }

        // 4. Once the picks are stable, resolve lazy/zero-length phases.
        // This is deliberately *after* the post-wakeup preemption re-check so
        // that a process that loses the CPU at user priority has not yet
        // done its work (the ALPS driver's tick must be delayed, not
        // time-shifted).
        if (!resched_) {
            for (int c = 0; c < cfg_.ncpus; ++c) {
                if (running_[static_cast<std::size_t>(c)] == nullptr) continue;
                resolve_phase(c);
                if (running_[static_cast<std::size_t>(c)] == nullptr) {
                    resched_ = true;  // it left; refill on the next pass
                }
            }
        }

        // 5. Arm the next scheduling decisions.
        for (int c = 0; c < cfg_.ncpus; ++c) arm_decision_timer(c);
    } while (resched_);
    in_schedule_ = false;
}

// ----------------------------------------------------------------------------
// Cross-domain migration (percpu_queues only)

void Kernel::migrate(Proc& p, int to) {
    // Only a process that is off every queue and every CPU may move: the
    // old domain's intrusive links must not dangle into the new one.
    ALPS_GUARD(p.rq_index < 0 && p.on_cpu < 0);
    dom(p).on_migrate_out(p);
    p.home_cpu = to;
    dom(p).on_migrate_in(p);
    ++migrations_;
}

Proc* Kernel::steal_for(int cpu) {
    // Victim: the peer domain with the most queued work; ties break to the
    // lowest CPU index so the pick is deterministic.
    int victim = -1;
    std::size_t victim_load = 0;
    for (int d = 0; d < cfg_.ncpus; ++d) {
        if (d == cpu) continue;
        const std::size_t load = domains_[static_cast<std::size_t>(d)]->runnable();
        if (load > victim_load) {
            victim_load = load;
            victim = d;
        }
    }
    if (victim < 0) return nullptr;
    // The stolen process is the victim policy's best *migratable* pick: pop
    // in priority order, skipping pinned processes (they go straight back
    // on the victim's queue with their original enqueue_time, so their
    // round-robin age is preserved). With nothing pinned the first pop wins,
    // exactly the old behavior.
    SchedPolicy& vict = *domains_[static_cast<std::size_t>(victim)];
    Proc* p = pop_migratable(vict);
    if (p == nullptr) return nullptr;  // the victim's queue is all pinned
    migrate(*p, cpu);
    ++steals_;
    return p;
}

Proc* Kernel::pop_migratable(SchedPolicy& from) {
    balance_scratch_.clear();
    Proc* pick = nullptr;
    while (Proc* cand = from.pop()) {
        if (!cand->pinned) {
            pick = cand;
            break;
        }
        balance_scratch_.push_back(cand);
    }
    for (Proc* q : balance_scratch_) from.enqueue(*q);
    return pick;
}

void Kernel::rebalance() {
    // Bounded work per schedcpu tick: at most one pass of ncpus moves. Load
    // counts the occupant too, so one spinning process per CPU is "balanced"
    // and a (1 running + 1 queued) vs (idle) split triggers a move.
    for (int moves = 0; moves < cfg_.ncpus; ++moves) {
        int busiest = 0;
        int idlest = 0;
        std::size_t max_load = 0;
        std::size_t min_load = 0;
        for (int d = 0; d < cfg_.ncpus; ++d) {
            const std::size_t load =
                domains_[static_cast<std::size_t>(d)]->runnable() +
                (running_[static_cast<std::size_t>(d)] != nullptr ? 1 : 0);
            if (d == 0 || load > max_load) {
                max_load = load;
                busiest = d;
            }
            if (d == 0 || load < min_load) {
                min_load = load;
                idlest = d;
            }
        }
        if (max_load - min_load < 2) return;  // spread of 1 is inherent
        // Pinned processes don't move; if everything queued on the busiest
        // domain is pinned, the imbalance is intentional and this tick's
        // pass stops (the next-busiest domain is at most one move away from
        // balanced anyway under the ncpus-moves bound).
        Proc* p = pop_migratable(*domains_[static_cast<std::size_t>(busiest)]);
        if (p == nullptr) return;  // all of busiest's load is on-CPU or pinned
        migrate(*p, idlest);
        p->enqueue_time = now();
        dom(*p).enqueue(*p);
    }
}

// ----------------------------------------------------------------------------
// Housekeeping

void Kernel::second_tick() {
    // Load average first (an EWMA of the eligible-process count), then let
    // the policy decay its usage estimates with it.
    const double alpha =
        std::exp(-util::to_sec(cfg_.schedcpu_period) / util::to_sec(cfg_.loadavg_tau));
    loadavg_ = loadavg_ * alpha + static_cast<double>(eligible_count()) * (1.0 - alpha);

    // Charge on-CPU processes so their estcpu is current before the decay.
    for (int c = 0; c < cfg_.ncpus; ++c) {
        if (running_[static_cast<std::size_t>(c)] != nullptr) charge_running(c);
    }
    if (!cfg_.percpu_queues) {
        domains_[0]->second_tick(ordered_, loadavg_, now());
    } else {
        // Each domain decays only its own processes: BSD's estcpu lives on
        // the Proc, so handing every instance the whole machine would apply
        // the decay ncpus times per tick. Rebuilt from ordered_ each tick —
        // cheaper than maintaining per-domain membership lists through every
        // migration, at one pointer append per live process per second.
        for (std::vector<Proc*>& v : tick_scratch_) v.clear();
        for (Proc* p : ordered_) {
            tick_scratch_[static_cast<std::size_t>(domain_of(*p))].push_back(p);
        }
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            domains_[d]->second_tick(tick_scratch_[d], loadavg_, now());
        }
        rebalance();
    }

    engine_.schedule_after(cfg_.schedcpu_period, tick_kind_, 0);
    schedule();
}

void Kernel::sync_soa(const Proc& p) {
    const std::size_t i = static_cast<std::size_t>(p.pid);
    std::uint8_t f = 0;
    if (p.state != RunState::kZombie) f |= kSoaAlive;
    if (p.state == RunState::kSleeping) f |= kSoaBlocked;
    if (p.state == RunState::kRunnable || p.state == RunState::kRunning) {
        f |= kSoaWantsCpu;
    }
    if (p.stopped) f |= kSoaStopped;
    if (p.on_cpu >= 0) f |= kSoaOnCpu;
    soa_flags_[i] = f;
    soa_base_ns_[i] = p.cpu_consumed.count() -
                      (p.on_cpu >= 0 ? p.last_charge.since_epoch.count() : 0);
    soa_uid_[i] = p.uid;
}

void Kernel::export_metrics(telemetry::MetricsRegistry& reg,
                            const std::string& prefix) const {
    reg.counter(prefix + "context_switches").add(context_switches_);
    reg.counter(prefix + "spawned").add(static_cast<std::uint64_t>(next_pid_ - 1));
    reg.counter(prefix + "busy_us")
        .add(static_cast<std::uint64_t>(busy_time().count() / 1000));
    reg.counter(prefix + "migrations").add(migrations_);
    reg.counter(prefix + "steals").add(steals_);
    reg.gauge(prefix + "loadavg").set(loadavg_);
}

}  // namespace alps::os
