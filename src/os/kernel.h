// The simulated UNIX kernel: a machine with one or more CPUs, a pluggable
// time-sharing policy, signals, sleep/wakeup, and per-process accounting.
//
// This is the substrate the paper's experiments run on (in place of the
// authors' FreeBSD 4.8 host). It deliberately exposes only what an
// *unprivileged user process* could see or do on such a system, because that
// is the paper's whole premise:
//   * read a process's accumulated CPU time        -> cpu_time()       (getrusage / kvm)
//   * read a process's wait channel (blocked?)     -> is_blocked()     (kvm wchan)
//   * list a user's processes                      -> pids_of_uid()    (kvm_getprocs)
//   * stop / continue / kill a process             -> send_signal()    (kill(2))
//   * sleep until an instant                       -> SleepUntilAction (nanosleep)
// Everything else — which process runs when — belongs to the kernel policy.
//
// SMP model (ncpus > 1): by default a single global run queue feeding all
// CPUs, exactly like FreeBSD 4.x's SMP scheduler. The paper evaluates on a
// uniprocessor; multi-CPU runs back the repository's SMP extension
// experiments. KernelConfig::percpu_queues opts into per-CPU scheduling
// domains — one policy instance (run queues + whichqs bitmap) per CPU with
// Proc::home_cpu affinity, an idle-steal path, and a periodic rebalance
// hung off schedcpu — the structure of every later SMP BSD/Linux kernel,
// and what the 16/64/256-core experiments run on (see DESIGN.md §11).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/behavior.h"
#include "os/policy.h"
#include "os/proc.h"
#include "os/types.h"
#include "sim/engine.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::os {

struct KernelConfig {
    /// Number of CPUs (the paper's host has one).
    int ncpus = 1;
    /// Period of the schedcpu housekeeping (estcpu decay, load average).
    util::Duration schedcpu_period = util::sec(1);
    /// Time constant of the load-average EWMA (4.4BSD's 1-minute average).
    util::Duration loadavg_tau = util::sec(60);
    /// Signal-delivery latency model. Zero (default) delivers SIGSTOP to a
    /// *running* process instantly — the idealization. A real kernel only
    /// acts on the signal when the process next enters the kernel, i.e. at
    /// the next hardclock tick: set this to the tick period (10 ms on
    /// FreeBSD 4.8 at hz=100) to model that. Stops of non-running processes
    /// and SIGCONT/SIGKILL are immediate either way.
    util::Duration stop_latency_grid{0};
    /// Scheduling policy by name, used when the Kernel is not handed a
    /// constructed policy object (see policies::known_policies() — "bsd",
    /// "lottery", "stride", "cfs"). An unknown name throws
    /// std::invalid_argument from the constructor; it never silently falls
    /// back to BSD.
    std::string policy = "bsd";
    /// Seed for randomized policies built by name (the lottery draws).
    std::uint64_t policy_seed = 0xa1b5'5eedULL;
    /// Per-CPU scheduling domains instead of the shared global run queue:
    /// one policy instance per CPU (built by name from `policy`; domain d
    /// seeds its policy with policy_seed + d), Proc::home_cpu affinity,
    /// idle-steal, and a rebalance pass each schedcpu tick. Off by default —
    /// the shared queue is the FreeBSD 4.x model the paper's experiments
    /// assume, and its schedules are pinned by tests/golden/. Requires the
    /// policy to be built by name (no pre-constructed policy object).
    bool percpu_queues = false;
};

/// A process in flight between kernels: everything that must survive a
/// cross-kernel migration (the sharded engine's shard-to-shard hand-off —
/// see os::ShardLink). Produced by Kernel::extradite(), consumed by
/// Kernel::adopt(); the behaviour object carries the process's phase program
/// wherever it goes (behaviours only see the kernel through their action
/// context, so they are kernel-agnostic by construction).
struct MigratedProc {
    std::string name;
    Uid uid = 0;
    int nice = 0;
    std::unique_ptr<Behavior> behavior;
    util::Duration cpu_consumed{0};   ///< rusage continuity across kernels
    util::Duration run_remaining{0};  ///< the interrupted run phase resumes
    bool phase_lazy_pending = false;
    bool pinned = false;
};

class Kernel {
public:
    /// The kernel drives (and is driven by) the given event engine. When no
    /// policy object is passed, one is built from cfg.policy/cfg.policy_seed
    /// via policies::make_policy (default: the 4.4BSD scheduler); an unknown
    /// cfg.policy name throws std::invalid_argument.
    /// The kernel also adopts the engine's per-run arena for its Proc
    /// records and registers its recurring timers (decision timer, sleep
    /// wakeups, schedcpu tick) on the engine's devirtualized dispatch path.
    Kernel(sim::Engine& engine, std::unique_ptr<SchedPolicy> policy = nullptr,
           KernelConfig cfg = {});
    ~Kernel();

    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    // ----- process lifecycle -----

    /// Creates a process; its behaviour's first action takes effect
    /// immediately. Returns the new pid. Under percpu_queues, `home_cpu`
    /// places the process on a scheduling domain (-1 = round-robin by pid,
    /// the default placement) and `pinned` makes that placement hard:
    /// idle-steal and rebalance skip pinned processes (Proc::pinned).
    /// Without per-CPU queues both are ignored.
    Pid spawn(std::string name, Uid uid, std::unique_ptr<Behavior> behavior, int nice = 0,
              int home_cpu = -1, bool pinned = false);

    /// Removes a zombie from the process table.
    void reap(Pid pid);

    /// Removes a live process from this kernel entirely and returns it as a
    /// migration handle for another kernel's adopt(). Contract: the process
    /// is runnable, off-CPU, and not job-stopped (the sharded hand-off
    /// migrates only queued processes — a sleeper's timer lives in this
    /// kernel's engine and cannot follow it). The pid is retired, never
    /// reused, and reported dead by alive()/exists() from here on.
    [[nodiscard]] MigratedProc extradite(Pid pid);

    /// Installs a migrated process under a fresh pid (returned), preserving
    /// its consumed CPU and interrupted phase. The adopt side of
    /// extradite(); placement follows spawn()'s home_cpu/pinned rules except
    /// that `pinned` defaults to the flag the process travelled with.
    Pid adopt(MigratedProc&& handle, int home_cpu = -1);

    /// Processes handed to other kernels / received from them.
    [[nodiscard]] std::uint64_t extraditions() const { return extraditions_; }
    [[nodiscard]] std::uint64_t adoptions() const { return adoptions_; }

    // ----- the user-visible control surface -----

    void send_signal(Pid pid, Signal sig);

    /// Wakes every process blocked on `chan` (BSD wakeup()).
    void wakeup_channel(WaitChannel chan);

    /// True while the pid names a live (non-zombie) process.
    [[nodiscard]] bool alive(Pid pid) const;
    /// True while the pid is in the process table at all (incl. zombies).
    [[nodiscard]] bool exists(Pid pid) const;

    /// Total CPU time consumed, including the in-progress stretch — what
    /// getrusage()/kvm reports.
    [[nodiscard]] util::Duration cpu_time(Pid pid) const;

    /// The paper's §2.4 test: is the process sleeping on a wait channel?
    [[nodiscard]] bool is_blocked(Pid pid) const;

    /// Everything one ALPS measurement needs about a process, read with a
    /// single table lookup (the per-quantum sampling hot path; cpu_time +
    /// is_blocked + proc().stopped would pay the lookup three times).
    /// `alive == false` (with zeroed fields) for unknown and zombie pids.
    struct SampleView {
        util::Duration cpu_time{0};
        bool blocked = false;
        bool stopped = false;
        bool alive = false;
    };
    [[nodiscard]] SampleView sample(Pid pid) const;

    /// Batched sampling: fills out[i] with sample(pids[i]) for the whole
    /// span in one pass. This is the ALPS per-tick measurement entry point:
    /// the clock is read once and the loop walks the SoA accounting arrays
    /// (soa_* below) instead of chasing one Proc record per call. `out` must
    /// have room for pids.size() entries.
    void measure(std::span<const Pid> pids, SampleView* out) const;

    /// Live pids owned by `uid`, in creation order (kvm_getprocs analogue).
    [[nodiscard]] std::vector<Pid> pids_of_uid(Uid uid) const;
    /// Allocation-free variant for periodic sampling: clears and refills
    /// `out` from the per-uid member cache (maintained on spawn/exit, so
    /// this is O(answer), not O(process table)).
    void pids_of_uid(Uid uid, std::vector<Pid>& out) const;

    /// All live pids, in creation order.
    [[nodiscard]] std::vector<Pid> live_pids() const;
    /// Allocation-free variant: clears and refills `out`.
    void live_pids(std::vector<Pid>& out) const;

    // ----- introspection (tests, metrics) -----

    [[nodiscard]] const Proc& proc(Pid pid) const;
    [[nodiscard]] util::TimePoint now() const { return engine_.now(); }
    [[nodiscard]] sim::Engine& engine() { return engine_; }
    [[nodiscard]] const SchedPolicy& policy() const { return *domains_[0]; }
    [[nodiscard]] SchedPolicy& policy() { return *domains_[0]; }
    /// Domain `cpu`'s policy instance (== policy() without percpu_queues,
    /// where all CPUs share domain 0).
    [[nodiscard]] const SchedPolicy& policy_on(int cpu) const;
    [[nodiscard]] int ncpus() const { return cfg_.ncpus; }
    [[nodiscard]] bool percpu_queues() const { return cfg_.percpu_queues; }

    /// Aggregate CPU busy time summed over CPUs, incl. in-progress.
    [[nodiscard]] util::Duration busy_time() const;
    [[nodiscard]] std::uint64_t context_switches() const { return context_switches_; }
    /// Cross-domain process moves (idle-steal + rebalance); 0 without
    /// percpu_queues.
    [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
    /// The idle-steal subset of migrations().
    [[nodiscard]] std::uint64_t steals() const { return steals_; }
    [[nodiscard]] double loadavg() const { return loadavg_; }
    /// Pid of the process on CPU 0 (kNoPid when idle).
    [[nodiscard]] Pid running_pid() const { return running_pid_on(0); }
    /// Pid of the process on the given CPU (kNoPid when idle).
    [[nodiscard]] Pid running_pid_on(int cpu) const;

    /// Registers kernel-wide accounting (`<prefix>context_switches`,
    /// `<prefix>spawned`, `<prefix>busy_us`, `<prefix>loadavg`) in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "kernel.") const;

private:
    /// O(1) pid lookup; nullptr for pids never issued or already reaped.
    [[nodiscard]] const Proc* lookup(Pid pid) const;
    Proc& proc_mut(Pid pid);

    /// The dispatcher: one global pass that charges, completes phases, and
    /// (re)fills every CPU. Re-entrant calls (from behaviour hooks) defer to
    /// the outermost invocation's loop.
    void schedule();

    /// Charges CPU `cpu`'s process for [last_charge, now].
    void charge_running(int cpu);

    /// While CPU `cpu` has a process, resolve lazy run demands and
    /// zero-length phases until it has real work, or it left the CPU.
    void resolve_phase(int cpu);

    /// Fetches and applies the process's next action (phase transition).
    void complete_phase(Proc& p);
    void apply_action(Proc& p, const Action& a);

    /// Puts the stop into effect (dequeue / mark; the dispatcher deschedules
    /// a running target).
    void apply_stop(Proc& p);

    void begin_sleep(Proc& p, bool timed, util::TimePoint wake_at, WaitChannel chan);
    void timer_wake(Pid pid);
    /// Transitions a sleeper to runnable (respecting the stopped flag).
    void do_wake(Proc& p);
    void do_exit(Proc& p);
    void dispatch(Proc& p, int cpu);
    /// Takes the process off its CPU (state handling is the caller's job).
    void vacate(int cpu);
    void arm_decision_timer(int cpu);
    void second_tick();

    // ----- per-CPU scheduling domains -----

    /// The domain a process queues on: home_cpu under percpu_queues, else 0.
    [[nodiscard]] int domain_of(const Proc& p) const {
        return cfg_.percpu_queues ? p.home_cpu : 0;
    }
    [[nodiscard]] SchedPolicy& dom(const Proc& p) {
        return *domains_[static_cast<std::size_t>(domain_of(p))];
    }
    [[nodiscard]] const SchedPolicy& dom(const Proc& p) const {
        return *domains_[static_cast<std::size_t>(domain_of(p))];
    }
    /// Idle-steal: CPU `cpu` found its own domain empty; pull the best
    /// runnable process from the most-loaded peer domain (ties: lowest CPU
    /// index). Returns the migrated process ready to dispatch, or nullptr.
    Proc* steal_for(int cpu);
    /// Periodic load balance (schedcpu cadence): move queued processes from
    /// the deepest domain to the shallowest until the spread is < 2, with a
    /// bounded number of moves per tick.
    void rebalance();
    /// Pops `from`'s best non-pinned process (re-enqueueing any pinned
    /// processes popped along the way); nullptr when everything is pinned.
    Proc* pop_migratable(SchedPolicy& from);
    /// Moves `p` (already off `from`'s queues) into `to`'s domain.
    void migrate(Proc& p, int to);

    // ----- SoA sampling mirror -----

    /// Refreshes `p`'s row in the SoA accounting arrays. Called from every
    /// site that changes the fields sample()/measure() read (state, stopped,
    /// on_cpu, cpu_consumed/last_charge, uid at spawn).
    void sync_soa(const Proc& p);

    // Trampolines for the engine's devirtualized (hot) dispatch: the three
    // recurring timer kinds that dominate steady-state event traffic. They
    // fire with `this` as ctx, so the event loop never builds a std::function.
    static void on_decision_timer(void* self, std::uint64_t arg);
    static void on_timer_wake(void* self, std::uint64_t arg);
    static void on_second_tick(void* self, std::uint64_t arg);

    /// Count of processes that want the CPU (running + queued).
    [[nodiscard]] std::size_t eligible_count() const;

    sim::Engine& engine_;
    /// Scheduling domains: one policy instance per CPU under percpu_queues,
    /// else a single shared instance (domains_[0]) feeding every CPU — the
    /// FreeBSD 4.x model, bit-identical to the pre-domain kernel.
    std::vector<std::unique_ptr<SchedPolicy>> domains_;
    KernelConfig cfg_;

    Pid next_pid_ = 1;
    /// Process table indexed directly by pid (pids are issued sequentially
    /// and never reused, so slot pid holds that process; reaped slots stay
    /// null). Replaces an unordered_map whose hashing dominated the sampling
    /// hot path; the 8 bytes a reaped pid leaves behind are irrelevant at
    /// simulation scale. Slot 0 is the unissued kNoPid. Proc records are
    /// placement-newed from the engine's per-run arena (spawn is
    /// allocation-free once the arena is warm); reap and the destructor run
    /// the destructors, the arena reclaims the bytes.
    std::vector<Proc*> table_;
    std::vector<Proc*> ordered_;  ///< creation order, live + zombie
    /// Live (non-zombie) processes per uid, in creation order — the cached
    /// answer to pids_of_uid, maintained at spawn/exit (not reap: zombies
    /// are already invisible to pids_of_uid).
    std::unordered_map<Uid, std::vector<Proc*>> by_uid_;

    std::vector<Proc*> running_;            ///< per-CPU occupant (or null)
    std::vector<sim::EventId> decision_events_;  ///< per-CPU decision timer
    std::vector<Pid> last_on_cpu_;          ///< per-CPU, for switch counting

    sim::Engine::HotKind decision_kind_ = 0;  ///< fires schedule()
    sim::Engine::HotKind wake_kind_ = 0;      ///< fires timer_wake(arg = pid)
    sim::Engine::HotKind tick_kind_ = 0;      ///< fires second_tick()

    bool in_schedule_ = false;
    bool resched_ = false;

    util::Duration busy_{0};
    std::uint64_t context_switches_ = 0;
    std::uint64_t migrations_ = 0;  ///< cross-domain moves (steal + rebalance)
    std::uint64_t steals_ = 0;      ///< idle-steal subset of migrations_
    std::uint64_t extraditions_ = 0;  ///< processes handed to other kernels
    std::uint64_t adoptions_ = 0;     ///< processes received from other kernels
    double loadavg_ = 0.0;

    // SoA mirror of the fields the sampling hot path reads, pid-indexed in
    // lockstep with table_ (slot 0 unused, reaped slots zeroed). sample()
    // and the batched measure() walk these contiguous arrays instead of
    // chasing Proc records — the per-quantum ALPS scan touches 13 bytes per
    // pid instead of a ~300-byte PCB spread across the arena.
    static constexpr std::uint8_t kSoaAlive = 1u << 0;
    static constexpr std::uint8_t kSoaBlocked = 1u << 1;
    static constexpr std::uint8_t kSoaStopped = 1u << 2;
    static constexpr std::uint8_t kSoaOnCpu = 1u << 3;
    static constexpr std::uint8_t kSoaWantsCpu = 1u << 4;  ///< runnable|running
    /// cpu_consumed, minus last_charge when on CPU — so the live reading is
    /// base + now (one add, no branch on the charge timestamp).
    std::vector<std::int64_t> soa_base_ns_;
    std::vector<std::uint8_t> soa_flags_;
    std::vector<Uid> soa_uid_;

    /// Per-domain scratch for second_tick under percpu_queues (rebuilt from
    /// ordered_ each tick; member to avoid per-tick allocation).
    std::vector<std::vector<Proc*>> tick_scratch_;
    /// Pinned processes popped while steal_for/rebalance searched a victim
    /// queue for a migratable pick; re-enqueued before the search returns
    /// (member to avoid per-steal allocation).
    std::vector<Proc*> balance_scratch_;
};

}  // namespace alps::os
