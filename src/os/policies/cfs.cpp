#include "os/policies/cfs.h"

#include <algorithm>

#include "os/policies/weight.h"
#include "util/assert.h"

namespace alps::os::policies {

using util::Duration;

CfsPolicy::CfsPolicy(CfsPolicyConfig cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg_.sched_latency > Duration::zero());
    ALPS_EXPECT(cfg_.min_granularity > Duration::zero());
    ALPS_EXPECT(cfg_.wakeup_granularity >= Duration::zero());
}

CfsPolicy::Timing& CfsPolicy::state(const Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < procs_.size() && procs_[pid].known);
    return procs_[pid];
}

const CfsPolicy::Timing& CfsPolicy::state(const Proc& p) const {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < procs_.size() && procs_[pid].known);
    return procs_[pid];
}

void CfsPolicy::advance_min_vruntime(double candidate) {
    if (candidate > min_vruntime_) min_vruntime_ = candidate;
}

// ----------------------------------------------------------------------------
// Lifecycle

void CfsPolicy::add(Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    if (pid >= procs_.size()) procs_.resize(pid + 1);
    ALPS_EXPECT(!procs_[pid].known);
    Timing& t = procs_[pid];
    t = Timing{};
    t.known = true;
    t.weight = static_cast<double>(nice_to_weight(p.nice));
    // New tasks start at the fair point, neither ahead nor behind.
    t.vruntime = min_vruntime_;
}

void CfsPolicy::remove(Proc& p) {
    if (p.rq_index >= 0) dequeue(p);
    state(p) = Timing{};
}

// ----------------------------------------------------------------------------
// Queueing

void CfsPolicy::enqueue(Proc& p) {
    ALPS_EXPECT(p.rq_index < 0);
    Timing& t = state(p);
    if (p.wake_boost) {
        boosted_.push_back(p);
        ++boosted_size_;
        p.rq_index = kOnBoostQueue;
    } else {
        queue_.push(p, t.vruntime);
        p.rq_index = kOnPrimary;
    }
}

void CfsPolicy::dequeue(Proc& p) {
    if (p.rq_index == kOnBoostQueue) {
        boosted_.remove(p);
        --boosted_size_;
    } else if (p.rq_index == kOnPrimary) {
        queue_.erase(p);
    } else {
        return;  // not queued; benign (stop/exit paths)
    }
    p.rq_index = -1;
}

Proc* CfsPolicy::peek() {
    if (!boosted_.empty()) return boosted_.head;
    return queue_.min();
}

Proc* CfsPolicy::pop() {
    Proc* p = peek();
    if (p == nullptr) return nullptr;
    if (p->rq_index == kOnBoostQueue) {
        boosted_.remove(*p);
        --boosted_size_;
    } else {
        queue_.erase(*p);
    }
    p->rq_index = -1;
    return p;
}

// ----------------------------------------------------------------------------
// Decisions

bool CfsPolicy::preempts(const Proc& cand, const Proc& running) const {
    if (cand.wake_boost && !running.wake_boost) return true;
    if (running.wake_boost) return false;
    // check_preempt_wakeup: preempt once the incumbent has run more than a
    // wakeup granularity (in the candidate's virtual clock) past the
    // candidate.
    const Timing& c = state(cand);
    const Timing& r = state(running);
    const double gran = static_cast<double>(cfg_.wakeup_granularity.count()) *
                        static_cast<double>(kWeightNice0) / c.weight;
    return r.vruntime - c.vruntime > gran;
}

bool CfsPolicy::yields_to(const Proc& running, const Proc& cand) const {
    if (cand.wake_boost) return true;
    return state(cand).vruntime < state(running).vruntime;
}

void CfsPolicy::charge(Proc& p, Duration ran) {
    Timing& t = state(p);
    t.vruntime += static_cast<double>(ran.count()) *
                  static_cast<double>(kWeightNice0) / t.weight;
    // update_min_vruntime: the low-water mark follows min(curr, leftmost),
    // forward only.
    double candidate = t.vruntime;
    if (!queue_.empty()) candidate = std::min(candidate, queue_.min_key());
    advance_min_vruntime(candidate);
}

void CfsPolicy::on_wakeup(Proc& p, Duration /*slept*/) {
    // place_entity: cap the sleeper's credit at half a latency period.
    Timing& t = state(p);
    const double floor =
        min_vruntime_ - static_cast<double>(cfg_.sched_latency.count()) / 2.0;
    t.vruntime = std::max(t.vruntime, floor);
}

void CfsPolicy::second_tick(std::span<Proc* const> /*procs*/, double /*loadavg*/,
                            util::TimePoint /*now*/) {}

util::Duration CfsPolicy::slice() const {
    const auto runnable = queue_.size() + boosted_size_ + 1;  // + the incumbent
    const auto share = cfg_.sched_latency / static_cast<std::int64_t>(runnable);
    return std::max(share, cfg_.min_granularity);
}

double CfsPolicy::vruntime(const Proc& p) const { return state(p).vruntime; }

}  // namespace alps::os::policies
