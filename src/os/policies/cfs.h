// A CFS-style weighted-vruntime policy (Linux's Completely Fair Scheduler,
// kernel/sched/fair.c circa 2.6.3x) as a SchedPolicy.
//
// Every process accrues virtual runtime vruntime += ran × w0 / weight, where
// weight comes from the shared nice table (weight.h, nice 0 = w0 = 1024) —
// so a heavily-weighted process's clock ticks slowly and the "fair" schedule
// is simply "always run the smallest vruntime". The run queue is an
// IndexedProcHeap keyed by (vruntime, pid): the ordered intrusive structure
// playing the role of CFS's rb-tree leftmost, O(lg n) per operation and
// deterministic on ties.
//
// min_vruntime is the monotone low-water mark of the queue: it only moves
// forward (max of itself and min(current runner, leftmost)), and it anchors
// placement so vruntime magnitudes stay comparable across sleeps:
//   * a newly added process starts at min_vruntime;
//   * a waking sleeper is placed at max(its old vruntime,
//     min_vruntime − sched_latency/2) — the "gentle fair sleepers" credit:
//     at most half a latency period of bonus, never a banked unbounded one.
//
// Preemption: a freshly woken process preempts when the incumbent's vruntime
// exceeds the waker's by more than wakeup_granularity (scaled by the waker's
// weight), in addition to the kernel wake-boost FIFO that all zoo policies
// honor (the ALPS driver needs its tick immediately, not within a
// granularity). The slice is latency / (runnable + 1), floored at
// min_granularity — many runnable processes shrink the slice so every task
// still runs once per latency period.
#pragma once

#include <cstdint>
#include <vector>

#include "os/policies/queueing.h"
#include "os/policy.h"

namespace alps::os::policies {

struct CfsPolicyConfig {
    /// Target period in which every runnable process runs once.
    util::Duration sched_latency = util::msec(6);
    /// Slice floor (kernel.sched_min_granularity_ns).
    util::Duration min_granularity = util::usec(750);
    /// Wakeup preemption threshold (kernel.sched_wakeup_granularity_ns).
    util::Duration wakeup_granularity = util::msec(1);
};

class CfsPolicy final : public SchedPolicy {
public:
    using Config = CfsPolicyConfig;

    explicit CfsPolicy(CfsPolicyConfig cfg = {});

    void add(Proc& p) override;
    void remove(Proc& p) override;
    void enqueue(Proc& p) override;
    void dequeue(Proc& p) override;
    Proc* peek() override;
    Proc* pop() override;
    [[nodiscard]] bool preempts(const Proc& cand, const Proc& running) const override;
    [[nodiscard]] bool yields_to(const Proc& running, const Proc& cand) const override;
    void charge(Proc& p, util::Duration ran) override;
    void on_wakeup(Proc& p, util::Duration slept) override;
    void second_tick(std::span<Proc* const> procs, double loadavg,
                     util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override;
    [[nodiscard]] std::size_t runnable() const override {
        return queue_.size() + boosted_size_;
    }

    [[nodiscard]] double vruntime(const Proc& p) const;
    [[nodiscard]] double min_vruntime() const { return min_vruntime_; }

private:
    struct Timing {
        double weight = 0.0;
        double vruntime = 0.0;  ///< virtual ns
        bool known = false;
    };

    [[nodiscard]] Timing& state(const Proc& p);
    [[nodiscard]] const Timing& state(const Proc& p) const;
    /// Ratchets min_vruntime toward `candidate` (forward only).
    void advance_min_vruntime(double candidate);

    CfsPolicyConfig cfg_;
    IntrusiveFifo boosted_;  ///< wake_boost procs, ahead of vruntime order
    std::size_t boosted_size_ = 0;
    IndexedProcHeap queue_;  ///< min-(vruntime, pid): the rb-tree leftmost
    std::vector<Timing> procs_;  ///< pid-indexed

    double min_vruntime_ = 0.0;
};

}  // namespace alps::os::policies
