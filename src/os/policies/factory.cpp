#include "os/policies/factory.h"

#include <array>
#include <stdexcept>

#include "os/bsd_policy.h"
#include "os/policies/cfs.h"
#include "os/policies/lottery.h"
#include "os/policies/stride.h"

namespace alps::os::policies {

namespace {

constexpr std::array<PolicyInfo, 4> kPolicies = {{
    {"bsd", "4.4BSD estcpu-decay multilevel feedback (the paper's host kernel)"},
    {"lottery", "lottery scheduling: seeded random draws over ticket currencies"},
    {"stride", "stride scheduling: deterministic min-pass with remain credit"},
    {"cfs", "CFS-style weighted vruntime with min-vruntime normalization"},
}};

}  // namespace

std::span<const PolicyInfo> known_policies() { return kPolicies; }

bool is_known_policy(std::string_view name) {
    for (const PolicyInfo& info : kPolicies) {
        if (info.name == name) return true;
    }
    return false;
}

std::unique_ptr<SchedPolicy> make_policy(std::string_view name,
                                         const PolicyParams& params) {
    if (name == "bsd") {
        BsdPolicyConfig cfg;
        if (params.quantum > util::Duration::zero()) cfg.round_robin = params.quantum;
        return std::make_unique<BsdPolicy>(cfg);
    }
    if (name == "lottery") {
        LotteryPolicyConfig cfg;
        cfg.seed = params.seed;
        if (params.quantum > util::Duration::zero()) cfg.quantum = params.quantum;
        return std::make_unique<LotteryPolicy>(cfg);
    }
    if (name == "stride") {
        StridePolicyConfig cfg;
        if (params.quantum > util::Duration::zero()) cfg.quantum = params.quantum;
        return std::make_unique<StridePolicy>(cfg);
    }
    if (name == "cfs") {
        CfsPolicyConfig cfg;
        if (params.quantum > util::Duration::zero()) cfg.sched_latency = params.quantum;
        return std::make_unique<CfsPolicy>(cfg);
    }
    std::string msg = "unknown kernel policy \"";
    msg += name;
    msg += "\"; valid policies:";
    for (const PolicyInfo& info : kPolicies) {
        msg += ' ';
        msg += info.name;
    }
    throw std::invalid_argument(msg);
}

}  // namespace alps::os::policies
