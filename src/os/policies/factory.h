// Construction of kernel scheduling policies by name — the single registry
// behind KernelConfig::policy, the experiment configs, and the alps-sweep
// `--kernel-policy` / `--list-policies` flags.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "os/policy.h"
#include "util/time.h"

namespace alps::os::policies {

struct PolicyParams {
    /// Seed for randomized policies (lottery); ignored by the others.
    std::uint64_t seed = 0xa1b5'5eedULL;
    /// Scheduling-quantum override; zero keeps each policy's own default
    /// (BSD 100 ms round-robin, lottery/stride 100 ms, CFS dynamic).
    util::Duration quantum{0};
};

struct PolicyInfo {
    std::string_view name;
    std::string_view description;
};

/// The policies make_policy() accepts, in presentation order.
[[nodiscard]] std::span<const PolicyInfo> known_policies();

/// True if `name` names a known policy.
[[nodiscard]] bool is_known_policy(std::string_view name);

/// Builds the named policy. Throws std::invalid_argument naming the valid
/// choices for anything unknown — a mistyped config must fail loudly, never
/// silently fall back to BSD.
[[nodiscard]] std::unique_ptr<SchedPolicy> make_policy(std::string_view name,
                                                       const PolicyParams& params = {});

}  // namespace alps::os::policies
