#include "os/policies/lottery.h"

#include <algorithm>

#include "os/policies/weight.h"
#include "util/assert.h"

namespace alps::os::policies {

using util::Duration;

LotteryPolicy::LotteryPolicy(LotteryPolicyConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
    ALPS_EXPECT(cfg_.quantum > Duration::zero());
    ALPS_EXPECT(cfg_.max_compensation >= 1.0);
    // The base currency is worth exactly its issued tickets (rate 1:1); its
    // funding tracks issuance so base holdings never dilute each other.
    currencies_.push_back({0.0, 0.0});
}

LotteryPolicy::Ticketing& LotteryPolicy::state(const Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < tickets_.size() && tickets_[pid].known);
    return tickets_[pid];
}

const LotteryPolicy::Ticketing& LotteryPolicy::state(const Proc& p) const {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < tickets_.size() && tickets_[pid].known);
    return tickets_[pid];
}

double LotteryPolicy::base_value(const Ticketing& t) const {
    const Currency& c = currencies_[static_cast<std::size_t>(t.currency)];
    if (t.currency == kBaseCurrency) return t.amount;
    if (c.issued <= 0.0) return 0.0;
    return t.amount * c.funding / c.issued;
}

// ----------------------------------------------------------------------------
// Lifecycle

void LotteryPolicy::add(Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    if (pid >= tickets_.size()) tickets_.resize(pid + 1);
    ALPS_EXPECT(!tickets_[pid].known);
    Ticketing& t = tickets_[pid];
    t = Ticketing{};
    t.known = true;
    t.amount = static_cast<double>(nice_to_weight(p.nice));
    t.currency = kBaseCurrency;
    currencies_[kBaseCurrency].issued += t.amount;
    currencies_[kBaseCurrency].funding += t.amount;
}

void LotteryPolicy::remove(Proc& p) {
    Ticketing& t = state(p);
    if (p.rq_index == kOnBoostQueue) {
        boosted_.remove(p);
        --boosted_size_;
        p.rq_index = -1;
    } else if (p.rq_index == kOnPrimary) {
        pool_.remove(p);
        --pool_size_;
        p.rq_index = -1;
    }
    Currency& c = currencies_[static_cast<std::size_t>(t.currency)];
    c.issued -= t.amount;
    if (t.currency == kBaseCurrency) c.funding -= t.amount;
    t = Ticketing{};
    winner_ = nullptr;
}

// ----------------------------------------------------------------------------
// Queueing

void LotteryPolicy::enqueue(Proc& p) {
    ALPS_EXPECT(p.rq_index < 0);
    Ticketing& t = state(p);
    // Leaving the CPU mid-quantum earns a compensation factor quantum/stint,
    // held until the next win (set here; consumed in pop()).
    if (t.stint > Duration::zero() && t.stint < cfg_.quantum) {
        t.comp = std::min(cfg_.max_compensation,
                          util::to_sec(cfg_.quantum) / util::to_sec(t.stint));
    } else {
        t.comp = 1.0;
    }
    if (p.wake_boost) {
        boosted_.push_back(p);
        ++boosted_size_;
        p.rq_index = kOnBoostQueue;
    } else {
        pool_.push_back(p);
        ++pool_size_;
        p.rq_index = kOnPrimary;
    }
    winner_ = nullptr;
}

void LotteryPolicy::dequeue(Proc& p) {
    if (p.rq_index == kOnBoostQueue) {
        boosted_.remove(p);
        --boosted_size_;
    } else if (p.rq_index == kOnPrimary) {
        pool_.remove(p);
        --pool_size_;
    } else {
        return;  // not queued; benign (stop/exit paths)
    }
    p.rq_index = -1;
    winner_ = nullptr;
}

Proc* LotteryPolicy::draw() {
    if (winner_ != nullptr) return winner_;
    if (pool_.empty()) return nullptr;
    double total = 0.0;
    for (const Proc* p = pool_.head; p != nullptr; p = p->rq_next) {
        const Ticketing& t = state(*p);
        total += base_value(t) * t.comp;
    }
    if (total <= 0.0) {
        winner_ = pool_.head;  // no funded tickets: degenerate FIFO
        return winner_;
    }
    const double ticket = rng_.next_double() * total;
    double acc = 0.0;
    for (Proc* p = pool_.head; p != nullptr; p = p->rq_next) {
        const Ticketing& t = state(*p);
        acc += base_value(t) * t.comp;
        if (ticket < acc) {
            winner_ = p;
            return winner_;
        }
    }
    winner_ = pool_.tail;  // fp round-off on the last holder
    return winner_;
}

Proc* LotteryPolicy::peek() {
    if (!boosted_.empty()) return boosted_.head;
    return draw();
}

Proc* LotteryPolicy::pop() {
    Proc* p = peek();
    if (p == nullptr) return nullptr;
    Ticketing& t = state(*p);
    if (p->rq_index == kOnBoostQueue) {
        boosted_.remove(*p);
        --boosted_size_;
    } else {
        pool_.remove(*p);
        --pool_size_;
        // A lottery win consumes any held compensation ticket and starts a
        // fresh stint.
        t.comp = 1.0;
        t.stint = Duration::zero();
    }
    p->rq_index = -1;
    winner_ = nullptr;
    return p;
}

// ----------------------------------------------------------------------------
// Decisions

bool LotteryPolicy::preempts(const Proc& cand, const Proc& running) const {
    // Only the kernel-exit boost preempts mid-quantum; ticket counts do not.
    return cand.wake_boost && !running.wake_boost;
}

bool LotteryPolicy::yields_to(const Proc& /*running*/, const Proc& /*cand*/) const {
    // Every quantum expiry is a fresh drawing.
    return true;
}

void LotteryPolicy::charge(Proc& p, Duration ran) {
    state(p).stint += ran;
}

void LotteryPolicy::on_wakeup(Proc& /*p*/, Duration /*slept*/) {}

void LotteryPolicy::second_tick(std::span<Proc* const> /*procs*/, double /*loadavg*/,
                                util::TimePoint /*now*/) {}

// ----------------------------------------------------------------------------
// Ticket economy

LotteryPolicy::CurrencyId LotteryPolicy::define_currency(double funding) {
    ALPS_EXPECT(funding >= 0.0);
    currencies_.push_back({funding, 0.0});
    winner_ = nullptr;
    return static_cast<CurrencyId>(currencies_.size() - 1);
}

void LotteryPolicy::set_currency_funding(CurrencyId c, double funding) {
    ALPS_EXPECT(c != kBaseCurrency);
    ALPS_EXPECT(c > 0 && static_cast<std::size_t>(c) < currencies_.size());
    ALPS_EXPECT(funding >= 0.0);
    currencies_[static_cast<std::size_t>(c)].funding = funding;
    winner_ = nullptr;
}

void LotteryPolicy::set_tickets(const Proc& p, double amount, CurrencyId c) {
    ALPS_EXPECT(amount >= 0.0);
    ALPS_EXPECT(c >= 0 && static_cast<std::size_t>(c) < currencies_.size());
    Ticketing& t = state(p);
    Currency& old_c = currencies_[static_cast<std::size_t>(t.currency)];
    old_c.issued -= t.amount;
    if (t.currency == kBaseCurrency) old_c.funding -= t.amount;
    t.amount = amount;
    t.currency = c;
    Currency& new_c = currencies_[static_cast<std::size_t>(c)];
    new_c.issued += amount;
    if (c == kBaseCurrency) new_c.funding += amount;
    winner_ = nullptr;
}

void LotteryPolicy::transfer_tickets(const Proc& from, const Proc& to, double amount) {
    ALPS_EXPECT(amount >= 0.0);
    Ticketing& f = state(from);
    Ticketing& t = state(to);
    ALPS_EXPECT(f.currency == t.currency);
    ALPS_EXPECT(f.amount >= amount);
    f.amount -= amount;
    t.amount += amount;
    winner_ = nullptr;
}

double LotteryPolicy::effective_tickets(const Proc& p) const {
    return base_value(state(p));
}

double LotteryPolicy::compensation(const Proc& p) const { return state(p).comp; }

}  // namespace alps::os::policies
