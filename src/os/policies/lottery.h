// Lottery scheduling (Waldspurger & Weihl, OSDI '94) as a kernel SchedPolicy.
//
// Each process holds an amount of tickets in some currency; a currency is
// backed by `funding` base tickets split across all tickets issued in it, so
// a process's *effective* base tickets are amount × funding / issued. Every
// dispatch decision draws a uniform value over the runnable processes'
// effective tickets (via the repo's deterministic xoshiro RNG) and the holder
// of the winning ticket runs for one quantum.
//
// Compensation tickets: a process that used only a fraction f < 1 of its
// quantum before leaving the CPU (sleep, preemption) has its tickets
// inflated by 1/f until it next wins, preserving its expected share despite
// short stints (paper §3.4). The stint is accumulated across charge() calls
// since the last win, so fragmented charging (the kernel charges at every
// scheduling decision, not once per slice) still yields one 1/f factor.
//
// Interaction with the wake-boost protocol: processes waking from a kernel
// sleep must preempt user-mode work immediately (Proc::wake_boost; the ALPS
// driver depends on this to take its tick at quantum boundaries). Boosted
// processes therefore bypass the lottery entirely — they sit on a FIFO that
// peek()/pop() service ahead of any draw, mirroring BsdPolicy's kernel
// sleep-priority queue.
#pragma once

#include <cstdint>
#include <vector>

#include "os/policies/queueing.h"
#include "os/policy.h"
#include "util/rng.h"

namespace alps::os::policies {

struct LotteryPolicyConfig {
    /// Lottery quantum: one draw per this much CPU (Waldspurger used 100 ms).
    util::Duration quantum = util::msec(100);
    /// Seed for the draw stream; same seed + same event order = same draws.
    std::uint64_t seed = 0xa1b5'10'77e41ULL;
    /// Compensation-ticket cap: 1/f inflation is clamped to this factor.
    double max_compensation = 64.0;
};

class LotteryPolicy final : public SchedPolicy {
public:
    using Config = LotteryPolicyConfig;
    using CurrencyId = std::int32_t;
    static constexpr CurrencyId kBaseCurrency = 0;

    explicit LotteryPolicy(LotteryPolicyConfig cfg = {});

    void add(Proc& p) override;
    void remove(Proc& p) override;
    void enqueue(Proc& p) override;
    void dequeue(Proc& p) override;
    Proc* peek() override;
    Proc* pop() override;
    [[nodiscard]] bool preempts(const Proc& cand, const Proc& running) const override;
    [[nodiscard]] bool yields_to(const Proc& running, const Proc& cand) const override;
    void charge(Proc& p, util::Duration ran) override;
    void on_wakeup(Proc& p, util::Duration slept) override;
    void second_tick(std::span<Proc* const> procs, double loadavg,
                     util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override { return cfg_.quantum; }
    [[nodiscard]] std::size_t runnable() const override {
        return pool_size_ + boosted_size_;
    }

    // ----- ticket economy -----

    /// Creates a currency worth `funding` base tickets, split pro rata over
    /// the tickets issued in it. Returns its id.
    CurrencyId define_currency(double funding);
    /// Re-funds an existing currency (ticket inflation/deflation).
    void set_currency_funding(CurrencyId c, double funding);
    /// Reissues `p`'s holding: `amount` tickets in currency `c`. The default
    /// grant at add() is nice_to_weight(p.nice) base tickets.
    void set_tickets(const Proc& p, double amount, CurrencyId c = kBaseCurrency);
    /// Moves `amount` tickets from `from` to `to` (ticket transfer §3.1);
    /// both must currently hold tickets in the same currency.
    void transfer_tickets(const Proc& from, const Proc& to, double amount);

    /// `p`'s holding valued in base tickets (excluding compensation).
    [[nodiscard]] double effective_tickets(const Proc& p) const;
    /// Current compensation factor (1 when none is held).
    [[nodiscard]] double compensation(const Proc& p) const;

private:
    struct Currency {
        double funding = 0.0;  ///< value in base tickets
        double issued = 0.0;   ///< tickets issued in this currency
    };
    struct Ticketing {
        double amount = 0.0;          ///< tickets held
        CurrencyId currency = kBaseCurrency;
        double comp = 1.0;            ///< compensation factor, >= 1
        util::Duration stint{0};      ///< CPU used since last lottery win
        bool known = false;           ///< add() seen, remove() not yet
    };

    [[nodiscard]] Ticketing& state(const Proc& p);
    [[nodiscard]] const Ticketing& state(const Proc& p) const;
    /// amount × funding / issued for the process's currency.
    [[nodiscard]] double base_value(const Ticketing& t) const;
    /// Draw (or return the memoized) winner among the ticket FIFO.
    Proc* draw();

    LotteryPolicyConfig cfg_;
    util::Rng rng_;
    std::vector<Currency> currencies_;
    std::vector<Ticketing> tickets_;  ///< pid-indexed

    IntrusiveFifo boosted_;  ///< wake_boost procs, FIFO, ahead of any draw
    std::size_t boosted_size_ = 0;
    IntrusiveFifo pool_;     ///< runnable ticket holders, in enqueue order
    std::size_t pool_size_ = 0;

    /// peek() must be stable until the queues change, so the draw is
    /// memoized here and invalidated by every queue/ticket mutation.
    Proc* winner_ = nullptr;
};

}  // namespace alps::os::policies
