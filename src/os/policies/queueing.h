// Shared run-queue building blocks for the kernel policy zoo.
//
// Two structures, both in the spirit of the PR-3 O(1) substrate:
//   * IntrusiveFifo — a doubly-linked FIFO threaded through the Proc's
//     rq_prev/rq_next links (the same fields the 4.4BSD policy uses for its
//     qs[] TAILQs). The zoo policies use one as the wake-boost queue (freshly
//     woken processes hold kernel sleep priority until dispatched — see
//     Proc::wake_boost) and, for lottery, as the ticket pool itself.
//   * IndexedProcHeap — a binary min-heap over (key, pid) with a pid-indexed
//     position table, the same indexed-heap idiom as the PR-3 timer heap:
//     O(log n) push/erase/update with O(1) membership tests, and a strict
//     (key, pid) total order so extraction is fully deterministic.
//
// Membership convention shared by the zoo policies (documented in DESIGN.md
// §8): Proc::rq_index is -1 when the process is on neither structure,
// kOnPrimary when it is on the policy's primary structure (heap or ticket
// FIFO), and kOnBoostQueue while it waits on the wake-boost FIFO. The BSD
// policy instead stores its run-queue index there; either way rq_index < 0
// means "not queued", which is the invariant the Kernel relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "os/proc.h"
#include "util/assert.h"

namespace alps::os::policies {

/// Proc::rq_index values used by the zoo policies (any value >= 0 reads as
/// "queued" to the rest of the kernel).
inline constexpr int kOnPrimary = 0;
inline constexpr int kOnBoostQueue = 1;

/// Intrusive doubly-linked FIFO through Proc::rq_prev/rq_next. The caller
/// owns the rq_index bookkeeping (these helpers only touch the links).
struct IntrusiveFifo {
    Proc* head = nullptr;
    Proc* tail = nullptr;

    [[nodiscard]] bool empty() const { return head == nullptr; }

    void push_back(Proc& p) {
        p.rq_next = nullptr;
        p.rq_prev = tail;
        if (tail != nullptr) {
            tail->rq_next = &p;
        } else {
            head = &p;
        }
        tail = &p;
    }

    void remove(Proc& p) {
        if (p.rq_prev != nullptr) {
            p.rq_prev->rq_next = p.rq_next;
        } else {
            head = p.rq_next;
        }
        if (p.rq_next != nullptr) {
            p.rq_next->rq_prev = p.rq_prev;
        } else {
            tail = p.rq_prev;
        }
        p.rq_prev = nullptr;
        p.rq_next = nullptr;
    }
};

/// Binary min-heap over (key, pid) with a pid-indexed position table.
/// Keys are policy virtual times (stride pass values, CFS vruntimes); the
/// pid tiebreak makes the order strict and extraction deterministic.
class IndexedProcHeap {
public:
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    [[nodiscard]] bool contains(const Proc& p) const {
        const auto pid = static_cast<std::size_t>(p.pid);
        return pid < pos_.size() && pos_[pid] >= 0;
    }

    /// The minimum-key process (nullptr when empty). Stable until the heap
    /// changes, as SchedPolicy::peek requires.
    [[nodiscard]] Proc* min() const { return heap_.empty() ? nullptr : heap_[0].p; }
    [[nodiscard]] double min_key() const {
        ALPS_EXPECT(!heap_.empty());
        return heap_[0].key;
    }

    void push(Proc& p, double key) {
        ALPS_EXPECT(!contains(p));
        const auto pid = static_cast<std::size_t>(p.pid);
        if (pid >= pos_.size()) pos_.resize(pid + 1, -1);
        heap_.push_back({key, &p});
        pos_[pid] = static_cast<std::int32_t>(heap_.size() - 1);
        sift_up(heap_.size() - 1);
    }

    void erase(Proc& p) {
        ALPS_EXPECT(contains(p));
        const auto hole = static_cast<std::size_t>(pos_[static_cast<std::size_t>(p.pid)]);
        pos_[static_cast<std::size_t>(p.pid)] = -1;
        const Entry last = heap_.back();
        heap_.pop_back();
        if (hole < heap_.size()) {
            heap_[hole] = last;
            pos_[static_cast<std::size_t>(last.p->pid)] = static_cast<std::int32_t>(hole);
            // The displaced entry may need to move either way.
            sift_down(hole);
            sift_up(static_cast<std::size_t>(pos_[static_cast<std::size_t>(last.p->pid)]));
        }
    }

    Proc* pop_min() {
        Proc* p = min();
        if (p != nullptr) erase(*p);
        return p;
    }

    void update_key(Proc& p, double key) {
        ALPS_EXPECT(contains(p));
        const auto i = static_cast<std::size_t>(pos_[static_cast<std::size_t>(p.pid)]);
        heap_[i].key = key;
        sift_down(i);
        sift_up(static_cast<std::size_t>(pos_[static_cast<std::size_t>(p.pid)]));
    }

    [[nodiscard]] double key_of(const Proc& p) const {
        ALPS_EXPECT(contains(p));
        return heap_[static_cast<std::size_t>(pos_[static_cast<std::size_t>(p.pid)])].key;
    }

private:
    struct Entry {
        double key = 0.0;
        Proc* p = nullptr;
    };

    [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
        if (a.key != b.key) return a.key < b.key;
        return a.p->pid < b.p->pid;
    }

    void place(std::size_t i, const Entry& e) {
        heap_[i] = e;
        pos_[static_cast<std::size_t>(e.p->pid)] = static_cast<std::int32_t>(i);
    }

    void sift_up(std::size_t i) {
        const Entry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(e, heap_[parent])) break;
            place(i, heap_[parent]);
            i = parent;
        }
        place(i, e);
    }

    void sift_down(std::size_t i) {
        const Entry e = heap_[i];
        const std::size_t n = heap_.size();
        while (true) {
            std::size_t best = i;
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            const Entry* best_e = &e;
            if (l < n && before(heap_[l], *best_e)) {
                best = l;
                best_e = &heap_[l];
            }
            if (r < n && before(heap_[r], *best_e)) {
                best = r;
            }
            if (best == i) break;
            const Entry moved = heap_[best];
            place(i, moved);
            i = best;
        }
        place(i, e);
    }

    std::vector<Entry> heap_;
    std::vector<std::int32_t> pos_;  ///< pid-indexed; -1 = absent
};

}  // namespace alps::os::policies
