#include "os/policies/stride.h"

#include "os/policies/weight.h"
#include "util/assert.h"

namespace alps::os::policies {

using util::Duration;

StridePolicy::StridePolicy(StridePolicyConfig cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg_.quantum > Duration::zero());
    ALPS_EXPECT(cfg_.stride1 > 0.0);
}

StridePolicy::Striding& StridePolicy::state(const Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < procs_.size() && procs_[pid].known);
    return procs_[pid];
}

const StridePolicy::Striding& StridePolicy::state(const Proc& p) const {
    const auto pid = static_cast<std::size_t>(p.pid);
    ALPS_EXPECT(pid < procs_.size() && procs_[pid].known);
    return procs_[pid];
}

// ----------------------------------------------------------------------------
// Lifecycle

void StridePolicy::add(Proc& p) {
    const auto pid = static_cast<std::size_t>(p.pid);
    if (pid >= procs_.size()) procs_.resize(pid + 1);
    ALPS_EXPECT(!procs_[pid].known);
    Striding& s = procs_[pid];
    s = Striding{};
    s.known = true;
    s.tickets = static_cast<double>(nice_to_weight(p.nice));
    s.stride = cfg_.stride1 / s.tickets;
    // client_init: a new process owes one full stride before its first
    // quantum, so a flood of spawns starts in ticket order, not all at once.
    s.remain = s.stride;
}

void StridePolicy::remove(Proc& p) {
    if (p.rq_index >= 0) dequeue(p);
    state(p) = Striding{};
}

// ----------------------------------------------------------------------------
// Queueing (join / leave)

void StridePolicy::enqueue(Proc& p) {
    ALPS_EXPECT(p.rq_index < 0);
    Striding& s = state(p);
    // join: restore the saved lateness credit against the current global
    // pass. remain was snapshotted at the last charge (== the moment this
    // process last left a CPU) or at dequeue.
    s.pass = global_pass_ + s.remain;
    if (p.wake_boost) {
        boosted_.push_back(p);
        ++boosted_size_;
        p.rq_index = kOnBoostQueue;
    } else {
        queue_.push(p, s.pass);
        p.rq_index = kOnPrimary;
    }
    queued_tickets_ += s.tickets;
}

void StridePolicy::dequeue(Proc& p) {
    if (p.rq_index == kOnBoostQueue) {
        boosted_.remove(p);
        --boosted_size_;
    } else if (p.rq_index == kOnPrimary) {
        queue_.erase(p);
    } else {
        return;  // not queued; benign (stop/exit paths)
    }
    p.rq_index = -1;
    Striding& s = state(p);
    queued_tickets_ -= s.tickets;
    // leave: bank how far into the current stride window the process was.
    s.remain = s.pass - global_pass_;
}

Proc* StridePolicy::peek() {
    if (!boosted_.empty()) return boosted_.head;
    return queue_.min();
}

Proc* StridePolicy::pop() {
    Proc* p = peek();
    if (p == nullptr) return nullptr;
    if (p->rq_index == kOnBoostQueue) {
        boosted_.remove(*p);
        --boosted_size_;
    } else {
        queue_.erase(*p);
    }
    p->rq_index = -1;
    queued_tickets_ -= state(*p).tickets;
    return p;
}

// ----------------------------------------------------------------------------
// Decisions

bool StridePolicy::preempts(const Proc& cand, const Proc& running) const {
    // Stride is quantum-grained: only the kernel-exit wake boost preempts.
    return cand.wake_boost && !running.wake_boost;
}

bool StridePolicy::yields_to(const Proc& running, const Proc& cand) const {
    if (cand.wake_boost) return true;
    // At quantum expiry the minimum-pass process runs; the incumbent was
    // just charged, so its pass already reflects the expired quantum.
    return state(cand).pass <= state(running).pass;
}

void StridePolicy::charge(Proc& p, Duration ran) {
    Striding& s = state(p);
    const double quanta = util::to_sec(ran) / util::to_sec(cfg_.quantum);
    s.pass += s.stride * quanta;
    // Global pass advances as if one process holding every active ticket ran:
    // active = queued + the process currently being charged (exact with one
    // CPU; see the header caveat).
    const double active = queued_tickets_ + s.tickets;
    ALPS_ENSURE(active > 0.0);
    global_pass_ += (cfg_.stride1 / active) * quanta;
    // Snapshot the leave credit now: if the process sleeps after this charge
    // the policy hears nothing until wakeup, and this snapshot — taken at
    // the exact moment it left the CPU — is its remain.
    s.remain = s.pass - global_pass_;
}

void StridePolicy::on_wakeup(Proc& /*p*/, Duration /*slept*/) {}

void StridePolicy::second_tick(std::span<Proc* const> /*procs*/, double /*loadavg*/,
                               util::TimePoint /*now*/) {}

// ----------------------------------------------------------------------------
// Ticket operations

void StridePolicy::set_tickets(const Proc& p, double tickets) {
    ALPS_EXPECT(tickets > 0.0);
    Striding& s = state(p);
    const double new_stride = cfg_.stride1 / tickets;
    const bool queued = p.rq_index >= 0;
    if (queued) {
        queued_tickets_ -= s.tickets;
        s.remain = s.pass - global_pass_;  // leave
    }
    // client_modify: scale the partially-consumed stride window so the
    // fraction of a quantum already paid for carries over.
    s.remain = s.remain * (new_stride / s.stride);
    s.tickets = tickets;
    s.stride = new_stride;
    if (queued) {
        s.pass = global_pass_ + s.remain;  // rejoin at the new rate
        queued_tickets_ += s.tickets;
        if (p.rq_index == kOnPrimary) queue_.update_key(const_cast<Proc&>(p), s.pass);
    }
}

void StridePolicy::transfer_tickets(const Proc& from, const Proc& to, double amount) {
    ALPS_EXPECT(amount >= 0.0);
    const Striding& f = state(from);
    const Striding& t = state(to);
    ALPS_EXPECT(f.tickets - amount > 0.0);
    set_tickets(from, f.tickets - amount);
    set_tickets(to, t.tickets + amount);
}

double StridePolicy::tickets(const Proc& p) const { return state(p).tickets; }

double StridePolicy::pass(const Proc& p) const {
    const Striding& s = state(p);
    return p.rq_index >= 0 ? s.pass : global_pass_ + s.remain;
}

}  // namespace alps::os::policies
