// Stride scheduling (Waldspurger & Weihl, TR-528, 1995) as a kernel
// SchedPolicy: deterministic proportional share.
//
// Each process holds tickets; stride = stride1 / tickets is the pass-value
// cost of one quantum. The dispatcher always runs the minimum-pass process
// and advances its pass by stride × (cpu used / quantum), so long-run CPU is
// proportional to tickets with O(lg n) error instead of lottery's √n.
//
// Dynamic join/leave uses the paper's global pass + remain mechanism:
//   * global_pass advances at rate stride1 / (active tickets) per quantum of
//     CPU delivered, i.e. it tracks the pass of a hypothetical always-active
//     process holding all tickets.
//   * leave: remain = pass − global_pass (how far into its current "stride
//     window" the process was);
//   * join:  pass = global_pass + remain (the credit/debt is restored
//     relative to the new global pass, so sleeping neither banks CPU nor
//     forfeits a partially-paid-for quantum).
// The kernel does not notify the policy when a *running* process goes to
// sleep (it was popped earlier; it simply never comes back until wakeup), so
// remain is snapshotted at every charge() — the kernel always charges a
// process immediately before it leaves a CPU, which makes the snapshot exact
// at the moment of leave. Ticket changes rescale remain by the stride ratio
// (client_modify), and transfer_tickets() moves tickets between processes.
//
// The run queue is an IndexedProcHeap keyed by (pass, pid) — the PR-3
// position-indexed heap, O(lg n) with deterministic ties. Freshly woken
// processes bypass the pass order on the wake-boost FIFO exactly as in the
// lottery policy (the ALPS driver depends on immediate wake preemption).
//
// active-tickets caveat: the global-pass rate counts queued tickets plus the
// tickets of the process being charged, which is exact on a uniprocessor
// (every active process is either queued or the one on the CPU). With
// ncpus > 1 other CPUs' runners are not counted and global pass runs
// slightly fast; the zoo experiments are uniprocessor, like the paper's.
#pragma once

#include <cstdint>
#include <vector>

#include "os/policies/queueing.h"
#include "os/policy.h"

namespace alps::os::policies {

struct StridePolicyConfig {
    /// Scheduling quantum (pass advances by one stride per quantum of CPU).
    util::Duration quantum = util::msec(100);
    /// stride1: the stride of a single ticket (2^20, as in the paper).
    double stride1 = 1048576.0;
};

class StridePolicy final : public SchedPolicy {
public:
    using Config = StridePolicyConfig;

    explicit StridePolicy(StridePolicyConfig cfg = {});

    void add(Proc& p) override;
    void remove(Proc& p) override;
    void enqueue(Proc& p) override;
    void dequeue(Proc& p) override;
    Proc* peek() override;
    Proc* pop() override;
    [[nodiscard]] bool preempts(const Proc& cand, const Proc& running) const override;
    [[nodiscard]] bool yields_to(const Proc& running, const Proc& cand) const override;
    void charge(Proc& p, util::Duration ran) override;
    void on_wakeup(Proc& p, util::Duration slept) override;
    void second_tick(std::span<Proc* const> procs, double loadavg,
                     util::TimePoint now) override;
    [[nodiscard]] std::size_t runnable() const override {
        return queue_.size() + boosted_size_;
    }
    [[nodiscard]] util::Duration slice() const override { return cfg_.quantum; }

    /// Reissues `p`'s tickets (> 0), rescaling remain by the stride ratio.
    /// The default grant at add() is nice_to_weight(p.nice).
    void set_tickets(const Proc& p, double tickets);
    /// Moves `amount` tickets from `from` to `to` (both keep > 0).
    void transfer_tickets(const Proc& from, const Proc& to, double amount);

    [[nodiscard]] double tickets(const Proc& p) const;
    [[nodiscard]] double pass(const Proc& p) const;
    [[nodiscard]] double global_pass() const { return global_pass_; }

private:
    struct Striding {
        double tickets = 0.0;
        double stride = 0.0;   ///< stride1 / tickets
        double pass = 0.0;     ///< live while active; stale while asleep
        double remain = 0.0;   ///< pass − global_pass, snapshotted at charge
        bool known = false;
    };

    [[nodiscard]] Striding& state(const Proc& p);
    [[nodiscard]] const Striding& state(const Proc& p) const;

    StridePolicyConfig cfg_;
    IntrusiveFifo boosted_;     ///< wake_boost procs, ahead of the pass order
    std::size_t boosted_size_ = 0;
    IndexedProcHeap queue_;     ///< min-(pass, pid)
    std::vector<Striding> procs_;  ///< pid-indexed

    double global_pass_ = 0.0;
    /// Tickets of every queued process (heap + boost FIFO); the charge-time
    /// global-pass denominator adds the charged process's own tickets.
    double queued_tickets_ = 0.0;
};

}  // namespace alps::os::policies
