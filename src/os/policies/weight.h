// nice → scheduling weight, shared by the zoo policies.
//
// The table is Linux CFS's prio_to_weight[]: each nice level is ~1.25× the
// next, normalized so nice 0 = 1024. Lottery and stride reuse the same table
// as their default ticket grant, so "one nice level" means the same relative
// share under every zoo policy and cross-policy comparisons differ only in
// mechanism, not in entitlement.
#pragma once

#include <array>
#include <cstdint>

namespace alps::os::policies {

inline constexpr int kNiceMin = -20;
inline constexpr int kNiceMax = 19;
inline constexpr std::int64_t kWeightNice0 = 1024;

/// CFS prio_to_weight[], indexed by nice + 20.
inline constexpr std::array<std::int64_t, 40> kNiceToWeight = {
    88761, 71755, 56483, 46273, 36291,  // -20 .. -16
    29154, 23254, 18705, 14949, 11916,  // -15 .. -11
    9548,  7620,  6100,  4904,  3906,   // -10 .. -6
    3121,  2501,  1991,  1586,  1277,   //  -5 .. -1
    1024,  820,   655,   526,   423,    //   0 ..  4
    335,   272,   215,   172,   137,    //   5 ..  9
    110,   87,    70,    56,    45,     //  10 .. 14
    36,    29,    23,    18,    15,     //  15 .. 19
};

[[nodiscard]] constexpr std::int64_t nice_to_weight(int nice) {
    if (nice < kNiceMin) nice = kNiceMin;
    if (nice > kNiceMax) nice = kNiceMax;
    return kNiceToWeight[static_cast<std::size_t>(nice - kNiceMin)];
}

}  // namespace alps::os::policies
