// Pluggable kernel scheduling policy.
//
// The default is the 4.4BSD multilevel-feedback policy (bsd_policy.h), the
// scheduler underneath FreeBSD 4.8 on which the paper ran. The baselines in
// src/sched (stride, lottery) implement the same interface, which lets the
// baseline benches swap an in-kernel proportional-share policy for the BSD
// one while keeping the rest of the machine identical.
#pragma once

#include <span>

#include "os/proc.h"
#include "util/time.h"

namespace alps::os {

class SchedPolicy {
public:
    virtual ~SchedPolicy() = default;

    /// A process entered the system (spawn).
    virtual void add(Proc& p) = 0;
    /// A process left the system (exit); must no longer be referenced.
    virtual void remove(Proc& p) = 0;

    /// A process became eligible to run; place it on the run queues.
    virtual void enqueue(Proc& p) = 0;
    /// An enqueued process became ineligible (sleep/stop); remove it.
    virtual void dequeue(Proc& p) = 0;

    /// The best runnable process, without removing it (nullptr if none).
    /// Must be stable until the run queues change.
    virtual Proc* peek() = 0;
    /// Removes and returns the best runnable process (nullptr if none).
    virtual Proc* pop() = 0;

    /// True if `cand` should preempt `running` right now (strictly better).
    [[nodiscard]] virtual bool preempts(const Proc& cand, const Proc& running) const = 0;

    /// True if, at slice expiry, `running` must yield to queued `cand`
    /// (better or equal class — round-robin among peers).
    [[nodiscard]] virtual bool yields_to(const Proc& running, const Proc& cand) const = 0;

    /// `p` consumed `ran` of CPU; update usage estimates / virtual times.
    virtual void charge(Proc& p, util::Duration ran) = 0;

    /// `p` woke after sleeping for `slept`; apply any sleep credit.
    virtual void on_wakeup(Proc& p, util::Duration slept) = 0;

    /// Once-per-second housekeeping (4.4BSD schedcpu): decay usage estimates.
    /// `procs` holds every live process this instance is responsible for
    /// (the whole machine with one shared queue; one CPU's worth under
    /// per-CPU domains); `loadavg` is the smoothed count of eligible
    /// processes; `now` lets the policy skip processes idle for more than a
    /// second (handled by on_wakeup instead, like p_slptime).
    virtual void second_tick(std::span<Proc* const> procs, double loadavg,
                             util::TimePoint now) = 0;

    /// Maximum contiguous run before a forced round-robin decision.
    [[nodiscard]] virtual util::Duration slice() const = 0;

    // ----- per-CPU scheduling domains (idle-steal / rebalance) -----

    /// Number of processes currently on this instance's run queues (primary
    /// + wake-boost FIFO). The kernel's steal/rebalance passes use it as the
    /// load metric when picking victim domains, so it must be O(1).
    [[nodiscard]] virtual std::size_t runnable() const = 0;

    /// A process is leaving this instance for another CPU's domain. The
    /// kernel has already popped it off the run queues; drop any per-process
    /// policy state. Default: remove() (every zoo policy's remove tolerates
    /// an unqueued process).
    virtual void on_migrate_out(Proc& p) { remove(p); }

    /// A migrated process is joining this instance (the counterpart of
    /// on_migrate_out; the kernel enqueues or dispatches it afterwards).
    /// Default: add() — i.e. the process joins like a fresh spawn. Policies
    /// whose usage state lives on the Proc itself (BSD's estcpu) override
    /// this to carry that state across instead of resetting it.
    virtual void on_migrate_in(Proc& p) { add(p); }
};

}  // namespace alps::os
