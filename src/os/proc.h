// The simulated process control block.
#pragma once

#include <memory>
#include <string>

#include "os/behavior.h"
#include "os/types.h"
#include "sim/engine.h"
#include "util/time.h"

namespace alps::os {

/// Process control block. Owned by the Kernel; scheduling policies receive
/// references and may read/update the scheduling fields.
struct Proc {
    Pid pid = kNoPid;
    std::string name;
    Uid uid = 0;
    int nice = 0;

    RunState state = RunState::kRunnable;
    /// Job-control stop flag, orthogonal to `state` (a process stopped while
    /// sleeping keeps sleeping; its timer may expire while stopped).
    bool stopped = false;
    /// One-shot wakeup boost: a process waking from tsleep() holds its
    /// *kernel* sleep priority (better than any user priority) until it is
    /// dispatched and returns to user mode — so sleepers preempt compute-
    /// bound processes immediately, exactly as under 4.4BSD. Cleared at
    /// dispatch; the dispatcher then re-checks preemption at user priority.
    bool wake_boost = false;

    // --- 4.4BSD scheduling fields (maintained by BsdPolicy) ---
    double estcpu = 0.0;  ///< decaying estimate of recent CPU use, in stat ticks
    double usrpri = 0.0;  ///< user-mode priority; lower is better

    // --- intrusive run-queue links (maintained by BsdPolicy, like the
    // --- p_forw/p_back TAILQ links of the real struct proc) ---
    Proc* rq_prev = nullptr;
    Proc* rq_next = nullptr;
    int rq_index = -1;  ///< run-queue index while queued, else -1

    // --- kernel bookkeeping indices (maintained by Kernel) ---
    std::size_t ordered_index = 0;  ///< position in the creation-order list
    std::size_t uid_index = 0;      ///< position in the per-uid live list

    // --- accounting (the simulated getrusage) ---
    util::Duration cpu_consumed{0};  ///< total CPU time ever consumed
    std::uint64_t dispatches = 0;    ///< times placed on a CPU
    std::uint64_t voluntary_sleeps = 0;
    int on_cpu = -1;                 ///< CPU index while running, else -1
    /// CPU affinity: the scheduling domain this process queues on when the
    /// kernel runs per-CPU run queues (KernelConfig::percpu_queues). Always 0
    /// under the shared global queue. Updated by the kernel when idle-steal
    /// or the periodic rebalance migrates the process.
    int home_cpu = 0;
    /// Hard affinity: idle-steal and rebalance never migrate a pinned
    /// process, so it stays on the domain it was spawned (or last
    /// explicitly migrated) to. Meaningless without percpu_queues.
    bool pinned = false;

    // --- current phase ---
    util::Duration run_remaining{0};  ///< CPU left in the current run phase
    bool phase_lazy_pending = false;  ///< lazy run demand not yet computed
    WaitChannel wchan = nullptr;      ///< wait channel while sleeping
    sim::EventId sleep_event = 0;     ///< pending timer wake, if any
    sim::EventId pending_stop_event = 0;  ///< deferred SIGSTOP delivery, if any

    // --- bookkeeping for the scheduler ---
    util::TimePoint last_charge{};    ///< start of the current on-CPU stretch
    util::TimePoint slice_end{};      ///< round-robin deadline for this stretch
    util::TimePoint sleep_start{};    ///< when the current/last sleep began
    util::TimePoint stop_start{};     ///< when the current stop began
    util::TimePoint enqueue_time{};   ///< when last made runnable

    std::unique_ptr<Behavior> behavior;

    /// Eligible for the run queues: wants the CPU and is not job-stopped.
    [[nodiscard]] bool eligible() const {
        return (state == RunState::kRunnable || state == RunState::kRunning) && !stopped;
    }

    /// The ALPS blocked-process test (paper §2.4): sleeping on a wait channel.
    [[nodiscard]] bool blocked() const { return state == RunState::kSleeping; }
};

}  // namespace alps::os
