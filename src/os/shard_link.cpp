#include "os/shard_link.h"

#include <memory>
#include <utility>

#include "os/kernel.h"
#include "telemetry/recorder.h"
#include "util/assert.h"

namespace alps::os {

ShardLink::ShardLink(sim::ShardedEngine& sharded, unsigned groups)
    : sharded_(sharded), kernels_(groups, nullptr) {
    ALPS_EXPECT(groups >= 1);
}

void ShardLink::bind(unsigned group, Kernel& kernel) {
    ALPS_EXPECT(group < kernels_.size());
    ALPS_EXPECT(&kernel.engine() == &sharded_.engine(shard_of(group)));
    kernels_[group] = &kernel;
}

Kernel& ShardLink::kernel(unsigned group) {
    ALPS_EXPECT(group < kernels_.size());
    ALPS_EXPECT(kernels_[group] != nullptr);
    return *kernels_[group];
}

void ShardLink::migrate(unsigned from, unsigned to, Pid pid, int home_cpu) {
    ALPS_EXPECT(from < kernels_.size() && to < kernels_.size());
    Kernel* src = kernels_[from];
    Kernel* dst = kernels_[to];
    ALPS_EXPECT(src != nullptr && dst != nullptr);
    const unsigned from_shard = shard_of(from);
    const unsigned to_shard = shard_of(to);

    // Extradite now (on the source shard's thread), ship the handle, adopt
    // when the message fires at the boundary. shared_ptr because
    // sim::Engine::Callback is a std::function, which requires a copyable
    // capture; the handle itself is move-only.
    auto handle = std::make_shared<MigratedProc>(src->extradite(pid));
    ++started_;

    sim::ShardMessage msg;
    msg.at = sharded_.produce_boundary(from_shard);
    msg.cb = [this, dst, to, handle, home_cpu] {
        const Pid new_pid = dst->adopt(std::move(*handle), home_cpu);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::active()) {
            // Fires on the destination shard's thread with its engine clock
            // ambient (the boundary the handoff landed on); track = target
            // group so a merged trace shows each nomad's itinerary.
            telemetry::instant(telemetry::kNameHop, to,
                               static_cast<std::uint64_t>(new_pid));
        }
        if (on_adopt) on_adopt(to, new_pid);
    };
    sharded_.post(from_shard, to_shard, std::move(msg));
}

}  // namespace alps::os
