// Kernel-domain → shard binding for the sharded simulation engine.
//
// A ShardLink wires a set of kernel "groups" (independent os::Kernel
// machines, each running on one shard's engine) onto a sim::ShardedEngine,
// and carries process migrations between them: extradite on the source
// kernel during its shard's produce phase, hand the MigratedProc over the
// cross-shard channel, adopt on the destination kernel when the message
// fires at the epoch boundary.
//
// Group → shard placement is fixed modulo arithmetic (group g lives on shard
// g % S), so the same logical machine runs unchanged at any shard count —
// the property the differential tests exploit: per-group trajectories are a
// function of the group topology only, never of S.
//
// Determinism note: adoptions into a group are ordered by the sharded
// engine's boundary drain (source-shard order, then channel FIFO). Workloads
// that need bit-identical results across *different shard counts* must not
// send two same-boundary migrations into one group from different source
// groups — the drain interleaving of co-located vs separated sources is what
// changes with S (see DESIGN.md §13). The sharded_run experiment staggers
// migrations one source group per boundary for exactly this reason.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "os/types.h"
#include "sim/shard.h"

namespace alps::os {

class Kernel;

class ShardLink {
public:
    /// `groups` kernel slots over `sharded`'s shards. Bind each group before
    /// migrating through it.
    ShardLink(sim::ShardedEngine& sharded, unsigned groups);

    ShardLink(const ShardLink&) = delete;
    ShardLink& operator=(const ShardLink&) = delete;

    [[nodiscard]] unsigned groups() const {
        return static_cast<unsigned>(kernels_.size());
    }
    [[nodiscard]] unsigned shard_of(unsigned group) const {
        return group % sharded_.shards();
    }

    /// Binds group `group` to `kernel`. Contract: the kernel runs on
    /// engine(shard_of(group)) — migrations schedule adoption events there.
    void bind(unsigned group, Kernel& kernel);

    [[nodiscard]] Kernel& kernel(unsigned group);

    /// Moves `pid` from group `from` to group `to`. Must be called on shard
    /// shard_of(from)'s thread during its produce/publish phase (the post()
    /// window); the process is extradited immediately and adopted when the
    /// hand-off fires at the epoch boundary. The extradite() contract
    /// applies: runnable, off-CPU, not stopped. `home_cpu` places the
    /// process on the destination machine (-1 = round-robin).
    void migrate(unsigned from, unsigned to, Pid pid, int home_cpu = -1);

    /// Called after every adoption with (destination group, new pid) — on
    /// the destination shard's thread, during its produce phase. Workloads
    /// use it to keep tracking a process across its pid changes.
    std::function<void(unsigned, Pid)> on_adopt;

    /// Hand-offs initiated / completed through this link.
    [[nodiscard]] std::uint64_t migrations_started() const {
        return started_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t migrations_completed() const {
        return completed_.load(std::memory_order_relaxed);
    }

private:
    sim::ShardedEngine& sharded_;
    std::vector<Kernel*> kernels_;
    /// started_ is bumped from source-shard threads, completed_ from
    /// destination-shard threads — atomics because different shards migrate
    /// concurrently under the threaded mode.
    std::atomic<std::uint64_t> started_{0};
    std::atomic<std::uint64_t> completed_{0};
};

}  // namespace alps::os
