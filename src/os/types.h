// Basic identifiers and state enums for the simulated UNIX kernel.
#pragma once

#include <cstdint>
#include <string_view>

namespace alps::os {

/// Process identifier. Pid 0 is never issued (reserved, like the real swapper).
using Pid = std::int32_t;
constexpr Pid kNoPid = 0;

/// User identifier; the Section-5 web server experiment schedules per-uid
/// resource principals.
using Uid = std::int32_t;

/// Signals: the subset ALPS and the experiments need.
enum class Signal {
    kStop,  ///< SIGSTOP: make the process ineligible to run.
    kCont,  ///< SIGCONT: make a stopped process eligible again.
    kKill,  ///< SIGKILL: terminate.
};

/// Base run state; `Proc::stopped` is an orthogonal flag (a process stopped
/// while sleeping stays asleep, exactly as under UNIX job control).
enum class RunState {
    kRunnable,  ///< wants the CPU (on a run queue unless stopped)
    kRunning,   ///< currently on the CPU
    kSleeping,  ///< blocked on a wait channel or timer
    kZombie,    ///< exited, awaiting reap
};

[[nodiscard]] constexpr std::string_view to_string(RunState s) {
    switch (s) {
        case RunState::kRunnable: return "runnable";
        case RunState::kRunning: return "running";
        case RunState::kSleeping: return "sleeping";
        case RunState::kZombie: return "zombie";
    }
    return "?";
}

/// Wait channel: identity of the event a sleeping process awaits, mirroring
/// the BSD `wchan`. ALPS's user-level blocked-process detection (paper §2.4)
/// is "wait channel non-null".
using WaitChannel = const void*;

}  // namespace alps::os
