#include "posix/cgroup.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/assert.h"

namespace alps::posix {

namespace {

constexpr const char* kCpuRoot = "/sys/fs/cgroup/cpu";

bool write_file(const std::string& path, const std::string& value) {
    std::ofstream out(path);
    if (!out) return false;
    out << value;
    out.flush();
    return static_cast<bool>(out);
}

}  // namespace

bool CpuCgroup::available() {
    // Probe: the controller directory must exist and be writable by us.
    struct stat st{};
    if (::stat((std::string(kCpuRoot) + "/cpu.shares").c_str(), &st) != 0) return false;
    const std::string probe = std::string(kCpuRoot) + "/alps-probe";
    if (::mkdir(probe.c_str(), 0755) != 0 && errno != EEXIST) return false;
    ::rmdir(probe.c_str());
    return true;
}

CpuCgroup::CpuCgroup(const std::string& name, long shares) {
    ALPS_EXPECT(!name.empty() && name.find('/') == std::string::npos);
    ALPS_EXPECT(shares >= 2);  // kernel minimum for cpu.shares
    path_ = std::string(kCpuRoot) + "/" + name;
    if (::mkdir(path_.c_str(), 0755) != 0 && errno != EEXIST) {
        throw std::system_error(errno, std::generic_category(), "mkdir " + path_);
    }
    if (!set_shares(shares)) {
        ::rmdir(path_.c_str());
        throw std::system_error(EIO, std::generic_category(),
                                "write cpu.shares in " + path_);
    }
}

CpuCgroup::~CpuCgroup() {
    // Evacuate member processes to the root group so rmdir succeeds.
    std::ifstream tasks(path_ + "/tasks");
    std::string pid;
    while (std::getline(tasks, pid)) {
        write_file(std::string(kCpuRoot) + "/tasks", pid);
    }
    tasks.close();
    ::rmdir(path_.c_str());
}

bool CpuCgroup::attach(pid_t pid) {
    return write_file(path_ + "/tasks", std::to_string(pid));
}

bool CpuCgroup::set_shares(long shares) {
    return write_file(path_ + "/cpu.shares", std::to_string(shares));
}

}  // namespace alps::posix
