// Minimal wrapper around the Linux cgroup-v1 cpu controller — the in-kernel
// mechanism that today covers ALPS's use case (cpu.shares). Used by the
// comparison bench to put the paper's approach side by side with the modern
// kernel facility, and usable as a reference backend.
//
// Requires a writable /sys/fs/cgroup/cpu (root, or a delegated subtree);
// available() reports whether that is the case so tests can skip.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>

namespace alps::posix {

/// RAII cgroup under the v1 cpu controller: created on construction,
/// processes moved back to the root group and the directory removed on
/// destruction.
class CpuCgroup {
public:
    /// True when cgroup-v1 cpu.shares groups can be created here.
    [[nodiscard]] static bool available();

    /// Creates /sys/fs/cgroup/cpu/<name> with the given cpu.shares weight.
    /// Throws std::system_error on failure.
    CpuCgroup(const std::string& name, long shares);
    ~CpuCgroup();

    CpuCgroup(const CpuCgroup&) = delete;
    CpuCgroup& operator=(const CpuCgroup&) = delete;

    /// Moves a process into this group. Returns false on failure.
    bool attach(pid_t pid);

    /// Updates the weight. Returns false on failure.
    bool set_shares(long shares);

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

}  // namespace alps::posix
