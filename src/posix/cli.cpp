#include "posix/cli.h"

#include <charconv>
#include <iostream>

namespace alps::posix::cli {

namespace {

std::optional<std::int64_t> parse_int(std::string_view s) {
    std::int64_t v = 0;
    const auto* end = s.data() + s.size();
    auto [p, ec] = std::from_chars(s.data(), end, v);
    if (ec != std::errc{} || p != end) return std::nullopt;
    return v;
}

}  // namespace

std::optional<std::pair<std::string, util::Share>> parse_assignment(std::string_view s) {
    const auto eq = s.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const auto share = parse_int(s.substr(eq + 1));
    if (!share || *share <= 0) return std::nullopt;
    return std::pair{std::string(s.substr(0, eq)), *share};
}

std::optional<util::Duration> parse_duration(std::string_view s, util::Duration unit) {
    if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
        s.remove_suffix(2);
        unit = util::msec(1);
    } else if (!s.empty() && s.back() == 's') {
        s.remove_suffix(1);
        unit = util::sec(1);
    }
    const auto n = parse_int(s);
    if (!n || *n <= 0) return std::nullopt;
    return util::Duration{unit.count() * *n};
}

std::optional<core::HostUid> resolve_user(const std::string& name, UserLookup lookup) {
    if (const auto numeric = parse_int(name)) {
        return *numeric >= 0 ? std::optional<core::HostUid>(*numeric) : std::nullopt;
    }
    return lookup != nullptr ? lookup(name) : std::nullopt;
}

std::optional<Options> parse_args(int argc, const char* const* argv, UserLookup lookup) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--eager") {
            opt.lazy = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--quantum") {
            if (++i >= argc) return std::nullopt;
            const auto d = parse_duration(argv[i], util::msec(1));
            if (!d) return std::nullopt;
            opt.quantum = *d;
        } else if (arg == "--duration") {
            if (++i >= argc) return std::nullopt;
            const auto d = parse_duration(argv[i], util::sec(1));
            if (!d) return std::nullopt;
            opt.duration = *d;
        } else if (arg == "--user") {
            if (++i >= argc) return std::nullopt;
            const auto a = parse_assignment(argv[i]);
            if (!a) return std::nullopt;
            Target t;
            t.name = a->first;
            const auto uid = resolve_user(t.name, lookup);
            if (!uid) {
                std::cerr << "alpsctl: unknown user '" << t.name << "'\n";
                return std::nullopt;
            }
            t.uid = *uid;
            t.share = a->second;
            opt.user_targets.push_back(std::move(t));
        } else {
            const auto a = parse_assignment(arg);
            if (!a) return std::nullopt;
            const auto pid = parse_int(a->first);
            if (!pid || *pid <= 0) return std::nullopt;
            Target t;
            t.name = a->first;
            t.pid = *pid;
            t.share = a->second;
            opt.pid_targets.push_back(std::move(t));
        }
    }
    if (opt.pid_targets.empty() && opt.user_targets.empty()) return std::nullopt;
    if (!opt.pid_targets.empty() && !opt.user_targets.empty()) {
        std::cerr << "alpsctl: mixing PID= and --user targets is not supported\n";
        return std::nullopt;
    }
    return opt;
}

}  // namespace alps::posix::cli
