// Argument parsing for the alpsctl command-line tool (separated from the
// binary so it is unit-testable).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "alps/host.h"
#include "util/shares.h"
#include "util/time.h"

namespace alps::posix::cli {

struct Target {
    std::string name;
    core::HostPid pid = 0;   ///< pid mode
    core::HostUid uid = -1;  ///< user mode (>= 0)
    util::Share share = 1;
};

struct Options {
    util::Duration quantum = util::msec(10);
    util::Duration duration = util::sec(10);
    bool lazy = true;
    bool quiet = false;
    std::vector<Target> pid_targets;
    std::vector<Target> user_targets;
};

/// Parses "name=share" (share a positive integer).
[[nodiscard]] std::optional<std::pair<std::string, util::Share>> parse_assignment(
    std::string_view s);

/// Parses a duration argument: "<N>" or "<N>ms" (N > 0). Bare numbers mean
/// the given default unit.
[[nodiscard]] std::optional<util::Duration> parse_duration(std::string_view s,
                                                           util::Duration unit);

/// Resolves a user name or numeric uid string. `lookup` maps a name to a
/// uid (production: getpwnam); injectable for tests.
using UserLookup = std::optional<core::HostUid> (*)(const std::string&);
[[nodiscard]] std::optional<core::HostUid> resolve_user(const std::string& name,
                                                        UserLookup lookup);

/// Full argv parse. Returns nullopt (with a message on stderr for semantic
/// errors) when the command line is invalid.
[[nodiscard]] std::optional<Options> parse_args(int argc, const char* const* argv,
                                                UserLookup lookup);

}  // namespace alps::posix::cli
