#include "posix/host.h"

#include <dirent.h>
#include <errno.h>
#include <signal.h>
#include <sys/stat.h>

#include <cstdlib>
#include <string>

#include "posix/proc_stat.h"

namespace alps::posix {

namespace {

core::ControlResult kill_result(int saved_errno) {
    switch (saved_errno) {
        case 0: return core::ControlResult::kOk;
        case ESRCH: return core::ControlResult::kGone;
        case EPERM: return core::ControlResult::kDenied;
        default: return core::ControlResult::kTransient;  // EINTR, EAGAIN, ...
    }
}

/// Does the pid exist at all right now? (kill with signal 0 probes without
/// delivering; EPERM still means "exists".)
bool pid_exists(core::HostPid pid) {
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

core::Sample PosixProcessHost::read_pid(core::HostPid pid) {
    core::Sample s;
    const auto stat = read_proc_stat(pid);
    if (!stat) {
        if (pid_exists(pid)) {
            // The process is there but its stat was unreadable (a torn read
            // racing an exec, EMFILE, ...): a transient failure, not a death.
            s.ok = false;
            return s;
        }
        s.alive = false;
        starttime_.erase(pid);
        return s;
    }
    if (state_is_dead(stat->state)) {
        s.alive = false;
        starttime_.erase(pid);
        return s;
    }
    // PID-reuse detection: same pid, different starttime => a new process
    // now owns the pid, so the entity we were tracking is gone.
    const auto [it, inserted] = starttime_.emplace(pid, stat->starttime_ticks);
    if (!inserted && it->second != stat->starttime_ticks) {
        starttime_.erase(it);
        s.alive = false;
        return s;
    }
    s.alive = true;
    s.blocked = state_is_blocked(stat->state);
    s.stopped = stat->state == 'T' || stat->state == 't';
    // Prefer the nanosecond-precise schedstat; fall back to the clock-tick
    // utime+stime (10 ms granularity) if the kernel lacks schedstats.
    if (const auto ns = read_schedstat(pid)) {
        s.cpu_time = *ns;
    } else {
        s.cpu_time = ticks_to_duration(stat->utime_ticks + stat->stime_ticks);
    }
    return s;
}

core::ControlResult PosixProcessHost::stop_pid(core::HostPid pid) {
    errno = 0;
    if (::kill(static_cast<pid_t>(pid), SIGSTOP) == 0) return core::ControlResult::kOk;
    return kill_result(errno);
}

core::ControlResult PosixProcessHost::cont_pid(core::HostPid pid) {
    errno = 0;
    if (::kill(static_cast<pid_t>(pid), SIGCONT) == 0) return core::ControlResult::kOk;
    return kill_result(errno);
}

std::vector<core::HostPid> PosixProcessHost::pids_of_user(core::HostUid uid) {
    std::vector<core::HostPid> out;
    DIR* dir = ::opendir("/proc");
    if (dir == nullptr) return out;
    while (const dirent* entry = ::readdir(dir)) {
        const char* name = entry->d_name;
        char* end = nullptr;
        const long pid = std::strtol(name, &end, 10);
        if (end == name || *end != '\0' || pid <= 0) continue;
        struct stat st{};
        const std::string path = std::string("/proc/") + name;
        if (::stat(path.c_str(), &st) != 0) continue;
        if (static_cast<core::HostUid>(st.st_uid) == uid) out.push_back(pid);
    }
    ::closedir(dir);
    return out;
}

}  // namespace alps::posix
