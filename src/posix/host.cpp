#include "posix/host.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>

#include <cstdlib>
#include <string>

#include "posix/proc_stat.h"

namespace alps::posix {

core::Sample PosixProcessHost::read_pid(core::HostPid pid) {
    core::Sample s;
    const auto stat = read_proc_stat(pid);
    if (!stat || state_is_dead(stat->state)) {
        s.alive = false;
        return s;
    }
    s.alive = true;
    s.blocked = state_is_blocked(stat->state);
    // Prefer the nanosecond-precise schedstat; fall back to the clock-tick
    // utime+stime (10 ms granularity) if the kernel lacks schedstats.
    if (const auto ns = read_schedstat(pid)) {
        s.cpu_time = *ns;
    } else {
        s.cpu_time = ticks_to_duration(stat->utime_ticks + stat->stime_ticks);
    }
    return s;
}

void PosixProcessHost::stop_pid(core::HostPid pid) {
    ::kill(static_cast<pid_t>(pid), SIGSTOP);
}

void PosixProcessHost::cont_pid(core::HostPid pid) {
    ::kill(static_cast<pid_t>(pid), SIGCONT);
}

std::vector<core::HostPid> PosixProcessHost::pids_of_user(core::HostUid uid) {
    std::vector<core::HostPid> out;
    DIR* dir = ::opendir("/proc");
    if (dir == nullptr) return out;
    while (const dirent* entry = ::readdir(dir)) {
        const char* name = entry->d_name;
        char* end = nullptr;
        const long pid = std::strtol(name, &end, 10);
        if (end == name || *end != '\0' || pid <= 0) continue;
        struct stat st{};
        const std::string path = std::string("/proc/") + name;
        if (::stat(path.c_str(), &st) != 0) continue;
        if (static_cast<core::HostUid>(st.st_uid) == uid) out.push_back(pid);
    }
    ::closedir(dir);
    return out;
}

}  // namespace alps::posix
