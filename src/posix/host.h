// ProcessHost over a real Linux system: /proc for progress, signals for
// control. Everything here is doable by an unprivileged user on their own
// processes — the paper's deployment constraint.
#pragma once

#include "alps/host.h"

namespace alps::posix {

class PosixProcessHost final : public core::ProcessHost {
public:
    core::Sample read_pid(core::HostPid pid) override;
    void stop_pid(core::HostPid pid) override;
    void cont_pid(core::HostPid pid) override;
    std::vector<core::HostPid> pids_of_user(core::HostUid uid) override;
};

}  // namespace alps::posix
