// ProcessHost over a real Linux system: /proc for progress, signals for
// control. Everything here is doable by an unprivileged user on their own
// processes — the paper's deployment constraint.
//
// The channels are fallible and the host says so: kill(2) errors map to
// ControlResult (ESRCH -> kGone, EPERM -> kDenied, else kTransient), an
// unreadable-but-extant pid comes back with Sample::ok = false, and a
// starttime cache (stat field 22) detects pid reuse — the same pid with a
// different start time is a different process, reported as the old entity
// being gone.
#pragma once

#include <cstdint>
#include <map>

#include "alps/host.h"

namespace alps::posix {

class PosixProcessHost final : public core::ProcessHost {
public:
    core::Sample read_pid(core::HostPid pid) override;
    core::ControlResult stop_pid(core::HostPid pid) override;
    core::ControlResult cont_pid(core::HostPid pid) override;
    std::vector<core::HostPid> pids_of_user(core::HostUid uid) override;
    // Keep the base's out-param refresh variant visible alongside the
    // allocating override (it wraps the call above).
    using core::ProcessHost::pids_of_user;

private:
    /// starttime (clock ticks since boot) of each pid at first sight; a
    /// later mismatch means the pid was recycled.
    std::map<core::HostPid, std::uint64_t> starttime_;
};

}  // namespace alps::posix
