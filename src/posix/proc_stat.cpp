#include "posix/proc_stat.h"

#include <unistd.h>

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace alps::posix {

namespace {

std::optional<std::string> slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) return std::nullopt;
    return ss.str();
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
    const auto* begin = token.data();
    const auto* end = token.data() + token.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
}

std::vector<std::string_view> split_ws(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n')) ++i;
        std::size_t j = i;
        while (j < s.size() && s[j] != ' ' && s[j] != '\n') ++j;
        if (j > i) out.push_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

}  // namespace

std::optional<ProcStat> parse_proc_stat(std::string_view content) {
    // Layout: "<pid> (<comm>) <state> <ppid> ... "; comm may contain spaces
    // and ')' so split at the last ')'.
    const std::size_t open = content.find('(');
    const std::size_t close = content.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
        return std::nullopt;
    }

    ProcStat st;
    if (!parse_number(
            std::string_view(content.substr(0, open > 0 ? open - 1 : 0)), st.pid)) {
        // pid is the first token before " ("
        const auto head = split_ws(content.substr(0, open));
        if (head.empty() || !parse_number(head[0], st.pid)) return std::nullopt;
    }
    st.comm = std::string(content.substr(open + 1, close - open - 1));

    const auto rest = split_ws(content.substr(close + 1));
    // rest[0] = state; utime/stime are stat fields 14/15, i.e. rest[11]/[12];
    // starttime is field 22, i.e. rest[19]. A real stat line has 52 fields —
    // anything shorter than starttime is truncated and rejected.
    if (rest.size() < 20 || rest[0].size() != 1) return std::nullopt;
    st.state = rest[0][0];
    if (!parse_number(rest[11], st.utime_ticks)) return std::nullopt;
    if (!parse_number(rest[12], st.stime_ticks)) return std::nullopt;
    if (!parse_number(rest[19], st.starttime_ticks)) return std::nullopt;
    return st;
}

std::optional<util::Duration> parse_schedstat(std::string_view content) {
    const auto tokens = split_ws(content);
    if (tokens.empty()) return std::nullopt;
    std::uint64_t ns = 0;
    if (!parse_number(tokens[0], ns)) return std::nullopt;
    return util::Duration{static_cast<std::int64_t>(ns)};
}

std::optional<ProcStat> read_proc_stat(std::int64_t pid) {
    const auto content = slurp("/proc/" + std::to_string(pid) + "/stat");
    if (!content) return std::nullopt;
    return parse_proc_stat(*content);
}

std::optional<util::Duration> read_schedstat(std::int64_t pid) {
    const auto content = slurp("/proc/" + std::to_string(pid) + "/schedstat");
    if (!content) return std::nullopt;
    return parse_schedstat(*content);
}

util::Duration ticks_to_duration(std::uint64_t ticks) {
    static const long hz = ::sysconf(_SC_CLK_TCK);
    const double sec = static_cast<double>(ticks) / static_cast<double>(hz > 0 ? hz : 100);
    return util::Duration{static_cast<std::int64_t>(sec * 1e9)};
}

}  // namespace alps::posix
