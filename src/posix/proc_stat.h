// /proc/<pid>/stat and /proc/<pid>/schedstat readers.
//
// On the paper's FreeBSD host, ALPS reads per-process CPU time and the wait
// channel through kvm. The Linux equivalents:
//   * /proc/<pid>/schedstat field 1: exact on-CPU time in nanoseconds;
//   * /proc/<pid>/stat field 3: the state letter ('R' runnable, 'S'/'D'
//     sleeping — the paper's "blocked" test) and fields 14/15 (utime+stime
//     in clock ticks, the coarse fallback when schedstat is unavailable).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.h"

namespace alps::posix {

struct ProcStat {
    std::int64_t pid = 0;
    std::string comm;
    char state = '?';
    std::uint64_t utime_ticks = 0;
    std::uint64_t stime_ticks = 0;
    /// Stat field 22: the time the process started after boot, in clock
    /// ticks. (pid, starttime) uniquely identifies a process incarnation, so
    /// a changed starttime under the same pid means the pid was reused.
    std::uint64_t starttime_ticks = 0;
};

/// Parses the contents of /proc/<pid>/stat. Handles comm values containing
/// spaces and parentheses (splits at the *last* ')'). Returns nullopt on
/// malformed input.
[[nodiscard]] std::optional<ProcStat> parse_proc_stat(std::string_view content);

/// Parses /proc/<pid>/schedstat ("<oncpu_ns> <wait_ns> <slices>"); returns
/// the on-CPU time.
[[nodiscard]] std::optional<util::Duration> parse_schedstat(std::string_view content);

/// Reads and parses the files for a live pid; nullopt if the process is gone.
[[nodiscard]] std::optional<ProcStat> read_proc_stat(std::int64_t pid);
[[nodiscard]] std::optional<util::Duration> read_schedstat(std::int64_t pid);

/// Converts clock ticks (USER_HZ) to a duration.
[[nodiscard]] util::Duration ticks_to_duration(std::uint64_t ticks);

/// The paper's §2.4 blocked test on a state letter: sleeping (interruptible
/// or not). 'T' (job-control stop) is not "blocked" — ALPS put it there.
[[nodiscard]] constexpr bool state_is_blocked(char state) {
    return state == 'S' || state == 'D';
}

/// True for states that mean the process no longer runs (zombie/dead).
[[nodiscard]] constexpr bool state_is_dead(char state) {
    return state == 'Z' || state == 'X';
}

}  // namespace alps::posix
