#include "posix/runner.h"

#include <sys/resource.h>
#include <time.h>

#include "util/assert.h"

namespace alps::posix {

using util::Duration;
using util::TimePoint;

util::Duration self_cpu_time() {
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    const auto tv = [](const timeval& t) {
        return util::sec(t.tv_sec) + util::usec(t.tv_usec);
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

util::TimePoint monotonic_now() {
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return TimePoint{util::sec(ts.tv_sec) + util::nsec(ts.tv_nsec)};
}

namespace {

void sleep_until(TimePoint t) {
    timespec ts{};
    const auto ns = t.since_epoch.count();
    ts.tv_sec = ns / 1'000'000'000;
    ts.tv_nsec = ns % 1'000'000'000;
    while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) != 0) {
        // EINTR: retry with the same absolute deadline.
    }
}

}  // namespace

RunTotals run_alps_loop(core::Scheduler& scheduler, Duration wall,
                        const std::atomic<bool>* stop,
                        const std::function<void()>& pre_tick) {
    ALPS_EXPECT(wall > Duration::zero());

    const Duration q = scheduler.config().quantum;
    const TimePoint start = monotonic_now();
    const Duration cpu0 = self_cpu_time();
    const TimePoint end = start + wall;

    RunTotals totals;
    std::int64_t boundary = 1;
    while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
        const TimePoint next = start + Duration{q.count() * boundary};
        if (next >= end) break;
        sleep_until(next);
        if (pre_tick) pre_tick();
        scheduler.tick();
        ++totals.ticks;
        // Next boundary strictly after "now": late ticks skip, not bunch.
        const auto elapsed = (monotonic_now() - start).count();
        boundary = elapsed / q.count() + 1;
    }

    scheduler.release_all();
    totals.wall = monotonic_now() - start;
    totals.cpu_self = self_cpu_time() - cpu0;
    totals.overhead_fraction =
        util::to_sec(totals.wall) > 0.0
            ? util::to_sec(totals.cpu_self) / util::to_sec(totals.wall)
            : 0.0;
    return totals;
}

// ----------------------------------------------------------------------------
// PosixAlpsRunner

PosixAlpsRunner::PosixAlpsRunner(core::SchedulerConfig cfg)
    : control_(host_), scheduler_(control_, cfg) {}

RunTotals PosixAlpsRunner::run_for(Duration wall) {
    stop_.store(false, std::memory_order_relaxed);
    return run_alps_loop(scheduler_, wall, &stop_);
}

// ----------------------------------------------------------------------------
// PosixGroupAlpsRunner

PosixGroupAlpsRunner::PosixGroupAlpsRunner(core::SchedulerConfig cfg,
                                           Duration refresh_period)
    : control_(host_), scheduler_(control_, cfg), refresh_period_(refresh_period) {
    ALPS_EXPECT(refresh_period > Duration::zero());
}

core::EntityId PosixGroupAlpsRunner::manage_user(std::string name, core::HostUid uid,
                                                 util::Share share) {
    const core::EntityId id = control_.add_principal(std::move(name), uid);
    control_.refresh(id);
    scheduler_.add(id, share);
    return id;
}

core::EntityId PosixGroupAlpsRunner::manage_group(std::string name, util::Share share) {
    const core::EntityId id = control_.add_principal(std::move(name));
    scheduler_.add(id, share);
    return id;
}

RunTotals PosixGroupAlpsRunner::run_for(Duration wall) {
    stop_.store(false, std::memory_order_relaxed);
    TimePoint next_refresh = monotonic_now();
    auto pre_tick = [this, &next_refresh] {
        const TimePoint now = monotonic_now();
        if (now < next_refresh) return;
        next_refresh = now + refresh_period_;
        control_.refresh_all();
    };
    return run_alps_loop(scheduler_, wall, &stop_, pre_tick);
}

}  // namespace alps::posix
