// The real-OS ALPS driver loop: sleep to each quantum boundary on the
// monotonic clock (absolute, so late ticks do not drift the schedule), run
// one tick of the algorithm, repeat.
//
// Two deployments, matching the paper:
//   * PosixAlpsRunner       — one entity per pid (Sections 2-4);
//   * PosixGroupAlpsRunner  — resource principals spanning a user's
//     processes, with periodic membership refresh (Section 5).
#pragma once

#include <atomic>
#include <functional>

#include "alps/group_control.h"
#include "alps/host.h"
#include "alps/scheduler.h"
#include "posix/host.h"

namespace alps::posix {

struct RunTotals {
    std::uint64_t ticks = 0;
    util::Duration wall{0};
    util::Duration cpu_self{0};  ///< CPU consumed by the ALPS loop itself
    /// cpu_self / wall — the paper's §3.2 overhead metric.
    double overhead_fraction = 0.0;
};

/// The quantum loop shared by both runners: ticks `scheduler` at absolute
/// boundaries of its quantum for `wall` of real time (or until `*stop`),
/// invoking `pre_tick` (if given) before each tick. On return all managed
/// entities have been resumed. Returns timing and self-CPU totals.
RunTotals run_alps_loop(core::Scheduler& scheduler, util::Duration wall,
                        const std::atomic<bool>* stop = nullptr,
                        const std::function<void()>& pre_tick = nullptr);

/// Per-process ALPS on the real OS (EntityId == pid).
class PosixAlpsRunner {
public:
    explicit PosixAlpsRunner(core::SchedulerConfig cfg = {});

    /// The scheduler to register pids with (EntityId == pid).
    [[nodiscard]] core::Scheduler& scheduler() { return scheduler_; }

    /// Blocks and schedules for `wall` (or until request_stop() from another
    /// thread).
    RunTotals run_for(util::Duration wall);

    /// Asynchronously ends a run_for in progress (signal-safe).
    void request_stop() { stop_.store(true, std::memory_order_relaxed); }

private:
    PosixProcessHost host_;
    core::PidProcessControl control_;
    core::Scheduler scheduler_;
    std::atomic<bool> stop_{false};
};

/// Group-principal ALPS on the real OS: entities are principals (e.g. one
/// per user account); membership is refreshed from /proc every
/// `refresh_period` (the paper uses one second).
class PosixGroupAlpsRunner {
public:
    explicit PosixGroupAlpsRunner(core::SchedulerConfig cfg = {},
                                  util::Duration refresh_period = util::sec(1));

    /// Creates a principal tracking all of `uid`'s processes and registers
    /// it with the given share. Returns its EntityId.
    core::EntityId manage_user(std::string name, core::HostUid uid, util::Share share);

    /// Creates an explicit-membership principal with the given share.
    core::EntityId manage_group(std::string name, util::Share share);

    [[nodiscard]] core::Scheduler& scheduler() { return scheduler_; }
    [[nodiscard]] core::GroupProcessControl& groups() { return control_; }

    RunTotals run_for(util::Duration wall);
    void request_stop() { stop_.store(true, std::memory_order_relaxed); }

private:
    PosixProcessHost host_;
    core::GroupProcessControl control_;
    core::Scheduler scheduler_;
    util::Duration refresh_period_;
    std::atomic<bool> stop_{false};
};

/// CPU time consumed by the calling process (getrusage(RUSAGE_SELF)).
[[nodiscard]] util::Duration self_cpu_time();

/// Monotonic clock, as a TimePoint.
[[nodiscard]] util::TimePoint monotonic_now();

}  // namespace alps::posix
