#include "posix/spawn.h"

#include <sched.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace alps::posix {

namespace {

[[noreturn]] void busy_loop_forever() {
    volatile std::uint64_t counter = 0;
    for (;;) counter = counter + 1;
}

util::Duration thread_cpu_now() {
    timespec ts{};
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return util::sec(ts.tv_sec) + util::nsec(ts.tv_nsec);
}

[[noreturn]] void phased_loop_forever(util::Duration busy, util::Duration asleep) {
    volatile std::uint64_t counter = 0;
    for (;;) {
        const util::Duration until = thread_cpu_now() + busy;
        while (thread_cpu_now() < until) counter = counter + 1;
        timespec ts{};
        ts.tv_sec = asleep.count() / 1'000'000'000;
        ts.tv_nsec = asleep.count() % 1'000'000'000;
        ::nanosleep(&ts, nullptr);
    }
}

pid_t do_fork() {
    const pid_t pid = ::fork();
    if (pid < 0) {
        throw std::system_error(errno, std::generic_category(), "fork");
    }
    return pid;
}

}  // namespace

pid_t spawn_busy_child() {
    const pid_t pid = do_fork();
    if (pid == 0) busy_loop_forever();
    return pid;
}

pid_t spawn_phased_child(util::Duration busy, util::Duration asleep) {
    const pid_t pid = do_fork();
    if (pid == 0) phased_loop_forever(busy, asleep);
    return pid;
}

void kill_children(std::span<const pid_t> pids) {
    for (pid_t pid : pids) {
        if (pid <= 0) continue;
        // SIGKILL terminates even a stopped child; the SIGCONT is belt and
        // braces for kernels that defer the kill of a stopped process.
        ::kill(pid, SIGKILL);
        ::kill(pid, SIGCONT);
    }
    for (pid_t pid : pids) {
        if (pid <= 0) continue;
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
}

bool pin_to_cpu(pid_t pid, int cpu) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<std::size_t>(cpu), &set);
    return ::sched_setaffinity(pid, sizeof set, &set) == 0;
}

}  // namespace alps::posix
