// Helpers for spawning the synthetic workload children used by the examples,
// the POSIX integration tests, and the Table-1 microbenchmark.
#pragma once

#include <sys/types.h>

#include <span>
#include <vector>

#include "util/time.h"

namespace alps::posix {

/// Forks a child that spins forever (the paper's compute-bound workload).
/// Returns the child's pid; throws std::system_error on failure.
[[nodiscard]] pid_t spawn_busy_child();

/// Forks a child that alternates `busy` of CPU (measured on its thread CPU
/// clock) with `asleep` of nanosleep — the §3.3 I/O simulator.
[[nodiscard]] pid_t spawn_phased_child(util::Duration busy, util::Duration asleep);

/// SIGKILLs and reaps every child in the list (best effort).
void kill_children(std::span<const pid_t> pids);

/// Pins a process to one CPU (mimics the paper's uniprocessor host).
/// Returns false if the affinity call failed.
bool pin_to_cpu(pid_t pid, int cpu);

/// RAII bundle of children: kills and reaps them on destruction.
class ChildSet {
public:
    ChildSet() = default;
    ~ChildSet() { kill_children(pids_); }

    ChildSet(const ChildSet&) = delete;
    ChildSet& operator=(const ChildSet&) = delete;

    pid_t add_busy() {
        pids_.push_back(spawn_busy_child());
        return pids_.back();
    }
    pid_t add_phased(util::Duration busy, util::Duration asleep) {
        pids_.push_back(spawn_phased_child(busy, asleep));
        return pids_.back();
    }

    [[nodiscard]] const std::vector<pid_t>& pids() const { return pids_; }

private:
    std::vector<pid_t> pids_;
};

}  // namespace alps::posix
