#include "sched/lottery_policy.h"

#include "util/assert.h"

namespace alps::sched {

LotteryPolicy::LotteryPolicy(util::Duration quantum, std::uint64_t seed)
    : quantum_(quantum), rng_(seed) {
    ALPS_EXPECT(quantum > util::Duration::zero());
}

void LotteryPolicy::set_tickets(os::Pid pid, std::int64_t tickets) {
    ALPS_EXPECT(tickets > 0);
    tickets_[pid] = tickets;
}

void LotteryPolicy::add(os::Proc& p) { tickets_.try_emplace(p.pid, 1); }

void LotteryPolicy::remove(os::Proc& p) {
    dequeue(p);
    tickets_.erase(p.pid);
}

void LotteryPolicy::enqueue(os::Proc& p) {
    ALPS_EXPECT(!queued_.contains(p.pid));
    queued_.emplace(p.pid, &p);
    drawn_ = nullptr;  // the lottery pool changed
}

void LotteryPolicy::dequeue(os::Proc& p) {
    if (queued_.erase(p.pid) > 0) drawn_ = nullptr;
}

void LotteryPolicy::ensure_drawn() {
    if (drawn_ != nullptr || queued_.empty()) return;
    std::int64_t total = 0;
    for (const auto& [pid, p] : queued_) total += tickets_.at(pid);
    std::int64_t winner = rng_.uniform_int(0, total - 1);
    for (const auto& [pid, p] : queued_) {
        winner -= tickets_.at(pid);
        if (winner < 0) {
            drawn_ = p;
            return;
        }
    }
    ALPS_ENSURE(false);  // unreachable: tickets sum to total
}

os::Proc* LotteryPolicy::peek() {
    ensure_drawn();
    return drawn_;
}

os::Proc* LotteryPolicy::pop() {
    ensure_drawn();
    os::Proc* winner = drawn_;
    if (winner != nullptr) dequeue(*winner);
    return winner;
}

bool LotteryPolicy::preempts(const os::Proc&, const os::Proc&) const {
    return false;  // strictly quantum-driven
}

bool LotteryPolicy::yields_to(const os::Proc&, const os::Proc&) const {
    return true;  // always re-draw at quantum expiry
}

void LotteryPolicy::charge(os::Proc&, util::Duration) {}

void LotteryPolicy::on_wakeup(os::Proc&, util::Duration) {}

void LotteryPolicy::second_tick(std::span<os::Proc* const>, double, util::TimePoint) {}

}  // namespace alps::sched
