// Lottery scheduling (Waldspurger & Weihl, 1994) as an in-kernel policy:
// each quantum, a ticket-weighted random drawing picks the next process.
// Probabilistically proportional-share; the baseline bench contrasts its
// (higher-variance) accuracy with stride and with user-level ALPS.
#pragma once

#include <cstdint>
#include <map>

#include "os/policy.h"
#include "util/rng.h"

namespace alps::sched {

class LotteryPolicy final : public os::SchedPolicy {
public:
    explicit LotteryPolicy(util::Duration quantum = util::msec(10),
                           std::uint64_t seed = 42);

    /// Assigns tickets (default 1).
    void set_tickets(os::Pid pid, std::int64_t tickets);

    void add(os::Proc& p) override;
    void remove(os::Proc& p) override;
    void enqueue(os::Proc& p) override;
    void dequeue(os::Proc& p) override;
    os::Proc* peek() override;
    os::Proc* pop() override;
    [[nodiscard]] bool preempts(const os::Proc& cand, const os::Proc& running) const override;
    [[nodiscard]] bool yields_to(const os::Proc& running, const os::Proc& cand) const override;
    void charge(os::Proc& p, util::Duration ran) override;
    void on_wakeup(os::Proc& p, util::Duration slept) override;
    void second_tick(std::span<os::Proc* const> procs, double loadavg, util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override { return quantum_; }
    [[nodiscard]] std::size_t runnable() const override { return queued_.size(); }

private:
    /// Draws a winner if none is cached. peek() must be stable until the
    /// queue changes, so the drawing is memoized.
    void ensure_drawn();

    util::Duration quantum_;
    util::Rng rng_;
    std::map<os::Pid, std::int64_t> tickets_;
    std::map<os::Pid, os::Proc*> queued_;
    os::Proc* drawn_ = nullptr;
};

}  // namespace alps::sched
