#include "sched/stride_policy.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace alps::sched {

StridePolicy::StridePolicy(util::Duration quantum) : quantum_(quantum) {
    ALPS_EXPECT(quantum > util::Duration::zero());
}

StridePolicy::State& StridePolicy::state(os::Pid pid) { return states_[pid]; }

void StridePolicy::set_tickets(os::Pid pid, std::int64_t tickets) {
    ALPS_EXPECT(tickets > 0);
    state(pid).tickets = tickets;
}

double StridePolicy::pass_of(os::Pid pid) const {
    auto it = states_.find(pid);
    ALPS_EXPECT(it != states_.end());
    return it->second.pass;
}

void StridePolicy::add(os::Proc& p) {
    State& s = state(p.pid);
    // Join at the current virtual time so newcomers neither monopolize nor
    // starve.
    s.pass = std::max(s.pass, vtime_);
}

void StridePolicy::remove(os::Proc& p) {
    dequeue(p);
    states_.erase(p.pid);
}

void StridePolicy::enqueue(os::Proc& p) {
    State& s = state(p.pid);
    ALPS_EXPECT(!s.queued);
    // Re-join at current virtual time after a sleep (no banked credit).
    s.pass = std::max(s.pass, vtime_);
    s.queued = true;
    queued_.emplace(p.pid, &p);
}

void StridePolicy::dequeue(os::Proc& p) {
    auto it = states_.find(p.pid);
    if (it == states_.end() || !it->second.queued) return;
    it->second.queued = false;
    queued_.erase(p.pid);
}

os::Proc* StridePolicy::peek() {
    os::Proc* best = nullptr;
    double best_pass = std::numeric_limits<double>::max();
    for (const auto& [pid, p] : queued_) {
        const double pass = states_.at(pid).pass;
        if (pass < best_pass) {
            best_pass = pass;
            best = p;
        }
    }
    return best;
}

os::Proc* StridePolicy::pop() {
    os::Proc* best = peek();
    if (best != nullptr) dequeue(*best);
    return best;
}

bool StridePolicy::preempts(const os::Proc& cand, const os::Proc& running) const {
    // Stride is quantum-driven: decisions happen at quantum boundaries. A
    // waker only preempts if the running process has already overrun the
    // candidate's pass by a full stride (keeps the sim responsive without
    // churning).
    const auto c = states_.find(cand.pid);
    const auto r = states_.find(running.pid);
    ALPS_EXPECT(c != states_.end() && r != states_.end());
    return c->second.pass + stride_of(c->second) < r->second.pass;
}

bool StridePolicy::yields_to(const os::Proc& running, const os::Proc& cand) const {
    const auto c = states_.find(cand.pid);
    const auto r = states_.find(running.pid);
    ALPS_EXPECT(c != states_.end() && r != states_.end());
    return c->second.pass <= r->second.pass;
}

void StridePolicy::charge(os::Proc& p, util::Duration ran) {
    State& s = state(p.pid);
    // The pass at which someone is being given the CPU is the best proxy for
    // global virtual time; joiners and wakers enter there.
    vtime_ = std::max(vtime_, s.pass);
    const double quanta =
        static_cast<double>(ran.count()) / static_cast<double>(quantum_.count());
    s.pass += stride_of(s) * quanta;
}

void StridePolicy::on_wakeup(os::Proc&, util::Duration) {}

void StridePolicy::second_tick(std::span<os::Proc* const>, double, util::TimePoint) {}

}  // namespace alps::sched
