// Stride scheduling (Waldspurger & Weihl, 1995) as an *in-kernel* policy.
//
// This is the class of scheduler the paper positions ALPS against: previous
// proportional-share work "designed to replace the kernel scheduler" (§1).
// The baseline bench runs the same workloads under an in-kernel stride
// scheduler to show what ALPS's user-level approach gives up (and that it
// gives up little).
//
// Each process has `tickets`; stride = kStride1 / tickets; the runnable
// process with the least pass value runs for one quantum and its pass
// advances by stride × (time used / quantum).
#pragma once

#include <cstdint>
#include <map>

#include "os/policy.h"

namespace alps::sched {

class StridePolicy final : public os::SchedPolicy {
public:
    explicit StridePolicy(util::Duration quantum = util::msec(10));

    /// Assigns tickets (default 1). May be called before or after the pid is
    /// added; takes effect at the next charge.
    void set_tickets(os::Pid pid, std::int64_t tickets);

    void add(os::Proc& p) override;
    void remove(os::Proc& p) override;
    void enqueue(os::Proc& p) override;
    void dequeue(os::Proc& p) override;
    os::Proc* peek() override;
    os::Proc* pop() override;
    [[nodiscard]] bool preempts(const os::Proc& cand, const os::Proc& running) const override;
    [[nodiscard]] bool yields_to(const os::Proc& running, const os::Proc& cand) const override;
    void charge(os::Proc& p, util::Duration ran) override;
    void on_wakeup(os::Proc& p, util::Duration slept) override;
    void second_tick(std::span<os::Proc* const> procs, double loadavg, util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override { return quantum_; }
    [[nodiscard]] std::size_t runnable() const override { return queued_.size(); }

    [[nodiscard]] double pass_of(os::Pid pid) const;

private:
    static constexpr double kStride1 = 1 << 20;

    struct State {
        std::int64_t tickets = 1;
        double pass = 0.0;
        bool queued = false;
    };

    [[nodiscard]] double stride_of(const State& s) const { return kStride1 / static_cast<double>(s.tickets); }
    State& state(os::Pid pid);

    util::Duration quantum_;
    std::map<os::Pid, State> states_;
    std::map<os::Pid, os::Proc*> queued_;  // deterministic order
    /// Global virtual time: the pass of the most recently charged process.
    /// Joiners and wakers enter at this point, so they neither reclaim time
    /// they were absent for nor starve the incumbents.
    double vtime_ = 0.0;
};

}  // namespace alps::sched
