#include "sched/wrr_policy.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::sched {

WrrPolicy::WrrPolicy(util::Duration quantum) : quantum_(quantum) {
    ALPS_EXPECT(quantum > util::Duration::zero());
}

WrrPolicy::State& WrrPolicy::state(os::Pid pid) { return states_[pid]; }

void WrrPolicy::set_tickets(os::Pid pid, std::int64_t tickets) {
    ALPS_EXPECT(tickets > 0);
    state(pid).tickets = tickets;
}

void WrrPolicy::add(os::Proc& p) {
    states_.try_emplace(p.pid);
    if (std::find(rotation_.begin(), rotation_.end(), p.pid) == rotation_.end()) {
        rotation_.push_back(p.pid);
    }
}

void WrrPolicy::remove(os::Proc& p) {
    dequeue(p);
    const auto it = std::find(rotation_.begin(), rotation_.end(), p.pid);
    if (it != rotation_.end()) {
        const auto idx = static_cast<std::size_t>(it - rotation_.begin());
        rotation_.erase(it);
        if (cursor_ > idx) --cursor_;
        if (!rotation_.empty()) cursor_ %= rotation_.size();
    }
    states_.erase(p.pid);
}

void WrrPolicy::enqueue(os::Proc& p) {
    State& s = state(p.pid);
    ALPS_EXPECT(!s.queued);
    s.queued = true;
    queued_.emplace(p.pid, &p);
}

void WrrPolicy::dequeue(os::Proc& p) {
    auto it = states_.find(p.pid);
    if (it == states_.end() || !it->second.queued) return;
    it->second.queued = false;
    queued_.erase(p.pid);
}

std::optional<std::size_t> WrrPolicy::next_turn_index() const {
    if (queued_.empty() || rotation_.empty()) return std::nullopt;
    // The client under the cursor keeps its turn while it is queued with
    // quanta left; otherwise the turn passes clockwise to the next queued
    // client.
    {
        const os::Pid pid = rotation_[cursor_];
        const auto it = states_.find(pid);
        if (it != states_.end() && it->second.queued && it->second.remaining > 0.0) {
            return cursor_;
        }
    }
    for (std::size_t step = 1; step <= rotation_.size(); ++step) {
        const std::size_t idx = (cursor_ + step) % rotation_.size();
        const auto it = states_.find(rotation_[idx]);
        if (it != states_.end() && it->second.queued) return idx;
    }
    return std::nullopt;
}

os::Proc* WrrPolicy::peek() {
    const auto idx = next_turn_index();
    return idx ? queued_.at(rotation_[*idx]) : nullptr;
}

os::Proc* WrrPolicy::pop() {
    const auto idx = next_turn_index();
    if (!idx) return nullptr;
    const os::Pid pid = rotation_[*idx];
    State& s = state(pid);
    if (*idx != cursor_ || s.remaining <= 0.0) {
        // A new turn begins.
        cursor_ = *idx;
        s.remaining = static_cast<double>(s.tickets);
    }
    os::Proc* p = queued_.at(pid);
    dequeue(*p);
    return p;
}

bool WrrPolicy::preempts(const os::Proc&, const os::Proc&) const {
    return false;  // strict rotation
}

bool WrrPolicy::yields_to(const os::Proc& running, const os::Proc&) const {
    // Yield only when the running client's turn is exhausted.
    const auto it = states_.find(running.pid);
    ALPS_EXPECT(it != states_.end());
    return it->second.remaining <= 0.0;
}

void WrrPolicy::charge(os::Proc& p, util::Duration ran) {
    State& s = state(p.pid);
    s.remaining -= static_cast<double>(ran.count()) /
                   static_cast<double>(quantum_.count());
}

void WrrPolicy::on_wakeup(os::Proc&, util::Duration) {}

void WrrPolicy::second_tick(std::span<os::Proc* const>, double, util::TimePoint) {}

}  // namespace alps::sched
