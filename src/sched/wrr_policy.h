// Weighted round-robin as an in-kernel policy: each runnable client runs
// `tickets` consecutive quanta per rotation. The classic low-cost
// proportional-share scheme — exact over a full rotation, but *bursty*: a
// large-ticket client monopolizes the CPU for its whole allocation, so
// short-horizon fairness degrades with the ticket spread. The baseline
// bench contrasts this burstiness with stride's smoothness and with ALPS.
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <vector>

#include "os/policy.h"

namespace alps::sched {

class WrrPolicy final : public os::SchedPolicy {
public:
    explicit WrrPolicy(util::Duration quantum = util::msec(10));

    /// Assigns tickets (default 1): consecutive quanta per rotation.
    void set_tickets(os::Pid pid, std::int64_t tickets);

    void add(os::Proc& p) override;
    void remove(os::Proc& p) override;
    void enqueue(os::Proc& p) override;
    void dequeue(os::Proc& p) override;
    os::Proc* peek() override;
    os::Proc* pop() override;
    [[nodiscard]] bool preempts(const os::Proc& cand, const os::Proc& running) const override;
    [[nodiscard]] bool yields_to(const os::Proc& running, const os::Proc& cand) const override;
    void charge(os::Proc& p, util::Duration ran) override;
    void on_wakeup(os::Proc& p, util::Duration slept) override;
    void second_tick(std::span<os::Proc* const> procs, double loadavg,
                     util::TimePoint now) override;
    [[nodiscard]] util::Duration slice() const override { return quantum_; }
    [[nodiscard]] std::size_t runnable() const override { return queued_.size(); }

private:
    struct State {
        std::int64_t tickets = 1;
        double remaining = 0.0;  ///< quanta left in the current rotation turn
        bool queued = false;
    };

    State& state(os::Pid pid);
    /// Rotation index whose turn it is (or would be), without mutating any
    /// turn state; nullopt when nothing is queued.
    [[nodiscard]] std::optional<std::size_t> next_turn_index() const;

    util::Duration quantum_;
    std::map<os::Pid, State> states_;
    std::vector<os::Pid> rotation_;  ///< all known pids, rotation order
    std::map<os::Pid, os::Proc*> queued_;
    std::size_t cursor_ = 0;
};

}  // namespace alps::sched
