// Epoch barrier for the sharded engine's conservative lockstep.
//
// A centralized sense-reversing barrier: arrivals count up on an atomic; the
// last arriver resets the count and publishes a new generation; earlier
// arrivers wait for the generation to change. Two properties matter here:
//
//  * Happens-before: every arriver's pre-barrier writes are ordered before
//    every waiter's post-barrier reads. The fetch_add(acq_rel) chain on
//    `waiting_` orders all arrivals against the last arriver, and the
//    release-store / acquire-load pair on `generation_` orders the last
//    arriver against everyone it releases. This is what lets shards read each
//    other's published state after the barrier with plain loads (TSan-clean).
//
//  * No busy-burn: shards may be oversubscribed onto fewer cores than shards
//    (including a single core). After a brief spin the waiters park in
//    C++20 atomic::wait, so an oversubscribed lockstep degrades to scheduler
//    latency, not to N-1 cores of spinning.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/spsc.h"  // kCacheLine
#include "util/assert.h"

namespace alps::sim {

class EpochBarrier {
public:
    explicit EpochBarrier(unsigned parties) : parties_(parties) {
        ALPS_EXPECT(parties >= 1);
    }

    EpochBarrier(const EpochBarrier&) = delete;
    EpochBarrier& operator=(const EpochBarrier&) = delete;

    [[nodiscard]] unsigned parties() const { return parties_; }

    /// Blocks until all `parties` threads have arrived. Returns true on the
    /// serial thread (the last arriver) — callers can hang per-epoch
    /// bookkeeping off it, mirroring std::barrier's completion step.
    bool arrive_and_wait() {
        const std::uint64_t gen = generation_.load(std::memory_order_acquire);
        // acq_rel: acquire pairs with earlier arrivers' releases (their
        // pre-barrier writes become visible to the last arriver); release
        // publishes this thread's writes into the chain.
        const unsigned arrived =
            1 + waiting_.fetch_add(1, std::memory_order_acq_rel);
        ALPS_GUARD(arrived <= parties_);
        if (arrived == parties_) {
            waiting_.store(0, std::memory_order_relaxed);
            generation_.store(gen + 1, std::memory_order_release);
            generation_.notify_all();
            return true;
        }
        // Brief spin covers the common case of shards arriving within a few
        // hundred ns of each other; then park so oversubscribed hosts (cores
        // < shards) don't burn the core the straggler needs.
        for (int i = 0; i < 256; ++i) {
            if (generation_.load(std::memory_order_acquire) != gen) return false;
        }
        while (generation_.load(std::memory_order_acquire) == gen) {
            generation_.wait(gen, std::memory_order_acquire);
        }
        return false;
    }

    /// Epochs completed (generation counter). Test/introspection only.
    [[nodiscard]] std::uint64_t generation() const {
        return generation_.load(std::memory_order_acquire);
    }

private:
    const unsigned parties_;
    alignas(kCacheLine) std::atomic<unsigned> waiting_{0};
    alignas(kCacheLine) std::atomic<std::uint64_t> generation_{0};
};

}  // namespace alps::sim
