#include "sim/engine.h"

#include <utility>

namespace alps::sim {

EventId Engine::schedule_at(TimePoint t, Callback cb) {
    ALPS_EXPECT(t >= now_);
    ALPS_EXPECT(cb != nullptr);
    const EventId id = next_id_++;
    queue_.push(QueueEntry{t, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
}

EventId Engine::schedule_after(Duration d, Callback cb) {
    ALPS_EXPECT(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
}

bool Engine::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Engine::pop_live(QueueEntry& out) {
    while (!queue_.empty()) {
        QueueEntry e = queue_.top();
        if (callbacks_.contains(e.id)) {
            out = e;
            return true;
        }
        queue_.pop();  // cancelled; discard lazily
    }
    return false;
}

bool Engine::step() {
    QueueEntry e;
    if (!pop_live(e)) return false;
    queue_.pop();
    auto it = callbacks_.find(e.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ALPS_ENSURE(e.time >= now_);
    now_ = e.time;
    cb();
    return true;
}

void Engine::run_until(TimePoint t) {
    ALPS_EXPECT(t >= now_);
    QueueEntry e;
    while (pop_live(e) && e.time <= t) {
        step();
    }
    now_ = t;
}

void Engine::run() {
    while (step()) {
    }
}

}  // namespace alps::sim
