#include "sim/engine.h"

#include <bit>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/recorder.h"

namespace alps::sim {

namespace {

/// Publishes the virtual clock as the thread's ambient telemetry time so
/// records emitted from event callbacks (scheduler ticks, kernel dispatches)
/// carry simulated timestamps. Guarded by active(): with no sink attached the
/// engine's only tracing cost is this one relaxed load per clock advance.
void publish_clock(TimePoint t) {
    if (telemetry::active()) {
        telemetry::set_now_ns(static_cast<std::uint64_t>(t.since_epoch.count()));
    }
}

}  // namespace

Engine::~Engine() {
    // Slabs are raw arena storage, so run the record destructors explicitly
    // (generic events may still hold captured std::function state); the
    // bytes themselves go back with the arena.
    for (std::uint32_t i = 0; i < slot_count_; ++i) slot_ref(i).~Slot();
}

Engine::HotKind Engine::register_hot(HotFn fn, void* ctx) {
    ALPS_EXPECT(fn != nullptr);
    ALPS_EXPECT(hot_.size() < 255);  // kind 0 is the generic path
    hot_.emplace_back(fn, ctx);
    return static_cast<HotKind>(hot_.size());
}

std::uint32_t Engine::alloc_slot() {
    if (free_head_ != kNil) {
        const std::uint32_t idx = free_head_;
        free_head_ = slot_ref(idx).next;
        return idx;
    }
    // Carve a fresh slab out of the arena and construct its records.
    Slot* slab = static_cast<Slot*>(
        arena_->allocate(sizeof(Slot) * kSlabSize, alignof(Slot)));
    for (std::uint32_t k = 0; k < kSlabSize; ++k) ::new (slab + k) Slot();
    slabs_.push_back(slab);
    const std::uint32_t base = slot_count_;
    slot_count_ += kSlabSize;
    // Hand out the slab's first record; chain the rest onto the free list in
    // index order.
    for (std::uint32_t k = kSlabSize; k-- > 1;) {
        slab[k].next = free_head_;
        free_head_ = base + k;
    }
    return base;
}

void Engine::file(std::uint32_t idx) {
    Slot& s = slot_ref(idx);
    // Filing a slot that is still linked somewhere would cross-link two
    // intrusive lists — memory corruption, not a recoverable contract error.
    ALPS_GUARD(s.where == kDetached);
    const std::uint64_t tick = tick_of(s.time);
    // The level is the highest 6-bit digit in which the expiry tick differs
    // from the current clock tick (the radix view of a hierarchical wheel):
    // lower levels hold nearer events at finer granularity.
    const std::uint64_t x = tick ^ cur_tick_;
    unsigned level = 0;
    if (x != 0) {
        const unsigned hb = 63u - static_cast<unsigned>(std::countl_zero(x));
        level = hb / kLevelBits;
    }
    if (level >= kLevels) {
        spill_insert(idx);
        return;
    }
    const unsigned slot = digit(tick, level);
    Bucket& b = wheel_[level][slot];
    s.where = static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
    s.prev = b.tail;
    s.next = kNil;
    if (b.tail != kNil) {
        slot_ref(b.tail).next = idx;
    } else {
        b.head = idx;
    }
    b.tail = idx;
    occ_[level] |= 1ull << slot;
}

void Engine::spill_insert(std::uint32_t idx) {
    Slot& s = slot_ref(idx);
    s.where = kInSpill;
    // Sorted ascending by (time, seq); far-future events arrive rarely and
    // usually latest-first, so walk from the tail.
    std::uint32_t after = spill_tail_;
    while (after != kNil && before(idx, after)) after = slot_ref(after).prev;
    s.prev = after;
    if (after == kNil) {
        s.next = spill_head_;
        spill_head_ = idx;
    } else {
        s.next = slot_ref(after).next;
        slot_ref(after).next = idx;
    }
    if (s.next != kNil) {
        slot_ref(s.next).prev = idx;
    } else {
        spill_tail_ = idx;
    }
    ++spill_live_;
}

void Engine::detach(std::uint32_t idx) {
    Slot& s = slot_ref(idx);
    ALPS_ENSURE(s.where != kDetached);
    if (s.where == kInSpill) {
        if (s.prev != kNil) {
            slot_ref(s.prev).next = s.next;
        } else {
            spill_head_ = s.next;
        }
        if (s.next != kNil) {
            slot_ref(s.next).prev = s.prev;
        } else {
            spill_tail_ = s.prev;
        }
        ALPS_GUARD(spill_live_ > 0);
        --spill_live_;
    } else {
        const unsigned level = s.where / kSlotsPerLevel;
        const unsigned slot = s.where % kSlotsPerLevel;
        Bucket& b = wheel_[level][slot];
        if (s.prev != kNil) {
            slot_ref(s.prev).next = s.next;
        } else {
            b.head = s.next;
        }
        if (s.next != kNil) {
            slot_ref(s.next).prev = s.prev;
        } else {
            b.tail = s.prev;
        }
        if (b.head == kNil) occ_[level] &= ~(1ull << slot);
    }
    s.where = kDetached;
    s.prev = kNil;
    s.next = kNil;
}

void Engine::cascade_bucket(unsigned level, unsigned slot) {
    // Every event here now agrees with the clock in this level's digit (and
    // all digits above), so each re-files strictly below `level`.
    Bucket& b = wheel_[level][slot];
    std::uint32_t idx = b.head;
    b.head = kNil;
    b.tail = kNil;
    occ_[level] &= ~(1ull << slot);
    while (idx != kNil) {
        Slot& s = slot_ref(idx);
        const std::uint32_t next = s.next;
        s.where = kDetached;
        s.prev = kNil;
        s.next = kNil;
        file(idx);
        ++cascades_;
        idx = next;
    }
}

std::uint32_t Engine::find_min() {
    // Cascades and promotions are only due when the clock's upper tick
    // digits changed: a cursor bucket at level >= 1 cannot re-fill while its
    // digit is unchanged (file() always places an event at the level of its
    // highest digit *differing* from the clock), and the spill list only
    // holds events beyond the current horizon window. In steady state —
    // kernel timers a few ticks apart — this skips the whole block.
    if (cur_tick_ != cascaded_tick_) {
        const std::uint64_t changed = cur_tick_ ^ cascaded_tick_;
        cascaded_tick_ = cur_tick_;
        // Promote far-future events whose expiry now fits the wheel horizon.
        // Every wheel event shares the clock's top-level tick prefix, so an
        // unpromoted spill entry can never be earlier than any wheel event.
        constexpr unsigned kHorizonShift = kLevelBits * kLevels;
        if ((changed >> kHorizonShift) != 0) {
            while (spill_head_ != kNil &&
                   (tick_of(slot_ref(spill_head_).time) >> kHorizonShift) ==
                       (cur_tick_ >> kHorizonShift)) {
                const std::uint32_t idx = spill_head_;
                detach(idx);
                file(idx);
                ++promotions_;
            }
        }
        // Cascade the bucket the clock has entered at each level whose digit
        // changed (higher levels' cursor buckets are still the ones already
        // drained): its events differ from the current tick only below that
        // level and belong further down. Re-filed events always land at
        // strictly lower levels, ahead of the cursor digit, so one top-down
        // pass suffices.
        const unsigned hb = 63u - static_cast<unsigned>(std::countl_zero(changed));
        unsigned l = hb / kLevelBits;
        if (l >= kLevels) l = kLevels - 1;
        for (++l; l-- > 1;) {
            const unsigned c = digit(cur_tick_, l);
            if (occ_[l] & (1ull << c)) cascade_bucket(l, c);
        }
    }
    // The earliest pending event is in the first occupied bucket of the
    // lowest occupied level: all remaining buckets sit at or ahead of the
    // cursor digit of their level and share every higher digit with the
    // clock, so lower levels — and lower slots within a level — strictly
    // dominate. Within the bucket, scan for the exact (time, seq) minimum
    // (bucket ticks are coarser than event times). Ordering proof sketch in
    // DESIGN.md §6.
    std::uint32_t best = kNil;
    for (unsigned l = 0; l < kLevels; ++l) {
        if (occ_[l] == 0) continue;
        const auto slot = static_cast<unsigned>(std::countr_zero(occ_[l]));
        for (std::uint32_t i = wheel_[l][slot].head; i != kNil; i = slot_ref(i).next) {
            if (best == kNil || before(i, best)) best = i;
        }
        break;
    }
    if (best == kNil) best = spill_head_;  // beyond-horizon future, if any
    return best;
}

void Engine::release_slot(std::uint32_t idx) {
    Slot& s = slot_ref(idx);
    ++s.gen;  // invalidate every outstanding id for this slot
    s.hot = 0;
    s.arg = 0;
    s.where = kDetached;
    s.prev = kNil;
    s.next = free_head_;
    free_head_ = idx;
}

EventId Engine::schedule_at(TimePoint t, Callback cb) {
    ALPS_EXPECT(t >= now_);
    ALPS_EXPECT(cb != nullptr);
    const std::uint32_t idx = alloc_slot();
    Slot& s = slot_ref(idx);
    s.time = t;
    s.seq = next_seq_++;
    s.hot = 0;
    s.cb = std::move(cb);
    file(idx);
    ++scheduled_;
    ++live_;
    return make_id(idx, s.gen);
}

EventId Engine::schedule_at(TimePoint t, HotKind kind, std::uint64_t arg) {
    ALPS_EXPECT(t >= now_);
    ALPS_EXPECT(kind != 0 && kind <= hot_.size());
    const std::uint32_t idx = alloc_slot();
    Slot& s = slot_ref(idx);
    s.time = t;
    s.seq = next_seq_++;
    s.hot = kind;
    s.arg = arg;
    file(idx);
    ++scheduled_;
    ++live_;
    return make_id(idx, s.gen);
}

EventId Engine::schedule_after(Duration d, Callback cb) {
    ALPS_EXPECT(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
}

EventId Engine::schedule_after(Duration d, HotKind kind, std::uint64_t arg) {
    ALPS_EXPECT(d >= Duration::zero());
    return schedule_at(now_ + d, kind, arg);
}

bool Engine::cancel(EventId id) {
    if (!pending(id)) return false;
    const std::uint32_t idx = slot_of(id);
    detach(idx);
    Slot& s = slot_ref(idx);
    if (s.hot == 0) s.cb = nullptr;  // discard the callback
    release_slot(idx);
    --live_;
    ++cancelled_;
    return true;
}

void Engine::fire(std::uint32_t idx) {
    ALPS_GUARD(live_ > 0);
    detach(idx);
    Slot& s = slot_ref(idx);
    const TimePoint t = s.time;
    ALPS_ENSURE(t >= now_);
    const HotKind hot = s.hot;
    const std::uint64_t arg = s.arg;
    // Free before invoking: during its own callback an event is no longer
    // pending (cancel on the in-flight id returns false), and the callback
    // may schedule new events into the recycled slot. Hot events never touch
    // the std::function at all.
    Callback cb;
    if (hot == 0) {
        cb = std::move(s.cb);
        s.cb = nullptr;  // drop captured state now; the slot may idle a while
    }
    release_slot(idx);
    --live_;
    now_ = t;
    cur_tick_ = tick_of(t);
    ++fired_;
    publish_clock(t);
    if (hot != 0) {
        const auto& [fn, ctx] = hot_[hot - 1u];
        fn(ctx, arg);
    } else {
        cb();
    }
}

bool Engine::step() {
    const std::uint32_t idx = find_min();
    if (idx == kNil) return false;
    fire(idx);
    return true;
}

void Engine::run_until(TimePoint t) {
    ALPS_EXPECT(t >= now_);
    for (;;) {
        const std::uint32_t idx = find_min();
        if (idx == kNil || slot_ref(idx).time > t) break;
        fire(idx);
    }
    now_ = t;
    cur_tick_ = tick_of(t);
    publish_clock(t);
}

void Engine::run() {
    while (step()) {
    }
}

void Engine::export_metrics(telemetry::MetricsRegistry& reg,
                            const std::string& prefix) const {
    reg.counter(prefix + "events_scheduled").add(scheduled_);
    reg.counter(prefix + "events_fired").add(fired_);
    reg.counter(prefix + "events_cancelled").add(cancelled_);
    reg.counter(prefix + "wheel_cascades").add(cascades_);
    reg.counter(prefix + "wheel_spill_promotions").add(promotions_);
    // Counters (not gauges) so parallel sweep reps aggregate commutatively —
    // the registry contract for --jobs-independent output.
    reg.counter(prefix + "arena_bytes")
        .add(static_cast<std::uint64_t>(arena_->bytes_used()));
    reg.counter(prefix + "arena_high_water")
        .add(static_cast<std::uint64_t>(arena_->high_water()));
}

}  // namespace alps::sim
