#include "sim/engine.h"

#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/recorder.h"

namespace alps::sim {

namespace {

/// Publishes the virtual clock as the thread's ambient telemetry time so
/// records emitted from event callbacks (scheduler ticks, kernel dispatches)
/// carry simulated timestamps. Guarded by active(): with no sink attached the
/// engine's only tracing cost is this one relaxed load per clock advance.
void publish_clock(TimePoint t) {
    if (telemetry::active()) {
        telemetry::set_now_ns(static_cast<std::uint64_t>(t.since_epoch.count()));
    }
}

}  // namespace

void Engine::sift_up(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
        const std::uint32_t parent_pos = (pos - 1) / 2;
        const std::uint32_t parent = heap_[parent_pos];
        if (!before(slot, parent)) break;
        heap_[pos] = parent;
        slots_[parent].heap_pos = pos;
        pos = parent_pos;
    }
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
}

void Engine::sift_down(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    const auto size = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
        std::uint32_t child_pos = 2 * pos + 1;
        if (child_pos >= size) break;
        if (child_pos + 1 < size && before(heap_[child_pos + 1], heap_[child_pos])) {
            ++child_pos;
        }
        const std::uint32_t child = heap_[child_pos];
        if (!before(child, slot)) break;
        heap_[pos] = child;
        slots_[child].heap_pos = pos;
        pos = child_pos;
    }
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
}

void Engine::heap_erase(std::uint32_t pos) {
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;  // removed the tail entry itself
    heap_[pos] = last;
    slots_[last].heap_pos = pos;
    // The moved entry may need to travel either way relative to its new
    // neighbourhood; only one of the two sifts will do anything.
    sift_up(pos);
    sift_down(slots_[last].heap_pos);
}

Engine::Callback Engine::take_and_free(std::uint32_t slot) {
    Slot& s = slots_[slot];
    Callback cb = std::move(s.cb);
    s.cb = nullptr;  // drop captured state now; the slot may idle for a while
    ++s.gen;         // invalidate every outstanding id for this slot
    s.heap_pos = kNoPos;
    s.next_free = free_head_;
    free_head_ = slot;
    return cb;
}

EventId Engine::schedule_at(TimePoint t, Callback cb) {
    ALPS_EXPECT(t >= now_);
    ALPS_EXPECT(cb != nullptr);
    std::uint32_t slot;
    if (free_head_ != kNoPos) {
        slot = free_head_;
        free_head_ = slots_[slot].next_free;
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.time = t;
    s.seq = next_seq_++;
    s.next_free = kNoPos;
    s.cb = std::move(cb);
    const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    s.heap_pos = pos;
    sift_up(pos);
    ++scheduled_;
    return make_id(slot, s.gen);
}

EventId Engine::schedule_after(Duration d, Callback cb) {
    ALPS_EXPECT(d >= Duration::zero());
    return schedule_at(now_ + d, std::move(cb));
}

bool Engine::cancel(EventId id) {
    if (!pending(id)) return false;
    const std::uint32_t slot = slot_of(id);
    heap_erase(slots_[slot].heap_pos);
    take_and_free(slot);  // discard the callback
    ++cancelled_;
    return true;
}

bool Engine::step() {
    if (heap_.empty()) return false;
    const std::uint32_t slot = heap_[0];
    const TimePoint t = slots_[slot].time;
    ALPS_ENSURE(t >= now_);
    heap_erase(0);
    // Free before invoking: during its own callback an event is no longer
    // pending (cancel on the in-flight id returns false), and the callback
    // may schedule new events into the recycled slot.
    const Callback cb = take_and_free(slot);
    now_ = t;
    ++fired_;
    publish_clock(t);
    cb();
    return true;
}

void Engine::run_until(TimePoint t) {
    ALPS_EXPECT(t >= now_);
    while (!heap_.empty() && slots_[heap_[0]].time <= t) {
        step();
    }
    now_ = t;
    publish_clock(t);
}

void Engine::export_metrics(telemetry::MetricsRegistry& reg,
                            const std::string& prefix) const {
    reg.counter(prefix + "events_scheduled").add(scheduled_);
    reg.counter(prefix + "events_fired").add(fired_);
    reg.counter(prefix + "events_cancelled").add(cancelled_);
}

void Engine::run() {
    while (step()) {
    }
}

}  // namespace alps::sim
