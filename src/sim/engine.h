// Discrete-event simulation engine.
//
// A single-threaded event queue with a virtual clock. Determinism rules:
//  * events at equal timestamps fire in scheduling (FIFO) order;
//  * all randomness comes from seeded util::Rng streams owned by the caller.
//
// The kernel simulator (src/os) runs entirely on top of this engine: there is
// no tick — CPU consumption is charged in bulk between scheduling points.
//
// Implementation: a hierarchical timing wheel (Varghese/Lauck) over a slab of
// event records, replacing the PR-3 indexed binary heap:
//  * schedule_at/schedule_after are O(1): compute the wheel level and slot
//    from the event's expiry tick and append to that bucket's intrusive list
//    (events beyond the wheel horizon park in a sorted far-future spill
//    list);
//  * cancel is O(1): unlink the record from its bucket — cancelled events
//    leave no tombstones behind, so cancel-heavy workloads (the kernel
//    re-arms a decision timer on every scheduling pass) cannot grow the
//    structure beyond the live-event count;
//  * expiry is amortized O(1): each event cascades down at most once per
//    wheel level as the clock enters its slot's range, and firing order is
//    the exact (time, seq) FIFO total order of the heap engine it replaces,
//    so every seeded run and every BENCH_*.json replays bit-identically
//    (tests/test_sim_wheel_diff.cpp proves this differentially against a
//    reference heap).
//  * The hot recurring callbacks (kernel decision timer, sleep wakeups,
//    periodic ticks) dispatch through a devirtualized table of raw function
//    pointers registered once per component (register_hot); the generic
//    std::function path remains for tests and one-off events.
//  * Event slabs come from a per-run util::Arena (internal by default, or
//    shared via the constructor), so steady-state scheduling performs no
//    heap allocation and run teardown is slab destruction plus one arena
//    release.
// EventIds encode (slot, generation); freeing a slot bumps its generation, so
// stale ids from fired or cancelled events can never alias a recycled slot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/assert.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::sim {

using util::Duration;
using util::TimePoint;

/// Identifies a scheduled event so it can be cancelled. Id 0 is never issued.
using EventId = std::uint64_t;

class Engine {
public:
    using Callback = std::function<void()>;

    /// Devirtualized callback: a raw trampoline plus the context it was
    /// registered with. `arg` is the per-event payload (a pid, a CPU index).
    using HotFn = void (*)(void* ctx, std::uint64_t arg);
    /// Handle to a registered hot callback. 0 is reserved for the generic
    /// std::function path and never returned by register_hot().
    using HotKind = std::uint8_t;

    /// `arena` (optional) supplies the event slabs; by default the engine
    /// owns a private one. Pass a shared per-run arena to pool slab storage
    /// with the kernel's Proc records and the scheduler's entity table.
    explicit Engine(util::Arena* arena = nullptr)
        : arena_(arena != nullptr ? arena : &own_arena_) {}
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Current simulated time.
    [[nodiscard]] TimePoint now() const { return now_; }

    /// The arena backing this engine's event slabs (per-run components like
    /// the kernel share it for their own bookkeeping).
    [[nodiscard]] util::Arena& arena() { return *arena_; }
    [[nodiscard]] const util::Arena& arena() const { return *arena_; }

    /// Registers a recurring callback for the devirtualized dispatch path.
    /// Registrations live as long as the engine (intended for long-lived
    /// components: the kernel registers its decision-timer, sleep-wakeup and
    /// housekeeping trampolines once at construction).
    HotKind register_hot(HotFn fn, void* ctx);

    /// Schedules `cb` to run at absolute time `t` (>= now). Returns a handle
    /// usable with cancel().
    EventId schedule_at(TimePoint t, Callback cb);

    /// Schedules `cb` to run `d` (>= 0) from now.
    EventId schedule_after(Duration d, Callback cb);

    /// Hot-path variants: schedule a registered callback with a payload.
    /// No std::function is constructed, moved, or invoked.
    EventId schedule_at(TimePoint t, HotKind kind, std::uint64_t arg);
    EventId schedule_after(Duration d, HotKind kind, std::uint64_t arg);

    /// Cancels a pending event. Returns false if the event already fired or
    /// was already cancelled (both are benign).
    bool cancel(EventId id);

    /// True if an event with this id is still pending.
    [[nodiscard]] bool pending(EventId id) const {
        const std::uint32_t slot = slot_of(id);
        return slot < slot_count_ && slot_ref(slot).gen == gen_of(id);
    }

    /// Number of pending (non-cancelled) events, across the wheel and the
    /// far-future spill list. This is the structure-neutral invariant the
    /// cancel-churn tests pin down: cancellation physically removes events,
    /// so the count can never exceed the live set.
    [[nodiscard]] std::size_t live_events() const { return live_; }

    /// Pending events currently parked in the far-future spill list (beyond
    /// the wheel horizon). Included in live_events(); exposed so tests can
    /// assert spill occupancy across cascades and promotions.
    [[nodiscard]] std::size_t spill_live_events() const { return spill_live_; }

    /// Runs the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty or the next event is after `t`,
    /// then advances the clock to exactly `t`.
    void run_until(TimePoint t);

    /// Runs until the event queue drains. Intended for tests; most simulations
    /// are driven by run_until with a horizon.
    void run();

    /// Lifetime totals (never reset; cheap plain counters — the engine is
    /// single-threaded by contract).
    [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
    [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
    [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }
    /// Events moved down a wheel level as the clock entered their slot.
    [[nodiscard]] std::uint64_t wheel_cascades() const { return cascades_; }
    /// Events promoted from the spill list into the wheel.
    [[nodiscard]] std::uint64_t spill_promotions() const { return promotions_; }

    /// Registers the lifetime totals as `<prefix>events_scheduled` etc., the wheel
    /// health counters (`<prefix>wheel_cascades`,
    /// `<prefix>wheel_spill_promotions`) and the arena footprint
    /// (`<prefix>arena_bytes`, `<prefix>arena_high_water`) in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "engine.") const;

private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    // ----- wheel geometry -----
    // Ticks are event times quantized to 2^kTickShift ns (~1 µs); a tick is
    // only a *bucketing* key — exact times order firing within a bucket.
    // Six levels of 64 slots cover ~19.5 h of simulated future; later events
    // go to the sorted spill list.
    static constexpr unsigned kTickShift = 10;
    static constexpr unsigned kLevelBits = 6;
    static constexpr unsigned kSlotsPerLevel = 1u << kLevelBits;  // 64
    static constexpr unsigned kLevels = 6;

    // Slot location codes (Slot::where).
    static constexpr std::uint16_t kInSpill = 0xfffe;
    static constexpr std::uint16_t kDetached = 0xffff;  ///< free or firing

    // Slabs: fixed blocks of event records allocated from the arena.
    static constexpr unsigned kSlabShift = 8;
    static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;  // 256
    static constexpr std::uint32_t kSlabMask = kSlabSize - 1;

    struct Slot {
        TimePoint time;
        std::uint64_t seq = 0;   ///< tie-break: FIFO among same-time events
        std::uint64_t arg = 0;   ///< payload for hot (devirtualized) events
        /// Bumped when the slot is freed (fire/cancel); ids carry the
        /// generation they were issued under, so an id is pending iff its
        /// generation still matches its slot's. Starts at 1 so id 0 is never
        /// issued.
        std::uint32_t gen = 1;
        std::uint32_t prev = kNil;  ///< intrusive list link (bucket / spill)
        std::uint32_t next = kNil;  ///< also the free-list link while free
        /// Where the record lives: level * 64 + slot, kInSpill, or kDetached.
        std::uint16_t where = kDetached;
        HotKind hot = 0;  ///< 0 = generic callback in `cb`
        Callback cb;
    };

    struct Bucket {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
    };

    [[nodiscard]] static std::uint32_t slot_of(EventId id) {
        return static_cast<std::uint32_t>(id & 0xffffffffu);
    }
    [[nodiscard]] static std::uint32_t gen_of(EventId id) {
        return static_cast<std::uint32_t>(id >> 32);
    }
    [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    [[nodiscard]] static std::uint64_t tick_of(TimePoint t) {
        // Times are non-negative by the schedule_at contract (t >= now >= 0).
        return static_cast<std::uint64_t>(t.since_epoch.count()) >> kTickShift;
    }
    [[nodiscard]] static unsigned digit(std::uint64_t tick, unsigned level) {
        return static_cast<unsigned>((tick >> (kLevelBits * level)) &
                                     (kSlotsPerLevel - 1));
    }

    [[nodiscard]] Slot& slot_ref(std::uint32_t idx) {
        return slabs_[idx >> kSlabShift][idx & kSlabMask];
    }
    [[nodiscard]] const Slot& slot_ref(std::uint32_t idx) const {
        return slabs_[idx >> kSlabShift][idx & kSlabMask];
    }

    /// Min-order over (time, seq); seq is unique, so this is a strict total
    /// order and extraction is fully deterministic.
    [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
        const Slot& sa = slot_ref(a);
        const Slot& sb = slot_ref(b);
        if (sa.time != sb.time) return sa.time < sb.time;
        return sa.seq < sb.seq;
    }

    std::uint32_t alloc_slot();
    /// Places a live record into the wheel bucket (or spill list) its expiry
    /// tick selects relative to the current clock tick.
    void file(std::uint32_t idx);
    void spill_insert(std::uint32_t idx);
    /// Unlinks a live record from whichever list it is on.
    void detach(std::uint32_t idx);
    /// Moves every event in the bucket the clock cursor has reached down to
    /// its precise lower-level slot.
    void cascade_bucket(unsigned level, unsigned slot);
    /// Index of the earliest pending event in (time, seq) order (kNil when
    /// empty). Performs due cascades and spill promotions as a side effect.
    std::uint32_t find_min();
    /// Recycles the slot onto the free list, bumping its generation.
    void release_slot(std::uint32_t idx);
    /// Fires the (already detached) record: clock advance + dispatch.
    void fire(std::uint32_t idx);

    TimePoint now_{};
    std::uint64_t cur_tick_ = 0;  ///< == tick_of(now_) between operations
    /// Tick for which cascades/promotions were last performed; find_min()
    /// skips the whole maintenance block while the tick is unchanged.
    std::uint64_t cascaded_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t fired_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t cascades_ = 0;
    std::uint64_t promotions_ = 0;
    std::size_t live_ = 0;
    std::size_t spill_live_ = 0;

    util::Arena own_arena_;
    util::Arena* arena_;
    std::vector<Slot*> slabs_;
    std::uint32_t slot_count_ = 0;  ///< total records across slabs
    std::uint32_t free_head_ = kNil;

    std::uint64_t occ_[kLevels] = {};  ///< per-level occupancy bitmaps
    Bucket wheel_[kLevels][kSlotsPerLevel];
    std::uint32_t spill_head_ = kNil;  ///< sorted by (time, seq), ascending
    std::uint32_t spill_tail_ = kNil;

    std::vector<std::pair<HotFn, void*>> hot_;  ///< devirtualized dispatch table
};

}  // namespace alps::sim
