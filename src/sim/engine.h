// Discrete-event simulation engine.
//
// A single-threaded event queue with a virtual clock. Determinism rules:
//  * events at equal timestamps fire in scheduling (FIFO) order;
//  * all randomness comes from seeded util::Rng streams owned by the caller.
//
// The kernel simulator (src/os) runs entirely on top of this engine: there is
// no tick — CPU consumption is charged in bulk between scheduling points.
//
// Implementation: an indexed binary min-heap over a slab (free-list) of event
// records. Every scheduled event owns one slab slot holding its callback and
// its current heap position, so
//  * schedule is O(log n) with no per-event heap allocation in steady state
//    (slots and their callback small-object buffers are recycled);
//  * cancel unlinks the record from the heap in O(log n) — cancelled events
//    leave no tombstones behind, so the heap never holds dead entries and
//    cancel-heavy workloads (the kernel re-arms a decision timer on every
//    scheduling pass) cannot grow it beyond the live-event count;
//  * pending is an O(1) generation check.
// EventIds encode (slot, generation); freeing a slot bumps its generation, so
// stale ids from fired or cancelled events can never alias a recycled slot.
// The (time, seq) total order is exactly the one the previous
// priority_queue-based engine used, so every seeded run replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/assert.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::sim {

using util::Duration;
using util::TimePoint;

/// Identifies a scheduled event so it can be cancelled. Id 0 is never issued.
using EventId = std::uint64_t;

class Engine {
public:
    using Callback = std::function<void()>;

    /// Current simulated time.
    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedules `cb` to run at absolute time `t` (>= now). Returns a handle
    /// usable with cancel().
    EventId schedule_at(TimePoint t, Callback cb);

    /// Schedules `cb` to run `d` (>= 0) from now.
    EventId schedule_after(Duration d, Callback cb);

    /// Cancels a pending event. Returns false if the event already fired or
    /// was already cancelled (both are benign).
    bool cancel(EventId id);

    /// True if an event with this id is still pending.
    [[nodiscard]] bool pending(EventId id) const {
        const std::uint32_t slot = slot_of(id);
        return slot < slots_.size() && slots_[slot].gen == gen_of(id);
    }

    /// Number of pending (non-cancelled) events.
    [[nodiscard]] std::size_t pending_count() const { return heap_.size(); }

    /// Size of the internal heap. Equal to pending_count() by construction —
    /// cancellation removes entries instead of tombstoning them — and exposed
    /// so tests can assert that invariant under cancel churn.
    [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

    /// Runs the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty or the next event is after `t`,
    /// then advances the clock to exactly `t`.
    void run_until(TimePoint t);

    /// Runs until the event queue drains. Intended for tests; most simulations
    /// are driven by run_until with a horizon.
    void run();

    /// Lifetime totals (never reset; cheap plain counters — the engine is
    /// single-threaded by contract).
    [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
    [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
    [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

    /// Registers the lifetime totals as `<prefix>scheduled` etc. in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "engine.") const;

private:
    static constexpr std::uint32_t kNoPos = 0xffffffffu;

    struct Slot {
        TimePoint time;
        std::uint64_t seq = 0;  ///< tie-break: FIFO among same-time events
        /// Bumped when the slot is freed (fire/cancel); ids carry the
        /// generation they were issued under, so an id is pending iff its
        /// generation still matches its slot's. Starts at 1 so id 0 is never
        /// issued.
        std::uint32_t gen = 1;
        std::uint32_t heap_pos = kNoPos;   ///< index into heap_ while pending
        std::uint32_t next_free = kNoPos;  ///< free-list link while free
        Callback cb;
    };

    [[nodiscard]] static std::uint32_t slot_of(EventId id) {
        return static_cast<std::uint32_t>(id & 0xffffffffu);
    }
    [[nodiscard]] static std::uint32_t gen_of(EventId id) {
        return static_cast<std::uint32_t>(id >> 32);
    }
    [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    /// Min-order over (time, seq); seq is unique, so this is a strict total
    /// order and heap extraction is fully deterministic.
    [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
        const Slot& sa = slots_[a];
        const Slot& sb = slots_[b];
        if (sa.time != sb.time) return sa.time < sb.time;
        return sa.seq < sb.seq;
    }

    void sift_up(std::uint32_t pos);
    void sift_down(std::uint32_t pos);
    /// Removes the heap entry at `pos` (swap-with-last + re-sift).
    void heap_erase(std::uint32_t pos);
    /// Returns the slot's callback and recycles the slot onto the free list.
    Callback take_and_free(std::uint32_t slot);

    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t fired_ = 0;
    std::uint64_t cancelled_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> heap_;  ///< slot indices, min-heap by (time, seq)
    std::uint32_t free_head_ = kNoPos;
};

}  // namespace alps::sim
