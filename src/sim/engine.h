// Discrete-event simulation engine.
//
// A single-threaded event queue with a virtual clock. Determinism rules:
//  * events at equal timestamps fire in scheduling (FIFO) order;
//  * all randomness comes from seeded util::Rng streams owned by the caller.
//
// The kernel simulator (src/os) runs entirely on top of this engine: there is
// no tick — CPU consumption is charged in bulk between scheduling points.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/assert.h"
#include "util/time.h"

namespace alps::sim {

using util::Duration;
using util::TimePoint;

/// Identifies a scheduled event so it can be cancelled. Id 0 is never issued.
using EventId = std::uint64_t;

class Engine {
public:
    using Callback = std::function<void()>;

    /// Current simulated time.
    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedules `cb` to run at absolute time `t` (>= now). Returns a handle
    /// usable with cancel().
    EventId schedule_at(TimePoint t, Callback cb);

    /// Schedules `cb` to run `d` (>= 0) from now.
    EventId schedule_after(Duration d, Callback cb);

    /// Cancels a pending event. Returns false if the event already fired or
    /// was already cancelled (both are benign).
    bool cancel(EventId id);

    /// True if an event with this id is still pending.
    [[nodiscard]] bool pending(EventId id) const { return callbacks_.contains(id); }

    /// Number of pending (non-cancelled) events.
    [[nodiscard]] std::size_t pending_count() const { return callbacks_.size(); }

    /// Runs the single earliest event. Returns false if the queue is empty.
    bool step();

    /// Runs events until the queue is empty or the next event is after `t`,
    /// then advances the clock to exactly `t`.
    void run_until(TimePoint t);

    /// Runs until the event queue drains. Intended for tests; most simulations
    /// are driven by run_until with a horizon.
    void run();

private:
    struct QueueEntry {
        TimePoint time;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        EventId id;
        // Min-heap by (time, seq).
        friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /// Pops entries until one refers to a live (not cancelled) callback.
    /// Returns false when the queue is exhausted.
    bool pop_live(QueueEntry& out);

    TimePoint now_{};
    std::uint64_t next_id_ = 1;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
    std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace alps::sim
