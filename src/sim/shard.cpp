#include "sim/shard.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "harness/thread_pool.h"
#include "sim/barrier.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/assert.h"

namespace alps::sim {

ShardedEngine::ShardedEngine(const Config& cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg.shards >= 1);
    ALPS_EXPECT(cfg.epoch > Duration::zero());
    shards_.reserve(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
        shards_.push_back(std::make_unique<Shard>());
    }
    channels_.resize(static_cast<std::size_t>(cfg.shards) * cfg.shards);
    for (auto& ch : channels_) {
        ch = std::make_unique<ShardChannel<ShardMessage>>(cfg.channel_capacity);
    }
}

ShardedEngine::~ShardedEngine() = default;

Engine& ShardedEngine::engine(unsigned shard) {
    ALPS_EXPECT(shard < shards_.size());
    return shards_[shard]->engine;
}

const Engine& ShardedEngine::engine(unsigned shard) const {
    ALPS_EXPECT(shard < shards_.size());
    return shards_[shard]->engine;
}

void ShardedEngine::set_publish_hook(unsigned shard, Hook hook) {
    ALPS_EXPECT(shard < shards_.size());
    shards_[shard]->publish = std::move(hook);
}

void ShardedEngine::set_boundary_hook(unsigned shard, Hook hook) {
    ALPS_EXPECT(shard < shards_.size());
    shards_[shard]->boundary = std::move(hook);
}

void ShardedEngine::post(unsigned from, unsigned to, ShardMessage msg) {
    ALPS_EXPECT(from < shards_.size());
    ALPS_EXPECT(to < shards_.size());
    // A post from the drain/boundary phase would belong to no epoch: its
    // siblings were already delivered, so it would arrive one boundary late
    // on some shards and on time on others depending on drain order.
    ALPS_EXPECT(!shards_[from]->in_drain);
    channel(from, to).push(std::move(msg));
}

void ShardedEngine::deliver(unsigned s, ShardMessage&& msg) {
    Engine& e = shards_[s]->engine;
    // The lookahead contract: a message produced during epoch e is due no
    // earlier than the boundary ending e, which is the consumer clock at
    // drain time.
    ALPS_EXPECT(msg.at >= e.now());
    if (msg.hot != 0) {
        e.schedule_at(msg.at, msg.hot, msg.arg);
    } else {
        ALPS_EXPECT(static_cast<bool>(msg.cb));
        e.schedule_at(msg.at, std::move(msg.cb));
    }
}

void ShardedEngine::run_epoch_phase1(unsigned s, TimePoint boundary) {
    Shard& sh = *shards_[s];
    const unsigned n = static_cast<unsigned>(shards_.size());
    // Barrier B of the previous epoch guarantees every consumer drained; the
    // overflow slow path (if any) may re-arm.
    for (unsigned to = 0; to < n; ++to) channel(s, to).reset_overflow_phase();
    sh.produce_boundary = boundary;
    sh.engine.run_until(boundary);
    if (sh.publish) sh.publish(s, boundary);
}

void ShardedEngine::run_epoch_phase2(unsigned s, TimePoint boundary) {
    Shard& sh = *shards_[s];
    sh.in_drain = true;
    const unsigned n = static_cast<unsigned>(shards_.size());
    // Fixed source order makes the local seq assignment — and therefore the
    // shard's entire future event order — independent of thread timing.
    for (unsigned from = 0; from < n; ++from) {
        sh.drained += channel(from, s).drain_all(
            [this, s](ShardMessage&& msg) { deliver(s, std::move(msg)); });
    }
    if (sh.boundary) sh.boundary(s, boundary);
    sh.in_drain = false;
    ++sh.epochs;
    if (telemetry::active()) {
        // Explicit timestamp: every shard's clock is pinned to the boundary
        // here, so one session's rings merge into a single (scope, ts)-ordered
        // epoch grid regardless of run mode and thread registration order.
        telemetry::emit_event(
            telemetry::EventType::kInstant, telemetry::kNameEpoch, s,
            static_cast<std::uint64_t>(boundary.since_epoch.count()), sh.epochs);
    }
}

void ShardedEngine::run_lockstep(TimePoint t, RunMode mode,
                                 harness::ThreadPool* pool) {
    const unsigned n = static_cast<unsigned>(shards_.size());
    const TimePoint start = shards_[0]->engine.now();
    for (auto& sh : shards_) ALPS_EXPECT(sh->engine.now() == start);
    if (t <= start) return;

    bool threaded = false;
    switch (mode) {
        case RunMode::kSerial: threaded = false; break;
        case RunMode::kThreaded: threaded = n > 1; break;
        case RunMode::kAuto:
            threaded = n > 1 && pool != nullptr && pool->size() >= n;
            break;
    }

    if (!threaded) {
        ++serial_runs_;
        TimePoint cur = start;
        while (cur < t) {
            const TimePoint next = std::min(cur + cfg_.epoch, t);
            // Program order substitutes for the barriers: all shards finish
            // phase 1 (every post of this epoch is in its channel) before
            // any shard drains.
            for (unsigned s = 0; s < n; ++s) run_epoch_phase1(s, next);
            for (unsigned s = 0; s < n; ++s) run_epoch_phase2(s, next);
            cur = next;
        }
        return;
    }

    ++threaded_runs_;
    std::unique_ptr<harness::ThreadPool> own_pool;
    if (pool == nullptr || pool->size() < n) {
        ALPS_EXPECT(mode == RunMode::kThreaded);
        own_pool = std::make_unique<harness::ThreadPool>(n);
        pool = own_pool.get();
    }

    EpochBarrier barrier_a(n);
    EpochBarrier barrier_b(n);
    // A shard that throws must keep arriving at the barriers (its siblings
    // run the same deterministic epoch count) or the lockstep deadlocks; it
    // just stops doing work. The first exception is rethrown on the caller.
    std::atomic<bool> abort{false};
    std::mutex error_mu;
    std::exception_ptr first_error;

    for (unsigned s = 0; s < n; ++s) {
        pool->submit([this, s, t, start, &barrier_a, &barrier_b, &abort,
                      &error_mu, &first_error] {
            TimePoint cur = start;
            while (cur < t) {
                const TimePoint next = std::min(cur + cfg_.epoch, t);
                try {
                    if (!abort.load(std::memory_order_acquire)) {
                        run_epoch_phase1(s, next);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                    abort.store(true, std::memory_order_release);
                }
                barrier_a.arrive_and_wait();
                try {
                    if (!abort.load(std::memory_order_acquire)) {
                        run_epoch_phase2(s, next);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!first_error) first_error = std::current_exception();
                    abort.store(true, std::memory_order_release);
                }
                barrier_b.arrive_and_wait();
                cur = next;
            }
        });
    }
    pool->wait_idle();
    if (first_error) std::rethrow_exception(first_error);
}

ShardedEngine::Stats ShardedEngine::stats() const {
    Stats st;
    st.epochs = shards_[0]->epochs;
    for (const auto& sh : shards_) st.messages += sh->drained;
    for (const auto& ch : channels_) st.overflows += ch->overflow_count();
    st.threaded_runs = threaded_runs_;
    st.serial_runs = serial_runs_;
    return st;
}

std::uint64_t ShardedEngine::total_events_fired() const {
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->engine.events_fired();
    return total;
}

std::uint64_t ShardedEngine::total_events_scheduled() const {
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->engine.events_scheduled();
    return total;
}

void ShardedEngine::export_metrics(telemetry::MetricsRegistry& reg,
                                   const std::string& prefix) const {
    const Stats st = stats();
    reg.counter(prefix + "shards").add(shards_.size());
    reg.counter(prefix + "epochs").add(st.epochs);
    reg.counter(prefix + "messages").add(st.messages);
    reg.counter(prefix + "message_overflows").add(st.overflows);
    reg.counter(prefix + "events_fired").add(total_events_fired());
}

}  // namespace alps::sim
