// Sharded discrete-event engine: conservative-lockstep parallel simulation.
//
// A ShardedEngine owns S independent sim::Engines ("shards"), each with its
// own timing wheel, arena, and hot-callback table. Simulated time advances in
// fixed *epochs* (the quantum / ALPS sampling period): within an epoch every
// shard runs its own events with no synchronization at all; cross-shard
// traffic (migrations, steals, driver wakeups, batched measure() results)
// travels over lossless SPSC channels and is delivered only at epoch
// boundaries. The epoch length is the classic conservative-PDES lookahead: a
// message posted during epoch e cannot be due before the boundary that ends
// e, so no shard can ever receive an event in its past.
//
// Per-epoch protocol, per shard (see DESIGN.md §13 for the ordering proof):
//
//   1. produce   — engine.run_until(boundary); event callbacks may post()
//   2. publish   — optional hook; may post() and publish per-shard state
//   3. BARRIER A — all posts of this epoch are now globally visible
//   4. drain     — pop own inboxes in fixed source order 0..S-1, scheduling
//                  each message into the local engine (deterministic seq)
//   5. boundary  — optional hook; may *read* any shard's published state
//                  (happens-before via barrier A) and schedule into the OWN
//                  engine; must not post()
//   6. BARRIER B — keeps epoch e+1 producers from racing this drain
//
// Determinism: each shard's event order is the serial engine's exact
// (time, seq) order over that shard's workload, because seq assignment
// depends only on the shard's own deterministic schedule/drain sequence —
// never on thread timing. The same protocol runs in two modes with
// bit-identical results by construction:
//
//   * threaded — S persistent tasks on a harness::ThreadPool, EpochBarrier
//     at steps 3/6 (real parallelism; TSan-clean);
//   * serial   — the calling thread multiplexes phases across shards in
//     shard order (barriers degenerate to program order). This is also the
//     fallback when no pool (or too small a pool) is supplied.
//
// tests/test_sim_shard_diff.cpp proves the mode- and shard-count-invariance
// differentially against a single serial Engine oracle.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/spsc.h"
#include "util/time.h"

namespace alps::harness {
class ThreadPool;
}  // namespace alps::harness

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::sim {

/// A cross-shard event. Delivered into the destination shard's engine at the
/// first epoch boundary after the posting epoch; `at` must be at or after
/// that boundary (the conservative lookahead contract).
struct ShardMessage {
    TimePoint at{};
    /// Hot kind *in the destination shard's engine* (0 = use `cb`). Hot
    /// kinds are per-engine handles, so senders must use a kind the
    /// destination registered — see os::ShardLink for the pattern.
    Engine::HotKind hot = 0;
    std::uint64_t arg = 0;
    Engine::Callback cb;
};

class ShardedEngine {
public:
    struct Config {
        unsigned shards = 1;
        /// Lockstep epoch (lookahead). Align with the quantum / sampling
        /// period so kernel-level traffic lands exactly on boundaries.
        Duration epoch = util::msec(10);
        /// SPSC ring capacity per shard pair; overflow is lossless but slow.
        std::size_t channel_capacity = 1024;
    };

    /// Boundary/publish hook: (shard index, the boundary time just reached).
    using Hook = std::function<void(unsigned, TimePoint)>;

    enum class RunMode {
        kAuto,      ///< threaded iff a pool with >= shards workers is given
        kSerial,    ///< multiplex on the calling thread
        kThreaded,  ///< always threaded (internal pool if none supplied)
    };

    explicit ShardedEngine(const Config& cfg);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine&) = delete;
    ShardedEngine& operator=(const ShardedEngine&) = delete;

    [[nodiscard]] unsigned shards() const {
        return static_cast<unsigned>(shards_.size());
    }
    [[nodiscard]] Engine& engine(unsigned shard);
    [[nodiscard]] const Engine& engine(unsigned shard) const;

    /// Installs the step-2 hook (runs on the shard's thread; may post()).
    void set_publish_hook(unsigned shard, Hook hook);
    /// Installs the step-5 hook (may read cross-shard state and schedule
    /// into its own engine; must not post()).
    void set_boundary_hook(unsigned shard, Hook hook);

    /// Posts a cross-shard message. Caller contract: invoked on shard
    /// `from`'s thread during its produce/publish phase (steps 1-2), with
    /// `msg.at` at or after the epoch boundary currently being produced
    /// toward. from == to is allowed (a self-channel) so callers with a
    /// computed destination need no special case: the message is delivered
    /// in the shard's own drain phase, same boundary semantics.
    void post(unsigned from, unsigned to, ShardMessage msg);

    /// The epoch boundary shard `shard` is currently producing toward — the
    /// earliest time a post() made now may be delivered at. Valid on the
    /// shard's own thread during its produce/publish phase (the window in
    /// which post() is legal); zero before the first epoch.
    [[nodiscard]] TimePoint produce_boundary(unsigned shard) const {
        ALPS_EXPECT(shard < shards_.size());
        return shards_[shard]->produce_boundary;
    }

    /// Runs all shards in lockstep until every shard clock reaches `t`.
    /// Requires all shard clocks equal on entry (they are equal again on
    /// exit — run_until pins each clock to each boundary). The epoch grid is
    /// anchored at the entry clock. A `pool` smaller than the shard count is
    /// ignored under kAuto (serial fallback) and rejected under kThreaded
    /// unless null (an internal pool is built).
    void run_lockstep(TimePoint t, RunMode mode = RunMode::kAuto,
                      harness::ThreadPool* pool = nullptr);

    struct Stats {
        std::uint64_t epochs = 0;          ///< lockstep epochs completed
        std::uint64_t messages = 0;        ///< cross-shard messages delivered
        std::uint64_t overflows = 0;       ///< messages via the slow path
        std::uint64_t threaded_runs = 0;   ///< run_lockstep calls gone threaded
        std::uint64_t serial_runs = 0;     ///< ... and serial-multiplexed
    };
    [[nodiscard]] Stats stats() const;

    /// Sums of the per-shard engine totals (events fired across all wheels).
    [[nodiscard]] std::uint64_t total_events_fired() const;
    [[nodiscard]] std::uint64_t total_events_scheduled() const;

    /// Registers `<prefix>shards`, `<prefix>epochs`, `<prefix>messages`,
    /// `<prefix>message_overflows`, `<prefix>events_fired` in `reg`.
    void export_metrics(telemetry::MetricsRegistry& reg,
                        const std::string& prefix = "sharded.") const;

private:
    /// Per-shard state, cache-line separated so shard counters and hooks
    /// never false-share under the threaded mode.
    struct alignas(kCacheLine) Shard {
        Engine engine;
        Hook publish;
        Hook boundary;
        /// Set during steps 4-5; post() from there is a protocol violation
        /// (the message would belong to no epoch). Owned by the shard's
        /// thread — barriers order all cross-thread access.
        bool in_drain = false;
        TimePoint produce_boundary{};
        std::uint64_t epochs = 0;
        std::uint64_t drained = 0;
    };

    void run_epoch_phase1(unsigned s, TimePoint boundary);  // steps 1-2
    void run_epoch_phase2(unsigned s, TimePoint boundary);  // steps 4-5
    void deliver(unsigned s, ShardMessage&& msg);

    [[nodiscard]] ShardChannel<ShardMessage>& channel(unsigned from, unsigned to) {
        return *channels_[from * shards_.size() + to];
    }

    Config cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /// Dense S×S matrix; [from][to] with from == to unused (null).
    std::vector<std::unique_ptr<ShardChannel<ShardMessage>>> channels_;
    std::uint64_t threaded_runs_ = 0;
    std::uint64_t serial_runs_ = 0;
};

}  // namespace alps::sim
