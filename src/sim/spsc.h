// Single-producer/single-consumer channels for cross-shard event traffic.
//
// ShardChannel reuses the telemetry rings' lock-free idiom (one atomic head,
// one atomic tail, acquire/release pairing, power-of-two capacity) but — unlike
// telemetry, which may drop on overflow — simulation messages are load-bearing:
// a dropped migration would silently change the run. So the ring is backed by
// a mutex-protected overflow list that preserves global FIFO order:
//
//  * the fast path is the wait-free ring (no lock on either side);
//  * when the ring fills, the producer diverts to the overflow list and keeps
//    diverting until its next produce phase begins (by which point the
//    lockstep protocol guarantees the consumer drained everything), so a
//    message can never overtake one that overflowed before it;
//  * drain_all() empties the ring first, then the overflow — which is exactly
//    arrival order by the rule above.
//
// Thread contract: exactly one producer thread and one consumer thread per
// channel at any moment (the sharded engine's fixed shard-pair wiring). The
// lockstep barriers provide the cross-epoch happens-before edges; the channel
// itself provides the intra-epoch ones.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace alps::sim {

/// Destructive-interference distance for the head/tail pair. A fixed 64
/// rather than std::hardware_destructive_interference_size: the constant
/// participates in struct layout, and the stdlib value varies with -mtune
/// (gcc warns about exactly this under -Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

/// Wait-free SPSC ring over move-assignable T. Capacity is rounded up to a
/// power of two; one slot is never wasted (head/tail are free-running
/// indices, masked on access).
template <typename T>
class SpscRing {
public:
    explicit SpscRing(std::size_t capacity) {
        ALPS_EXPECT(capacity > 0);
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        mask_ = cap - 1;
        buffer_.resize(cap);
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

    /// Producer side. Returns false (without consuming `v`) when full.
    bool try_push(T& v) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_) return false;
        buffer_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. Returns false when empty.
    bool try_pop(T& out) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) return false;
        out = std::move(buffer_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer-side size estimate (exact when the producer is quiescent).
    [[nodiscard]] std::size_t size() const {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }

    [[nodiscard]] bool empty() const { return size() == 0; }

private:
    std::vector<T> buffer_;
    std::size_t mask_ = 0;
    alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
    alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
};

/// SPSC channel with lossless backpressure: ring fast path, mutex-protected
/// overflow slow path, global FIFO preserved.
template <typename T>
class ShardChannel {
public:
    explicit ShardChannel(std::size_t ring_capacity = 1024) : ring_(ring_capacity) {}

    /// Producer: enqueue unconditionally. Returns true when the fast path was
    /// taken, false when the message went to overflow (stats, not an error).
    bool push(T v) {
        // Once one message overflows, all later ones must too until the
        // consumer has provably drained (reset_overflow_phase), or FIFO
        // breaks: a ring message would overtake the parked one.
        if (!overflowing_ && ring_.try_push(v)) return true;
        overflowing_ = true;
        std::lock_guard<std::mutex> lock(mu_);
        overflow_.push_back(std::move(v));
        ++overflow_count_;
        return false;
    }

    /// Producer: call at the start of a produce phase, after the lockstep
    /// protocol has guaranteed the consumer drained everything from the
    /// previous epoch. Re-arms the fast path.
    void reset_overflow_phase() { overflowing_ = false; }

    /// Consumer: drain everything visible, in arrival order, into `out`.
    /// Returns the number of messages drained.
    template <typename Sink>
    std::size_t drain_all(Sink&& out) {
        std::size_t n = 0;
        T v{};
        while (ring_.try_pop(v)) {
            out(std::move(v));
            ++n;
        }
        std::lock_guard<std::mutex> lock(mu_);
        while (!overflow_.empty()) {
            // Ring entries pushed before an overflow divert were already
            // popped above, so overflow entries are now oldest-first.
            out(std::move(overflow_.front()));
            overflow_.pop_front();
            ++n;
        }
        return n;
    }

    /// Lifetime count of messages that took the overflow slow path.
    [[nodiscard]] std::uint64_t overflow_count() const {
        std::lock_guard<std::mutex> lock(mu_);
        return overflow_count_;
    }

    [[nodiscard]] std::size_t ring_capacity() const { return ring_.capacity(); }

private:
    SpscRing<T> ring_;
    /// Producer-owned: only the producer thread reads/writes it, so it needs
    /// no synchronization (the consumer learns of overflow via mu_).
    bool overflowing_ = false;
    mutable std::mutex mu_;
    std::deque<T> overflow_;
    std::uint64_t overflow_count_ = 0;
};

}  // namespace alps::sim
