#include "telemetry/chrome_export.h"

#include <map>
#include <set>
#include <string>
#include <utility>

namespace alps::telemetry {

namespace {

std::string record_name(const TraceFile& trace, const Record& r) {
    if (r.name < trace.names.size() && !trace.names[r.name].empty()) {
        return trace.names[r.name];
    }
    return "name#" + std::to_string(r.name);
}

bool is_running(const TraceFile& trace, const Record& r) {
    return r.name < trace.names.size() && trace.names[r.name] == "running";
}

}  // namespace

util::Json to_chrome_trace(const TraceFile& trace) {
    auto events = util::Json::array();

    // Metadata first so viewers label lanes before any event references them.
    std::set<std::uint32_t> pids;
    std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;  // (pid, tid)
    for (const Record& r : trace.records) {
        pids.insert(r.scope);
        const std::uint32_t lane = r.track * 2 + (is_running(trace, r) ? 1u : 0u);
        lanes.insert({r.scope, lane});
    }
    for (std::uint32_t pid : pids) {
        auto meta = util::Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", std::uint64_t{pid});
        auto args = util::Json::object();
        args.set("name", "scope " + std::to_string(pid));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    for (const auto& [pid, tid] : lanes) {
        auto meta = util::Json::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", std::uint64_t{pid});
        meta.set("tid", std::uint64_t{tid});
        auto args = util::Json::object();
        const std::uint32_t track = tid / 2;
        args.set("name", "proc " + std::to_string(track) +
                             (tid % 2 == 1 ? " cpu" : " state"));
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }

    for (const Record& r : trace.records) {
        const std::string name = record_name(trace, r);
        const std::uint32_t tid = r.track * 2 + (is_running(trace, r) ? 1u : 0u);
        const double ts_us = static_cast<double>(r.ts_ns) / 1000.0;

        auto ev = util::Json::object();
        ev.set("name", name);
        switch (static_cast<EventType>(r.type)) {
            case EventType::kSpanBegin: ev.set("ph", "B"); break;
            case EventType::kSpanEnd: ev.set("ph", "E"); break;
            case EventType::kInstant: ev.set("ph", "i"); break;
            case EventType::kCounter: ev.set("ph", "C"); break;
            default: continue;  // verify_trace flags these; skip here
        }
        ev.set("pid", std::uint64_t{r.scope});
        ev.set("tid", std::uint64_t{tid});
        ev.set("ts", ts_us);
        switch (static_cast<EventType>(r.type)) {
            case EventType::kInstant: {
                ev.set("s", "t");  // thread-scoped instant
                auto args = util::Json::object();
                args.set("value", r.value);
                ev.set("args", std::move(args));
                break;
            }
            case EventType::kCounter: {
                auto args = util::Json::object();
                args.set(name, r.value);
                ev.set("args", std::move(args));
                break;
            }
            default: break;
        }
        events.push(std::move(ev));
    }

    auto doc = util::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc;
}

}  // namespace alps::telemetry
