// Chrome trace_event exporter: .alpstrace -> JSON loadable by Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// Mapping: each scope becomes a process (pid), each track two timeline lanes
// within it — tid = track*2 carries the eligible/ineligible state spans and
// instants, tid = track*2 + 1 carries the kernel's running spans. Splitting
// the lanes matters because trace_event "B"/"E" pairs must nest within a tid,
// and a running span can begin inside an eligible span yet end inside an
// ineligible one. Counter records become "C" events on the state lane;
// timestamps convert from ns to the format's microseconds.
#pragma once

#include "telemetry/trace_file.h"
#include "util/json.h"

namespace alps::telemetry {

/// Builds the {"traceEvents": [...]} document, including process_name /
/// thread_name metadata so Perfetto labels scopes and lanes.
[[nodiscard]] util::Json to_chrome_trace(const TraceFile& trace);

}  // namespace alps::telemetry
