// The unified telemetry event vocabulary: one fixed 32-byte binary record.
//
// Every instrumented layer (sim::Engine, os::Kernel, the ALPS core, the
// experiment harness) speaks this format. A record is a point or edge on a
// timeline: a span begin/end (eligible/ineligible/running stretches), an
// instant (one ALPS tick, a cycle boundary, a quarantine), or a counter
// sample. Records are trivially copyable so the per-thread ring buffers and
// the .alpstrace file reader/writer can treat them as raw bytes.
//
// Names are interned: a record carries a 16-bit id into the session's string
// table. The ids below are *well-known* — every Session pre-interns them in
// this exact order, so instrumentation sites can use the constants without
// ever touching the intern table on the hot path.
#pragma once

#include <cstdint>
#include <type_traits>

namespace alps::telemetry {

enum class EventType : std::uint16_t {
    kSpanBegin = 1,  ///< a named span opens on (scope, track)
    kSpanEnd = 2,    ///< the innermost open span of that name closes
    kInstant = 3,    ///< a point event; `value` is free-form payload
    kCounter = 4,    ///< a sampled counter value on its own timeline
};

/// Pre-interned string-table ids (id == enum value in every session).
enum WellKnownName : std::uint16_t {
    kNameNone = 0,        ///< "" — reserved, never emitted
    kNameRunning = 1,     ///< kernel: process occupies a CPU
    kNameEligible = 2,    ///< ALPS desires the entity runnable
    kNameIneligible = 3,  ///< ALPS desires the entity suspended
    kNameTick = 4,        ///< one Figure-3 invocation; value = tick count
    kNameCycle = 5,       ///< cycle completion; value = cycles completed
    kNameQuarantine = 6,  ///< entity entered quarantine
    kNameDrop = 7,        ///< entity dropped after repeated failures
    kNameEpoch = 8,       ///< sharded engine: lockstep boundary; track = shard
    kNameHop = 9,         ///< cross-shard migration adopted; value = new pid
    kWellKnownNameCount = 10,
};

/// Spelling of a well-known id ("" for kNameNone / out-of-range).
[[nodiscard]] const char* well_known_name(std::uint16_t id);

/// One telemetry event. 32 bytes, stored and written verbatim (little-endian
/// serialization is handled by trace_file.{h,cpp}).
struct Record {
    std::uint64_t ts_ns = 0;     ///< event time on the emitter's clock
    std::uint32_t scope = 0;     ///< grouping unit (sweep task index; 0 default)
    std::uint32_t track = 0;     ///< timeline within the scope (simulated pid)
    std::uint16_t type = 0;      ///< EventType
    std::uint16_t name = 0;      ///< string-table id
    std::uint32_t reserved = 0;  ///< must be zero (format evolution room)
    std::uint64_t value = 0;     ///< payload (counter value, tick index, ...)

    friend bool operator==(const Record&, const Record&) = default;
};
static_assert(sizeof(Record) == 32, "fixed binary record format");
static_assert(std::is_trivially_copyable_v<Record>);

}  // namespace alps::telemetry
