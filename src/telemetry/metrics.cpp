#include "telemetry/metrics.h"

#include <bit>
#include <cmath>

#include "util/assert.h"

namespace alps::telemetry {

void Histogram::record(std::uint64_t v) {
    const int bucket = static_cast<int>(std::bit_width(v));  // 0 for v == 0
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
    ALPS_EXPECT(q >= 0.0 && q <= 1.0);
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0) return 0.0;
    // Rank of the q-quantile, 1-based; q == 0 maps to the first sample.
    const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= rank && counts[i] > 0) {
            if (i == 0) return 0.0;
            // Bucket i spans [2^(i-1), 2^i - 1]; report the geometric midpoint.
            const double lo = std::ldexp(1.0, i - 1);
            const double hi = std::ldexp(1.0, i);
            return std::sqrt(lo * hi);
        }
    }
    return 0.0;  // unreachable: total > 0 guarantees the loop returns
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    std::scoped_lock lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

bool MetricsRegistry::empty() const {
    std::scoped_lock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
    std::scoped_lock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

util::Json MetricsRegistry::to_json() const {
    std::scoped_lock lock(mu_);
    auto doc = util::Json::object();
    if (!counters_.empty()) {
        auto obj = util::Json::object();
        for (const auto& [name, c] : counters_) obj.set(name, c->value());
        doc.set("counters", std::move(obj));
    }
    if (!gauges_.empty()) {
        auto obj = util::Json::object();
        for (const auto& [name, g] : gauges_) obj.set(name, g->value());
        doc.set("gauges", std::move(obj));
    }
    if (!histograms_.empty()) {
        auto obj = util::Json::object();
        for (const auto& [name, h] : histograms_) {
            auto stats = util::Json::object();
            stats.set("count", h->count());
            stats.set("sum", h->sum());
            stats.set("p50", h->quantile(0.50));
            stats.set("p95", h->quantile(0.95));
            stats.set("p99", h->quantile(0.99));
            obj.set(name, std::move(stats));
        }
        doc.set("histograms", std::move(obj));
    }
    return doc;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

}  // namespace alps::telemetry
