// The metrics registry: named counters, gauges, and log-bucketed histograms.
//
// One surface for cross-layer health and throughput numbers that used to be
// scattered (PR 2's HealthReport plumbing, hand-rolled bench timers): the
// scheduler, sim::Engine, os::Kernel, core::TraceLog, and the harness
// ThreadPool all export into a registry via their export_metrics()/
// register_metrics() hooks, and the sweep runner serializes the registry
// into the BENCH_<name>.json "run" section.
//
// Instruments are cheap and thread-safe (relaxed atomics); registration
// takes a mutex and returns stable references, so call-sites look up once
// and update often. Counter and histogram updates commute, so totals
// accumulated by parallel sweep workers are deterministic for any --jobs
// value (gauges are last-write-wins — use them only for values that are the
// same on every path, or single-threaded).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace alps::telemetry {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (last write wins).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram of non-negative integer samples (durations in ns
/// or µs, queue depths, ...). Bucket i holds values whose bit width is i
/// (i.e. v in [2^(i-1), 2^i - 1]; bucket 0 holds exactly 0), so quantiles
/// are exact to within a factor of 2 at any magnitude with 65 fixed-size
/// bucket counters and no allocation on record().
class Histogram {
public:
    void record(std::uint64_t v);

    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    /// Approximate q-quantile (q in [0, 1]): the geometric midpoint of the
    /// bucket holding the rank. 0 on an empty histogram.
    [[nodiscard]] double quantile(double q) const;

private:
    static constexpr int kBuckets = 65;  ///< bit widths 0..64
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Finds or creates the named instrument. References stay valid for the
    /// registry's lifetime.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    [[nodiscard]] bool empty() const;
    void clear();

    /// Deterministic serialization: kinds in fixed order, names sorted
    /// (std::map iteration). Histograms render count/sum/p50/p95/p99.
    [[nodiscard]] util::Json to_json() const;

    /// Process-wide registry for code without an obvious owner. Sweeps use
    /// their own per-run registry so experiments cannot bleed into each
    /// other.
    static MetricsRegistry& global();

private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace alps::telemetry
