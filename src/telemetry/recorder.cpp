#include "telemetry/recorder.h"

#include <algorithm>

#include "util/assert.h"

namespace alps::telemetry {

const char* well_known_name(std::uint16_t id) {
    switch (id) {
        case kNameRunning: return "running";
        case kNameEligible: return "eligible";
        case kNameIneligible: return "ineligible";
        case kNameTick: return "tick";
        case kNameCycle: return "cycle";
        case kNameQuarantine: return "quarantine";
        case kNameDrop: return "drop";
        case kNameEpoch: return "epoch";
        case kNameHop: return "hop";
        default: return "";
    }
}

namespace detail {
std::atomic<Session*> g_session{nullptr};
std::atomic<std::uint64_t> g_attach_generation{0};
constinit thread_local std::uint64_t t_now_ns = 0;
constinit thread_local std::uint32_t t_scope = 0;
}  // namespace detail

namespace {

/// Per-thread ring cache. The generation stamp — bumped on every attach —
/// guards against a new Session reusing a dead one's address.
struct ThreadRingCache {
    std::uint64_t generation = 0;
    Session::Ring* ring = nullptr;
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

Session::Session(SessionConfig cfg) : cfg_(cfg) {
    ALPS_EXPECT(cfg_.ring_capacity > 0);
    names_.reserve(kWellKnownNameCount);
    for (std::uint16_t id = 0; id < kWellKnownNameCount; ++id) {
        names_.emplace_back(well_known_name(id));
    }
}

Session::~Session() {
    if (detail::g_session.load(std::memory_order_relaxed) == this) detach();
}

std::uint16_t Session::intern(std::string_view name) {
    std::scoped_lock lock(mu_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<std::uint16_t>(i);
    }
    ALPS_EXPECT(names_.size() < 0xffff);
    names_.emplace_back(name);
    return static_cast<std::uint16_t>(names_.size() - 1);
}

std::vector<std::string> Session::names() const {
    std::scoped_lock lock(mu_);
    return names_;
}

std::uint64_t Session::dropped() const {
    std::scoped_lock lock(mu_);
    std::uint64_t n = 0;
    for (const auto& ring : rings_) n += ring->dropped;
    return n;
}

std::uint64_t Session::recorded() const {
    std::scoped_lock lock(mu_);
    std::uint64_t n = 0;
    for (const auto& ring : rings_) n += ring->records.size();
    return n;
}

namespace {

/// Appends a ring's records to `out` in emission order. A wrap-mode ring
/// that has lapped stores its oldest record at `next`, so the ring is
/// unrolled as [next, end) + [0, next).
void append_in_emission_order(const Session::Ring& ring, std::vector<Record>& out) {
    if (ring.wrap && ring.records.size() >= ring.records.capacity() &&
        ring.next != 0) {
        out.insert(out.end(), ring.records.begin() + static_cast<std::ptrdiff_t>(ring.next),
                   ring.records.end());
        out.insert(out.end(), ring.records.begin(),
                   ring.records.begin() + static_cast<std::ptrdiff_t>(ring.next));
        return;
    }
    out.insert(out.end(), ring.records.begin(), ring.records.end());
}

}  // namespace

std::vector<Record> Session::drain() {
    std::scoped_lock lock(mu_);
    std::vector<Record> out;
    std::size_t total = 0;
    for (const auto& ring : rings_) total += ring->records.size();
    out.reserve(total);
    for (const auto& ring : rings_) {
        append_in_emission_order(*ring, out);
        ring->records.clear();
        ring->next = 0;
    }
    std::stable_sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
        if (a.scope != b.scope) return a.scope < b.scope;
        return a.ts_ns < b.ts_ns;
    });
    return out;
}

bool Session::try_snapshot_tail(std::size_t max_per_ring, std::vector<Record>& records,
                                std::vector<std::string>& names,
                                std::uint64_t& dropped) const {
    std::unique_lock lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) return false;
    for (const auto& ring : rings_) {
        std::vector<Record> unrolled;
        unrolled.reserve(ring->records.size());
        append_in_emission_order(*ring, unrolled);
        const std::size_t n = std::min(max_per_ring, unrolled.size());
        records.insert(records.end(), unrolled.end() - static_cast<std::ptrdiff_t>(n),
                       unrolled.end());
        dropped += ring->dropped + (unrolled.size() - n);
    }
    names = names_;
    return true;
}

Session::Ring& Session::ring_for_current_thread() {
    std::scoped_lock lock(mu_);
    rings_.push_back(std::make_unique<Ring>(cfg_.ring_capacity, cfg_.wrap));
    return *rings_.back();
}

void attach(Session& session) {
    Session* expected = nullptr;
    const bool swapped = detail::g_session.compare_exchange_strong(
        expected, &session, std::memory_order_release);
    ALPS_EXPECT(swapped);  // one sink at a time
    detail::g_attach_generation.fetch_add(1, std::memory_order_relaxed);
}

void detach() { detail::g_session.store(nullptr, std::memory_order_release); }

void emit(const Record& record) {
    Session* session = detail::g_session.load(std::memory_order_acquire);
    if (session == nullptr) return;
    const std::uint64_t gen =
        detail::g_attach_generation.load(std::memory_order_relaxed);
    ThreadRingCache& cache = t_ring_cache;
    if (cache.generation != gen || cache.ring == nullptr) {
        cache.ring = &session->ring_for_current_thread();
        cache.generation = gen;
    }
    Session::Ring& ring = *cache.ring;
    if (ring.records.size() >= ring.records.capacity()) {
        if (ring.wrap) {
            // Flight-recorder mode: overwrite the oldest record so the ring
            // always holds the newest window. `next` walks the oldest slot.
            ring.records[ring.next] = record;
            ring.next = (ring.next + 1) % ring.records.capacity();
            ++ring.dropped;  // count of overwritten (lost) records
            return;
        }
        ++ring.dropped;  // bounded memory: drop the new record, keep a prefix
        return;
    }
    ring.records.push_back(record);
}

}  // namespace alps::telemetry
