// The event recorder: per-thread SPSC ring buffers behind one global sink.
//
// Design contract (the overhead budget every instrumented hot path relies
// on): with no Session attached, an instrumentation site costs exactly one
// relaxed atomic load and one predicted-untaken branch — `active()` — and
// nothing else. scripts/check.sh enforces this end-to-end: the Release
// perf-smoke leg fails if tracing-disabled `sim_perf` throughput drops more
// than ALPS_TRACE_OVERHEAD_TOLERANCE (default 5) percent below the committed
// baseline.
//
// With a Session attached, emit() appends one 32-byte Record to the calling
// thread's ring: single-producer (the thread), single-consumer (drain(),
// which runs only after producers have quiesced). Memory is bounded — a full
// ring drops *new* records and counts them, so a trace is always an exact
// prefix of what happened (the same policy as core::TraceLog), never a
// corrupted middle.
//
// Clock and scope are thread-local ambient state: sim::Engine publishes the
// virtual clock via set_now_ns() as it advances, and the sweep runner tags
// each task's records with set_scope(task index) so one .alpstrace can hold
// many independent simulations without their (restarting) clocks colliding.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/events.h"

namespace alps::telemetry {

struct SessionConfig {
    /// Records per thread ring (32 bytes each). Overflow drops new records
    /// and counts them; it never reallocates, so emit() cannot throw.
    std::size_t ring_capacity = 1u << 20;
    /// Flight-recorder mode: on overflow, overwrite the *oldest* record
    /// instead of dropping the new one, so the ring always holds the most
    /// recent window of activity (what a crash dump wants). Trace capture
    /// keeps the default drop-new policy, whose output is an exact prefix.
    /// Overwritten records count toward dropped() either way.
    bool wrap = false;
};

/// One recording. Construct, attach(), run the instrumented code, detach(),
/// then drain()/names() feed a TraceFile. A Session may be reused (attach
/// again) but not copied.
class Session {
public:
    explicit Session(SessionConfig cfg = {});
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Interns a name, returning its stable string-table id. Well-known
    /// names (events.h) are pre-interned with their enum values. Intended
    /// for setup code, not hot paths (takes the session mutex).
    std::uint16_t intern(std::string_view name);

    /// The string table; index == id.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Records dropped across all rings because a ring was full.
    [[nodiscard]] std::uint64_t dropped() const;

    /// Records currently buffered across all rings.
    [[nodiscard]] std::uint64_t recorded() const;

    /// Moves every ring's records into one stream, stably ordered by
    /// (scope, ts) — emission order breaks ties, so a single-threaded
    /// recording drains deterministically. Contract: no thread is emitting
    /// (detach() first; thread-pool joins provide the synchronization).
    [[nodiscard]] std::vector<Record> drain();

    /// Best-effort copy of the most recent records, for crash-context dumps.
    /// Uses try_to_lock — if another thread holds (or died holding) the
    /// session mutex, returns false rather than deadlocking inside a signal
    /// handler. Takes up to `max_per_ring` newest records from each ring,
    /// appends them to `records` (caller sorts), copies the string table into
    /// `names`, and accumulates the drop count into `dropped`.
    [[nodiscard]] bool try_snapshot_tail(std::size_t max_per_ring,
                                         std::vector<Record>& records,
                                         std::vector<std::string>& names,
                                         std::uint64_t& dropped) const;

    /// One thread's buffer (implementation detail, public only so the
    /// emit() fast path can cache a pointer to it).
    struct Ring {
        Ring(std::size_t capacity, bool wrap_mode) : wrap(wrap_mode) {
            records.reserve(capacity);
        }
        std::vector<Record> records;  ///< reserved up-front; never reallocates
        std::uint64_t dropped = 0;
        bool wrap = false;      ///< overwrite-oldest instead of drop-new
        std::size_t next = 0;   ///< wrap mode: index of the oldest record
    };

private:
    friend void attach(Session& session);
    friend void detach();
    friend void emit(const Record& record);

    /// The calling thread's ring, registering one on first use.
    Ring& ring_for_current_thread();

    mutable std::mutex mu_;
    SessionConfig cfg_;
    std::vector<std::unique_ptr<Ring>> rings_;  ///< registration order
    std::vector<std::string> names_;
};

namespace detail {
extern std::atomic<Session*> g_session;
extern std::atomic<std::uint64_t> g_attach_generation;
// constinit: constant-initialized, so the compiler addresses these
// directly instead of through the C++ TLS init wrapper — one less
// indirect call on every emit, and no wrapper pointer for sanitizers
// to flag.
extern constinit thread_local std::uint64_t t_now_ns;
extern constinit thread_local std::uint32_t t_scope;
}  // namespace detail

/// True while a Session is attached. The only cost tracing adds to an
/// instrumented hot path when disabled.
[[nodiscard]] inline bool active() {
    return detail::g_session.load(std::memory_order_relaxed) != nullptr;
}

/// Attaches the (single) global sink. Contract: nothing attached yet.
void attach(Session& session);
/// Detaches the sink; emits become no-ops again. Idempotent.
void detach();

/// Publishes the emitter's current clock (thread-local ambient time).
inline void set_now_ns(std::uint64_t ns) { detail::t_now_ns = ns; }
[[nodiscard]] inline std::uint64_t now_ns() { return detail::t_now_ns; }

/// Tags subsequent records from this thread with `scope` and rewinds the
/// ambient clock to 0 (scopes are independent simulations whose virtual
/// clocks restart).
inline void set_scope(std::uint32_t scope) {
    detail::t_scope = scope;
    detail::t_now_ns = 0;
}
[[nodiscard]] inline std::uint32_t scope() { return detail::t_scope; }

/// Appends `record` to the calling thread's ring of the attached session;
/// no-op when none is attached. Never throws and never allocates once the
/// thread's ring exists (drop-and-count on overflow).
void emit(const Record& record);

// ----- convenience emitters (ambient scope; ambient or explicit clock) -----

inline void emit_event(EventType type, std::uint16_t name, std::uint32_t track,
                       std::uint64_t ts_ns, std::uint64_t value = 0) {
    Record r;
    r.ts_ns = ts_ns;
    r.scope = detail::t_scope;
    r.track = track;
    r.type = static_cast<std::uint16_t>(type);
    r.name = name;
    r.value = value;
    emit(r);
}

inline void span_begin(std::uint16_t name, std::uint32_t track) {
    emit_event(EventType::kSpanBegin, name, track, detail::t_now_ns);
}
inline void span_begin_at(std::uint64_t ts_ns, std::uint16_t name, std::uint32_t track) {
    emit_event(EventType::kSpanBegin, name, track, ts_ns);
}
inline void span_end(std::uint16_t name, std::uint32_t track) {
    emit_event(EventType::kSpanEnd, name, track, detail::t_now_ns);
}
inline void span_end_at(std::uint64_t ts_ns, std::uint16_t name, std::uint32_t track) {
    emit_event(EventType::kSpanEnd, name, track, ts_ns);
}
inline void instant(std::uint16_t name, std::uint32_t track, std::uint64_t value = 0) {
    emit_event(EventType::kInstant, name, track, detail::t_now_ns, value);
}
inline void counter(std::uint16_t name, std::uint32_t track, std::uint64_t value) {
    emit_event(EventType::kCounter, name, track, detail::t_now_ns, value);
}

}  // namespace alps::telemetry
