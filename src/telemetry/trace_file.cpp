#include "telemetry/trace_file.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "telemetry/recorder.h"
#include "util/assert.h"

namespace alps::telemetry {

namespace {

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kRecordBytes = sizeof(Record);  // 32

// Explicit little-endian accessors: the on-disk format must not depend on
// host byte order.
void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::string& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((v >> shift) & 0xff));
    }
}
void put_u64(std::string& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<char>((v >> shift) & 0xff));
    }
}

class ByteReader {
public:
    ByteReader(const std::string& buf, std::string path)
        : buf_(buf), path_(std::move(path)) {}

    std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
    std::uint64_t u64() { return raw(8); }

    std::string bytes(std::size_t n) {
        need(n);
        std::string s = buf_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

    [[noreturn]] void fail(const std::string& why) const {
        throw std::runtime_error(path_ + ": " + why);
    }

private:
    std::uint64_t raw(int n) {
        need(static_cast<std::size_t>(n));
        std::uint64_t v = 0;
        for (int i = 0; i < n; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + static_cast<std::size_t>(i)]))
                 << (8 * i);
        }
        pos_ += static_cast<std::size_t>(n);
        return v;
    }

    void need(std::size_t n) const {
        if (buf_.size() - pos_ < n) fail("truncated file");
    }

    const std::string& buf_;
    std::string path_;
    std::size_t pos_ = 0;
};

const char* type_name(std::uint16_t type) {
    switch (static_cast<EventType>(type)) {
        case EventType::kSpanBegin: return "span_begin";
        case EventType::kSpanEnd: return "span_end";
        case EventType::kInstant: return "instant";
        case EventType::kCounter: return "counter";
    }
    return "?";
}

}  // namespace

void write_trace_file(const std::string& path, const TraceFile& trace) {
    ALPS_EXPECT(trace.names.size() <= 0xffff);
    std::string out;
    out.reserve(kHeaderBytes + trace.records.size() * kRecordBytes);

    out.append(kTraceMagic, sizeof(kTraceMagic));
    put_u32(out, trace.version);
    put_u32(out, static_cast<std::uint32_t>(kRecordBytes));
    put_u32(out, static_cast<std::uint32_t>(trace.names.size()));
    put_u32(out, 0);  // reserved
    put_u64(out, trace.records.size());
    put_u64(out, trace.dropped_records);
    out.append(kHeaderBytes - out.size(), '\0');

    for (const auto& name : trace.names) {
        ALPS_EXPECT(name.size() <= 0xffff);
        put_u16(out, static_cast<std::uint16_t>(name.size()));
        out.append(name);
    }
    for (const Record& r : trace.records) {
        put_u64(out, r.ts_ns);
        put_u32(out, r.scope);
        put_u32(out, r.track);
        put_u16(out, r.type);
        put_u16(out, r.name);
        put_u32(out, r.reserved);
        put_u64(out, r.value);
    }

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error(path + ": cannot open for writing");
    file.write(out.data(), static_cast<std::streamsize>(out.size()));
    file.flush();
    if (!file) throw std::runtime_error(path + ": write failed");
}

TraceFile read_trace_file(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw std::runtime_error(path + ": cannot open");
    std::string buf((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());

    ByteReader in(buf, path);
    if (in.remaining() < kHeaderBytes) in.fail("truncated header");
    if (in.bytes(sizeof(kTraceMagic)) != std::string(kTraceMagic, sizeof(kTraceMagic))) {
        in.fail("bad magic (not an .alpstrace file)");
    }

    TraceFile trace;
    trace.version = in.u32();
    if (trace.version != kTraceVersion) {
        in.fail("unsupported version " + std::to_string(trace.version));
    }
    const std::uint32_t record_bytes = in.u32();
    if (record_bytes != kRecordBytes) {
        in.fail("record size " + std::to_string(record_bytes) + ", expected " +
                std::to_string(kRecordBytes));
    }
    const std::uint32_t name_count = in.u32();
    if (in.u32() != 0) in.fail("nonzero reserved header field");
    const std::uint64_t record_count = in.u64();
    trace.dropped_records = in.u64();
    for (int i = 0; i < 3; ++i) {
        if (in.u64() != 0) in.fail("nonzero header padding");
    }

    trace.names.reserve(name_count);
    for (std::uint32_t i = 0; i < name_count; ++i) {
        const std::uint16_t len = in.u16();
        trace.names.push_back(in.bytes(len));
    }

    if (in.remaining() != record_count * kRecordBytes) {
        in.fail("record region is " + std::to_string(in.remaining()) +
                " bytes, header promises " + std::to_string(record_count * kRecordBytes));
    }
    trace.records.reserve(record_count);
    for (std::uint64_t i = 0; i < record_count; ++i) {
        Record r;
        r.ts_ns = in.u64();
        r.scope = in.u32();
        r.track = in.u32();
        r.type = in.u16();
        r.name = in.u16();
        r.reserved = in.u32();
        r.value = in.u64();
        trace.records.push_back(r);
    }
    return trace;
}

std::vector<std::string> verify_trace(const TraceFile& trace) {
    std::vector<std::string> problems;
    auto report = [&](std::size_t index, const std::string& why) {
        problems.push_back("record " + std::to_string(index) + ": " + why);
    };

    // Open-span depth per (scope, track, name): an end must close a begin.
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t>, std::uint64_t> open;
    std::map<std::uint32_t, std::uint64_t> last_ts;  // per-scope monotonicity

    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const Record& r = trace.records[i];
        const auto type = static_cast<EventType>(r.type);
        if (type != EventType::kSpanBegin && type != EventType::kSpanEnd &&
            type != EventType::kInstant && type != EventType::kCounter) {
            report(i, "unknown event type " + std::to_string(r.type));
            continue;
        }
        if (r.name >= trace.names.size()) {
            report(i, "name id " + std::to_string(r.name) + " out of range (table has " +
                          std::to_string(trace.names.size()) + ")");
        }
        if (r.reserved != 0) report(i, "nonzero reserved field");

        auto [it, first] = last_ts.try_emplace(r.scope, r.ts_ns);
        if (!first && r.ts_ns < it->second) {
            report(i, "timestamp " + std::to_string(r.ts_ns) + " before " +
                          std::to_string(it->second) + " in scope " +
                          std::to_string(r.scope));
        }
        it->second = std::max(it->second, r.ts_ns);

        if (type == EventType::kSpanBegin) {
            ++open[{r.scope, r.track, r.name}];
        } else if (type == EventType::kSpanEnd) {
            auto& depth = open[{r.scope, r.track, r.name}];
            if (depth == 0) {
                report(i, std::string("span_end without matching begin (name \"") +
                              (r.name < trace.names.size() ? trace.names[r.name] : "?") +
                              "\")");
            } else {
                --depth;
            }
        }
    }
    // Spans still open at end-of-trace are deliberately NOT reported: rings
    // drop the suffix on overflow and teardown can outlive the recording, so
    // every valid trace is a prefix.
    return problems;
}

TraceDiff diff_traces(const TraceFile& a, const TraceFile& b, std::size_t max_details) {
    TraceDiff diff;
    if (a.names != b.names) {
        diff.names_differ = true;
        diff.details.push_back("string tables differ (" + std::to_string(a.names.size()) +
                               " vs " + std::to_string(b.names.size()) + " names)");
    }
    const std::size_t common = std::min(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a.records[i] == b.records[i]) continue;
        ++diff.differing_records;
        if (diff.details.size() < max_details) {
            diff.details.push_back("record " + std::to_string(i) + ": " +
                                   format_record(a, a.records[i]) + "  vs  " +
                                   format_record(b, b.records[i]));
        }
    }
    const std::size_t extra = std::max(a.records.size(), b.records.size()) - common;
    if (extra > 0) {
        diff.differing_records += extra;
        if (diff.details.size() < max_details) {
            diff.details.push_back(std::to_string(extra) + " trailing record(s) only in " +
                                   (a.records.size() > b.records.size() ? "first" : "second") +
                                   " trace");
        }
    }
    return diff;
}

std::string format_record(const TraceFile& trace, const Record& r) {
    std::string out = std::to_string(r.ts_ns) + "ns scope=" + std::to_string(r.scope) +
                      " track=" + std::to_string(r.track) + " " + type_name(r.type) + " ";
    if (r.name < trace.names.size() && !trace.names[r.name].empty()) {
        out += trace.names[r.name];
    } else {
        out += "name#" + std::to_string(r.name);
    }
    const auto type = static_cast<EventType>(r.type);
    if (r.value != 0 || type == EventType::kCounter || type == EventType::kInstant) {
        out += " value=" + std::to_string(r.value);
    }
    return out;
}

bool dump_attached_session_tail(const std::string& path,
                                std::size_t max_per_ring) noexcept {
    try {
        Session* session = detail::g_session.load(std::memory_order_acquire);
        if (session == nullptr) return false;
        TraceFile trace;
        if (!session->try_snapshot_tail(max_per_ring, trace.records, trace.names,
                                        trace.dropped_records)) {
            return false;
        }
        std::stable_sort(trace.records.begin(), trace.records.end(),
                         [](const Record& a, const Record& b) {
                             if (a.scope != b.scope) return a.scope < b.scope;
                             return a.ts_ns < b.ts_ns;
                         });
        write_trace_file(path, trace);
        return true;
    } catch (...) {
        return false;
    }
}

}  // namespace alps::telemetry
