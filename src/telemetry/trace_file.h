// The .alpstrace container: versioned binary serialization of one recording.
//
// Layout (all integers little-endian, independent of host endianness):
//
//   header   64 bytes  magic "ALPSTRC1", version, record size, name count,
//                      record count, dropped-record count, zero padding
//   names    for each: u16 byte length + that many UTF-8 bytes (id == index)
//   records  record_count * 32 bytes, each field serialized in order
//
// The reader is strict: wrong magic/version/record size, a name table or
// record region that ends early, or trailing bytes after the last record are
// hard errors (throws std::runtime_error) — a truncated or corrupt file never
// yields a silently short trace. Semantic problems (unbalanced spans, unknown
// types, out-of-range name ids) are the province of verify_trace(), which
// reports them all instead of stopping at the first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/events.h"

namespace alps::telemetry {

inline constexpr char kTraceMagic[8] = {'A', 'L', 'P', 'S', 'T', 'R', 'C', '1'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// An in-memory .alpstrace: everything needed to rewrite the file
/// byte-identically.
struct TraceFile {
    std::uint32_t version = kTraceVersion;
    std::uint64_t dropped_records = 0;  ///< ring overflow during recording
    std::vector<std::string> names;     ///< string table; index == Record::name
    std::vector<Record> records;
};

/// Serializes `trace` to `path`. Throws std::runtime_error on I/O failure and
/// ContractViolation on malformed input (name longer than a u16, more than
/// 0xffff names).
void write_trace_file(const std::string& path, const TraceFile& trace);

/// Parses `path` strictly (see the format notes above). Throws
/// std::runtime_error with a one-line reason on any structural problem.
[[nodiscard]] TraceFile read_trace_file(const std::string& path);

/// Semantic validation: returns human-readable problems, empty == valid.
/// Checks per (scope, track): kSpanEnd must close an open span of the same
/// name. Spans still open at end-of-trace are fine — rings drop the suffix
/// under overflow and teardown may outlive the recording, so a trace is a
/// prefix. Also checks: known event types, in-range name ids, zero reserved
/// fields, and non-decreasing ts within each scope.
[[nodiscard]] std::vector<std::string> verify_trace(const TraceFile& trace);

/// Record-for-record comparison of two traces.
struct TraceDiff {
    bool names_differ = false;
    std::uint64_t differing_records = 0;  ///< mismatched + length difference
    std::vector<std::string> details;     ///< first few differences, rendered

    [[nodiscard]] bool identical() const {
        return !names_differ && differing_records == 0;
    }
};

[[nodiscard]] TraceDiff diff_traces(const TraceFile& a, const TraceFile& b,
                                    std::size_t max_details = 10);

/// One-line human rendering ("12500ns scope=3 track=1 span_begin eligible"),
/// shared by `alps-trace inspect` and diff details.
[[nodiscard]] std::string format_record(const TraceFile& trace, const Record& r);

/// Flight-recorder dump: snapshots the newest `max_per_ring` records of each
/// ring of the currently attached Session and writes them to `path` as a
/// normal .alpstrace. Built for crash context — it never throws, never
/// blocks on a contended mutex (Session::try_snapshot_tail), and returns
/// false when there is no attached session, the lock is held, or the write
/// fails. Safe to call from a signal handler only in a freshly-forked child
/// where no other thread can hold the session mutex.
bool dump_attached_session_tail(const std::string& path,
                                std::size_t max_per_ring) noexcept;

}  // namespace alps::telemetry
