#include "traffic/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace alps::traffic {

using util::Duration;
using util::TimePoint;

namespace {

double diurnal_at(const DiurnalCurve& d, TimePoint t) {
    if (d.period <= Duration::zero() || d.amplitude == 0.0) return 1.0;
    const double cycles =
        static_cast<double>(t.since_epoch.count()) /
            static_cast<double>(d.period.count()) +
        d.phase;
    constexpr double kTau = 6.283185307179586476925286766559;
    return 1.0 + d.amplitude * std::sin(kTau * cycles);
}

double spike_at(const FlashCrowd& s, TimePoint t) {
    if (s.multiplier <= 1.0 || t < s.start) return 1.0;
    Duration into = t - s.start;
    if (into < s.ramp) {
        const double f = static_cast<double>(into.count()) /
                         static_cast<double>(s.ramp.count());
        return 1.0 + (s.multiplier - 1.0) * f;
    }
    into = into - s.ramp;
    if (into < s.hold) return s.multiplier;
    into = into - s.hold;
    if (into < s.decay) {
        const double f = static_cast<double>(into.count()) /
                         static_cast<double>(s.decay.count());
        return s.multiplier - (s.multiplier - 1.0) * f;
    }
    return 1.0;
}

}  // namespace

double rate_envelope(const ArrivalConfig& cfg, TimePoint t) {
    double rate = cfg.base_rps * diurnal_at(cfg.diurnal, t);
    for (const FlashCrowd& s : cfg.spikes) rate *= spike_at(s, t);
    return rate;
}

double rate_bound(const ArrivalConfig& cfg) {
    double bound = cfg.base_rps * (1.0 + cfg.diurnal.amplitude);
    // Overlapping spikes multiply; bounding by the product of all peaks is
    // conservative but keeps the bound exact for the common disjoint case
    // read off each spike's own window.
    for (const FlashCrowd& s : cfg.spikes) {
        bound *= std::max(1.0, s.multiplier);
    }
    if (cfg.burst.enabled()) bound *= cfg.burst.multiplier;
    return bound;
}

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg, util::Rng rng)
    : cfg_(std::move(cfg)), rng_(rng) {
    ALPS_EXPECT(cfg_.base_rps > 0.0);
    ALPS_EXPECT(cfg_.diurnal.amplitude >= 0.0 && cfg_.diurnal.amplitude < 1.0);
    for (const FlashCrowd& s : cfg_.spikes) {
        ALPS_EXPECT(s.multiplier >= 1.0);
        ALPS_EXPECT(s.ramp >= Duration::zero() && s.hold >= Duration::zero() &&
                    s.decay >= Duration::zero());
    }
    bound_ = rate_bound(cfg_);
    candidate_mean_ = Duration{static_cast<std::int64_t>(
        std::llround(1e9 / bound_))};
    ALPS_ENSURE(candidate_mean_ > Duration::zero());
    if (cfg_.burst.enabled()) {
        // Start in the normal state with a full dwell ahead.
        next_switch_ = TimePoint{} + rng_.exponential(cfg_.burst.mean_normal);
    }
}

double ArrivalProcess::rate_at(TimePoint t) {
    double rate = rate_envelope(cfg_, t);
    if (cfg_.burst.enabled()) {
        // Advance the modulating chain to t. Dwell draws are independent of
        // the candidate points, so sampling the state lazily (only when a
        // candidate lands) is exact.
        while (next_switch_ <= t) {
            bursting_ = !bursting_;
            next_switch_ = next_switch_ +
                           rng_.exponential(bursting_ ? cfg_.burst.mean_burst
                                                      : cfg_.burst.mean_normal);
        }
        if (bursting_) rate *= cfg_.burst.multiplier;
    }
    return rate;
}

TimePoint ArrivalProcess::next(TimePoint from) {
    // Thinning: homogeneous candidates at the bound rate, each kept with
    // probability lambda(t)/bound. The expected number of rejected
    // candidates per arrival is bound/lambda — bounded by the spike and
    // burst gains, which the scenario keeps modest.
    TimePoint t = from;
    for (;;) {
        t = t + rng_.exponential(candidate_mean_);
        const double rate = rate_at(t);
        if (rng_.next_double() * bound_ < rate) return t;
    }
}

}  // namespace alps::traffic
