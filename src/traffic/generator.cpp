#include "traffic/generator.h"

#include <utility>

#include "util/assert.h"

namespace alps::traffic {

using util::Duration;
using util::TimePoint;

Generator::Generator(sim::Engine& engine, GeneratorConfig cfg, SubmitFn submit)
    : state_(std::make_shared<State>(State{engine, cfg, util::Rng(cfg.seed),
                                           std::nullopt, std::move(submit)})) {
    State& st = *state_;
    ALPS_EXPECT(st.submit != nullptr);
    if (st.cfg.mode == GeneratorConfig::Mode::kOpenLoop) {
        st.arrivals.emplace(st.cfg.arrival, util::Rng(st.cfg.seed));
        const TimePoint first = st.arrivals->next(engine.now());
        engine.schedule_at(first, [s = state_] { arrive(s); });
    } else {
        ALPS_EXPECT(st.cfg.population > 0);
        ALPS_EXPECT(st.cfg.think_mean > Duration::zero());
        // Same draw order as the seed ClientPool: one uniform offset per
        // client at construction, one exponential think per completion.
        for (int i = 0; i < st.cfg.population; ++i) {
            think_then_submit(state_, st.rng.uniform_duration(Duration::zero(),
                                                              st.cfg.think_mean));
        }
    }
}

Generator::~Generator() { stop(); }

void Generator::stop() { state_->stopped = true; }

std::uint64_t Generator::submitted() const { return state_->submitted; }

const GeneratorConfig& Generator::config() const { return state_->cfg; }

void Generator::arrive(const std::shared_ptr<State>& st) {
    if (st->stopped) return;
    ++st->submitted;
    st->submit();
    const TimePoint next = st->arrivals->next(st->engine.now());
    st->engine.schedule_at(next, [st] { arrive(st); });
}

void Generator::think_then_submit(const std::shared_ptr<State>& st,
                                  Duration delay) {
    st->engine.schedule_after(delay, [st] {
        if (st->stopped) return;
        ++st->submitted;
        st->submit();
    });
}

void Generator::on_completion() {
    State& st = *state_;
    if (st.stopped || st.cfg.mode != GeneratorConfig::Mode::kClosedLoop) return;
    think_then_submit(state_, st.rng.exponential(st.cfg.think_mean));
}

}  // namespace alps::traffic
