// The workload generator: turns an arrival model into submit() calls on a
// request sink (a web site's listen queue).
//
// Two modes:
//   * kOpenLoop — requests arrive per an ArrivalProcess, independent of how
//     the server is doing (the production model: real users don't politely
//     wait for the previous user's page before clicking).
//   * kClosedLoop — a fixed population of simulated clients, each cycling
//     think -> request -> response -> think (the paper's §5 325-client
//     setup, kept as a compatibility mode; its rng draw order is exactly
//     the seed web model's, which the §5 golden test pins).
//
// The generator is the only place the traffic subsystem touches the engine;
// callbacks share state through a shared_ptr so the generator may be
// destroyed while timers are still in flight (they become no-ops).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "sim/engine.h"
#include "traffic/arrival.h"
#include "util/rng.h"
#include "util/time.h"

namespace alps::traffic {

struct GeneratorConfig {
    enum class Mode : std::uint8_t { kOpenLoop, kClosedLoop };
    Mode mode = Mode::kOpenLoop;
    /// Open-loop arrival model.
    ArrivalConfig arrival{};
    /// Closed-loop population and mean (exponential) think time.
    int population = 0;
    util::Duration think_mean{0};
    std::uint64_t seed = 11;
};

class Generator {
public:
    using SubmitFn = std::function<void()>;

    /// Starts generating immediately: open-loop schedules the first arrival;
    /// closed-loop starts each client at a uniform offset within one think
    /// time (no synchronized stampede).
    Generator(sim::Engine& engine, GeneratorConfig cfg, SubmitFn submit);
    ~Generator();  ///< stop()s; in-flight timers become no-ops

    Generator(const Generator&) = delete;
    Generator& operator=(const Generator&) = delete;

    void stop();

    /// Closed-loop: the sink must call this once per completed request; the
    /// client thinks, then submits again. No-op in open-loop mode.
    void on_completion();

    /// Requests submitted so far.
    [[nodiscard]] std::uint64_t submitted() const;
    [[nodiscard]] const GeneratorConfig& config() const;

private:
    struct State {
        sim::Engine& engine;
        GeneratorConfig cfg;
        util::Rng rng;                           ///< closed-loop think draws
        std::optional<ArrivalProcess> arrivals;  ///< open-loop sample path
        SubmitFn submit;
        std::uint64_t submitted = 0;
        bool stopped = false;
    };

    static void arrive(const std::shared_ptr<State>& st);
    static void think_then_submit(const std::shared_ptr<State>& st,
                                  util::Duration delay);

    std::shared_ptr<State> state_;
};

}  // namespace alps::traffic
