#include "traffic/latency.h"

#include <algorithm>
#include <cstdio>

#include "util/assert.h"

namespace alps::traffic {

using util::Duration;

namespace {

constexpr std::uint32_t clamp_us(Duration d) {
    const std::int64_t us = d.count() / 1000;
    if (us <= 0) return 0;
    if (us >= 0xffffffffLL) return 0xffffffffu;
    return static_cast<std::uint32_t>(us);
}

/// Exact order statistic over a scratch copy (nth_element, not a full sort).
Duration quantile_of_samples(std::vector<std::uint32_t> samples, double q) {
    if (samples.empty()) return Duration::zero();
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(rank),
                     samples.end());
    return util::usec(samples[rank]);
}

}  // namespace

LatencyRecorder::LatencyRecorder(std::size_t sites) : sites_(sites) {
    ALPS_EXPECT(sites > 0);
}

void LatencyRecorder::record(std::size_t site, Duration response,
                             Duration queue_wait, Duration db_wait) {
    Site& s = sites_.at(site);
    s.resp_us.push_back(clamp_us(response));
    s.resp_ns += response.count();
    s.wait_ns += queue_wait.count();
    s.db_ns += db_wait.count();
    ++s.completed;
}

void LatencyRecorder::drop(std::size_t site) { ++sites_.at(site).drops; }

void LatencyRecorder::timeout(std::size_t site) { ++sites_.at(site).timeouts; }

void LatencyRecorder::note_queue_depth(std::size_t site, std::size_t depth) {
    Site& s = sites_.at(site);
    s.max_depth = std::max(s.max_depth, depth);
}

std::uint64_t LatencyRecorder::completed(std::size_t site) const {
    return sites_.at(site).completed;
}
std::uint64_t LatencyRecorder::drops(std::size_t site) const {
    return sites_.at(site).drops;
}
std::uint64_t LatencyRecorder::timeouts(std::size_t site) const {
    return sites_.at(site).timeouts;
}
std::size_t LatencyRecorder::max_queue_depth(std::size_t site) const {
    return sites_.at(site).max_depth;
}

Duration LatencyRecorder::mean_response(std::size_t site) const {
    const Site& s = sites_.at(site);
    if (s.completed == 0) return Duration::zero();
    return Duration{s.resp_ns / static_cast<std::int64_t>(s.completed)};
}

Duration LatencyRecorder::mean_queue_wait(std::size_t site) const {
    const Site& s = sites_.at(site);
    if (s.completed == 0) return Duration::zero();
    return Duration{s.wait_ns / static_cast<std::int64_t>(s.completed)};
}

std::uint64_t LatencyRecorder::total_completed() const {
    std::uint64_t n = 0;
    for (const Site& s : sites_) n += s.completed;
    return n;
}
std::uint64_t LatencyRecorder::total_drops() const {
    std::uint64_t n = 0;
    for (const Site& s : sites_) n += s.drops;
    return n;
}
std::uint64_t LatencyRecorder::total_timeouts() const {
    std::uint64_t n = 0;
    for (const Site& s : sites_) n += s.timeouts;
    return n;
}

Duration LatencyRecorder::quantile(std::size_t site, double q) const {
    return quantile_of_samples(sites_.at(site).resp_us, q);
}

Duration LatencyRecorder::quantile_of(const std::vector<std::size_t>& sites,
                                      double q) const {
    std::vector<std::uint32_t> merged;
    std::size_t total = 0;
    for (const std::size_t i : sites) total += sites_.at(i).resp_us.size();
    merged.reserve(total);
    for (const std::size_t i : sites) {
        const auto& v = sites_.at(i).resp_us;
        merged.insert(merged.end(), v.begin(), v.end());
    }
    return quantile_of_samples(std::move(merged), q);
}

void LatencyRecorder::export_metrics(telemetry::MetricsRegistry& reg,
                                     const std::string& prefix,
                                     bool per_site) const {
    telemetry::Histogram& hist = reg.histogram(prefix + ".resp_us");
    for (const Site& s : sites_) {
        for (const std::uint32_t us : s.resp_us) hist.record(us);
    }
    reg.counter(prefix + ".completed").add(total_completed());
    reg.counter(prefix + ".drops").add(total_drops());
    reg.counter(prefix + ".timeouts").add(total_timeouts());
    if (!per_site) return;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        char key[32];
        std::snprintf(key, sizeof key, ".site%04zu.", i);
        const std::string base = prefix + key;
        reg.gauge(base + "p50_us").set(util::to_us(quantile(i, 0.50)));
        reg.gauge(base + "p95_us").set(util::to_us(quantile(i, 0.95)));
        reg.gauge(base + "p99_us").set(util::to_us(quantile(i, 0.99)));
        reg.counter(base + "completed").add(sites_[i].completed);
    }
}

}  // namespace alps::traffic
