// Per-site end-to-end latency pipeline.
//
// Every request is timestamped at arrival (table-row creation), first
// dispatch (worker pickup), DB wait (accumulated across round trips), and
// completion; the recorder lands the results per site. It keeps the exact
// response-time samples (µs resolution) so p50/p95/p99 are true order
// statistics — the telemetry histograms bucket by powers of two, fine for
// dashboards but too coarse for a capacity-planning figure — and exports
// both: exact quantile gauges and log-bucketed histograms, plus queue-depth
// high-water marks and drop/timeout counters, into the metrics registry
// that BENCH_*.json serializes as run.telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/time.h"

namespace alps::traffic {

class LatencyRecorder {
public:
    explicit LatencyRecorder(std::size_t sites);

    /// One completed request: end-to-end response, time queued before the
    /// first dispatch, and total DB wait.
    void record(std::size_t site, util::Duration response,
                util::Duration queue_wait, util::Duration db_wait);
    /// Rejected at the door (listen-queue backlog cap).
    void drop(std::size_t site);
    /// Shed at dispatch: it outwaited the queue deadline.
    void timeout(std::size_t site);
    /// Tracks the listen queue's high-water mark; call on every enqueue.
    void note_queue_depth(std::size_t site, std::size_t depth);

    [[nodiscard]] std::size_t sites() const { return sites_.size(); }
    [[nodiscard]] std::uint64_t completed(std::size_t site) const;
    [[nodiscard]] std::uint64_t drops(std::size_t site) const;
    [[nodiscard]] std::uint64_t timeouts(std::size_t site) const;
    [[nodiscard]] std::size_t max_queue_depth(std::size_t site) const;
    [[nodiscard]] util::Duration mean_response(std::size_t site) const;
    [[nodiscard]] util::Duration mean_queue_wait(std::size_t site) const;

    [[nodiscard]] std::uint64_t total_completed() const;
    [[nodiscard]] std::uint64_t total_drops() const;
    [[nodiscard]] std::uint64_t total_timeouts() const;

    /// Exact response-time quantile (q in [0, 1]) for one site; zero when
    /// the site has no completions.
    [[nodiscard]] util::Duration quantile(std::size_t site, double q) const;
    /// Exact quantile over the merged samples of several sites.
    [[nodiscard]] util::Duration quantile_of(const std::vector<std::size_t>& sites,
                                             double q) const;

    /// Exports under `prefix`: aggregate `<prefix>.resp_us` histogram and
    /// completed/drops/timeouts counters, plus — when per_site — one block
    /// per site (`<prefix>.site0042.{p50_us,p95_us,p99_us}` exact-quantile
    /// gauges and a completed counter).
    void export_metrics(telemetry::MetricsRegistry& reg, const std::string& prefix,
                        bool per_site) const;

private:
    struct Site {
        std::vector<std::uint32_t> resp_us;  ///< exact samples, clamped u32
        std::int64_t resp_ns = 0;
        std::int64_t wait_ns = 0;
        std::int64_t db_ns = 0;
        std::uint64_t completed = 0;
        std::uint64_t drops = 0;
        std::uint64_t timeouts = 0;
        std::size_t max_depth = 0;
    };

    std::vector<Site> sites_;
};

}  // namespace alps::traffic
