#include "traffic/service.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace alps::traffic {

using util::Duration;

Duration ServiceModel::draw(util::Rng& rng, Duration mean) const {
    ALPS_EXPECT(mean > Duration::zero());
    switch (kind) {
        case ServiceKind::kDeterministic:
            return std::max(mean, floor);
        case ServiceKind::kExponential:
            return std::max(rng.exponential(mean), floor);
        case ServiceKind::kPareto: {
            ALPS_EXPECT(shape > 1.0);  // else the mean diverges
            // Scale x_m chosen so E = x_m·alpha/(alpha-1) equals `mean`;
            // inverse-CDF draw x_m·u^(-1/alpha) with u in (0, 1].
            const double xm =
                static_cast<double>(mean.count()) * (shape - 1.0) / shape;
            const double u = 1.0 - rng.next_double();
            const double d = xm * std::pow(u, -1.0 / shape);
            return std::max(Duration{static_cast<std::int64_t>(d)}, floor);
        }
        case ServiceKind::kLognormal: {
            ALPS_EXPECT(shape > 0.0);
            // mu from the mean: E = exp(mu + sigma^2/2). Box–Muller without
            // the cached spare — one draw costs two uniforms, but the draw
            // count per call stays constant, which keeps lanes' rng streams
            // aligned regardless of call history.
            const double mu =
                std::log(static_cast<double>(mean.count())) - shape * shape / 2.0;
            const double u1 = 1.0 - rng.next_double();  // (0, 1]: log is safe
            const double u2 = rng.next_double();
            constexpr double kTau = 6.283185307179586476925286766559;
            const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTau * u2);
            const double d = std::exp(mu + shape * z);
            return std::max(Duration{static_cast<std::int64_t>(d)}, floor);
        }
    }
    ALPS_ENSURE(false);  // unreachable: all kinds handled above
    return floor;
}

}  // namespace alps::traffic
