// Service-time distributions for workload phases.
//
// Each web-model phase names a mean; the ServiceModel turns (rng, mean) into
// a draw. kExponential with a 10 µs floor is exactly the seed web model's
// jittered draw (same single rng.exponential() call, so the §5 golden stays
// bit-identical); kPareto and kLognormal give the heavy tails measured in
// real web/database service times, parameterized by the same mean so share
// experiments compare like against like.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace alps::traffic {

enum class ServiceKind : std::uint8_t {
    kDeterministic,  ///< the mean itself; consumes no randomness
    kExponential,    ///< memoryless (CV = 1)
    kPareto,         ///< power-law tail, P[X > x] ~ x^-shape; shape > 1
    kLognormal,      ///< log-scale Gaussian; `shape` is sigma > 0
};

struct ServiceModel {
    ServiceKind kind = ServiceKind::kExponential;
    /// Pareto tail index alpha (heavier when closer to 1) or lognormal
    /// sigma; ignored by the other kinds.
    double shape = 2.2;
    /// Every draw is floored here so a request never costs literally
    /// nothing (the seed model's 10 µs floor).
    util::Duration floor = util::usec(10);

    /// One service draw with the given mean. All kinds are parameterized so
    /// E[draw] == mean (before flooring).
    [[nodiscard]] util::Duration draw(util::Rng& rng, util::Duration mean) const;
};

}  // namespace alps::traffic
