#include "traffic/table.h"

#include <algorithm>

namespace alps::traffic {

namespace {
constexpr ReqId pack(std::size_t slot, std::uint32_t gen) {
    return (static_cast<ReqId>(gen) << 32) | (static_cast<ReqId>(slot) + 1);
}
}  // namespace

void RequestTable::reserve(std::size_t rows) {
    arrival_ns_.reserve(rows);
    dispatch_ns_.reserve(rows);
    db_wait_ns_.reserve(rows);
    site_.reserve(rows);
    gen_.reserve(rows);
    klass_.reserve(rows);
    live_.reserve(rows);
    free_.reserve(rows);
}

ReqId RequestTable::create(std::uint32_t site, std::uint16_t klass,
                           util::TimePoint arrival) {
    std::size_t s;
    if (!free_.empty()) {
        s = free_.back();
        free_.pop_back();
    } else {
        s = site_.size();
        ALPS_EXPECT(s < 0xffffffffULL);  // slot must fit the id's low half
        arrival_ns_.push_back(0);
        dispatch_ns_.push_back(0);
        db_wait_ns_.push_back(0);
        site_.push_back(0);
        gen_.push_back(0);
        klass_.push_back(0);
        live_.push_back(0);
    }
    arrival_ns_[s] = arrival.since_epoch.count();
    dispatch_ns_[s] = arrival.since_epoch.count();
    db_wait_ns_[s] = 0;
    site_[s] = site;
    klass_[s] = klass;
    live_[s] = 1;
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    ++created_;
    return pack(s, gen_[s]);
}

void RequestTable::release(ReqId id) {
    const std::size_t s = slot(id);  // guards validity
    live_[s] = 0;
    ++gen_[s];  // invalidate every outstanding copy of the handle
    free_.push_back(static_cast<std::uint32_t>(s));
    --in_flight_;
    ++released_;
}

bool RequestTable::valid(ReqId id) const {
    if (id == kNoRequest) return false;
    const std::uint64_t low = id & 0xffffffffULL;
    if (low == 0 || low > site_.size()) return false;
    const std::size_t s = static_cast<std::size_t>(low - 1);
    return live_[s] != 0 && gen_[s] == static_cast<std::uint32_t>(id >> 32);
}

// ----------------------------------------------------------------------------
// IdRing

void IdRing::push(ReqId id) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = id;
    ++count_;
}

ReqId IdRing::pop() {
    ALPS_EXPECT(count_ > 0);
    const ReqId id = buf_[head_];
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return id;
}

const ReqId& IdRing::front() const {
    ALPS_EXPECT(count_ > 0);
    return buf_[head_];
}

void IdRing::grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<ReqId> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
        next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    }
    buf_ = std::move(next);
    head_ = 0;
}

}  // namespace alps::traffic
