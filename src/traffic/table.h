// Flat SoA request/session table (the PR 3/5/8 substrate style applied to
// the web model).
//
// Every in-flight simulated request is one row addressed by a ReqId — a
// (slot, generation) handle like sim::EventId — in parallel column vectors:
// the end-to-end latency pipeline's timestamps (arrival, first dispatch,
// accumulated DB wait) plus the owning site and request class. Rows are
// recycled through a LIFO freelist (released rows are cache-warm), so a run
// allocates O(peak in-flight) rows once and then runs allocation-free no
// matter how many requests pass through. Stale handles are detected by the
// generation check, which the ASan reuse/reap tests lean on.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"
#include "util/time.h"

namespace alps::traffic {

/// (generation << 32) | (slot + 1); 0 is "no request".
using ReqId = std::uint64_t;
inline constexpr ReqId kNoRequest = 0;

class RequestTable {
public:
    RequestTable() = default;

    /// Pre-sizes the columns (optional; the table grows on demand).
    void reserve(std::size_t rows);

    /// Creates one request row timestamped at `arrival`.
    [[nodiscard]] ReqId create(std::uint32_t site, std::uint16_t klass,
                               util::TimePoint arrival);

    /// Returns the row to the freelist; `id` (and any copy of it) is stale
    /// afterwards and will fail valid().
    void release(ReqId id);

    /// True iff `id` names a live row (slot in range, generation current).
    [[nodiscard]] bool valid(ReqId id) const;

    // ---- columns (id must be valid) ----
    [[nodiscard]] std::uint32_t site(ReqId id) const { return site_[slot(id)]; }
    [[nodiscard]] std::uint16_t klass(ReqId id) const { return klass_[slot(id)]; }
    [[nodiscard]] util::TimePoint arrival(ReqId id) const {
        return util::TimePoint{util::Duration{arrival_ns_[slot(id)]}};
    }
    /// First worker pickup; == arrival until set_dispatch.
    [[nodiscard]] util::TimePoint dispatch(ReqId id) const {
        return util::TimePoint{util::Duration{dispatch_ns_[slot(id)]}};
    }
    void set_dispatch(ReqId id, util::TimePoint t) {
        dispatch_ns_[slot(id)] = t.since_epoch.count();
    }
    [[nodiscard]] util::Duration db_wait(ReqId id) const {
        return util::Duration{db_wait_ns_[slot(id)]};
    }
    void add_db_wait(ReqId id, util::Duration d) {
        db_wait_ns_[slot(id)] += d.count();
    }

    // ---- occupancy ----
    [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
    [[nodiscard]] std::size_t peak_in_flight() const { return peak_in_flight_; }
    [[nodiscard]] std::size_t rows() const { return site_.size(); }
    [[nodiscard]] std::uint64_t created() const { return created_; }
    [[nodiscard]] std::uint64_t released() const { return released_; }

private:
    [[nodiscard]] std::size_t slot(ReqId id) const {
        ALPS_GUARD(valid(id));
        return static_cast<std::size_t>((id & 0xffffffffULL) - 1);
    }

    std::vector<std::int64_t> arrival_ns_;
    std::vector<std::int64_t> dispatch_ns_;
    std::vector<std::int64_t> db_wait_ns_;
    std::vector<std::uint32_t> site_;
    std::vector<std::uint32_t> gen_;
    std::vector<std::uint16_t> klass_;
    std::vector<std::uint8_t> live_;
    std::vector<std::uint32_t> free_;  ///< LIFO freelist of slots

    std::size_t in_flight_ = 0;
    std::size_t peak_in_flight_ = 0;
    std::uint64_t created_ = 0;
    std::uint64_t released_ = 0;
};

/// Growable power-of-two FIFO ring of request ids — the per-site listen
/// queue. Unlike std::deque it stores ids inline in one contiguous buffer
/// and never allocates after reaching its high-water size.
class IdRing {
public:
    void push(ReqId id);
    /// Pops the oldest id; the ring must be non-empty.
    ReqId pop();
    [[nodiscard]] const ReqId& front() const;
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }

private:
    void grow();

    std::vector<ReqId> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace alps::traffic
