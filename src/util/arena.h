// Monotonic per-run arena.
//
// A bump allocator over geometrically-growing chunks, built for the
// simulation substrate's lifetime pattern: one sweep rep constructs an
// Engine/Kernel/Scheduler stack, churns through millions of events with a
// *stable* working set (event slabs, Proc records, the entity table), and
// tears the whole thing down at once. Allocation is a pointer bump; nothing
// is ever freed individually; reset() rewinds every chunk for the next run
// (chunks are kept, so a reused arena reaches malloc only while its first
// rep is still warming up). Single-threaded by contract, like the engine it
// backs — each ThreadPool sweep worker owns its own run and therefore its
// own arena, which is what keeps rep fan-out off the global allocator.
//
// The arena does NOT run destructors: callers placement-new objects via
// create<T>() and are responsible for destroying non-trivial ones before
// reset()/destruction (the Engine and Kernel do exactly that for their event
// slabs and Proc records).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace alps::util {

class Arena {
public:
    /// `chunk_bytes` is the default chunk size; requests larger than a chunk
    /// get a dedicated chunk of exactly their size.
    explicit Arena(std::size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {
        ALPS_EXPECT(chunk_bytes > 0);
    }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Returns `bytes` of storage aligned to `align` (a power of two).
    void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
        ALPS_EXPECT(align != 0 && (align & (align - 1)) == 0);
        if (bytes == 0) bytes = 1;
        for (;;) {
            if (cur_ < chunks_.size()) {
                Chunk& c = chunks_[cur_];
                const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
                if (aligned + bytes <= c.size) {
                    used_ += (aligned - offset_) + bytes;
                    if (used_ > high_water_) high_water_ = used_;
                    offset_ = aligned + bytes;
                    return c.data.get() + aligned;
                }
                // Current chunk exhausted; try the next one (reset() keeps
                // chunks around, so a warmed arena re-walks them for free).
                ++cur_;
                offset_ = 0;
                continue;
            }
            const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                                  : chunk_bytes_;
            chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
            offset_ = 0;
        }
    }

    /// Placement-news a T from the arena. The caller owns the destructor
    /// call for non-trivially-destructible types.
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        return ::new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    }

    /// Uninitialized storage for `n` objects of type T.
    template <typename T>
    T* allocate_array(std::size_t n) {
        return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    }

    /// Rewinds the arena to empty without releasing its chunks: the next
    /// run's allocations reuse the same memory. high_water() survives resets
    /// (it is the lifetime peak, the capacity-planning number).
    void reset() {
        cur_ = 0;
        offset_ = 0;
        used_ = 0;
    }

    /// Bytes handed out (including alignment padding) since construction or
    /// the last reset().
    [[nodiscard]] std::size_t bytes_used() const { return used_; }
    /// Peak bytes_used() over the arena's lifetime.
    [[nodiscard]] std::size_t high_water() const { return high_water_; }
    /// Bytes of chunk storage owned (>= bytes_used()).
    [[nodiscard]] std::size_t bytes_reserved() const {
        std::size_t total = 0;
        for (const Chunk& c : chunks_) total += c.size;
        return total;
    }
    [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;     ///< index of the chunk being bumped
    std::size_t offset_ = 0;  ///< bump cursor within chunks_[cur_]
    std::size_t chunk_bytes_;
    std::size_t used_ = 0;
    std::size_t high_water_ = 0;
};

/// std::allocator-compatible adaptor so standard containers (the scheduler's
/// flat entity table) can live in an arena. A null arena falls back to the
/// heap, which keeps arena-aware types usable in contexts that have no run
/// arena (the POSIX backend, unit tests). Deallocation inside an arena is a
/// no-op — the memory returns on reset(); growth therefore strands the old
/// buffer, which is the intended monotonic trade for containers that grow to
/// a stable size and stay there.
template <typename T>
class ArenaAllocator {
public:
    using value_type = T;

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

    T* allocate(std::size_t n) {
        if (arena_ != nullptr) return arena_->allocate_array<T>(n);
        return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t) noexcept {
        if (arena_ == nullptr) ::operator delete(p);
    }

    [[nodiscard]] Arena* arena() const noexcept { return arena_; }

    friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
        return !(a == b);
    }

private:
    template <typename U>
    friend class ArenaAllocator;

    Arena* arena_ = nullptr;
};

}  // namespace alps::util
