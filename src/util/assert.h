// Contract checking in the spirit of the C++ Core Guidelines' Expects/Ensures.
//
// Violations throw alps::util::ContractViolation (rather than aborting) so
// that unit tests can assert on misuse of the public API.  The checks are
// always on: every predicate used in this codebase is O(1) and the library is
// a scheduler, not an inner numeric kernel.
#pragma once

#include <stdexcept>
#include <string>

namespace alps::util {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file +
                            ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace alps::util

/// Precondition check: argument/state requirements at function entry.
#define ALPS_EXPECT(cond)                                                            \
    do {                                                                             \
        if (!(cond)) ::alps::util::detail::contract_fail("precondition", #cond,      \
                                                         __FILE__, __LINE__);        \
    } while (false)

/// Postcondition / internal invariant check.
#define ALPS_ENSURE(cond)                                                            \
    do {                                                                             \
        if (!(cond)) ::alps::util::detail::contract_fail("invariant", #cond,         \
                                                         __FILE__, __LINE__);        \
    } while (false)
