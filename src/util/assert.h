// Contract checking in the spirit of the C++ Core Guidelines' Expects/Ensures.
//
// Violations throw alps::util::ContractViolation (rather than aborting) so
// that unit tests can assert on misuse of the public API.  The checks are
// always on: every predicate used in this codebase is O(1) and the library is
// a scheduler, not an inner numeric kernel.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace alps::util {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file +
                            ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace alps::util

/// Precondition check: argument/state requirements at function entry.
#define ALPS_EXPECT(cond)                                                            \
    do {                                                                             \
        if (!(cond)) ::alps::util::detail::contract_fail("precondition", #cond,      \
                                                         __FILE__, __LINE__);        \
    } while (false)

/// Postcondition / internal invariant check.
#define ALPS_ENSURE(cond)                                                            \
    do {                                                                             \
        if (!(cond)) ::alps::util::detail::contract_fail("invariant", #cond,         \
                                                         __FILE__, __LINE__);        \
    } while (false)

namespace alps::util::detail {
[[noreturn]] inline void guard_fail(const char* expr, const char* file, int line) {
    std::fprintf(stderr, "alps: corruption guard failed: %s at %s:%d\n", expr, file,
                 line);
    std::abort();
}
}  // namespace alps::util::detail

/// Corruption guard: an always-on O(1) check of an invariant whose violation
/// means in-memory state is already wrong — unwinding through it (as
/// ALPS_EXPECT/ALPS_ENSURE would) could only propagate the damage. It aborts
/// instead, which under a supervised sweep (harness::RunSupervisor --isolate)
/// becomes a cleanly classified, retried, forensics-bundled crash of one
/// worker process rather than a lost sweep.
#define ALPS_GUARD(cond)                                                             \
    do {                                                                             \
        if (!(cond)) ::alps::util::detail::guard_fail(#cond, __FILE__, __LINE__);    \
    } while (false)
