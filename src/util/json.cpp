#include "util/json.h"

#include <charconv>
#include <cmath>

#include "util/assert.h"

namespace alps::util {

Json& Json::set(std::string key, Json value) {
    ALPS_EXPECT(type_ == Type::kObject);
    for (auto& [k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
}

Json& Json::push(Json value) {
    ALPS_EXPECT(type_ == Type::kArray);
    items_.push_back(std::move(value));
    return *this;
}

std::size_t Json::size() const {
    switch (type_) {
        case Type::kArray: return items_.size();
        case Type::kObject: return members_.size();
        default: return 0;
    }
}

void Json::append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                    out += hex[static_cast<unsigned char>(c) & 0xf];
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void Json::append_double(std::string& out, double d) {
    if (!std::isfinite(d)) {
        // JSON has no Inf/NaN; null is the conventional lossless-ish stand-in.
        out += "null";
        return;
    }
    char buf[32];
    // Shortest round-trip representation; locale-independent, deterministic.
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    ALPS_ENSURE(ec == std::errc());
    out.append(buf, ptr);
    // Keep a trailing ".0" so whole-valued doubles stay typed as doubles for
    // downstream readers (and for byte-stable diffing against other runs).
    bool has_mark = false;
    for (const char* p = buf; p != ptr; ++p) {
        if (*p == '.' || *p == 'e' || *p == 'E') has_mark = true;
    }
    if (!has_mark) out += ".0";
}

std::string Json::dump(int indent) const {
    ALPS_EXPECT(indent >= 0);
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
    const auto newline_pad = [&](int d) {
        if (indent == 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (type_) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += bool_ ? "true" : "false"; break;
        case Type::kInt: {
            char buf[24];
            const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
            ALPS_ENSURE(ec == std::errc());
            out.append(buf, ptr);
            break;
        }
        case Type::kUint: {
            char buf[24];
            const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), uint_);
            ALPS_ENSURE(ec == std::errc());
            out.append(buf, ptr);
            break;
        }
        case Type::kDouble: append_double(out, double_); break;
        case Type::kString: append_escaped(out, string_); break;
        case Type::kArray: {
            if (items_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                newline_pad(depth + 1);
                items_[i].dump_to(out, indent, depth + 1);
            }
            newline_pad(depth);
            out += ']';
            break;
        }
        case Type::kObject: {
            if (members_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i) out += ',';
                newline_pad(depth + 1);
                append_escaped(out, members_[i].first);
                out += indent == 0 ? ":" : ": ";
                members_[i].second.dump_to(out, indent, depth + 1);
            }
            newline_pad(depth);
            out += '}';
            break;
        }
    }
}

}  // namespace alps::util
