// Minimal deterministic JSON document builder.
//
// The experiment harness emits machine-readable results (BENCH_<name>.json)
// that must be byte-identical for a given experiment + seed regardless of how
// many worker threads produced them. That rules out hash-ordered maps and
// locale-dependent number printing, so this writer:
//  * preserves object-key insertion order (no sorting, no hashing);
//  * prints doubles with std::to_chars (shortest round-trip form, no locale);
//  * keeps integers distinct from doubles so counts print without a decimal.
// Writing only — the repo never needs to parse JSON.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace alps::util {

class Json {
public:
    enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

    /// Null by default.
    Json() = default;
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(std::int64_t n) : type_(Type::kInt), int_(n) {}
    Json(int n) : Json(static_cast<std::int64_t>(n)) {}
    Json(std::uint64_t n) : type_(Type::kUint), uint_(n) {}
    Json(double d) : type_(Type::kDouble), double_(d) {}
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
    Json(const char* s) : Json(std::string(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    [[nodiscard]] Type type() const { return type_; }

    /// Object member write (insertion order preserved; setting an existing
    /// key overwrites in place). Contract: only valid on objects.
    Json& set(std::string key, Json value);

    /// Array append. Contract: only valid on arrays.
    Json& push(Json value);

    [[nodiscard]] std::size_t size() const;

    /// Serializes the document. `indent` > 0 pretty-prints with that many
    /// spaces per level; 0 emits the compact single-line form. Output is a
    /// pure function of the document (deterministic).
    [[nodiscard]] std::string dump(int indent = 2) const;

private:
    void dump_to(std::string& out, int indent, int depth) const;
    static void append_escaped(std::string& out, const std::string& s);
    static void append_double(std::string& out, double d);

    Type type_ = Type::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;                             // arrays
    std::vector<std::pair<std::string, Json>> members_;   // objects
};

}  // namespace alps::util
