#include "util/rng.h"

#include <cmath>

namespace alps::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::next_double() {
    // 53 random bits scaled into [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    ALPS_EXPECT(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
    return Duration{uniform_int(lo.count(), hi.count())};
}

Duration Rng::exponential(Duration mean) {
    ALPS_EXPECT(mean.count() > 0);
    // Inverse CDF; 1 - u in (0, 1] so log() never sees zero.
    const double u = 1.0 - next_double();
    const double draw = -std::log(u) * static_cast<double>(mean.count());
    return Duration{static_cast<std::int64_t>(draw)};
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace alps::util
