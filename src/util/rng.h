// Deterministic random number generation for simulations.
//
// xoshiro256** seeded through splitmix64: small state, excellent statistical
// quality, and — unlike std::mt19937 + std::uniform_*_distribution — identical
// streams on every platform, which keeps every experiment reproducible from a
// seed alone.
#pragma once

#include <cstdint>

#include "util/assert.h"
#include "util/time.h"

namespace alps::util {

/// xoshiro256** PRNG (Blackman & Vigna). Deterministic across platforms.
class Rng {
public:
    /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform duration in [lo, hi]. Requires lo <= hi.
    Duration uniform_duration(Duration lo, Duration hi);

    /// Exponentially distributed duration with the given mean (> 0).
    Duration exponential(Duration mean);

    /// Forks an independent stream (for per-entity RNGs in a simulation).
    Rng split();

private:
    std::uint64_t s_[4];
};

}  // namespace alps::util
