// Deterministic random number generation for simulations.
//
// xoshiro256** seeded through splitmix64: small state, excellent statistical
// quality, and — unlike std::mt19937 + std::uniform_*_distribution — identical
// streams on every platform, which keeps every experiment reproducible from a
// seed alone.
#pragma once

#include <cstdint>

#include "util/assert.h"
#include "util/time.h"

namespace alps::util {

/// xoshiro256** PRNG (Blackman & Vigna). Deterministic across platforms.
class Rng {
public:
    /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform duration in [lo, hi]. Requires lo <= hi.
    Duration uniform_duration(Duration lo, Duration hi);

    /// Exponentially distributed duration with the given mean (> 0).
    Duration exponential(Duration mean);

    /// Forks an independent stream (for per-entity RNGs in a simulation).
    Rng split();

private:
    std::uint64_t s_[4];
};

/// Derives a decorrelated child seed from (seed, key) — one splitmix64 step,
/// the same mixer Rng seeds from and harness::derive_task_seed uses for
/// per-task streams. This is the per-lane stream discipline: give every
/// site/client lane `Rng(derive_stream_seed(master, lane_key))` and the
/// lanes stay independent of each other and of construction order, so a
/// simulation is bit-identical however its lanes are interleaved.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t seed,
                                                         std::uint64_t key) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace alps::util
