#include "util/shares.h"

#include <numeric>

#include "util/assert.h"

namespace alps::util {

Share shares_gcd(std::span<const Share> shares) {
    Share g = 0;
    for (Share s : shares) {
        ALPS_EXPECT(s > 0);
        g = std::gcd(g, s);
    }
    return g;
}

std::vector<Share> scale_by_gcd(std::span<const Share> shares) {
    const Share g = shares_gcd(shares);
    std::vector<Share> out(shares.begin(), shares.end());
    if (g > 1) {
        for (Share& s : out) s /= g;
    }
    return out;
}

Share total_shares(std::span<const Share> shares) {
    Share total = 0;
    for (Share s : shares) {
        ALPS_EXPECT(s > 0);
        total += s;
    }
    return total;
}

std::vector<double> ideal_fractions(std::span<const Share> shares) {
    const Share total = total_shares(shares);
    std::vector<double> out;
    out.reserve(shares.size());
    for (Share s : shares) {
        out.push_back(static_cast<double>(s) / static_cast<double>(total));
    }
    return out;
}

}  // namespace alps::util
