// Share-vector arithmetic.
//
// The ALPS cycle length is S·Q where S is the sum of shares "assuming the
// shares have been scaled by their greatest common divisor" (Section 2.1).
// These helpers perform that scaling and compute ideal per-cycle CPU
// apportionments for the accuracy metric.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace alps::util {

/// Shares are small positive integers.
using Share = std::int64_t;

/// GCD of a share vector (0 for an empty vector).
[[nodiscard]] Share shares_gcd(std::span<const Share> shares);

/// Returns the share vector divided by its GCD. Requires all shares > 0.
[[nodiscard]] std::vector<Share> scale_by_gcd(std::span<const Share> shares);

/// Sum of shares. Requires all shares > 0.
[[nodiscard]] Share total_shares(std::span<const Share> shares);

/// Ideal fraction of the group's CPU time due to each process: share_i / S.
[[nodiscard]] std::vector<double> ideal_fractions(std::span<const Share> shares);

}  // namespace alps::util
