#include "util/stats.h"

#include <cmath>

#include "util/assert.h"

namespace alps::util {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
    ALPS_EXPECT(n_ > 0);
    return min_;
}

double RunningStats::max() const {
    ALPS_EXPECT(n_ > 0);
    return max_;
}

double rms(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double sum_sq = 0.0;
    for (double v : values) sum_sq += v * v;
    return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

double rms_relative_error(std::span<const double> actual, std::span<const double> ideal) {
    ALPS_EXPECT(actual.size() == ideal.size());
    double sum_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (ideal[i] == 0.0) continue;
        const double rel = (actual[i] - ideal[i]) / ideal[i];
        sum_sq += rel * rel;
        ++n;
    }
    return n == 0 ? 0.0 : std::sqrt(sum_sq / static_cast<double>(n));
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
    ALPS_EXPECT(x.size() == y.size());
    ALPS_EXPECT(x.size() >= 2);
    const auto n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    ALPS_EXPECT(sxx > 0.0);
    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

double mean(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double s = 0.0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
}

}  // namespace alps::util
