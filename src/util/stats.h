// Statistics helpers used by the evaluation harness: running moments, the
// paper's RMS-relative-error accuracy metric, and least-squares regression
// (used both for Table 3's slope analysis and for fitting the overhead lines
// U_Q(N) in Section 4.2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace alps::util {

/// Single-pass running mean/variance (Welford).
class RunningStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const;
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Root mean square of a set of values.
[[nodiscard]] double rms(std::span<const double> values);

/// The paper's per-cycle accuracy metric (Section 3.1): the RMS over
/// processes of the relative error between actual and ideal CPU time,
/// expressed as a fraction (multiply by 100 for %).
///
/// `actual[i]` and `ideal[i]` are the CPU time consumed / due for process i
/// in one cycle, in any common unit. Entries with ideal == 0 are skipped.
[[nodiscard]] double rms_relative_error(std::span<const double> actual,
                                        std::span<const double> ideal);

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};

/// Least-squares line through (x[i], y[i]). Requires >= 2 points with
/// non-degenerate x spread.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Mean of a sequence (0 when empty).
[[nodiscard]] double mean(std::span<const double> values);

}  // namespace alps::util
