#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace alps::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    ALPS_EXPECT(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
    ALPS_EXPECT(cells.size() == headers_.size());
    for (const auto& c : cells) {
        ALPS_EXPECT(c.find(',') == std::string::npos);
        ALPS_EXPECT(c.find('\n') == std::string::npos);
    }
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out << "|" << std::string(widths[c] + 2, '-');
    }
    out << "|\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

std::string TextTable::render_csv() const {
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit_row(headers_);
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string fmt(double value, int decimals) {
    ALPS_EXPECT(decimals >= 0 && decimals <= 12);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

}  // namespace alps::util
