// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every figure/table bench prints (a) a human-readable fixed-width table that
// mirrors the paper's presentation and (b) optional CSV for replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace alps::util {

/// Fixed-width text table with a header row.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    /// Appends one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Renders with columns padded to their widest cell.
    [[nodiscard]] std::string render() const;

    /// Renders as CSV (no quoting: cells in this codebase never contain
    /// commas or newlines; enforced by a contract check in add_row).
    [[nodiscard]] std::string render_csv() const;

    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

}  // namespace alps::util
