// Strong time types shared by the simulator, the ALPS core, and the POSIX
// backend.
//
// All durations are signed 64-bit nanoseconds (std::chrono::nanoseconds);
// simulated instants are a distinct strong type (TimePoint) so that wall-clock
// values cannot be mixed with simulated ones by accident.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>

namespace alps::util {

/// Canonical duration type for the whole library (signed 64-bit ns).
using Duration = std::chrono::nanoseconds;

constexpr Duration nsec(std::int64_t n) { return Duration{n}; }
constexpr Duration usec(std::int64_t n) { return Duration{n * 1'000}; }
constexpr Duration msec(std::int64_t n) { return Duration{n * 1'000'000}; }
constexpr Duration sec(std::int64_t n) { return Duration{n * 1'000'000'000}; }

/// Duration as fractional seconds / milliseconds / microseconds.
constexpr double to_sec(Duration d) { return static_cast<double>(d.count()) * 1e-9; }
constexpr double to_ms(Duration d) { return static_cast<double>(d.count()) * 1e-6; }
constexpr double to_us(Duration d) { return static_cast<double>(d.count()) * 1e-3; }

/// Build a duration from fractional microseconds (used by the ALPS cost
/// model, whose coefficients come from the paper's Table 1 in µs).
constexpr Duration from_us(double us) {
    return Duration{static_cast<std::int64_t>(us * 1e3)};
}

/// An instant on a scheduler's (simulated or monotonic) clock, as a duration
/// since that clock's epoch.
struct TimePoint {
    Duration since_epoch{0};

    friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

    friend constexpr TimePoint operator+(TimePoint t, Duration d) {
        return TimePoint{t.since_epoch + d};
    }
    friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
    friend constexpr TimePoint operator-(TimePoint t, Duration d) {
        return TimePoint{t.since_epoch - d};
    }
    friend constexpr Duration operator-(TimePoint a, TimePoint b) {
        return a.since_epoch - b.since_epoch;
    }
    constexpr TimePoint& operator+=(Duration d) {
        since_epoch += d;
        return *this;
    }
};

}  // namespace alps::util
