#include "web/clients.h"

#include "util/assert.h"

namespace alps::web {

struct ClientPool::State {
    sim::Engine& engine;
    WebSite& site;
    ClientConfig cfg;
    util::Rng rng;
    bool stopped = false;
};

ClientPool::ClientPool(sim::Engine& engine, WebSite& site, ClientConfig cfg)
    : state_(std::make_shared<State>(State{engine, site, cfg, util::Rng(cfg.seed)})) {
    ALPS_EXPECT(cfg.count > 0);
    ALPS_EXPECT(cfg.think_mean > util::Duration::zero());
    for (int i = 0; i < cfg.count; ++i) {
        think_then_submit(state_, state_->rng.uniform_duration(util::Duration::zero(),
                                                               cfg.think_mean));
    }
}

ClientPool::~ClientPool() { state_->stopped = true; }

const ClientConfig& ClientPool::config() const { return state_->cfg; }

void ClientPool::think_then_submit(const std::shared_ptr<State>& st, util::Duration delay) {
    st->engine.schedule_after(delay, [st] { submit(st); });
}

void ClientPool::submit(const std::shared_ptr<State>& st) {
    if (st->stopped) return;
    // The completion callback runs inside a worker's phase transition; it
    // only schedules the next think timer, never touches the kernel.
    st->site.submit([st](util::Duration) {
        if (st->stopped) return;
        think_then_submit(st, st->rng.exponential(st->cfg.think_mean));
    });
}

}  // namespace alps::web
