#include "web/clients.h"

#include "util/assert.h"

namespace alps::web {

ClientPool::ClientPool(sim::Engine& engine, WebSite& site, ClientConfig cfg)
    : site_(site), cfg_(cfg) {
    ALPS_EXPECT(cfg.count > 0);
    ALPS_EXPECT(cfg.think_mean > util::Duration::zero());
    traffic::GeneratorConfig gcfg;
    gcfg.mode = traffic::GeneratorConfig::Mode::kClosedLoop;
    gcfg.population = cfg.count;
    gcfg.think_mean = cfg.think_mean;
    gcfg.seed = cfg.seed;
    generator_ = std::make_unique<traffic::Generator>(
        engine, gcfg, [&site] { site.submit(); });
    // The completion hook runs inside a worker's phase transition; it only
    // schedules the next think timer, never touches the kernel.
    site_.set_completion_hook(
        [gen = generator_.get()](util::Duration) { gen->on_completion(); });
}

ClientPool::~ClientPool() {
    // Detach before the generator dies: a still-running site must not call
    // into a destroyed pool's generator.
    site_.set_completion_hook(nullptr);
    generator_->stop();
}

}  // namespace alps::web
