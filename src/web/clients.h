// Closed-loop client population for one site (the paper's 325 simultaneous
// clients per bulletin-board site, driven from separate workstations — so
// they consume no CPU on the web host; they exist purely as events).
//
// A thin wrapper over traffic::Generator's closed-loop compatibility mode:
// the pool installs itself as the site's completion hook, so each response
// triggers one think-time draw and the next request — the seed web model's
// exact rng draw order, which the §5 golden test pins bit-identically.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.h"
#include "traffic/generator.h"
#include "web/site.h"

namespace alps::web {

struct ClientConfig {
    int count = 325;
    /// Mean think time between receiving a response and the next request
    /// (exponential).
    util::Duration think_mean = util::sec(3);
    std::uint64_t seed = 11;
};

class ClientPool {
public:
    /// Starts `count` clients; each submits its first request at a random
    /// offset within one think time (avoids a synchronized stampede).
    /// Installs the site's completion hook (replacing any previous one).
    ClientPool(sim::Engine& engine, WebSite& site, ClientConfig cfg);

    /// Stops the loop: pending timers and completions become no-ops, so the
    /// pool may be destroyed while the simulation keeps running.
    ~ClientPool();

    ClientPool(const ClientPool&) = delete;
    ClientPool& operator=(const ClientPool&) = delete;

    [[nodiscard]] const ClientConfig& config() const { return cfg_; }

private:
    WebSite& site_;
    ClientConfig cfg_;
    std::unique_ptr<traffic::Generator> generator_;
};

}  // namespace alps::web
