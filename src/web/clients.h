// Closed-loop client population for one site (the paper's 325 simultaneous
// clients per bulletin-board site, driven from separate workstations — so
// they consume no CPU on the web host; they exist purely as events).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/engine.h"
#include "util/rng.h"
#include "web/site.h"

namespace alps::web {

struct ClientConfig {
    int count = 325;
    /// Mean think time between receiving a response and the next request
    /// (exponential).
    util::Duration think_mean = util::sec(3);
    std::uint64_t seed = 11;
};

class ClientPool {
public:
    /// Starts `count` clients; each submits its first request at a random
    /// offset within one think time (avoids a synchronized stampede).
    ClientPool(sim::Engine& engine, WebSite& site, ClientConfig cfg);

    /// Stops the loop: pending timers and completions become no-ops, so the
    /// pool may be destroyed while the simulation keeps running.
    ~ClientPool();

    ClientPool(const ClientPool&) = delete;
    ClientPool& operator=(const ClientPool&) = delete;

    [[nodiscard]] const ClientConfig& config() const;

private:
    // Shared with the in-flight callbacks so destruction is safe while
    // requests/timers are pending.
    struct State;
    static void think_then_submit(const std::shared_ptr<State>& st, util::Duration delay);
    static void submit(const std::shared_ptr<State>& st);

    std::shared_ptr<State> state_;
};

}  // namespace alps::web
