#include "web/cluster.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "alps/sim_adapter.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "traffic/generator.h"
#include "traffic/latency.h"
#include "traffic/table.h"
#include "util/assert.h"
#include "util/rng.h"
#include "web/site.h"

namespace alps::web {

using util::Duration;
using util::TimePoint;

const char* deploy_name(Deploy d) {
    switch (d) {
        case Deploy::kKernelOnly: return "kernel";
        case Deploy::kGlobalAlps: return "global";
        case Deploy::kPerCoreAlps: return "percore";
    }
    ALPS_ENSURE(false);
    return "?";
}

namespace {

/// Flash-crowd membership: one site per core in every member row, so the
/// surge loads every scheduling domain identically whatever the deployment.
bool flash_member(const WebScaleConfig& cfg, int i) {
    if (cfg.flash_multiplier <= 1.0 || cfg.flash_stride <= 0) return false;
    const int row = i / cfg.ncpus;
    return row % cfg.flash_stride == 1;
}

double quantile_ms(const traffic::LatencyRecorder& rec,
                   const std::vector<std::size_t>& sites, double q) {
    if (sites.empty()) return 0.0;
    return util::to_sec(rec.quantile_of(sites, q)) * 1e3;
}

}  // namespace

WebScaleResult run_web_scale_experiment(const WebScaleConfig& cfg) {
    ALPS_EXPECT(cfg.sites >= 1);
    ALPS_EXPECT(cfg.ncpus >= 1);
    ALPS_EXPECT(cfg.base_rps > 0.0);
    ALPS_EXPECT(cfg.measure > Duration::zero());
    ALPS_EXPECT(cfg.deploy != Deploy::kPerCoreAlps || cfg.ncpus > 1);

    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.ncpus = cfg.ncpus;
    kcfg.percpu_queues = cfg.ncpus > 1;
    os::Kernel kernel(engine, nullptr, kcfg);

    const auto nsites = static_cast<std::size_t>(cfg.sites);
    traffic::RequestTable table;
    // In-flight per site is bounded by backlog + workers; sizing for a
    // fraction of the worst case avoids both rehash-like growth and a huge
    // upfront arena. The table grows if a run proves hotter.
    table.reserve(nsites * 8);
    traffic::LatencyRecorder recorder(nsites);

    const bool pinned = cfg.deploy == Deploy::kPerCoreAlps;
    std::vector<std::unique_ptr<WebSite>> sites;
    std::vector<std::unique_ptr<traffic::Generator>> gens;
    sites.reserve(nsites);
    gens.reserve(nsites);
    std::vector<std::size_t> flash_ix, steady_ix;

    for (int i = 0; i < cfg.sites; ++i) {
        SiteConfig sc;
        sc.name = "s" + std::to_string(i);
        sc.uid = 1000 + static_cast<os::Uid>(i);
        sc.site_index = static_cast<std::uint32_t>(i);
        sc.initial_workers = cfg.initial_workers;
        sc.max_workers = cfg.max_workers;
        sc.min_spare = 1;
        sc.max_spare = 4;
        sc.spawn_batch = 2;
        sc.parse_cpu = cfg.parse_cpu;
        sc.render_cpu = cfg.render_cpu;
        sc.db_time = cfg.db_time;
        sc.service = cfg.service;
        sc.max_backlog = cfg.max_backlog;
        sc.queue_timeout = cfg.queue_timeout;
        sc.home_cpu = cfg.ncpus > 1 ? i % cfg.ncpus : -1;
        sc.pinned = pinned;
        sc.seed = util::derive_stream_seed(cfg.seed, 2 * static_cast<std::uint64_t>(i));
        sites.push_back(std::make_unique<WebSite>(kernel, sc, &table, &recorder));

        traffic::GeneratorConfig gc;
        gc.mode = traffic::GeneratorConfig::Mode::kOpenLoop;
        gc.arrival.base_rps =
            i == 0 ? cfg.base_rps * cfg.protected_rps_mult : cfg.base_rps;
        if (cfg.diurnal_amplitude > 0.0) {
            gc.arrival.diurnal.amplitude = cfg.diurnal_amplitude;
            gc.arrival.diurnal.period = cfg.diurnal_period;
            // Golden-ratio phase offsets: per-site peaks spread evenly, so
            // the cluster-level load stays smooth while each site swings.
            gc.arrival.diurnal.phase =
                static_cast<double>(i) * 0.618033988749895 -
                std::floor(static_cast<double>(i) * 0.618033988749895);
        }
        if (cfg.burst_multiplier > 1.0) {
            gc.arrival.burst.multiplier = cfg.burst_multiplier;
            gc.arrival.burst.mean_normal = util::sec(5);
            gc.arrival.burst.mean_burst = util::sec(1);
        }
        if (flash_member(cfg, i)) {
            traffic::FlashCrowd spike;
            spike.start = TimePoint{} + cfg.flash_start;
            spike.ramp = cfg.flash_ramp;
            spike.hold = cfg.flash_hold;
            spike.decay = cfg.flash_decay;
            spike.multiplier = cfg.flash_multiplier;
            gc.arrival.spikes.push_back(spike);
            flash_ix.push_back(static_cast<std::size_t>(i));
        } else if (i != 0) {
            steady_ix.push_back(static_cast<std::size_t>(i));
        }
        gc.seed =
            util::derive_stream_seed(cfg.seed, 2 * static_cast<std::uint64_t>(i) + 1);
        WebSite* site = sites.back().get();
        gens.push_back(std::make_unique<traffic::Generator>(
            engine, gc, [site] { site->submit(); }));
    }

    // ---- ALPS deployment ----
    core::SchedulerConfig scfg;
    scfg.quantum = cfg.quantum;
    scfg.io_accounting = cfg.io_accounting;
    std::vector<std::unique_ptr<core::SimGroupAlps>> alps;
    const auto share_of = [&cfg](int i) {
        return i == 0 ? cfg.protected_share : cfg.default_share;
    };
    if (cfg.deploy == Deploy::kGlobalAlps) {
        alps.push_back(std::make_unique<core::SimGroupAlps>(
            kernel, scfg, cfg.cost, cfg.refresh_period, "alps-global", /*uid=*/0,
            /*driver_home_cpu=*/-1, /*driver_pinned=*/false, cfg.driver_nice));
        for (int i = 0; i < cfg.sites; ++i) {
            alps.back()->manage_user("u" + std::to_string(i),
                                     1000 + static_cast<os::Uid>(i), share_of(i));
        }
    } else if (cfg.deploy == Deploy::kPerCoreAlps) {
        for (int c = 0; c < cfg.ncpus; ++c) {
            alps.push_back(std::make_unique<core::SimGroupAlps>(
                kernel, scfg, cfg.cost, cfg.refresh_period,
                "alps-c" + std::to_string(c), /*uid=*/0,
                /*driver_home_cpu=*/c, /*driver_pinned=*/true, cfg.driver_nice));
            for (int i = c; i < cfg.sites; i += cfg.ncpus) {
                alps.back()->manage_user("u" + std::to_string(i),
                                         1000 + static_cast<os::Uid>(i), share_of(i));
            }
        }
    }

    // ---- run ----
    engine.run_until(TimePoint{} + cfg.warmup);
    const std::uint64_t completed0 = recorder.total_completed();
    const std::uint64_t protected0 = recorder.completed(0);
    const Duration busy0 = kernel.busy_time();
    Duration alps0{0};
    for (const auto& a : alps) alps0 += a->overhead_cpu();

    engine.run_until(TimePoint{} + cfg.warmup + cfg.measure);

    WebScaleResult res;
    for (const auto& g : gens) res.arrivals += g->submitted();
    res.completed = recorder.total_completed();
    res.drops = recorder.total_drops();
    res.timeouts = recorder.total_timeouts();
    res.peak_in_flight = table.peak_in_flight();
    res.flash_sites = static_cast<int>(flash_ix.size());

    res.protected_p50_ms = util::to_sec(recorder.quantile(0, 0.50)) * 1e3;
    res.protected_p95_ms = util::to_sec(recorder.quantile(0, 0.95)) * 1e3;
    res.protected_p99_ms = util::to_sec(recorder.quantile(0, 0.99)) * 1e3;
    res.flash_p99_ms = quantile_ms(recorder, flash_ix, 0.99);
    res.steady_p99_ms = quantile_ms(recorder, steady_ix, 0.99);

    const double window_s = util::to_sec(cfg.measure);
    res.protected_rps =
        static_cast<double>(recorder.completed(0) - protected0) / window_s;
    res.total_rps =
        static_cast<double>(recorder.total_completed() - completed0) / window_s;
    res.cpu_utilization =
        util::to_sec(kernel.busy_time() - busy0) / (window_s * cfg.ncpus);
    Duration alps_cpu{0};
    for (const auto& a : alps) {
        alps_cpu += a->overhead_cpu();
        res.boundaries_missed += a->driver().boundaries_missed();
    }
    res.overhead_fraction =
        util::to_sec(alps_cpu - alps0) / (window_s * cfg.ncpus);
    res.migrations = kernel.migrations();
    res.steals = kernel.steals();

    if (cfg.metrics != nullptr) {
        engine.export_metrics(*cfg.metrics);
        kernel.export_metrics(*cfg.metrics);
        recorder.export_metrics(*cfg.metrics, "web_scale", cfg.per_site_telemetry);
        cfg.metrics->counter("web_scale.arrivals").add(res.arrivals);
        cfg.metrics->gauge("web_scale.peak_in_flight")
            .set(static_cast<double>(res.peak_in_flight));
    }
    return res;
}

}  // namespace alps::web
