// Production-scale web hosting on one simulated machine (the web_scale
// sweep): hundreds to thousands of WebSites share a per-CPU-queue kernel,
// driven open-loop by traffic::Generators (Poisson/MMPP arrivals, diurnal
// envelopes, flash-crowd spikes) instead of the §5 fixed client pools.
//
// The capacity-planning question it answers: one site ("site A", index 0)
// buys a protected share; a deterministic subset of the others is hit by a
// flash crowd that pushes the machine past saturation. How well does each
// deployment defend site A's latency percentiles?
//
//   * kernel-only  — no ALPS; the native policy arbitrates the overload.
//   * one global ALPS — a single group scheduler over every site (one
//     principal per uid). Its cycle spans total-shares quanta of *machine*
//     CPU time, and one driver process ticks for every principal.
//   * one ALPS per core — each core runs its own group scheduler over the
//     sites homed there, driver and site processes hard-pinned
//     (Proc::pinned) so steal/rebalance cannot blur the partition.
//
// All requests live in one shared traffic::RequestTable (flat SoA, no
// per-request allocation) and land in one traffic::LatencyRecorder, whose
// per-site p50/p95/p99 blocks are exported to run.telemetry.
#pragma once

#include <cstdint>

#include "alps/cost_model.h"
#include "telemetry/metrics.h"
#include "traffic/service.h"
#include "util/shares.h"
#include "util/time.h"

namespace alps::web {

enum class Deploy {
    kKernelOnly,
    kGlobalAlps,
    kPerCoreAlps,
};

[[nodiscard]] const char* deploy_name(Deploy d);

struct WebScaleConfig {
    int sites = 96;
    int ncpus = 8;
    Deploy deploy = Deploy::kKernelOnly;

    // ---- per-site service demands ----
    // Lighter than the §5 site (5 ms CPU vs 10 ms) so a single machine can
    // host ~1000 sites at realistic per-site request rates.
    util::Duration parse_cpu = util::msec(2);
    util::Duration render_cpu = util::msec(3);
    util::Duration db_time = util::msec(20);
    /// Distribution the phase means are drawn through (heavy-tailed Pareto
    /// by default: this sweep is about tail latency).
    traffic::ServiceModel service{traffic::ServiceKind::kPareto};
    int initial_workers = 2;
    int max_workers = 8;
    /// Listen-queue cap; arrivals beyond it are dropped (counted).
    std::size_t max_backlog = 500;
    /// Requests older than this are shed at worker pickup (counted).
    util::Duration queue_timeout = util::sec(15);

    // ---- open-loop traffic ----
    double base_rps = 4.0;  ///< per-site steady arrival rate
    /// Sinusoidal rate envelope amplitude in [0,1); 0 = flat. Each site gets
    /// a deterministic phase offset so the cluster's load stays smooth.
    double diurnal_amplitude = 0.0;
    util::Duration diurnal_period = util::sec(60);
    /// MMPP burst modulation on every site's arrivals (0 = plain Poisson).
    double burst_multiplier = 0.0;
    // Flash crowd: sites in row r = i / ncpus with r % flash_stride == 1
    // spike together — exactly one site per core per member row, so the
    // surge is spread evenly across scheduling domains and membership is
    // independent of the deployment. Site 0 (row 0) is never a member.
    double flash_multiplier = 8.0;  ///< <= 1 disables the spike
    int flash_stride = 8;
    util::Duration flash_start = util::sec(15);
    util::Duration flash_ramp = util::sec(2);
    util::Duration flash_hold = util::sec(10);
    util::Duration flash_decay = util::sec(3);

    // ---- shares ----
    util::Share protected_share = 8;  ///< site A's purchase
    util::Share default_share = 1;
    /// Site A's traffic relative to the base rate. Two constraints bound it:
    ///   * A cycle only completes when *every* principal exhausts its
    ///     allowance, so a share far above demand strands cycle time —
    ///     everyone else sits suspended while the light protected site
    ///     drains the remainder alone (measured: a 48-site global
    ///     deployment collapses to ~13% machine utilization with an 8x
    ///     share over 1x traffic).
    ///   * A share *equal* to the demand ratio is a knife edge: site A
    ///     exhausts its allowance with everyone else each cycle and spends
    ///     the cycle tail suspended.
    /// The default buys ~33% headroom (traffic 6x under share 8): others
    /// exhaust first, site A never suspends, and the stranded slice of the
    /// cycle stays ~2%. That headroom IS the capacity-planning answer the
    /// sweep quantifies.
    double protected_rps_mult = 6.0;

    // ---- ALPS deployment ----
    util::Duration quantum = util::msec(100);
    util::Duration refresh_period = util::sec(1);
    /// The real ALPS daemon runs at elevated priority. At nice 0 a driver on
    /// a saturated core queues behind the very workers it schedules and
    /// sleeps through quantum boundaries wholesale (tens of thousands at
    /// q=10 ms per-core on an overloaded 1000-site machine).
    int driver_nice = -20;
    core::CostModel cost{};
    /// §2.4 forfeit-on-block accounting. Off here: it is designed for
    /// I/O-bound processes inside a busy application, but an open-loop site
    /// is *idle-blocked* between requests — with it on, every quiet site is
    /// charged its whole allowance within a tick or two and suspended before
    /// its next request arrives, collapsing the cluster to a fraction of the
    /// machine (utilization drops under 20% at 48 sites).
    bool io_accounting = false;

    // ---- run ----
    util::Duration warmup = util::sec(5);
    util::Duration measure = util::sec(45);
    std::uint64_t seed = 11;
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Export per-site p50/p95/p99 blocks (site0000..) in addition to the
    /// aggregate histogram.
    bool per_site_telemetry = true;
};

struct WebScaleResult {
    // Volume over the whole run (arrivals include dropped submissions).
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t drops = 0;
    std::uint64_t timeouts = 0;
    std::size_t peak_in_flight = 0;
    int flash_sites = 0;  ///< flash-crowd member count

    // Latency percentiles (ms) over the full run's samples.
    double protected_p50_ms = 0.0;
    double protected_p95_ms = 0.0;
    double protected_p99_ms = 0.0;
    double flash_p99_ms = 0.0;   ///< merged over flash-member sites
    double steady_p99_ms = 0.0;  ///< merged over the unprotected rest

    // Throughput over the measure window only.
    double protected_rps = 0.0;
    double total_rps = 0.0;

    double cpu_utilization = 0.0;     ///< busy fraction of ncpus x measure
    double overhead_fraction = 0.0;   ///< ALPS driver CPU / machine capacity
    /// Quantum boundaries the driver(s) slept through because a tick was
    /// still running or runnable — the §4.2 breakdown symptom. A global
    /// driver ticking a thousand principals on a fine quantum lives here.
    std::uint64_t boundaries_missed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t steals = 0;
};

[[nodiscard]] WebScaleResult run_web_scale_experiment(const WebScaleConfig& cfg);

}  // namespace alps::web
