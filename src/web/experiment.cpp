#include "web/experiment.h"

#include <memory>
#include <string>

#include "alps/sim_adapter.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::web {

using util::Duration;
using util::TimePoint;

WebExperimentResult run_web_experiment(const WebExperimentConfig& cfg) {
    ALPS_EXPECT(cfg.warmup >= Duration::zero());
    ALPS_EXPECT(cfg.measure > Duration::zero());

    sim::Engine engine;
    os::Kernel kernel(engine);

    std::array<std::unique_ptr<WebSite>, 3> sites;
    std::array<std::unique_ptr<ClientPool>, 3> clients;
    for (int i = 0; i < 3; ++i) {
        SiteConfig sc = cfg.site;
        // The paper's sites serve the RUBBoS bulletin board; unless the
        // caller specified a mix, use the read/submission blend.
        if (sc.classes.empty()) sc.classes = bulletin_board_mix();
        sc.name = "site" + std::to_string(i);
        sc.uid = 101 + i;
        sc.seed = cfg.site.seed + static_cast<std::uint64_t>(i) * 1000003;
        sites[static_cast<std::size_t>(i)] = std::make_unique<WebSite>(kernel, sc);

        ClientConfig cc = cfg.clients;
        cc.seed = cfg.clients.seed + static_cast<std::uint64_t>(i) * 7919;
        clients[static_cast<std::size_t>(i)] = std::make_unique<ClientPool>(
            engine, *sites[static_cast<std::size_t>(i)], cc);
    }

    std::unique_ptr<core::SimGroupAlps> alps;
    if (cfg.use_alps) {
        core::SchedulerConfig scfg;
        scfg.quantum = cfg.quantum;
        alps = std::make_unique<core::SimGroupAlps>(kernel, scfg, core::CostModel{},
                                                    cfg.refresh_period);
        for (int i = 0; i < 3; ++i) {
            alps->manage_user("user" + std::to_string(101 + i),
                              101 + i, cfg.shares[static_cast<std::size_t>(i)]);
        }
    }

    engine.run_until(TimePoint{} + cfg.warmup);
    std::array<std::uint64_t, 3> completed0{};
    std::array<Duration, 3> resp0{};
    for (std::size_t i = 0; i < 3; ++i) {
        completed0[i] = sites[i]->completed();
        resp0[i] = sites[i]->total_response_time();
    }
    const Duration busy0 = kernel.busy_time();
    const Duration alps0 = alps ? alps->overhead_cpu() : Duration::zero();

    engine.run_until(TimePoint{} + cfg.warmup + cfg.measure);

    WebExperimentResult res;
    const double window_s = util::to_sec(cfg.measure);
    for (std::size_t i = 0; i < 3; ++i) {
        const std::uint64_t done = sites[i]->completed() - completed0[i];
        res.completed[i] = done;
        res.throughput_rps[i] = static_cast<double>(done) / window_s;
        res.mean_response_s[i] =
            done > 0 ? util::to_sec(sites[i]->total_response_time() - resp0[i]) /
                           static_cast<double>(done)
                     : 0.0;
        res.workers[i] = sites[i]->worker_count();
    }
    res.cpu_utilization = util::to_sec(kernel.busy_time() - busy0) / window_s;
    if (alps) {
        res.alps_overhead_fraction =
            util::to_sec(alps->overhead_cpu() - alps0) / window_s;
    }
    return res;
}

}  // namespace alps::web
