// The Section-5 shared-web-server experiment: three bulletin-board sites on
// one host, first under the kernel scheduler alone, then under a group-
// principal ALPS with shares {1, 2, 3} and a 100 ms quantum.
#pragma once

#include <array>
#include <cstdint>

#include "util/shares.h"
#include "util/time.h"
#include "web/clients.h"
#include "web/site.h"

namespace alps::web {

struct WebExperimentConfig {
    bool use_alps = true;
    std::array<util::Share, 3> shares{1, 2, 3};
    util::Duration quantum = util::msec(100);        // the paper's §5 setting
    util::Duration refresh_period = util::sec(1);    // membership update cadence
    util::Duration warmup = util::sec(8);
    util::Duration measure = util::sec(40);
    SiteConfig site;       ///< template; name/uid/seed are set per site
    ClientConfig clients;  ///< per-site client population
};

struct WebExperimentResult {
    std::array<double, 3> throughput_rps{};     ///< completed/s in the window
    std::array<double, 3> mean_response_s{};
    std::array<std::uint64_t, 3> completed{};
    std::array<int, 3> workers{};               ///< pool size at the end
    double alps_overhead_fraction = 0.0;        ///< 0 when use_alps = false
    double cpu_utilization = 0.0;               ///< host busy fraction
};

[[nodiscard]] WebExperimentResult run_web_experiment(const WebExperimentConfig& cfg);

}  // namespace alps::web
