#include "web/site.h"

#include <memory>
#include <utility>

#include "os/behaviors.h"
#include "util/assert.h"

namespace alps::web {

using traffic::kNoRequest;
using traffic::ReqId;
using util::Duration;
using util::TimePoint;

// ----------------------------------------------------------------------------
// Worker

/// One Apache child. The phase machine walks a request through its class's
/// CPU/DB stages, idling on its own wait channel between requests so the
/// site can wake exactly one worker per submission.
class WebSite::WorkerBehavior final : public os::Behavior {
public:
    explicit WorkerBehavior(WebSite& site) : site_(site) {}

    os::Action next_action(os::ProcContext ctx) override {
        for (;;) {
            if (req_ == kNoRequest) {
                // Between requests: the master's retirement point, and the
                // only place a worker goes idle.
                if (site_.retire_pending_ > 0) {
                    --site_.retire_pending_;
                    --site_.workers_alive_;
                    return os::ExitAction{};
                }
                if (site_.queue_.empty()) {
                    site_.idle_.push_back(this);
                    return os::BlockAction{this};
                }
                const TimePoint now = ctx.kernel.now();
                ReqId id = site_.queue_.pop();
                // Queue-deadline shedding happens at pickup: the overloaded
                // path is exactly the path with a worker already here, and
                // a shed costs no timer. Disabled (the default) this block
                // never touches a request.
                if (site_.cfg_.queue_timeout > Duration::zero()) {
                    while (now - site_.table_->arrival(id) > site_.cfg_.queue_timeout) {
                        site_.recorder_->timeout(site_.cfg_.site_index);
                        site_.table_->release(id);
                        if (site_.queue_.empty()) {
                            id = kNoRequest;
                            break;
                        }
                        id = site_.queue_.pop();
                    }
                    if (id == kNoRequest) continue;
                }
                site_.table_->set_dispatch(id, now);
                req_ = id;
                phase_index_ = 0;
            }
            const auto& phases =
                site_.classes_[site_.table_->klass(req_)].phases;
            if (phase_index_ < phases.size()) {
                const RequestPhase& ph = phases[phase_index_++];
                const Duration d = site_.draw(ph.mean);
                if (ph.db) {
                    site_.table_->add_db_wait(req_, d);
                    return os::SleepAction{d, this};
                }
                return os::RunAction{d};
            }
            site_.record_completion(ctx.kernel.now(), req_);
            req_ = kNoRequest;
        }
    }

private:
    WebSite& site_;
    std::size_t phase_index_ = 0;
    ReqId req_ = kNoRequest;
};

// ----------------------------------------------------------------------------
// Master

/// The Apache parent: wakes up every master_period, pays a little CPU, and
/// regulates the worker pool like prefork's idle-spare maintenance.
class WebSite::MasterBehavior final : public os::Behavior {
public:
    explicit MasterBehavior(WebSite& site) : site_(site) {}

    os::Action next_action(os::ProcContext) override {
        if (just_ran_) {
            just_ran_ = false;
            site_.regulate();
            return os::SleepAction{site_.cfg_.master_period, this};
        }
        just_ran_ = true;
        return os::RunAction{site_.cfg_.master_cpu};
    }

private:
    WebSite& site_;
    bool just_ran_ = false;
};

// ----------------------------------------------------------------------------
// WebSite

std::vector<RequestClass> bulletin_board_mix(double submission_fraction) {
    ALPS_EXPECT(submission_fraction >= 0.0 && submission_fraction < 1.0);
    std::vector<RequestClass> mix;
    // "Read a story": parse the PHP, fetch story + comments, render the page.
    mix.push_back({"read-story", 1.0 - submission_fraction,
                   {{false, util::msec(4)}, {true, util::msec(50)},
                    {false, util::msec(6)}}});
    // "Submit a comment": parse, validate-and-insert (two DB round trips
    // with validation CPU in between), render the confirmation.
    mix.push_back({"submit-comment", submission_fraction,
                   {{false, util::msec(3)}, {true, util::msec(30)},
                    {false, util::msec(2)}, {true, util::msec(30)},
                    {false, util::msec(2)}}});
    return mix;
}

WebSite::WebSite(os::Kernel& kernel, SiteConfig cfg,
                 traffic::RequestTable* table, traffic::LatencyRecorder* recorder)
    : kernel_(kernel), cfg_(std::move(cfg)), rng_(cfg_.seed) {
    ALPS_EXPECT(cfg_.max_workers >= 1);
    ALPS_EXPECT(cfg_.initial_workers >= 1);
    ALPS_EXPECT(cfg_.initial_workers <= cfg_.max_workers);

    if (table != nullptr) {
        table_ = table;
    } else {
        owned_table_ = std::make_unique<traffic::RequestTable>();
        table_ = owned_table_.get();
    }
    if (recorder != nullptr) {
        ALPS_EXPECT(cfg_.site_index < recorder->sites());
        recorder_ = recorder;
    } else {
        owned_recorder_ =
            std::make_unique<traffic::LatencyRecorder>(cfg_.site_index + 1);
        recorder_ = owned_recorder_.get();
    }

    if (cfg_.classes.empty()) {
        classes_.push_back({"request", 1.0,
                            {{false, cfg_.parse_cpu},
                             {true, cfg_.db_time},
                             {false, cfg_.render_cpu}}});
    } else {
        classes_ = cfg_.classes;
    }
    for (const RequestClass& rc : classes_) {
        ALPS_EXPECT(rc.weight > 0.0);
        ALPS_EXPECT(!rc.phases.empty());
        for (const RequestPhase& ph : rc.phases) {
            ALPS_EXPECT(ph.mean > util::Duration::zero());
        }
        weight_total_ += rc.weight;
    }
    completed_by_class_.assign(classes_.size(), 0);

    for (int i = 0; i < cfg_.initial_workers; ++i) spawn_worker();
    master_pid_ = kernel_.spawn(cfg_.name + "-master", cfg_.uid,
                                std::make_unique<MasterBehavior>(*this),
                                /*nice=*/0, cfg_.home_cpu, cfg_.pinned);
}

WebSite::~WebSite() = default;

void WebSite::spawn_worker() {
    ++workers_alive_;
    ++workers_spawned_;
    kernel_.spawn(cfg_.name + "-w" + std::to_string(workers_spawned_), cfg_.uid,
                  std::make_unique<WorkerBehavior>(*this), /*nice=*/0,
                  cfg_.home_cpu, cfg_.pinned);
}

void WebSite::regulate() {
    const int idle = static_cast<int>(idle_.size()) - retire_pending_;
    if (idle < cfg_.min_spare && workers_alive_ < cfg_.max_workers) {
        const int want = std::min(cfg_.spawn_batch, cfg_.max_workers - workers_alive_);
        for (int i = 0; i < want; ++i) spawn_worker();
    } else if (idle > cfg_.max_spare && workers_alive_ > cfg_.initial_workers) {
        // Retire surplus idlers: wake them; they exit at take_or_block().
        int surplus = std::min(idle - cfg_.max_spare,
                               workers_alive_ - cfg_.initial_workers);
        while (surplus-- > 0 && !idle_.empty()) {
            ++retire_pending_;
            const os::WaitChannel chan = idle_.back();
            idle_.pop_back();
            kernel_.wakeup_channel(chan);
        }
    }
}

util::Duration WebSite::draw(Duration mean) {
    if (!cfg_.jitter) return mean;
    return cfg_.service.draw(rng_, mean);
}

std::size_t WebSite::draw_class() {
    if (classes_.size() == 1) return 0;
    double roll = rng_.next_double() * weight_total_;
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        roll -= classes_[i].weight;
        if (roll < 0.0) return i;
    }
    return classes_.size() - 1;
}

bool WebSite::submit() {
    if (cfg_.max_backlog != 0 && queue_.size() >= cfg_.max_backlog) {
        recorder_->drop(cfg_.site_index);
        return false;
    }
    const std::size_t klass = draw_class();
    const ReqId id = table_->create(cfg_.site_index,
                                    static_cast<std::uint16_t>(klass),
                                    kernel_.now());
    queue_.push(id);
    recorder_->note_queue_depth(cfg_.site_index, queue_.size());
    if (!idle_.empty()) {
        const os::WaitChannel chan = idle_.back();
        idle_.pop_back();
        kernel_.wakeup_channel(chan);
    }
    return true;
}

void WebSite::set_completion_hook(std::function<void(Duration)> hook) {
    on_complete_ = std::move(hook);
}

std::uint64_t WebSite::drops() const { return recorder_->drops(cfg_.site_index); }

std::uint64_t WebSite::timeouts() const {
    return recorder_->timeouts(cfg_.site_index);
}

void WebSite::record_completion(TimePoint now, ReqId id) {
    ++completed_;
    ++completed_by_class_[table_->klass(id)];
    const Duration response = now - table_->arrival(id);
    total_response_ += response;
    const auto second = static_cast<std::size_t>(now.since_epoch / util::sec(1));
    if (per_second_.size() <= second) per_second_.resize(second + 1, 0);
    ++per_second_[second];
    recorder_->record(cfg_.site_index, response,
                      table_->dispatch(id) - table_->arrival(id),
                      table_->db_wait(id));
    if (on_complete_) on_complete_(response);
    table_->release(id);
}

}  // namespace alps::web
