// A dynamic-content web site on the simulated host (paper Section 5).
//
// Models one Apache-prefork-style server owned by one user account:
//   * a master process that regulates a pool of worker processes (up to
//     max_workers, like the paper's 50);
//   * workers that loop: take a request, burn CPU parsing the PHP script,
//     block on the (remote) database, burn CPU rendering the page, reply;
//   * a listen queue feeding the workers.
// Clients and the database live off-host (separate machines in the paper),
// so they cost no CPU here: the DB is a latency, the clients are events.
//
// Requests are rows in a traffic::RequestTable — a flat SoA table shared by
// every site of a cluster, so production-scale runs (thousands of sites,
// hundreds of thousands of in-flight requests) allocate nothing per
// request. Each row carries the end-to-end latency pipeline's timestamps
// (arrival / dispatch / DB wait / completion), landed per site in a
// traffic::LatencyRecorder. A standalone site (tests, the §5 experiment)
// owns a private table and recorder.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "traffic/latency.h"
#include "traffic/service.h"
#include "traffic/table.h"
#include "util/rng.h"
#include "util/time.h"

namespace alps::web {

/// One stage of servicing a request: either CPU on the web host or a blocking
/// wait on the remote database.
struct RequestPhase {
    bool db = false;            ///< true: block for `mean`; false: burn CPU
    util::Duration mean{0};
};

/// A class of requests (RUBBoS-style: "read a story" vs "submit a comment"),
/// drawn per request with probability proportional to `weight`.
struct RequestClass {
    std::string name = "request";
    double weight = 1.0;
    std::vector<RequestPhase> phases;
};

struct SiteConfig {
    std::string name = "site";
    os::Uid uid = 1000;
    int max_workers = 50;  ///< the paper's per-site Apache limit
    int initial_workers = 8;
    int min_spare = 2;   ///< grow the pool when idle workers drop below this
    int max_spare = 20;  ///< shrink when more than this many sit idle
    int spawn_batch = 4;
    /// CPU demand per request: script parse/db-query marshalling, then page
    /// rendering (means; actual draws follow `service` unless jitter=false).
    /// Used to synthesize a single request class when `classes` is empty.
    util::Duration parse_cpu = util::msec(4);
    util::Duration render_cpu = util::msec(6);
    /// Remote database latency per request (the worker blocks).
    util::Duration db_time = util::msec(50);
    /// Explicit request mix; empty = one class from the three fields above.
    std::vector<RequestClass> classes;
    bool jitter = true;
    /// Distribution the phase means are drawn through when jitter is on.
    /// The default (exponential, 10 µs floor) is the seed model's draw,
    /// bit-identically; production runs use the heavy-tailed kinds.
    traffic::ServiceModel service{};
    /// Master housekeeping cadence and its (small) CPU cost.
    util::Duration master_period = util::sec(1);
    util::Duration master_cpu = util::usec(200);
    std::uint64_t seed = 7;
    // ---- cluster placement (per-CPU-queue kernels) ----
    /// Scheduling domain for this site's master and workers; -1 = kernel
    /// default placement.
    int home_cpu = -1;
    /// Hard-pin the processes there (Proc::pinned: exempt from
    /// steal/rebalance) — the one-ALPS-per-core deployments.
    bool pinned = false;
    // ---- open-loop overload controls ----
    /// Listen-queue cap: submissions beyond it are dropped at the door
    /// (counted per site). 0 = unbounded.
    std::size_t max_backlog = 0;
    /// Shed requests that outwait this in the listen queue (checked at
    /// dispatch). 0 = never.
    util::Duration queue_timeout{0};
    /// Row index in the shared table/recorder (a cluster sets this; a
    /// standalone site keeps 0).
    std::uint32_t site_index = 0;
};

/// The RUBBoS-like bulletin-board mix: mostly story reads (parse, one DB
/// query, render) with a fraction of comment submissions (two DB round
/// trips with validation CPU in between).
[[nodiscard]] std::vector<RequestClass> bulletin_board_mix(double submission_fraction = 0.15);

/// One hosted site: master + worker pool + listen queue + statistics.
class WebSite {
public:
    /// `table` / `recorder` may be shared across a cluster's sites; nullptr
    /// gives the site a private one (recorder sized site_index + 1).
    WebSite(os::Kernel& kernel, SiteConfig cfg,
            traffic::RequestTable* table = nullptr,
            traffic::LatencyRecorder* recorder = nullptr);
    ~WebSite();

    WebSite(const WebSite&) = delete;
    WebSite& operator=(const WebSite&) = delete;

    /// Submits one request; returns false when the backlog cap dropped it.
    /// Callable from event context.
    bool submit();

    /// One per-site hook invoked (with the response time) as each request
    /// completes — the closed-loop client pool's feedback path. May be
    /// empty. Replaces any previous hook.
    void set_completion_hook(std::function<void(util::Duration)> hook);

    [[nodiscard]] const SiteConfig& config() const { return cfg_; }
    [[nodiscard]] os::Uid uid() const { return cfg_.uid; }
    [[nodiscard]] std::uint64_t completed() const { return completed_; }
    /// Completions per request class, in the order of the effective mix.
    [[nodiscard]] const std::vector<std::uint64_t>& completed_by_class() const {
        return completed_by_class_;
    }
    /// The request mix in effect (synthesized when cfg.classes was empty).
    [[nodiscard]] const std::vector<RequestClass>& request_mix() const {
        return classes_;
    }
    [[nodiscard]] util::Duration total_response_time() const { return total_response_; }
    [[nodiscard]] int worker_count() const { return workers_alive_; }
    [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
    [[nodiscard]] std::size_t idle_workers() const { return idle_.size(); }
    /// Completions per whole simulated second since t=0.
    [[nodiscard]] const std::vector<std::uint64_t>& per_second_completions() const {
        return per_second_;
    }
    [[nodiscard]] std::uint64_t drops() const;
    [[nodiscard]] std::uint64_t timeouts() const;
    [[nodiscard]] traffic::RequestTable& table() { return *table_; }
    [[nodiscard]] traffic::LatencyRecorder& recorder() { return *recorder_; }

private:
    class WorkerBehavior;
    class MasterBehavior;
    friend class WorkerBehavior;
    friend class MasterBehavior;

    void spawn_worker();
    void regulate();  ///< master's housekeeping step
    void record_completion(util::TimePoint now, traffic::ReqId id);
    util::Duration draw(util::Duration mean);
    std::size_t draw_class();

    os::Kernel& kernel_;
    SiteConfig cfg_;
    util::Rng rng_;
    std::vector<RequestClass> classes_;  ///< effective mix
    double weight_total_ = 0.0;

    std::unique_ptr<traffic::RequestTable> owned_table_;
    std::unique_ptr<traffic::LatencyRecorder> owned_recorder_;
    traffic::RequestTable* table_ = nullptr;
    traffic::LatencyRecorder* recorder_ = nullptr;

    traffic::IdRing queue_;              ///< listen queue (request ids)
    std::vector<os::WaitChannel> idle_;  ///< idle workers' wait channels
    int workers_alive_ = 0;
    int workers_spawned_ = 0;
    int retire_pending_ = 0;

    std::uint64_t completed_ = 0;
    std::vector<std::uint64_t> completed_by_class_;
    util::Duration total_response_{0};
    std::vector<std::uint64_t> per_second_;
    std::function<void(util::Duration)> on_complete_;

    os::Pid master_pid_ = os::kNoPid;
};

}  // namespace alps::web
