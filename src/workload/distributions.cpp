#include "workload/distributions.h"

#include "util/assert.h"

namespace alps::workload {

std::vector<util::Share> make_shares(ShareModel model, int nprocs) {
    ALPS_EXPECT(nprocs >= 2);
    const auto n = static_cast<util::Share>(nprocs);
    std::vector<util::Share> shares;
    shares.reserve(static_cast<std::size_t>(nprocs));
    switch (model) {
        case ShareModel::kLinear:
            for (util::Share i = 0; i < n; ++i) shares.push_back(2 * i + 1);
            break;
        case ShareModel::kEqual:
            shares.assign(static_cast<std::size_t>(nprocs), n);
            break;
        case ShareModel::kSkewed:
            shares.assign(static_cast<std::size_t>(nprocs) - 1, 1);
            shares.push_back(n * n - (n - 1));
            break;
    }
    ALPS_ENSURE(util::total_shares(shares) == n * n);
    return shares;
}

}  // namespace alps::workload
