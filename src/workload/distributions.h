// The paper's Table-2 workload share distributions.
//
// A workload of n processes has n² total shares:
//   linear: {1, 3, 5, ..., 2n-1}
//   equal:  {n, n, ..., n}
//   skewed: {1, 1, ..., 1, n² - (n-1)}   (n-1 single-share processes)
// The paper deliberately does NOT scale these by their GCD (§3).
#pragma once

#include <string_view>
#include <vector>

#include "util/shares.h"

namespace alps::workload {

enum class ShareModel { kLinear, kEqual, kSkewed };

[[nodiscard]] constexpr std::string_view to_string(ShareModel m) {
    switch (m) {
        case ShareModel::kLinear: return "Linear";
        case ShareModel::kEqual: return "Equal";
        case ShareModel::kSkewed: return "Skewed";
    }
    return "?";
}

/// Builds the Table-2 share vector for n >= 2 processes.
[[nodiscard]] std::vector<util::Share> make_shares(ShareModel model, int nprocs);

/// All three models, in the paper's presentation order.
inline constexpr ShareModel kAllModels[] = {ShareModel::kSkewed, ShareModel::kLinear,
                                            ShareModel::kEqual};

}  // namespace alps::workload
