#include "workload/experiments.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "alps/sim_adapter.h"
#include "alps/stride_engine.h"
#include "metrics/exact_cycle_log.h"
#include "metrics/fairness.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "telemetry/metrics.h"
#include "util/assert.h"

namespace alps::workload {

using util::Duration;
using util::Share;
using util::TimePoint;

namespace {

/// Advances the simulation until `done()` holds or `deadline` passes,
/// checking once per simulated second. Returns true if `done()` held.
template <typename DoneFn>
bool run_simulation_until(sim::Engine& engine, TimePoint deadline, DoneFn done) {
    while (!done()) {
        if (engine.now() >= deadline) return false;
        engine.run_until(std::min(engine.now() + util::sec(1), deadline));
    }
    return true;
}

}  // namespace

// ----------------------------------------------------------------------------
// Figures 4, 5, 8, 9

SimRunResult run_cpu_bound_experiment(const SimRunConfig& cfg) {
    ALPS_EXPECT(!cfg.shares.empty());
    ALPS_EXPECT(cfg.measure_cycles > 0);

    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.stop_latency_grid = cfg.stop_latency_grid;
    kcfg.policy = cfg.kernel_policy;
    kcfg.policy_seed = cfg.policy_seed;
    os::Kernel kernel(engine, nullptr, kcfg);

    core::SchedulerConfig scfg;
    scfg.quantum = cfg.quantum;
    scfg.lazy_measurement = cfg.lazy_measurement;
    scfg.io_accounting = cfg.io_accounting;
    core::SimAlps alps(kernel, scfg, cfg.cost);

    // Per-cycle accuracy instrumentation: read the true (simulated) rusage
    // at each cycle boundary, as the paper's instrumented ALPS does.
    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.scheduler().set_cycle_observer(log.observer());

    for (std::size_t i = 0; i < cfg.shares.size(); ++i) {
        const os::Pid pid = kernel.spawn("worker" + std::to_string(i), /*uid=*/100,
                                         std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, cfg.shares[i]);
    }

    const Duration cycle_len = cfg.quantum * util::total_shares(cfg.shares);
    const auto total_cycles =
        static_cast<std::size_t>(cfg.warmup_cycles + cfg.measure_cycles);
    const Duration max_wall =
        cfg.max_wall > Duration::zero()
            ? cfg.max_wall
            : cycle_len * static_cast<std::int64_t>(3 * (total_cycles + 10));

    const bool completed = run_simulation_until(
        engine, TimePoint{} + max_wall,
        [&] { return log.cycle_count() >= total_cycles; });

    SimRunResult res;
    res.timed_out = !completed;
    res.wall = engine.now() - TimePoint{};
    res.alps_cpu = alps.overhead_cpu();
    res.overhead_fraction =
        util::to_sec(res.wall) > 0.0 ? util::to_sec(res.alps_cpu) / util::to_sec(res.wall)
                                     : 0.0;
    res.mean_rms_error = log.mean_rms_relative_error(
        static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    res.cycles_completed = log.cycle_count();
    res.ticks = alps.scheduler().tick_count();
    res.measurements = alps.scheduler().total_measurements();
    res.boundaries_missed = alps.driver().boundaries_missed();
    res.fairness = metrics::analyze_fairness(
        log.records(), static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    if (cfg.metrics != nullptr) {
        engine.export_metrics(*cfg.metrics);
        kernel.export_metrics(*cfg.metrics);
        alps.scheduler().export_metrics(*cfg.metrics);
        metrics::export_fairness(res.fairness, *cfg.metrics);
    }
    return res;
}

// ----------------------------------------------------------------------------
// The stride-engine A/B (BENCH_policy_zoo)

SimRunResult run_stride_engine_experiment(const SimRunConfig& cfg) {
    ALPS_EXPECT(!cfg.shares.empty());
    ALPS_EXPECT(cfg.measure_cycles > 0);

    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.stop_latency_grid = cfg.stop_latency_grid;
    kcfg.policy = cfg.kernel_policy;
    kcfg.policy_seed = cfg.policy_seed;
    os::Kernel kernel(engine, nullptr, kcfg);

    core::StrideEngineConfig ecfg;
    ecfg.quantum = cfg.quantum;
    ecfg.lazy_measurement = cfg.lazy_measurement;
    core::SimStrideAlps alps(kernel, ecfg, cfg.cost);

    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.engine().set_cycle_observer(log.observer());

    for (std::size_t i = 0; i < cfg.shares.size(); ++i) {
        const os::Pid pid = kernel.spawn("worker" + std::to_string(i), /*uid=*/100,
                                         std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, cfg.shares[i]);
    }

    const Duration cycle_len = cfg.quantum * util::total_shares(cfg.shares);
    const auto total_cycles =
        static_cast<std::size_t>(cfg.warmup_cycles + cfg.measure_cycles);
    const Duration max_wall =
        cfg.max_wall > Duration::zero()
            ? cfg.max_wall
            : cycle_len * static_cast<std::int64_t>(3 * (total_cycles + 10));

    const bool completed = run_simulation_until(
        engine, TimePoint{} + max_wall,
        [&] { return log.cycle_count() >= total_cycles; });

    SimRunResult res;
    res.timed_out = !completed;
    res.wall = engine.now() - TimePoint{};
    res.alps_cpu = alps.overhead_cpu();
    res.overhead_fraction =
        util::to_sec(res.wall) > 0.0 ? util::to_sec(res.alps_cpu) / util::to_sec(res.wall)
                                     : 0.0;
    res.mean_rms_error = log.mean_rms_relative_error(
        static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    res.cycles_completed = log.cycle_count();
    res.ticks = alps.engine().tick_count();
    res.measurements = alps.engine().total_measurements();
    res.boundaries_missed = alps.boundaries_missed();
    res.fairness = metrics::analyze_fairness(
        log.records(), static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    if (cfg.metrics != nullptr) {
        engine.export_metrics(*cfg.metrics);
        kernel.export_metrics(*cfg.metrics);
        metrics::export_fairness(res.fairness, *cfg.metrics);
    }
    return res;
}

// ----------------------------------------------------------------------------
// Figure 6

IoRunResult run_io_experiment(const IoRunConfig& cfg) {
    ALPS_EXPECT(cfg.steady_cycles > 0);
    ALPS_EXPECT(cfg.observe_cycles > 0);

    sim::Engine engine;
    os::Kernel kernel(engine);

    core::SchedulerConfig scfg;
    scfg.quantum = cfg.quantum;
    core::SimAlps alps(kernel, scfg);

    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.scheduler().set_cycle_observer(log.observer());

    const Share total = cfg.shares[0] + cfg.shares[1] + cfg.shares[2];

    // B runs CPU-bound until its cumulative consumption reaches
    // steady_cycles worth of its per-cycle share, then alternates
    // io_burst of CPU with io_sleep of blocking.
    const Duration initial_cpu =
        cfg.quantum * (cfg.shares[1] * static_cast<Share>(cfg.steady_cycles));

    const os::Pid pid_a =
        kernel.spawn("A", 100, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid pid_b = kernel.spawn(
        "B", 100,
        std::make_unique<os::PhasedIoBehavior>(cfg.io_burst, cfg.io_sleep, initial_cpu));
    const os::Pid pid_c =
        kernel.spawn("C", 100, std::make_unique<os::CpuBoundBehavior>());

    alps.manage(pid_a, cfg.shares[0]);
    alps.manage(pid_b, cfg.shares[1]);
    alps.manage(pid_c, cfg.shares[2]);

    IoRunResult res;
    // Onset: B finishes `initial_cpu + io_burst` of CPU, consuming its share
    // (shares[1] quanta) per cycle.
    res.io_onset_cycle = static_cast<std::uint64_t>(
        (initial_cpu + cfg.io_burst).count() /
        (cfg.quantum.count() * cfg.shares[1]));

    const auto target =
        static_cast<std::size_t>(cfg.steady_cycles + cfg.observe_cycles);
    const Duration cycle_len = cfg.quantum * total;
    const Duration max_wall = cycle_len * static_cast<std::int64_t>(4 * (target + 10)) +
                              cfg.io_sleep * static_cast<std::int64_t>(target);
    run_simulation_until(engine, TimePoint{} + max_wall,
                         [&] { return log.cycle_count() >= target; });

    for (const auto& rec : log.records()) {
        const auto fr = metrics::CycleLog::cycle_fractions(rec);
        std::array<double, 3> f{0.0, 0.0, 0.0};
        for (std::size_t i = 0; i < rec.ids.size(); ++i) {
            if (rec.ids[i] == pid_a) f[0] = fr[i];
            if (rec.ids[i] == pid_b) f[1] = fr[i];
            if (rec.ids[i] == pid_c) f[2] = fr[i];
        }
        res.cycle_index.push_back(rec.index);
        res.fractions.push_back(f);
    }
    return res;
}

// ----------------------------------------------------------------------------
// Figure 7 / Table 3

MultiAlpsResult run_multi_alps_experiment(const MultiAlpsConfig& cfg) {
    ALPS_EXPECT(cfg.phase2_start < cfg.phase3_start);
    ALPS_EXPECT(cfg.phase3_start < cfg.end);

    sim::Engine engine;
    os::Kernel kernel(engine);

    static constexpr std::array<std::array<Share, 3>, 3> kGroupShares{
        {{7, 8, 9}, {4, 5, 6}, {1, 2, 3}}};

    MultiAlpsResult res;
    res.procs.resize(9);
    for (int g = 0; g < 3; ++g) {
        for (int m = 0; m < 3; ++m) {
            auto& pr = res.procs[static_cast<std::size_t>(3 * g + m)];
            pr.group = g;
            pr.share = kGroupShares[static_cast<std::size_t>(g)][static_cast<std::size_t>(m)];
        }
    }

    std::vector<std::unique_ptr<core::SimAlps>> alpses;
    alpses.reserve(3);

    auto spawn_group = [&](int g) {
        core::SchedulerConfig scfg;
        scfg.quantum = cfg.quantum;
        auto alps = std::make_unique<core::SimAlps>(
            kernel, scfg, cfg.cost, "alps-" + std::string(1, static_cast<char>('A' + g)),
            /*uid=*/g);
        std::array<os::Pid, 3> pids{};
        for (int m = 0; m < 3; ++m) {
            auto& pr = res.procs[static_cast<std::size_t>(3 * g + m)];
            pids[static_cast<std::size_t>(m)] =
                kernel.spawn("g" + std::to_string(g) + "p" + std::to_string(m), g,
                             std::make_unique<os::CpuBoundBehavior>());
            alps->manage(pids[static_cast<std::size_t>(m)], pr.share);
        }
        // At each cycle end of this ALPS, sample its processes' cumulative
        // CPU — the paper's Figure-7 data points.
        auto* results = &res.procs;
        const int group = g;
        alps->scheduler().set_cycle_observer(
            [&kernel, results, group, pids](const core::CycleRecord&) {
                for (int m = 0; m < 3; ++m) {
                    auto& pr = (*results)[static_cast<std::size_t>(3 * group + m)];
                    pr.series.add(kernel.now(),
                                  kernel.cpu_time(pids[static_cast<std::size_t>(m)]));
                }
            });
        alpses.push_back(std::move(alps));
    };

    spawn_group(0);
    engine.schedule_at(TimePoint{} + cfg.phase2_start, [&] { spawn_group(1); });
    engine.schedule_at(TimePoint{} + cfg.phase3_start, [&] { spawn_group(2); });
    engine.run_until(TimePoint{} + cfg.end);

    // --- Table 3: per-phase within-group regression analysis ---
    const std::array<TimePoint, 4> bounds{
        TimePoint{}, TimePoint{} + cfg.phase2_start, TimePoint{} + cfg.phase3_start,
        TimePoint{} + cfg.end};
    const std::array<Duration, 3> group_start{Duration::zero(), cfg.phase2_start,
                                              cfg.phase3_start};

    util::RunningStats all_errors;
    for (int g = 0; g < 3; ++g) {
        for (int phase = g; phase < 3; ++phase) {  // group g exists from phase g on
            const TimePoint begin =
                std::max(bounds[static_cast<std::size_t>(phase)],
                         TimePoint{} + group_start[static_cast<std::size_t>(g)]) +
                cfg.settle;
            const TimePoint end = bounds[static_cast<std::size_t>(phase) + 1];
            std::vector<const metrics::ConsumptionSeries*> series;
            std::vector<Share> shares;
            bool enough = true;
            for (int m = 0; m < 3; ++m) {
                const auto& pr = res.procs[static_cast<std::size_t>(3 * g + m)];
                if (pr.series.points_in(begin, end) < 2) enough = false;
                series.push_back(&pr.series);
                shares.push_back(pr.share);
            }
            if (!enough) continue;
            const auto analysis = metrics::analyze_phase(series, shares, begin, end);
            for (int m = 0; m < 3; ++m) {
                auto& pr = res.procs[static_cast<std::size_t>(3 * g + m)];
                pr.phases[static_cast<std::size_t>(phase)] =
                    analysis[static_cast<std::size_t>(m)];
                all_errors.add(analysis[static_cast<std::size_t>(m)].relative_error);
            }
        }
    }
    res.mean_relative_error = all_errors.count() > 0 ? all_errors.mean() : 0.0;
    return res;
}

// ----------------------------------------------------------------------------
// Fault campaign

FaultRunResult run_fault_experiment(const FaultRunConfig& cfg) {
    ALPS_EXPECT(!cfg.shares.empty());
    ALPS_EXPECT(cfg.fault_cycles > 0);
    ALPS_EXPECT(cfg.warmup_cycles >= 0);
    ALPS_EXPECT(cfg.drain_cycles >= 0);

    sim::Engine engine;
    os::Kernel kernel(engine);

    core::SchedulerConfig scfg;
    scfg.quantum = cfg.quantum;
    scfg.faults = cfg.policy;

    FaultRunResult res;
    std::vector<os::Pid> pids;

    {
        core::SimAlps alps(kernel, scfg, cfg.cost, "alps", /*uid=*/0, cfg.faults);

        metrics::ExactCycleLog log([&kernel](core::EntityId id) {
            return kernel.cpu_time(static_cast<os::Pid>(id));
        });
        alps.scheduler().set_cycle_observer(log.observer());

        for (std::size_t i = 0; i < cfg.shares.size(); ++i) {
            const os::Pid pid = kernel.spawn("worker" + std::to_string(i), /*uid=*/100,
                                             std::make_unique<os::CpuBoundBehavior>());
            alps.manage(pid, cfg.shares[i]);
            pids.push_back(pid);
        }

        const Duration cycle_len = cfg.quantum * util::total_shares(cfg.shares);
        // Generous deadline: faults slow cycles down (quarantined entities
        // free-run, shrinking everyone's measured progress per cycle).
        const auto total_cycles = static_cast<std::size_t>(
            cfg.warmup_cycles + cfg.fault_cycles + cfg.drain_cycles);
        const Duration max_wall =
            cycle_len * static_cast<std::int64_t>(6 * (total_cycles + 10));
        const TimePoint deadline = TimePoint{} + max_wall;

        bool ok = run_simulation_until(engine, deadline, [&] {
            return log.cycle_count() >= static_cast<std::size_t>(cfg.warmup_cycles);
        });
        alps.faults().set_enabled(true);
        ok = ok && run_simulation_until(engine, deadline, [&] {
                 return log.cycle_count() >=
                        static_cast<std::size_t>(cfg.warmup_cycles + cfg.fault_cycles);
             });
        alps.faults().disable();
        ok = ok && run_simulation_until(engine, deadline, [&] {
                 return log.cycle_count() >= total_cycles;
             });
        res.timed_out = !ok;

        res.mean_rms_error = log.mean_rms_relative_error(
            static_cast<std::size_t>(cfg.warmup_cycles),
            static_cast<std::size_t>(cfg.fault_cycles));
        res.cycles_completed = log.cycle_count();
        res.ticks = alps.scheduler().tick_count();
        res.health = alps.health();
        res.injected = alps.faults().injected();
        res.survivors = alps.scheduler().size();

        // Liveness after the drain: a stopped process is only legitimate if
        // the scheduler *wants* it ineligible right now. Anything else —
        // stopped while desired-eligible, or stopped but no longer managed —
        // is a wedge the self-healing failed to clear.
        const core::Scheduler& sched = alps.scheduler();
        for (const os::Pid pid : pids) {
            if (!kernel.alive(pid) || !kernel.proc(pid).stopped) continue;
            const auto id = static_cast<core::EntityId>(pid);
            if (!sched.contains(id) || sched.eligible(id)) ++res.stopped_at_drain;
        }

        // The core invariant must have survived quarantines and drops.
        double sum_allowance = 0.0;
        for (const core::EntityId id : sched.ids()) sum_allowance += sched.allowance(id);
        const double q_ns = static_cast<double>(cfg.quantum.count());
        res.invariant_gap_quanta =
            std::abs(sum_allowance * q_ns -
                     static_cast<double>(sched.cycle_time_remaining().count())) /
            q_ns;
        // ~alps: release_all + driver teardown.
    }

    for (const os::Pid pid : pids) {
        if (kernel.alive(pid) && kernel.proc(pid).stopped) ++res.stopped_after_release;
    }
    return res;
}

// ----------------------------------------------------------------------------
// Many-core sweep (BENCH_many_core)

ManyCoreResult run_many_core_experiment(const ManyCoreConfig& cfg) {
    ALPS_EXPECT(cfg.ncpus > 0);
    ALPS_EXPECT(cfg.procs_per_cpu > 0);
    ALPS_EXPECT(cfg.measure_cycles > 0);

    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.ncpus = cfg.ncpus;
    kcfg.percpu_queues = true;
    kcfg.policy = cfg.kernel_policy;
    kcfg.policy_seed = cfg.policy_seed;
    os::Kernel kernel(engine, nullptr, kcfg);

    core::SchedulerConfig scfg;
    scfg.quantum = cfg.quantum;

    const int instances = cfg.per_core_alps ? cfg.ncpus : 1;
    std::vector<std::unique_ptr<core::SimAlps>> alps;
    std::vector<std::unique_ptr<metrics::ExactCycleLog>> logs;
    alps.reserve(static_cast<std::size_t>(instances));
    logs.reserve(static_cast<std::size_t>(instances));
    const auto reader = [&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    };

    // Deploy: per-core mode homes each instance's driver *and* workers on
    // that core's domain (the one-controller-per-CPU deployment), hard-pinned
    // when cfg.pin_workers so steal/rebalance cannot undo the placement;
    // global mode leaves placement to the kernel's round-robin default.
    // Shares cycle 1,2,3 per instance so proportionality is non-trivial.
    Share shares_per_instance = 0;
    const bool pin = cfg.per_core_alps && cfg.pin_workers;
    for (int c = 0; c < instances; ++c) {
        const int home = cfg.per_core_alps ? c : -1;
        alps.push_back(std::make_unique<core::SimAlps>(
            kernel, scfg, cfg.cost, "alps" + std::to_string(c), /*uid=*/0,
            core::FaultPlan{}, home, pin));
        logs.push_back(std::make_unique<metrics::ExactCycleLog>(reader));
        alps.back()->scheduler().set_cycle_observer(logs.back()->observer());
        const auto& custom = cfg.shares_per_instance;
        const int per_instance = custom.empty()
                                     ? cfg.procs_per_cpu
                                     : static_cast<int>(custom.size());
        const int workers =
            cfg.per_core_alps ? per_instance : cfg.ncpus * per_instance;
        Share total = 0;
        for (int j = 0; j < workers; ++j) {
            const os::Pid pid = kernel.spawn(
                "w" + std::to_string(c) + "_" + std::to_string(j),
                /*uid=*/100 + static_cast<os::Uid>(c),
                std::make_unique<os::CpuBoundBehavior>(), /*nice=*/0, home, pin);
            const Share share =
                custom.empty() ? j % 3 + 1
                               : custom[static_cast<std::size_t>(j) % custom.size()];
            alps.back()->manage(pid, share);
            total += share;
        }
        shares_per_instance = total;
    }

    const auto total_cycles =
        static_cast<std::size_t>(cfg.warmup_cycles + cfg.measure_cycles);
    const Duration cycle_len = cfg.quantum * shares_per_instance;
    const Duration max_wall =
        cfg.max_wall > Duration::zero()
            ? cfg.max_wall
            : cycle_len * static_cast<std::int64_t>(3 * (total_cycles + 10));

    const bool completed =
        run_simulation_until(engine, TimePoint{} + max_wall, [&] {
            for (const auto& log : logs) {
                if (log->cycle_count() < total_cycles) return false;
            }
            return true;
        });

    ManyCoreResult res;
    res.timed_out = !completed;
    res.wall = engine.now() - TimePoint{};
    Duration alps_cpu{0};
    std::vector<std::vector<core::CycleRecord>> per_cpu_records;
    per_cpu_records.reserve(logs.size());
    for (int c = 0; c < instances; ++c) {
        alps_cpu += alps[static_cast<std::size_t>(c)]->overhead_cpu();
        res.cycles_completed += logs[static_cast<std::size_t>(c)]->cycle_count();
        res.ticks += alps[static_cast<std::size_t>(c)]->scheduler().tick_count();
        res.measurements +=
            alps[static_cast<std::size_t>(c)]->scheduler().total_measurements();
        res.boundaries_missed +=
            alps[static_cast<std::size_t>(c)]->driver().boundaries_missed();
        per_cpu_records.push_back(logs[static_cast<std::size_t>(c)]->records());
    }
    res.overhead_fraction =
        util::to_sec(res.wall) > 0.0
            ? util::to_sec(alps_cpu) / (util::to_sec(res.wall) * cfg.ncpus)
            : 0.0;
    res.migrations = kernel.migrations();
    res.steals = kernel.steals();
    res.per_cpu = metrics::analyze_fairness_per_cpu(
        per_cpu_records, static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    res.mean_rms_error = res.per_cpu.mean_rms_share_error;
    res.worst_rms_error = res.per_cpu.worst_rms_share_error;
    if (cfg.metrics != nullptr) {
        engine.export_metrics(*cfg.metrics);
        kernel.export_metrics(*cfg.metrics);
        for (const auto& a : alps) a->scheduler().export_metrics(*cfg.metrics);
        metrics::export_fairness_per_cpu(res.per_cpu, *cfg.metrics);
    }
    return res;
}

}  // namespace alps::workload
