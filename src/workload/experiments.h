// Reusable experiment runners for the paper's evaluation (Sections 3-4).
// Each runner builds a fresh simulated machine, runs one experiment, and
// returns structured results; the bench harnesses and integration tests call
// these.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "alps/cost_model.h"
#include "alps/fault.h"
#include "alps/scheduler.h"
#include "metrics/fairness.h"
#include "metrics/slope_analysis.h"
#include "util/shares.h"
#include "util/time.h"

namespace alps::telemetry {
class MetricsRegistry;
}  // namespace alps::telemetry

namespace alps::workload {

// ----------------------------------------------------------------------------
// CPU-bound accuracy/overhead run (Figures 4, 5, 8, 9 and the §2.3 ablation)

struct SimRunConfig {
    /// One compute-bound process per share entry.
    std::vector<util::Share> shares;
    util::Duration quantum = util::msec(10);
    /// Cycles measured for the error metric, after `warmup_cycles`.
    int measure_cycles = 200;
    int warmup_cycles = 5;
    bool lazy_measurement = true;  ///< §2.3 optimization (off = ablation)
    bool io_accounting = true;
    core::CostModel cost{};
    /// Hard stop; zero = derived from the cycle length automatically.
    util::Duration max_wall{0};
    /// Kernel signal-delivery latency model (see KernelConfig): 0 = ideal
    /// instant stops; 10 ms models FreeBSD's hardclock-tick delivery.
    util::Duration stop_latency_grid{0};
    /// When set, the run exports its engine/kernel/scheduler totals here
    /// ("engine.", "kernel.", "alps." prefixes) plus the fairness report
    /// ("fairness.") before returning. Sweeps pass TaskContext::metrics so
    /// every task's counters land in one registry.
    telemetry::MetricsRegistry* metrics = nullptr;
    /// Kernel scheduling policy underneath ALPS, by name (see
    /// os::policies::known_policies(): bsd | lottery | stride | cfs). An
    /// unknown name throws std::invalid_argument from the kernel.
    std::string kernel_policy = "bsd";
    /// Seed for randomized kernel policies (the lottery's draw stream).
    std::uint64_t policy_seed = 0xa1b5'5eedULL;
};

struct SimRunResult {
    double mean_rms_error = 0.0;      ///< fraction (×100 = the paper's %)
    double overhead_fraction = 0.0;   ///< ALPS CPU / wall time (×100 = %)
    std::uint64_t cycles_completed = 0;
    std::uint64_t ticks = 0;
    std::uint64_t measurements = 0;   ///< total progress reads
    std::uint64_t boundaries_missed = 0;
    util::Duration wall{0};
    util::Duration alps_cpu{0};
    bool timed_out = false;  ///< hit max_wall before completing the cycles
    /// Fairness over the measured cycles (time ratio, RMS error, complaint).
    metrics::FairnessReport fairness;
};

/// Spawns |shares| compute-bound processes under one ALPS and measures
/// accuracy and overhead.
[[nodiscard]] SimRunResult run_cpu_bound_experiment(const SimRunConfig& cfg);

/// The policy-zoo A/B: same machine, same workload, same measurement, but
/// the application-level controller is core::StrideEngine (stride
/// pass/stride replacing the ALPS allowance loop). kernel_policy still
/// selects the kernel underneath. lazy_measurement/io_accounting are
/// ignored (the engine has no such options).
[[nodiscard]] SimRunResult run_stride_engine_experiment(const SimRunConfig& cfg);

// ----------------------------------------------------------------------------
// I/O redistribution run (Figure 6)

struct IoRunConfig {
    util::Duration quantum = util::msec(10);
    /// Shares of processes A, B, C; B is the one that performs I/O.
    std::array<util::Share, 3> shares{1, 2, 3};
    /// B executes bursts of this much CPU ...
    util::Duration io_burst = util::msec(80);
    /// ... then sleeps this long (the paper: 240 ms, i.e. one burst per
    /// 3 cycles of CPU share at 33.3%).
    util::Duration io_sleep = util::msec(240);
    /// Cycles of steady CPU-bound execution before B starts I/O.
    int steady_cycles = 30;
    /// Cycles to observe after the I/O onset.
    int observe_cycles = 60;
};

struct IoRunResult {
    /// Per observed cycle: index and each process's fraction of the cycle's
    /// CPU (A, B, C).
    std::vector<std::uint64_t> cycle_index;
    std::vector<std::array<double, 3>> fractions;
    /// Cycle index at which B's I/O began.
    std::uint64_t io_onset_cycle = 0;
};

[[nodiscard]] IoRunResult run_io_experiment(const IoRunConfig& cfg);

// ----------------------------------------------------------------------------
// Multiple concurrent ALPSs (Figure 7 and Table 3)

struct MultiAlpsConfig {
    util::Duration quantum = util::msec(10);
    /// Phase starts: group A at 0, B at phase2_start, C at phase3_start; the
    /// run ends at end (the paper: 3 s / 6 s / 15 s).
    util::Duration phase2_start = util::sec(3);
    util::Duration phase3_start = util::sec(6);
    util::Duration end = util::sec(15);
    /// Ignored at the start of each phase when fitting slopes (forks and
    /// kernel-priority transients perturb the first cycles).
    util::Duration settle = util::msec(600);
    core::CostModel cost{};
};

struct MultiAlpsResult {
    struct ProcResult {
        int group = 0;  ///< 0 = A {7,8,9}, 1 = B {4,5,6}, 2 = C {1,2,3}
        util::Share share = 0;
        metrics::ConsumptionSeries series;  ///< sampled at its ALPS's cycle ends
        /// Within-group CPU fraction and relative error per phase (empty
        /// optional where the group was not yet running).
        std::array<std::optional<metrics::PhaseShare>, 3> phases;
    };
    std::vector<ProcResult> procs;  ///< 9 processes, shares 7,8,9,4,5,6,1,2,3
    /// Mean relative error over all (process, phase) cells (paper: 0.93 %).
    double mean_relative_error = 0.0;
};

[[nodiscard]] MultiAlpsResult run_multi_alps_experiment(const MultiAlpsConfig& cfg);

// ----------------------------------------------------------------------------
// Fault campaign: accuracy and liveness under an unreliable control channel

struct FaultRunConfig {
    /// One compute-bound process per share entry.
    std::vector<util::Share> shares;
    util::Duration quantum = util::msec(10);
    /// Injected failure modes (see FaultPlan); enabled only during the fault
    /// phase — setup and drain always run on a clean channel.
    core::FaultPlan faults{};
    /// The scheduler's degradation policy under test.
    core::FaultPolicy policy{};
    int warmup_cycles = 5;    ///< clean cycles before injection starts
    int fault_cycles = 100;   ///< cycles with injection enabled (measured)
    int drain_cycles = 10;    ///< clean cycles after injection stops
    core::CostModel cost{};
};

struct FaultRunResult {
    /// Mean RMS relative fairness error over the fault-phase cycles,
    /// against the kernel's ground-truth rusage.
    double mean_rms_error = 0.0;
    std::uint64_t cycles_completed = 0;
    std::uint64_t ticks = 0;
    core::HealthReport health;        ///< what the scheduler coped with
    core::InjectedCounts injected;    ///< what the fault layer actually did
    std::size_t survivors = 0;        ///< entities still managed at the end
    /// Liveness: processes wedged in SIGSTOP against the scheduler's will
    /// after the drain (must be 0 — self-healing worked) and after teardown
    /// release (must be 0 — "never leave a process stopped").
    int stopped_at_drain = 0;
    int stopped_after_release = 0;
    /// |Σ a_i·Q − t_c| in quanta at the end (the core invariant, which must
    /// survive quarantines and drops).
    double invariant_gap_quanta = 0.0;
    bool timed_out = false;
};

/// Runs |shares| compute-bound processes under one ALPS whose backend is
/// wrapped in a FaultInjectingControl, and measures how fairness and
/// liveness degrade.
[[nodiscard]] FaultRunResult run_fault_experiment(const FaultRunConfig& cfg);

// ----------------------------------------------------------------------------
// Many-core sweep: one global ALPS vs one ALPS per core (the SMP extension)

struct ManyCoreConfig {
    /// Simulated cores; the kernel runs per-CPU scheduling domains
    /// (KernelConfig::percpu_queues) with idle-steal and rebalance.
    int ncpus = 16;
    /// Compute-bound workers per core, shares cycling 1, 2, 3.
    int procs_per_cpu = 2;
    /// When non-empty, overrides procs_per_cpu and the 1,2,3 cycle: each
    /// instance runs exactly these shares (global mode repeats the vector
    /// once per core). Lets the policy-zoo run its linear/skewed share
    /// models on the per-CPU machine.
    std::vector<util::Share> shares_per_instance;
    /// true: one ALPS instance per core, driver and workers homed on that
    /// core's domain. false: one global ALPS over all ncpus·procs_per_cpu
    /// workers (its cycle is ncpus times longer — the scaling pain the
    /// per-core deployment removes).
    bool per_core_alps = false;
    /// Per-core mode only: hard-pin each instance's driver and workers
    /// (Proc::pinned) so idle-steal/rebalance cannot migrate them off their
    /// controller's domain. Before this exemption existed, such migrations
    /// were the dominant per-core error source (worst instance ~28% RMS);
    /// set false to reproduce that failure mode.
    bool pin_workers = true;
    util::Duration quantum = util::msec(10);
    /// Cycles measured *per instance* after `warmup_cycles`. The global
    /// instance's cycles are ~ncpus times longer in wall time; holding the
    /// cycle count (not the wall time) fixed keeps the accuracy statistics
    /// comparable per the §3.1 per-cycle metric.
    int measure_cycles = 20;
    int warmup_cycles = 3;
    core::CostModel cost{};
    std::string kernel_policy = "bsd";
    std::uint64_t policy_seed = 0xa1b5'5eedULL;
    /// Hard stop; zero = derived from the longest instance cycle.
    util::Duration max_wall{0};
    /// When set, exports engine/kernel/scheduler totals plus the per-CPU
    /// fairness breakdown ("fairness.per_cpu_*") here.
    telemetry::MetricsRegistry* metrics = nullptr;
};

struct ManyCoreResult {
    double mean_rms_error = 0.0;   ///< mean over instances (fraction)
    double worst_rms_error = 0.0;  ///< worst instance (== mean when global)
    /// Total ALPS CPU over total machine capacity (wall · ncpus).
    double overhead_fraction = 0.0;
    std::uint64_t cycles_completed = 0;   ///< summed over instances
    std::uint64_t ticks = 0;              ///< summed over instances
    std::uint64_t measurements = 0;       ///< summed over instances
    std::uint64_t boundaries_missed = 0;  ///< summed (a breakdown symptom)
    std::uint64_t migrations = 0;  ///< kernel cross-domain moves (incl. steals)
    std::uint64_t steals = 0;      ///< idle-steal pulls
    util::Duration wall{0};
    bool timed_out = false;
    /// Per-instance fairness breakdown (one entry when global).
    metrics::PerCpuFairnessReport per_cpu;
};

/// Builds an ncpus-core machine with per-CPU run queues, deploys ALPS as
/// configured, and measures share accuracy, overhead, and balancing traffic.
[[nodiscard]] ManyCoreResult run_many_core_experiment(const ManyCoreConfig& cfg);

}  // namespace alps::workload
