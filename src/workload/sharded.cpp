#include "workload/sharded.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "alps/scheduler.h"
#include "alps/shard_view.h"
#include "alps/sim_adapter.h"
#include "metrics/exact_cycle_log.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "os/shard_link.h"
#include "util/assert.h"

namespace alps::workload {

using util::Duration;
using util::Share;
using util::TimePoint;

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

}  // namespace

ShardedRunResult run_sharded_experiment(const ShardedRunConfig& cfg) {
    ALPS_EXPECT(cfg.groups >= 1);
    ALPS_EXPECT(cfg.shards >= 1);
    ALPS_EXPECT(cfg.procs_per_group >= 1);
    ALPS_EXPECT(cfg.measure_cycles > 0);
    ALPS_EXPECT(cfg.hop_period >= 0);

    sim::ShardedEngine::Config scfg;
    scfg.shards = cfg.shards;
    scfg.epoch = cfg.quantum;
    sim::ShardedEngine sharded(scfg);

    // --- Build the fixed logical machine: one uniprocessor kernel + one
    // ALPS + workers per group, homed on shard g % S. -----------------------
    const unsigned groups = cfg.groups;
    std::vector<std::unique_ptr<os::Kernel>> kernels;
    std::vector<std::unique_ptr<core::SimAlps>> alps;
    std::vector<std::unique_ptr<metrics::ExactCycleLog>> logs;
    std::vector<std::vector<os::Pid>> workers(groups);
    kernels.reserve(groups);
    alps.reserve(groups);
    logs.reserve(groups);

    core::SchedulerConfig acfg;
    acfg.quantum = cfg.quantum;

    Share group_shares = 0;
    for (unsigned g = 0; g < groups; ++g) {
        os::KernelConfig kcfg;
        kcfg.ncpus = 1;
        kcfg.policy = cfg.kernel_policy;
        // Per-group stream, derived from the config seed — a function of g,
        // never of the shard count.
        kcfg.policy_seed = cfg.policy_seed + g;
        kernels.push_back(std::make_unique<os::Kernel>(
            sharded.engine(g % cfg.shards), nullptr, kcfg));
        os::Kernel& kernel = *kernels.back();

        alps.push_back(std::make_unique<core::SimAlps>(
            kernel, acfg, cfg.cost, "alps" + std::to_string(g), /*uid=*/0));
        logs.push_back(std::make_unique<metrics::ExactCycleLog>(
            [&kernel](core::EntityId id) {
                return kernel.cpu_time(static_cast<os::Pid>(id));
            }));
        alps.back()->scheduler().set_cycle_observer(logs.back()->observer());

        Share total = 0;
        for (int j = 0; j < cfg.procs_per_group; ++j) {
            const os::Pid pid = kernel.spawn(
                "w" + std::to_string(g) + "_" + std::to_string(j),
                /*uid=*/100 + static_cast<os::Uid>(g),
                std::make_unique<os::CpuBoundBehavior>());
            const Share share = j % 3 + 1;
            alps.back()->manage(pid, share);
            workers[g].push_back(pid);
            total += share;
        }
        group_shares = total;
    }

    // --- Cross-shard machinery: the sample board and the nomad. ------------
    core::ShardSampleBoard board(groups);
    for (unsigned g = 0; g < groups; ++g) {
        board.track(g, *kernels[g], 100 + static_cast<os::Uid>(g));
    }

    os::ShardLink link(sharded, groups);
    for (unsigned g = 0; g < groups; ++g) link.bind(g, *kernels[g]);
    // hosts/nomad_pid entries are touched only by their group's shard thread
    // (hop on the source shard, on_adopt on the destination shard) — the
    // ownership handoff travels inside the adoption message.
    std::vector<char> hosts(groups, 0);
    std::vector<os::Pid> nomad_pid(groups, os::kNoPid);
    if (cfg.hop_period > 0) {
        hosts[0] = 1;
        nomad_pid[0] = kernels[0]->spawn(
            "nomad", /*uid=*/99, std::make_unique<os::CpuBoundBehavior>());
        link.on_adopt = [&](unsigned group, os::Pid pid) {
            hosts[group] = 1;
            nomad_pid[group] = pid;
        };
    }

    // Written by shard 0's boundary hook, read after the run joins.
    Duration last_board_cpu{0};
    const std::int64_t quantum_ns = cfg.quantum.count();
    for (unsigned s = 0; s < cfg.shards; ++s) {
        sharded.set_publish_hook(s, [&, s](unsigned, TimePoint t) {
            for (unsigned g = s; g < groups; g += cfg.shards) {
                board.publish(g, t);
            }
            if (cfg.hop_period <= 0) return;
            const auto boundary =
                static_cast<std::int64_t>(t.since_epoch.count() / quantum_ns);
            if (boundary % cfg.hop_period != 0) return;
            for (unsigned g = s; g < groups; g += cfg.shards) {
                if (hosts[g] == 0) continue;
                os::Kernel& k = *kernels[g];
                const os::Pid pid = nomad_pid[g];
                ALPS_ENSURE(k.alive(pid));
                const os::Proc& p = k.proc(pid);
                if (p.on_cpu >= 0 || p.state != os::RunState::kRunnable) continue;
                hosts[g] = 0;
                link.migrate(g, (g + 1) % groups, pid);
            }
        });
    }
    sharded.set_boundary_hook(0, [&](unsigned, TimePoint) {
        // The cross-shard read: every slice was published before barrier A,
        // so shard 0 sees a consistent whole-machine snapshot.
        last_board_cpu = board.machine_cpu();
    });

    // --- Run to the cycle target in cycle-length lockstep chunks. ----------
    const auto total_cycles =
        static_cast<std::size_t>(cfg.warmup_cycles + cfg.measure_cycles);
    const Duration cycle_len = cfg.quantum * group_shares;
    const TimePoint max_wall =
        TimePoint{} + cycle_len * static_cast<std::int64_t>(3 * (total_cycles + 10));
    const auto done = [&] {
        return std::all_of(logs.begin(), logs.end(), [&](const auto& log) {
            return log->cycle_count() >= total_cycles;
        });
    };
    TimePoint now{};
    while (!done() && now < max_wall) {
        now = std::min(now + cycle_len, max_wall);
        sharded.run_lockstep(now, cfg.mode);
    }

    // --- Digest. -----------------------------------------------------------
    ShardedRunResult res;
    res.timed_out = !done();
    res.wall = sharded.engine(0).now() - TimePoint{};
    res.board_machine_cpu = last_board_cpu;

    Duration alps_cpu{0};
    std::uint64_t checksum = kFnvBasis;
    std::vector<std::vector<core::CycleRecord>> per_group_records;
    per_group_records.reserve(groups);
    for (unsigned g = 0; g < groups; ++g) {
        alps_cpu += alps[g]->overhead_cpu();
        res.cycles_completed += logs[g]->cycle_count();
        res.ticks += alps[g]->scheduler().tick_count();
        res.measurements += alps[g]->scheduler().total_measurements();
        per_group_records.push_back(logs[g]->records());

        fnv(checksum, g);
        for (const os::Pid pid : workers[g]) {
            fnv(checksum,
                static_cast<std::uint64_t>(kernels[g]->cpu_time(pid).count()));
        }
        for (const os::Pid pid : kernels[g]->pids_of_uid(99)) {
            fnv(checksum, static_cast<std::uint64_t>(pid));
            fnv(checksum,
                static_cast<std::uint64_t>(kernels[g]->cpu_time(pid).count()));
        }
        fnv(checksum,
            static_cast<std::uint64_t>(alps[g]->overhead_cpu().count()));
        for (const core::CycleRecord& rec : per_group_records.back()) {
            fnv(checksum, rec.index);
            fnv(checksum, rec.end_tick);
            for (const Duration d : rec.consumed) {
                fnv(checksum, static_cast<std::uint64_t>(d.count()));
            }
        }
    }
    res.consumed_checksum = checksum;
    res.overhead_fraction =
        util::to_sec(res.wall) > 0.0
            ? util::to_sec(alps_cpu) / (util::to_sec(res.wall) * groups)
            : 0.0;

    const auto stats = sharded.stats();
    res.epochs = stats.epochs;
    res.cross_shard_messages = stats.messages;
    res.migrations_completed = link.migrations_completed();
    res.events_fired = sharded.total_events_fired();
    res.per_group = metrics::analyze_fairness_per_cpu(
        per_group_records, static_cast<std::size_t>(cfg.warmup_cycles),
        static_cast<std::size_t>(cfg.measure_cycles));
    res.mean_rms_error = res.per_group.mean_rms_share_error;
    res.worst_rms_error = res.per_group.worst_rms_share_error;

    if (cfg.metrics != nullptr) {
        sharded.export_metrics(*cfg.metrics, "sharded.");
        for (unsigned g = 0; g < groups; ++g) {
            kernels[g]->export_metrics(*cfg.metrics);
            alps[g]->scheduler().export_metrics(*cfg.metrics);
        }
        metrics::export_fairness_per_cpu(res.per_group, *cfg.metrics);
    }
    return res;
}

}  // namespace alps::workload
